#ifndef SPATIAL_BENCH_EXP_COMMON_H_
#define SPATIAL_BENCH_EXP_COMMON_H_

// Shared setup for the experiment binaries (one binary per reproduced
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "bench_util/table.h"
#include "common/rng.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "data/workload.h"

namespace spatial {
namespace bench {

// The experiment configuration mirrors the SIGMOD'95 testbed: 1 KiB pages
// (mid-1990s disk pages) and query points drawn uniformly from the data
// domain. The buffer is sized so that the paper's metric (logical page
// accesses) is unaffected by caching; E7 varies the buffer explicitly.
inline constexpr uint32_t kPageSize = 1024;
inline constexpr uint32_t kBufferPages = 4096;
inline constexpr uint64_t kDataSeed = 19950523;   // SIGMOD'95 San Jose
inline constexpr uint64_t kQuerySeed = 777;
inline constexpr size_t kQueriesPerPoint = 200;

enum class Family { kUniform, kTigerLike, kClustered };

inline const char* FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kTigerLike:
      return "tiger-like";
    case Family::kClustered:
      return "clustered";
  }
  return "unknown";
}

inline std::vector<Entry<2>> MakeDataset(Family family, size_t n,
                                         uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case Family::kUniform:
      return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
    case Family::kTigerLike: {
      auto network =
          GenerateTigerLike(n, UnitBounds<2>(), TigerLikeOptions{}, &rng);
      auto points = SegmentMidpoints(network.segments);
      points.resize(n);  // generator may slightly overshoot
      return MakePointEntries(points);
    }
    case Family::kClustered:
      return MakePointEntries(
          GenerateClustered<2>(n, UnitBounds<2>(), ClusteredOptions{}, &rng));
  }
  return {};
}

inline std::vector<Point2> MakeQueries(const std::vector<Entry<2>>& data,
                                       size_t n = kQueriesPerPoint,
                                       uint64_t seed = kQuerySeed) {
  Rng rng(seed);
  return GenerateQueries<2>(data, n, QueryDistribution::kUniform, 0.0, &rng);
}

inline void PrintHeader(const char* experiment_id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("page size %u B, buffer %u pages, %zu queries/point, "
              "data seed %llu, query seed %llu\n",
              kPageSize, kBufferPages, kQueriesPerPoint,
              static_cast<unsigned long long>(kDataSeed),
              static_cast<unsigned long long>(kQuerySeed));
  std::printf("================================================================\n");
}

inline void PrintTableAndCsv(const Table& table) {
  table.Print(std::cout);
  std::printf("\n--- CSV ---\n");
  table.PrintCsv(std::cout);
  std::printf("\n");
}

// Writes a flat {"metric": value} JSON file for tools/bench_compare.py and,
// when `update_manifest` is set (full runs only — smoke runs write to /tmp),
// registers the file in BENCH_MANIFEST.json next to it. The manifest is the
// authoritative list of benchmark artifacts: bench_compare.py's manifest
// mode fails loudly on any listed file that is missing, so a bench binary
// that silently stops producing its JSON turns the regression gate red
// instead of shrinking the comparison.
inline void WriteBenchJson(const char* path,
                           const std::vector<std::pair<std::string, double>>& metrics,
                           bool update_manifest) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6f%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  if (!update_manifest) return;

  // The entry is the file's basename: manifest and artifacts live side by
  // side in whatever directory the bench was run from.
  std::string entry(path);
  if (const size_t slash = entry.rfind('/'); slash != std::string::npos) {
    entry = entry.substr(slash + 1);
  }
  const char* manifest_path = "BENCH_MANIFEST.json";
  std::vector<std::string> files;
  if (std::FILE* m = std::fopen(manifest_path, "r")) {
    // The manifest is machine-written (below), so a quoted-token scan is a
    // full parse: every ".json" string in it is a tracked artifact.
    std::string contents;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), m)) > 0) {
      contents.append(buf, got);
    }
    std::fclose(m);
    size_t pos = 0;
    while ((pos = contents.find('"', pos)) != std::string::npos) {
      const size_t end = contents.find('"', pos + 1);
      if (end == std::string::npos) break;
      const std::string token = contents.substr(pos + 1, end - pos - 1);
      if (token.size() > 5 &&
          token.compare(token.size() - 5, 5, ".json") == 0) {
        files.push_back(token);
      }
      pos = end + 1;
    }
  }
  files.push_back(entry);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::FILE* m = std::fopen(manifest_path, "w");
  if (m == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", manifest_path);
    std::exit(1);
  }
  std::fprintf(m, "{\n  \"files\": [\n");
  for (size_t i = 0; i < files.size(); ++i) {
    std::fprintf(m, "    \"%s\"%s\n", files[i].c_str(),
                 i + 1 < files.size() ? "," : "");
  }
  std::fprintf(m, "  ]\n}\n");
  std::fclose(m);
}

// Dies with a message on error — experiment binaries have no recovery path.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace spatial

#endif  // SPATIAL_BENCH_EXP_COMMON_H_
