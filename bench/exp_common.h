#ifndef SPATIAL_BENCH_EXP_COMMON_H_
#define SPATIAL_BENCH_EXP_COMMON_H_

// Shared setup for the experiment binaries (one binary per reproduced
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "bench_util/table.h"
#include "common/rng.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "data/workload.h"

namespace spatial {
namespace bench {

// The experiment configuration mirrors the SIGMOD'95 testbed: 1 KiB pages
// (mid-1990s disk pages) and query points drawn uniformly from the data
// domain. The buffer is sized so that the paper's metric (logical page
// accesses) is unaffected by caching; E7 varies the buffer explicitly.
inline constexpr uint32_t kPageSize = 1024;
inline constexpr uint32_t kBufferPages = 4096;
inline constexpr uint64_t kDataSeed = 19950523;   // SIGMOD'95 San Jose
inline constexpr uint64_t kQuerySeed = 777;
inline constexpr size_t kQueriesPerPoint = 200;

enum class Family { kUniform, kTigerLike, kClustered };

inline const char* FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kTigerLike:
      return "tiger-like";
    case Family::kClustered:
      return "clustered";
  }
  return "unknown";
}

inline std::vector<Entry<2>> MakeDataset(Family family, size_t n,
                                         uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case Family::kUniform:
      return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
    case Family::kTigerLike: {
      auto network =
          GenerateTigerLike(n, UnitBounds<2>(), TigerLikeOptions{}, &rng);
      auto points = SegmentMidpoints(network.segments);
      points.resize(n);  // generator may slightly overshoot
      return MakePointEntries(points);
    }
    case Family::kClustered:
      return MakePointEntries(
          GenerateClustered<2>(n, UnitBounds<2>(), ClusteredOptions{}, &rng));
  }
  return {};
}

inline std::vector<Point2> MakeQueries(const std::vector<Entry<2>>& data,
                                       size_t n = kQueriesPerPoint,
                                       uint64_t seed = kQuerySeed) {
  Rng rng(seed);
  return GenerateQueries<2>(data, n, QueryDistribution::kUniform, 0.0, &rng);
}

inline void PrintHeader(const char* experiment_id, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("page size %u B, buffer %u pages, %zu queries/point, "
              "data seed %llu, query seed %llu\n",
              kPageSize, kBufferPages, kQueriesPerPoint,
              static_cast<unsigned long long>(kDataSeed),
              static_cast<unsigned long long>(kQuerySeed));
  std::printf("================================================================\n");
}

inline void PrintTableAndCsv(const Table& table) {
  table.Print(std::cout);
  std::printf("\n--- CSV ---\n");
  table.PrintCsv(std::cout);
  std::printf("\n");
}

// Dies with a message on error — experiment binaries have no recovery path.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace spatial

#endif  // SPATIAL_BENCH_EXP_COMMON_H_
