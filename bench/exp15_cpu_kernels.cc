// E15 — CPU kernel throughput of the zero-allocation traversal core.
//
// The paper's cost model counts page accesses; E15 measures the orthogonal
// axis that dominates once the index is memory-resident: CPU time per
// query. Three engines answer the same uniform 2-D kNN workload over one
// memory-backed STR-packed tree:
//
//   seed     — the pre-arena depth-first search, compiled into this binary
//              verbatim from the original core/knn.cc: per-node std::vector
//              ABL, scalar per-entry MINDIST/MINMAXDIST.
//   scratch  — KnnSearchInto with one reused QueryScratch: batch distance
//              kernels over staged entries, arena-backed ABL, reused
//              candidate buffer.
//   batch    — KnnSearchBatch over the whole query array through the same
//              scratch (CSR-packed results).
//
// Reported per engine: queries/sec, speedup over seed, steady-state heap
// allocations per query (counting allocator; this binary links
// spatial_alloc_tracker), and the paper's pages/query. The scratch engine
// is also checked query-by-query against seed for byte-identical answers
// (same ids, bit-equal distances), with aggregate page accesses within 1%.
//
// Writes BENCH_E15.json (flat metric -> value) for tools/bench_compare.py.
// `--smoke` runs a scaled-down configuration for ctest.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "common/alloc_tracker.h"
#include "core/knn.h"
#include "exp_common.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {
namespace bench {
namespace {

// ---------------------------------------------------------------------------
// The seed engine: the depth-first branch-and-bound search exactly as it
// shipped before the zero-allocation rewrite (original core/knn.cc).
// ---------------------------------------------------------------------------
namespace seed {

constexpr double kMinMaxSlack = 1.0 + 1e-9;

struct AblEntry {
  PageId child = kInvalidPageId;
  double min_dist_sq = 0.0;
  double min_max_dist_sq = 0.0;
};

template <int D>
class DepthFirstKnn {
 public:
  DepthFirstKnn(const RTree<D>& tree, const Point<D>& query,
                const KnnOptions& options, QueryStats* stats)
      : tree_(tree),
        query_(query),
        options_(options),
        stats_(stats),
        buffer_(options.k),
        s1_active_(options.use_s1 && options.k == 1),
        s2_active_(options.use_s2 && options.k == 1) {}

  Result<std::vector<Neighbor>> Run() {
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    return buffer_.TakeSorted();
  }

 private:
  double PruneBoundSq() const {
    double bound = std::numeric_limits<double>::infinity();
    if (options_.use_s3) bound = std::min(bound, buffer_.WorstDistSq());
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    return bound;
  }

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("knn: node page has bad magic");
    }
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (view.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }

    if (view.is_leaf()) {
      const uint32_t n = view.count();
      for (uint32_t i = 0; i < n; ++i) {
        const Entry<D> e = view.entry(i);
        const double dist_sq = ObjectDistSq(query_, e.mbr);
        if (stats_ != nullptr) {
          ++stats_->objects_examined;
          ++stats_->distance_computations;
        }
        buffer_.Offer(e.id, dist_sq);
      }
      return Status::OK();
    }

    std::vector<AblEntry> abl;
    abl.reserve(view.count());
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      const Entry<D> e = view.entry(i);
      AblEntry slot;
      slot.child = static_cast<PageId>(e.id);
      slot.min_dist_sq = MinDistSq(query_, e.mbr);
      slot.min_max_dist_sq = MinMaxDistSq(query_, e.mbr);
      if (stats_ != nullptr) {
        ++stats_->abl_entries_generated;
        stats_->distance_computations += 2;
      }
      abl.push_back(slot);
    }
    handle.Release();

    switch (options_.ordering) {
      case AblOrdering::kMinDist:
        std::sort(abl.begin(), abl.end(),
                  [](const AblEntry& a, const AblEntry& b) {
                    return a.min_dist_sq < b.min_dist_sq;
                  });
        break;
      case AblOrdering::kMinMaxDist:
        std::sort(abl.begin(), abl.end(),
                  [](const AblEntry& a, const AblEntry& b) {
                    return a.min_max_dist_sq < b.min_max_dist_sq;
                  });
        break;
      case AblOrdering::kNone:
        break;
    }

    if (s1_active_ || s2_active_) {
      double min_minmax = std::numeric_limits<double>::infinity();
      for (const AblEntry& slot : abl) {
        min_minmax = std::min(min_minmax, slot.min_max_dist_sq);
      }
      if (s1_active_) {
        const double s1_bound = min_minmax * kMinMaxSlack;
        auto keep_end = std::remove_if(
            abl.begin(), abl.end(), [s1_bound](const AblEntry& slot) {
              return slot.min_dist_sq > s1_bound;
            });
        if (stats_ != nullptr) {
          stats_->pruned_s1 +=
              static_cast<uint64_t>(std::distance(keep_end, abl.end()));
        }
        abl.erase(keep_end, abl.end());
      }
      if (s2_active_ && min_minmax * kMinMaxSlack < estimate_sq_) {
        estimate_sq_ = min_minmax * kMinMaxSlack;
        if (stats_ != nullptr) ++stats_->estimate_updates_s2;
      }
    }

    for (const AblEntry& slot : abl) {
      if (slot.min_dist_sq > PruneBoundSq()) {
        if (stats_ != nullptr) ++stats_->pruned_s3;
        continue;
      }
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  const KnnOptions options_;
  QueryStats* stats_;
  NeighborBuffer buffer_;
  const bool s1_active_;
  const bool s2_active_;
  double estimate_sq_ = std::numeric_limits<double>::infinity();
};

template <int D>
Result<std::vector<Neighbor>> KnnSearch(const RTree<D>& tree,
                                        const Point<D>& query,
                                        const KnnOptions& options,
                                        QueryStats* stats) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (tree.empty()) return std::vector<Neighbor>{};
  DepthFirstKnn<D> search(tree, query, options, stats);
  return search.Run();
}

}  // namespace seed

// ---------------------------------------------------------------------------

struct EngineResult {
  double qps = 0.0;
  double allocs_per_query = 0.0;
  double pages_per_query = 0.0;
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Runs `queries` x `rounds` through `fn` (signature: (const Point2&) -> void)
// and returns qps + allocations per query. One untimed warm round first so
// scratch arenas and the buffer pool reach steady state.
template <typename Fn>
EngineResult TimeEngine(const std::vector<Point2>& queries, size_t rounds,
                        QueryStats* stats, Fn&& fn) {
  for (const Point2& q : queries) fn(q);  // warm: grow arenas, fault pages
  stats->Reset();
  const AllocCounts before = ThreadAllocCounts();
  // Throughput is the best of `rounds` passes: every engine runs the same
  // deterministic work each round, so the fastest pass is the one least
  // disturbed by the scheduler, and slower passes are measurement noise.
  double best_seconds = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const Point2& q : queries) fn(q);
    const auto t1 = std::chrono::steady_clock::now();
    best_seconds = std::min(best_seconds, Seconds(t0, t1));
  }
  const AllocCounts delta = ThreadAllocCounts() - before;
  const double n = static_cast<double>(rounds * queries.size());
  EngineResult result;
  result.qps = static_cast<double>(queries.size()) / best_seconds;
  result.allocs_per_query = static_cast<double>(delta.allocations) / n;
  result.pages_per_query = static_cast<double>(stats->nodes_visited) / n;
  return result;
}

// Asserts the scratch engine reproduces the seed engine bit for bit.
void CheckIdentical(const RTree<2>& tree, const std::vector<Point2>& queries,
                    uint32_t k) {
  KnnOptions options;
  options.k = k;
  QueryScratch<2> scratch;
  std::vector<Neighbor> mine;
  uint64_t total_mine = 0, total_seed = 0;
  for (const Point2& q : queries) {
    QueryStats seed_stats, my_stats;
    auto expected = Unwrap(seed::KnnSearch<2>(tree, q, options, &seed_stats),
                           "seed knn");
    UnwrapStatus(
        KnnSearchInto<2>(tree, q, options, &scratch, &mine, &my_stats),
        "scratch knn");
    if (mine.size() != expected.size() ||
        (!mine.empty() &&
         std::memcmp(mine.data(), expected.data(),
                     mine.size() * sizeof(Neighbor)) != 0)) {
      std::fprintf(stderr,
                   "E15: scratch engine diverged from seed at k=%u "
                   "(sizes %zu vs %zu)\n",
                   k, mine.size(), expected.size());
      for (size_t i = 0; i < mine.size() && i < expected.size(); ++i) {
        if (mine[i].id != expected[i].id ||
            mine[i].dist_sq != expected[i].dist_sq) {
          std::fprintf(stderr,
                       "  rank %zu: id %llu vs %llu, dist %.17g vs %.17g\n",
                       i, (unsigned long long)mine[i].id,
                       (unsigned long long)expected[i].id, mine[i].dist_sq,
                       expected[i].dist_sq);
        }
      }
      std::exit(1);
    }
    // Visit counts are compared in aggregate, not per query: when the query
    // point lies inside several sibling MBRs their MINDISTs tie at 0, the
    // seed's unstable std::sort breaks the tie arbitrarily while the arena
    // engine breaks it by page id, and the two (equally valid) descent
    // orders can differ by a node. The answers above are still bit-equal.
    total_mine += my_stats.nodes_visited;
    total_seed += seed_stats.nodes_visited;
  }
  const double drift =
      std::abs(static_cast<double>(total_mine) -
               static_cast<double>(total_seed)) /
      static_cast<double>(total_seed);
  std::printf("k=%u: answers bit-identical to seed over %zu queries; "
              "pages visited %llu vs seed %llu (drift %.3f%%)\n",
              k, queries.size(), (unsigned long long)total_mine,
              (unsigned long long)total_seed, drift * 100.0);
  if (drift > 0.01) {
    std::fprintf(stderr, "E15: page-access drift vs seed exceeds 1%%\n");
    std::exit(1);
  }
}

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 2000;
  const size_t rounds = smoke ? 1 : 5;
  // Pool sized to hold the whole tree: E15 isolates CPU cost, not I/O.
  const uint32_t frames = 8192;

  PrintHeader("E15", "CPU kernel throughput (zero-allocation traversal)");
  std::printf("%zu uniform points, STR-packed, %zu queries x %zu rounds%s\n\n",
              n_points, n_queries, rounds, smoke ? " [smoke]" : "");

  BuiltTree built =
      Unwrap(BuildTree2D(MakeDataset(Family::kUniform, n_points, kDataSeed),
                         BuildMethod::kBulkStr, kPageSize, frames),
             "build tree");
  const RTree<2>& tree = *built.tree;
  const std::vector<Point2> queries = MakeQueries(
      MakeDataset(Family::kUniform, n_points, kDataSeed), n_queries);

  std::vector<std::pair<std::string, double>> json;
  Table table({"k", "engine", "qps", "speedup", "allocs/q", "pages/q"});

  for (uint32_t k : {1u, 10u}) {
    CheckIdentical(tree, queries, k);

    KnnOptions options;
    options.k = k;
    QueryStats stats;

    const EngineResult seed_r =
        TimeEngine(queries, rounds, &stats, [&](const Point2& q) {
          auto r = seed::KnnSearch<2>(tree, q, options, &stats);
          UnwrapStatus(r.status(), "seed knn");
        });

    QueryScratch<2> scratch;
    std::vector<Neighbor> out;
    const EngineResult scratch_r =
        TimeEngine(queries, rounds, &stats, [&](const Point2& q) {
          UnwrapStatus(
              KnnSearchInto<2>(tree, q, options, &scratch, &out, &stats),
              "scratch knn");
        });

    // The batch engine answers the whole query set per call; time it over
    // the same total query count.
    BatchKnnResult batch;
    QueryScratch<2> batch_scratch;
    auto run_batch = [&] {
      UnwrapStatus(KnnSearchBatch<2>(tree, queries.data(), queries.size(),
                                     options, &batch_scratch, &batch),
                   "batch knn");
    };
    run_batch();  // warm
    const AllocCounts before = ThreadAllocCounts();
    double best_seconds = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < rounds; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      run_batch();
      const auto t1 = std::chrono::steady_clock::now();
      best_seconds = std::min(best_seconds, Seconds(t0, t1));
    }
    const AllocCounts delta = ThreadAllocCounts() - before;
    const double nq = static_cast<double>(rounds * queries.size());
    EngineResult batch_r;
    batch_r.qps = static_cast<double>(queries.size()) / best_seconds;
    batch_r.allocs_per_query = static_cast<double>(delta.allocations) / nq;
    uint64_t batch_pages = 0;
    for (const QueryStats& qs : batch.stats) batch_pages += qs.nodes_visited;
    batch_r.pages_per_query =
        static_cast<double>(batch_pages) / static_cast<double>(queries.size());

    const struct {
      const char* name;
      const EngineResult& r;
    } rows[] = {{"seed", seed_r}, {"scratch", scratch_r}, {"batch", batch_r}};
    for (const auto& row : rows) {
      const double speedup = row.r.qps / seed_r.qps;
      table.AddRow({std::to_string(k), row.name, FmtDouble(row.r.qps, 0),
                    FmtDouble(speedup, 2), FmtDouble(row.r.allocs_per_query, 3),
                    FmtDouble(row.r.pages_per_query, 2)});
      const std::string suffix = std::string("_") + row.name + "_k" +
                                 std::to_string(k);
      json.emplace_back("qps" + suffix, row.r.qps);
      json.emplace_back("speedup" + suffix, speedup);
      json.emplace_back("allocs_per_query" + suffix, row.r.allocs_per_query);
      json.emplace_back("pages_per_query" + suffix, row.r.pages_per_query);
    }
  }

  PrintTableAndCsv(table);

  const char* json_path = smoke ? "/tmp/BENCH_E15_smoke.json" : "BENCH_E15.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
