// E22 — distributed tracing overhead on the sharded router.
//
// PR 10's cross-shard tracing promises the same deal the worker-level
// layer priced in E18: negligible when you don't look. Per scattered
// query the router adds one xorshift sampling draw, one merge-latency
// histogram record, one per-kind atomic counter, and one slow-threshold
// test; only sampled queries (1 in 100 here) pay for trace-id minting,
// per-shard completion clocks, span assembly, and a slow-ring/reservoir
// insert — and the shards they touch pay the worker-side trace hook E18
// already priced. This experiment measures the end-to-end delta through
// the full scatter-gather path. Engines, both answering the same uniform
// kNN workload through one 4-shard memory-resident ShardSet:
//
//   tracing-off  — ShardRouter with trace_sample_per_million = 0 (the
//                  production default): the draw, the counter, the
//                  histogram, the threshold test, nothing else.
//   sampled-1pct — trace_sample_per_million = 10'000: ~1 query in 100
//                  mints a trace id, propagates it to all four shards,
//                  gets each shard's QueryTraceRecord back in the
//                  response, and assembles the cross-shard trace into
//                  the router's sampled reservoir.
//
// Both routers share the one ShardSet, so the trees, buffer pools, and
// worker threads are identical; only the router-level tracing differs.
// Every query is first run through both routers plus an explicitly
// sampled request (trace context armed end to end) and the three answers
// are required bit-identical before any timing starts. Timing uses E18's
// paired interleaved chunks: the effect being priced (<2%) is far below
// host drift, so the overhead is the median of per-chunk paired ratios.
//
// Gate (full run only): sampled-1pct overhead must be <= 2%; the run
// exits nonzero otherwise. Writes BENCH_E22.json for
// tools/bench_compare.py; `--smoke` runs a scaled-down configuration for
// ctest and writes to /tmp without touching the manifest.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "exp_common.h"
#include "shard/shard_router.h"
#include "shard/shard_set.h"

namespace spatial {
namespace bench {
namespace {

constexpr uint32_t kShards = 4;
constexpr uint32_t kWorkersPerShard = 2;
constexpr uint32_t kTraceSamplePerMillion = 10'000;  // 1%

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Paired interleaved timing, exactly E18's scheme: chunks of 64 queries
// alternate between the engines with the order rotated every chunk, so
// host drift (which operates on tens-of-milliseconds timescales) is
// effectively constant within a chunk cycle and cancels in the ratio.
struct TimedEngine {
  std::function<void(const Point<2>&)> run;
  std::vector<double> round_seconds;
  std::vector<double> chunk_seconds;  // one entry per timed chunk

  double BestSeconds() const {
    return *std::min_element(round_seconds.begin(), round_seconds.end());
  }
  double Qps(size_t n_queries) const {
    return static_cast<double>(n_queries) / BestSeconds();
  }
};

void TimeInterleaved(const std::vector<Point2>& queries, size_t rounds,
                     std::vector<TimedEngine*> engines) {
  constexpr size_t kChunk = 64;
  const size_t n_engines = engines.size();
  for (TimedEngine* e : engines) {
    for (const Point2& q : queries) e->run(q);  // warm: pools + queues
  }
  for (size_t r = 0; r < rounds; ++r) {
    for (TimedEngine* e : engines) e->round_seconds.push_back(0.0);
    size_t cycle = r;
    for (size_t base = 0; base < queries.size(); base += kChunk, ++cycle) {
      const size_t end = std::min(base + kChunk, queries.size());
      for (size_t j = 0; j < n_engines; ++j) {
        TimedEngine* e = engines[(cycle + j) % n_engines];
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = base; i < end; ++i) e->run(queries[i]);
        const auto t1 = std::chrono::steady_clock::now();
        const double dt = Seconds(t0, t1);
        e->round_seconds[r] += dt;
        e->chunk_seconds.push_back(dt);
      }
    }
  }
}

// Median over all timed chunks of (engine / baseline) - 1, as a
// percentage. Chunk pairs run the same 64 queries within ~2 ms of each
// other; the median discards chunks where a scheduler event hit one side.
double PairedOverheadPct(const TimedEngine& base, const TimedEngine& engine) {
  std::vector<double> ratios;
  for (size_t r = 0; r < base.chunk_seconds.size(); ++r) {
    ratios.push_back(engine.chunk_seconds[r] / base.chunk_seconds[r]);
  }
  std::sort(ratios.begin(), ratios.end());
  const size_t n = ratios.size();
  const double median = n % 2 == 1
                            ? ratios[n / 2]
                            : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
  return (median - 1.0) * 100.0;
}

std::vector<Point2> RandomQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> queries(n);
  for (auto& q : queries) {
    q = {{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
  }
  return queries;
}

void CheckAnswers(const std::vector<Neighbor>& got,
                  const std::vector<Neighbor>& want, const char* engine,
                  uint32_t k) {
  if (got.size() != want.size() ||
      (!got.empty() && std::memcmp(got.data(), want.data(),
                                   got.size() * sizeof(Neighbor)) != 0)) {
    std::fprintf(stderr,
                 "E22: %s diverged from tracing-off at k=%u (sizes %zu vs "
                 "%zu)\n",
                 engine, k, got.size(), want.size());
    std::exit(1);
  }
}

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 2000;
  const size_t rounds = smoke ? 1 : 15;

  PrintHeader("E22", "distributed tracing overhead (sharded router)");
  std::printf("%zu uniform points, %u shards x %u workers, %zu queries x "
              "%zu rounds, 1%% sampling%s\n\n",
              n_points, kShards, kWorkersPerShard, n_queries, rounds,
              smoke ? " [smoke]" : "");

  Rng rng(kDataSeed);
  const auto data =
      MakePointEntries(GenerateUniform<2>(n_points, UnitBounds<2>(), &rng));
  ShardSet<2>::Options set_options;
  set_options.num_shards = kShards;
  set_options.page_size = kPageSize;
  set_options.service.num_workers = kWorkersPerShard;
  auto set = Unwrap(ShardSet<2>::Build(data, set_options), "shard set");

  ShardRouter<2> router_off(set.get());  // defaults: sampling off

  ShardRouter<2>::Options sampled_options;
  sampled_options.trace_sample_per_million = kTraceSamplePerMillion;
  ShardRouter<2> router_sampled(set.get(), sampled_options);

  const auto queries = RandomQueries(n_queries, kQuerySeed);

  std::vector<std::pair<std::string, double>> json;
  Table table({"k", "engine", "qps", "overhead_pct"});
  double gate_overhead = 0.0;

  for (uint32_t k : {1u, 10u}) {
    // Bit-identity gate before any timing: the sampled router — and a
    // request with the trace context explicitly armed, so the traced
    // path itself is exercised regardless of the sampling draw — must
    // answer byte-identically to the tracing-off router.
    for (const Point2& q : queries) {
      QueryResponse<2> want = router_off.Execute(QueryRequest<2>::Knn(q, k));
      UnwrapStatus(want.status, "tracing-off knn");
      QueryResponse<2> got =
          router_sampled.Execute(QueryRequest<2>::Knn(q, k));
      UnwrapStatus(got.status, "sampled knn");
      CheckAnswers(got.neighbors, want.neighbors, "sampled-1pct", k);
      QueryRequest<2> forced = QueryRequest<2>::Knn(q, k);
      forced.trace_id = 0xE22E22E22ULL;
      forced.trace_sampled = true;
      QueryResponse<2> traced = router_sampled.Execute(forced);
      UnwrapStatus(traced.status, "forced-trace knn");
      CheckAnswers(traced.neighbors, want.neighbors, "forced-trace", k);
    }

    TimedEngine off_engine;
    off_engine.run = [&](const Point2& q) {
      QueryResponse<2> r = router_off.Execute(QueryRequest<2>::Knn(q, k));
      UnwrapStatus(r.status, "tracing-off knn");
    };
    TimedEngine sampled_engine;
    sampled_engine.run = [&](const Point2& q) {
      QueryResponse<2> r = router_sampled.Execute(QueryRequest<2>::Knn(q, k));
      UnwrapStatus(r.status, "sampled knn");
    };

    TimeInterleaved(queries, rounds, {&off_engine, &sampled_engine});

    struct Row {
      const char* name;
      const TimedEngine* engine;
    };
    for (const Row& row : {Row{"tracing-off", &off_engine},
                           Row{"sampled-1pct", &sampled_engine}}) {
      const double qps = row.engine->Qps(queries.size());
      const double overhead = PairedOverheadPct(off_engine, *row.engine);
      table.AddRow({std::to_string(k), row.name, FmtDouble(qps, 0),
                    FmtDouble(overhead, 2)});
      const std::string suffix =
          std::string("_") + row.name + "_k" + std::to_string(k);
      json.emplace_back("qps" + suffix, qps);
      json.emplace_back("overhead_pct" + suffix, overhead);
    }
    gate_overhead = std::max(
        gate_overhead, PairedOverheadPct(off_engine, sampled_engine));
  }

  // The sampled router must actually have traced: every gate query with
  // the context armed plus ~1% of everything else.
  const uint64_t recorded = router_sampled.trace_log().total_recorded();
  if (recorded < 2 * n_queries) {  // >= the forced-trace gate runs
    std::fprintf(stderr, "E22: sampled router recorded %llu traces, "
                 "expected >= %llu\n",
                 (unsigned long long)recorded,
                 (unsigned long long)(2 * n_queries));
    std::exit(1);
  }
  json.emplace_back("traces_recorded", static_cast<double>(recorded));

  PrintTableAndCsv(table);
  std::printf("traces recorded by sampled router: %llu\n",
              (unsigned long long)recorded);

  if (!smoke && gate_overhead > 2.0) {
    std::fprintf(stderr,
                 "E22 gate FAILED: 1%% sampling costs %.2f%% qps (budget "
                 "2%%)\n",
                 gate_overhead);
    std::exit(1);
  }

  const char* json_path =
      smoke ? "/tmp/BENCH_E22_smoke.json" : "BENCH_E22.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
