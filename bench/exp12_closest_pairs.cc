// E13 (extension): k-closest-pairs distance join and group (aggregate)
// nearest neighbor — the two classic descendants of the SIGMOD'95
// branch-and-bound framework — against exhaustive evaluation.

#include <chrono>

#include "core/closest_pairs.h"
#include "core/group_knn.h"
#include "exp_common.h"
#include "geom/metrics.h"

namespace spatial {
namespace bench {
namespace {

void RunClosestPairs() {
  Table table({"N (each side)", "k", "pairs-pages", "heap-pushes", "ms",
               "brute-ms"});
  for (size_t n : {1000u, 4000u, 16000u}) {
    // Disjoint halves of the domain with a thin gap: the regime where the
    // best-first pair expansion shines.
    auto left = MakeDataset(Family::kUniform, n, kDataSeed);
    auto right = MakeDataset(Family::kUniform, n, kDataSeed ^ 0x77);
    for (auto& e : right) {
      e.mbr.lo[0] += 1.02;
      e.mbr.hi[0] += 1.02;
    }
    auto outer = Unwrap(
        BuildTree2D(left, BuildMethod::kBulkStr, kPageSize, kBufferPages),
        "outer");
    auto inner = Unwrap(
        BuildTree2D(right, BuildMethod::kBulkStr, kPageSize, kBufferPages),
        "inner");
    for (uint32_t k : {1u, 10u}) {
      using Clock = std::chrono::steady_clock;
      QueryStats stats;
      const auto t0 = Clock::now();
      auto pairs = Unwrap(ClosestPairs<2>(*outer.tree, *inner.tree, k,
                                          &stats),
                          "pairs");
      const auto t1 = Clock::now();
      // Brute force for comparison (quadratic).
      double best = 1e300;
      const auto b0 = Clock::now();
      for (const auto& a : left) {
        for (const auto& b : right) {
          best = std::min(best, MinDistSq(a.mbr, b.mbr));
        }
      }
      const auto b1 = Clock::now();
      SPATIAL_CHECK(pairs[0].dist_sq == best);
      table.AddRow(
          {FmtInt(n), FmtInt(k), FmtInt(stats.nodes_visited),
           FmtInt(stats.heap_pushes),
           FmtDouble(
               std::chrono::duration<double, std::milli>(t1 - t0).count(),
               2),
           FmtDouble(
               std::chrono::duration<double, std::milli>(b1 - b0).count(),
               1)});
    }
  }
  PrintTableAndCsv(table);
}

void RunGroupKnn() {
  Table table({"group size", "aggregate", "pages/query", "us/query"});
  auto data = MakeDataset(Family::kUniform, 64000, kDataSeed);
  auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                  kPageSize, kBufferPages),
                      "build");
  Rng rng(kQuerySeed);
  for (size_t group_size : {1u, 2u, 4u, 8u, 16u}) {
    for (AggregateFn aggregate : {AggregateFn::kSum, AggregateFn::kMax}) {
      QueryStats stats;
      double total_us = 0.0;
      const int kQueries = 100;
      for (int i = 0; i < kQueries; ++i) {
        std::vector<Point2> group(group_size);
        for (auto& q : group) {
          q = {{rng.Uniform(0.3, 0.7), rng.Uniform(0.3, 0.7)}};
        }
        const auto t0 = std::chrono::steady_clock::now();
        Unwrap(GroupKnnSearch<2>(*built.tree, group, 4, aggregate, &stats),
               "group knn");
        const auto t1 = std::chrono::steady_clock::now();
        total_us +=
            std::chrono::duration<double, std::micro>(t1 - t0).count();
      }
      table.AddRow(
          {FmtInt(group_size), AggregateFnName(aggregate),
           FmtDouble(static_cast<double>(stats.nodes_visited) / kQueries, 2),
           FmtDouble(total_us / kQueries, 1)});
    }
  }
  PrintTableAndCsv(table);
}

void Run() {
  PrintHeader("E13",
              "extensions: k-closest pairs and group (aggregate) k-NN");
  RunClosestPairs();
  RunGroupKnn();
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
