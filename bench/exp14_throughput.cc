// E14 — Concurrent query throughput scaling (query service layer).
//
// The SIGMOD'95 evaluation measures page accesses per query for one
// client; this experiment asks the production question on top of it: how
// does aggregate throughput scale when a fixed pool of workers serves the
// same immutable file-backed index concurrently?
//
// Three sweeps over one 100k-point file-backed database:
//   (a) I/O-bound scaling: every physical read carries a simulated
//       rotational-disk latency (the paper's cost regime, where page
//       accesses dominate). Sleeping reads overlap across workers, so
//       throughput should scale near-linearly in the worker count,
//       independent of host core count.
//   (b) CPU-bound scaling: zero simulated latency — the index lives in
//       the OS page cache, so scaling is bounded by available cores
//       (reported alongside).
//   (c) Buffer thrash: fixed workers, shrinking per-worker pools. Once a
//       pool no longer covers the hot upper levels, physical reads per
//       query — and with (a)'s latency, total cost — climb sharply.
//
// Every row reports the aggregated per-worker stats: the paper's logical
// page accesses per query, physical reads per query, hit rate, and the
// latency distribution (p50/p95/p99) from the per-worker histograms.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "db/spatial_db.h"
#include "exp_common.h"
#include "service/query_service.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 100000;
constexpr uint32_t kK = 10;
constexpr uint32_t kClientThreads = 2;
constexpr uint32_t kSimulatedLatencyUs = 200;

std::string DbPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/spatial_e14.sdb";
}

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double pages_per_query = 0.0;
  double phys_reads_per_query = 0.0;
  double hit_rate = 0.0;
};

// Fires `num_queries` kNN queries at the service from kClientThreads
// submitters and returns the aggregated service-side statistics.
RunResult RunLoad(QueryService<2>& service,
                  const std::vector<Point2>& queries, size_t num_queries) {
  service.ResetStats();
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<QueryResponse<2>>> futures;
      for (size_t i = t; i < num_queries; i += kClientThreads) {
        futures.push_back(service.Submit(
            QueryRequest<2>::Knn(queries[i % queries.size()], kK)));
      }
      for (auto& f : futures) {
        const QueryResponse<2> response = f.get();
        UnwrapStatus(response.status, "service query");
      }
    });
  }
  for (auto& c : clients) c.join();

  const ServiceStats stats = service.Stats();
  RunResult r;
  r.qps = stats.QueriesPerSecond();
  r.p50_ms = static_cast<double>(stats.latency.PercentileNs(0.50)) / 1e6;
  r.p95_ms = static_cast<double>(stats.latency.PercentileNs(0.95)) / 1e6;
  r.p99_ms = static_cast<double>(stats.latency.PercentileNs(0.99)) / 1e6;
  r.pages_per_query = stats.PageAccessesPerQuery();
  r.phys_reads_per_query = stats.PhysicalReadsPerQuery();
  r.hit_rate = stats.buffer.HitRate();
  return r;
}

void AddRow(Table* table, const std::string& label, const RunResult& r,
            double baseline_qps) {
  table->AddRow({label, FmtDouble(r.qps, 0),
                 FmtDouble(baseline_qps > 0 ? r.qps / baseline_qps : 1.0, 2),
                 FmtDouble(r.p50_ms, 3), FmtDouble(r.p95_ms, 3),
                 FmtDouble(r.p99_ms, 3), FmtDouble(r.pages_per_query, 2),
                 FmtDouble(r.phys_reads_per_query, 2),
                 FmtDouble(r.hit_rate, 3)});
}

void Main() {
  PrintHeader("E14", "concurrent query throughput scaling (service layer)");
  std::printf("host reports %u hardware threads; %u client submitters\n\n",
              std::thread::hardware_concurrency(), kClientThreads);

  const std::string path = DbPath();
  {
    SpatialDb<2>::Options options;
    options.page_size = kPageSize;
    auto db = Unwrap(SpatialDb<2>::CreateOnFile(path, options), "create db");
    UnwrapStatus(db.BulkLoadData(MakeDataset(Family::kUniform, kN, kDataSeed),
                                 BulkLoadMethod::kStr),
                 "bulk load");
    UnwrapStatus(db.Flush(), "flush");
    std::printf("built %s: %llu points, %llu pages, height %d\n\n",
                path.c_str(),
                static_cast<unsigned long long>(db.tree().size()),
                static_cast<unsigned long long>(db.disk().live_pages()),
                db.tree().height());
  }
  Rng qrng(kQuerySeed);
  std::vector<Point2> queries =
      GenerateUniform<2>(512, UnitBounds<2>(), &qrng);

  const std::vector<std::string> columns = {
      "config",    "qps",        "speedup", "p50_ms",  "p95_ms",
      "p99_ms",    "pages/q",    "phys/q",  "hitrate"};

  {
    std::printf("--- (a) I/O-bound scaling: %u us simulated read latency, "
                "16 frames/worker ---\n",
                kSimulatedLatencyUs);
    Table table(columns);
    double baseline = 0.0;
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      QueryService<2>::Options options;
      options.num_workers = workers;
      options.frames_per_worker = 16;
      options.simulated_read_latency_us = kSimulatedLatencyUs;
      auto service =
          Unwrap(QueryService<2>::Open(path, kPageSize, options), "open");
      const RunResult r = RunLoad(*service, queries, 300 * workers);
      if (workers == 1) baseline = r.qps;
      AddRow(&table, std::to_string(workers) + " workers", r, baseline);
    }
    PrintTableAndCsv(table);
  }

  {
    std::printf("--- (b) CPU-bound scaling: page-cache reads, "
                "1024 frames/worker ---\n");
    Table table(columns);
    double baseline = 0.0;
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      QueryService<2>::Options options;
      options.num_workers = workers;
      options.frames_per_worker = 1024;
      auto service =
          Unwrap(QueryService<2>::Open(path, kPageSize, options), "open");
      const RunResult r = RunLoad(*service, queries, 4000 * workers);
      if (workers == 1) baseline = r.qps;
      AddRow(&table, std::to_string(workers) + " workers", r, baseline);
    }
    PrintTableAndCsv(table);
  }

  {
    std::printf("--- (c) buffer thrash: 4 workers, %u us latency, "
                "frames/worker swept ---\n",
                kSimulatedLatencyUs);
    Table table(columns);
    double baseline = 0.0;
    for (uint32_t frames : {4u, 16u, 64u, 256u, 2048u}) {
      QueryService<2>::Options options;
      options.num_workers = 4;
      options.frames_per_worker = frames;
      options.simulated_read_latency_us = kSimulatedLatencyUs;
      auto service =
          Unwrap(QueryService<2>::Open(path, kPageSize, options), "open");
      const RunResult r = RunLoad(*service, queries, 1200);
      if (frames == 4) baseline = r.qps;
      AddRow(&table, std::to_string(frames) + " frames", r, baseline);
    }
    PrintTableAndCsv(table);
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Main();
  return 0;
}
