// E14 (ablation): nearest-neighbor cost vs dimensionality. The paper's
// algorithm is dimension-generic; this sweep shows the onset of the curse
// of dimensionality — MBR pruning weakens as D grows because MINDIST
// concentrates and node MBRs overlap more.

#include "exp_common.h"
#include "storage/disk_manager.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 32000;
constexpr size_t kQueries = 200;

template <int D>
void RunForDimension(Table* table) {
  Rng rng(kDataSeed);
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, kBufferPages);
  auto created = RTree<D>::Create(&pool, RTreeOptions{});
  RTree<D> tree = Unwrap(std::move(created), "create");
  std::vector<Entry<D>> data;
  data.reserve(kN);
  for (uint64_t i = 0; i < kN; ++i) {
    Point<D> p;
    for (int dim = 0; dim < D; ++dim) p[dim] = rng.Uniform(0, 1);
    data.push_back(Entry<D>{Rect<D>::FromPoint(p), i});
    UnwrapStatus(tree.Insert(data.back().mbr, i), "insert");
  }
  Rng query_rng(kQuerySeed);
  QueryStats total;
  for (size_t i = 0; i < kQueries; ++i) {
    Point<D> q;
    for (int dim = 0; dim < D; ++dim) q[dim] = query_rng.Uniform(0, 1);
    KnnOptions knn;
    knn.k = 4;
    QueryStats stats;
    Unwrap(KnnSearch<D>(tree, q, knn, &stats), "query");
    total.Add(stats);
  }
  const double nq = static_cast<double>(kQueries);
  table->AddRow(
      {FmtInt(D), FmtInt(tree.max_entries()), FmtInt(tree.height()),
       FmtDouble(static_cast<double>(total.nodes_visited) / nq, 2),
       FmtDouble(static_cast<double>(total.objects_examined) / nq, 1),
       FmtDouble(static_cast<double>(total.pruned_s3) / nq, 2)});
}

void Run() {
  PrintHeader("E14", "dimensionality sweep (N = 32000, k = 4, uniform)");
  Table table({"D", "fan-out", "height", "pages/query", "objects/query",
               "pruned/query"});
  RunForDimension<2>(&table);
  RunForDimension<3>(&table);
  RunForDimension<4>(&table);
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
