// E4 (paper Fig. "kNN queries"): pages accessed per query as k grows,
// on uniform and TIGER-like data at fixed N. Expected shape: sub-linear
// growth in k (the paper sweeps k up to ~25).

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E4", "page accesses vs k (N = 64000)");
  Table table({"k", "family", "pages/query", "leaf", "internal",
               "objects", "us/query"});
  for (Family family : {Family::kUniform, Family::kTigerLike}) {
    auto data = MakeDataset(family, kN, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    auto queries = MakeQueries(data);
    for (uint32_t k : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 25u}) {
      KnnOptions knn;
      knn.k = k;
      auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
      table.AddRow({FmtInt(k), FamilyName(family),
                    FmtDouble(batch.pages.mean(), 2),
                    FmtDouble(batch.leaf_pages.mean(), 2),
                    FmtDouble(batch.internal_pages.mean(), 2),
                    FmtDouble(batch.objects.mean(), 1),
                    FmtDouble(batch.wall_micros.mean(), 1)});
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
