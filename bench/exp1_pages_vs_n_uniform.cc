// E2 (paper Fig. "NN on synthetic data"): R-tree pages accessed per 1-NN
// query as a function of dataset cardinality, uniformly distributed points.
// Expected shape: page accesses grow roughly logarithmically with N.

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

void Run() {
  PrintHeader("E2", "page accesses vs dataset size (uniform points, k = 1)");
  Table table({"N", "height", "pages/query", "p95", "leaf", "internal",
               "dist-comps", "us/query"});
  for (size_t n : {2000u, 8000u, 32000u, 128000u, 256000u, 1024000u}) {
    auto data = MakeDataset(Family::kUniform, n, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    auto queries = MakeQueries(data);
    KnnOptions knn;  // k = 1, MINDIST ordering, all strategies (defaults)
    auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
    Percentiles pages;
    {
      // Re-run cheaply for the p95 (counters only).
      for (const Point2& q : queries) {
        QueryStats stats;
        Unwrap(KnnSearch<2>(*built.tree, q, knn, &stats), "query");
        pages.Add(static_cast<double>(stats.nodes_visited));
      }
    }
    table.AddRow({FmtInt(n), FmtInt(built.tree->height()),
                  FmtDouble(batch.pages.mean(), 2),
                  FmtDouble(pages.Quantile(0.95), 1),
                  FmtDouble(batch.leaf_pages.mean(), 2),
                  FmtDouble(batch.internal_pages.mean(), 2),
                  FmtDouble(batch.dist_comps.mean(), 1),
                  FmtDouble(batch.wall_micros.mean(), 1)});
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
