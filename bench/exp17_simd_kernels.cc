// E17 — SIMD distance kernel throughput (SoA staging + runtime dispatch).
//
// Measures what the SoA SIMD kernels (geom/metrics_simd.h) buy over the
// scalar-batch engine they replaced, on a memory-resident STR-packed tree
// (cached-memory backend: the pool holds the whole tree, so the axis is
// pure CPU). Engines, all answering the same uniform kNN workload:
//
//   baseline   — the scalar-batch depth-first search exactly as it shipped
//                before the SoA kernels, compiled into this binary
//                verbatim: AoS staging + the auto-vectorized batch kernels
//                of geom/metrics.h.
//   scalar/sse2/avx2
//              — the production traversal with the kernel tier pinned
//                (tiers the build or CPU lacks are skipped). `scalar` is
//                the SoA scalar tier, i.e. the staging cost without the
//                vector payoff.
//   dispatched — KnnSearchInto as shipped: whatever tier the runtime
//                dispatch resolves on this host.
//
// Every engine's answers are checked bit-identical to baseline before
// timing. Reported per (D, k): queries/sec and speedup over baseline.
// Writes BENCH_E17.json for tools/bench_compare.py; `--smoke` runs a
// scaled-down configuration for ctest.
//
// Build note: this translation unit is compiled with -ffp-contract=off and
// without -march=native. The embedded baseline must execute the exact
// expression trees of the PR it snapshots; letting the compiler contract
// mul+add into FMA would change its rounding and break the bit-identity
// check against the intrinsic kernels (which deliberately never use FMA).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "common/cpu_features.h"
#include "core/knn.h"
#include "exp_common.h"
#include "geom/metrics.h"
#include "geom/metrics_simd.h"
#include "rtree/bulk_load.h"
#include "rtree/node.h"
#include "storage/disk_manager.h"

namespace spatial {
namespace bench {
namespace {

constexpr double kMinMaxSlack = 1.0 + 1e-9;

inline bool MinDistLess(const AblSlot& a, const AblSlot& b) {
  if (a.min_dist_sq != b.min_dist_sq) return a.min_dist_sq < b.min_dist_sq;
  return a.child < b.child;
}

struct AblFrame {
  std::vector<AblSlot>* arena;
  size_t base;
  ~AblFrame() { arena->resize(base); }
};

// ---------------------------------------------------------------------------
// The baseline engine: the depth-first search as it shipped with the
// zero-allocation traversal core, before SoA staging — AoS entry staging
// and the scalar batch kernels of geom/metrics.h.
// ---------------------------------------------------------------------------
namespace baseline {

template <int D>
class DepthFirstKnn {
 public:
  DepthFirstKnn(const RTree<D>& tree, const Point<D>& query,
                const KnnOptions& options, QueryScratch<D>* scratch)
      : tree_(tree),
        query_(query),
        options_(options),
        scratch_(scratch),
        s1_active_(options.use_s1 && options.k == 1),
        s2_active_(options.use_s2 && options.k == 1),
        lazy_heap_(options.ordering == AblOrdering::kMinDist &&
                   !options.force_full_sort) {}

  Status Run(std::vector<Neighbor>* out, bool append) {
    scratch_->buffer.Reset(options_.k);
    scratch_->abl.clear();
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    scratch_->buffer.ExtractSorted(out, append);
    return Status::OK();
  }

 private:
  double PruneBoundSq() const {
    double bound = std::numeric_limits<double>::infinity();
    if (options_.use_s3) {
      bound = std::min(bound, scratch_->buffer.WorstDistSq());
    }
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    return bound;
  }

  Status VisitLeaf(const Entry<D>* entries, uint32_t n) {
    double* dist = scratch_->min_dist.EnsureCapacity(n);
    ObjectDistSqBatch<D>(query_, entries, n, dist);
    NeighborBuffer& buffer = scratch_->buffer;
    double bound_sq = PruneBoundSq();
    for (uint32_t i = 0; i < n; ++i) {
      if (dist[i] > bound_sq) continue;
      if (buffer.Offer(entries[i].id, dist[i])) bound_sq = PruneBoundSq();
    }
    return Status::OK();
  }

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("knn: node page has bad magic");
    }
    const uint32_t n = view.count();
    if (n == 0) return Status::OK();
    if (view.is_leaf()) return VisitLeaf(view.entries(), n);

    Entry<D>* stage = scratch_->stage.EnsureCapacity(n);
    view.CopyEntries(stage);
    handle.Release();

    double* dmin = scratch_->min_dist.EnsureCapacity(n);
    MinDistSqBatch<D>(query_, stage, n, dmin);
    const bool need_minmax = s1_active_ || s2_active_ ||
                             options_.ordering == AblOrdering::kMinMaxDist;
    double* dminmax = nullptr;
    if (need_minmax) {
      dminmax = scratch_->min_max_dist.EnsureCapacity(n);
      MinMaxDistSqBatch<D>(query_, stage, n, dminmax);
    }

    std::vector<AblSlot>& abl = scratch_->abl;
    AblFrame frame{&abl, abl.size()};
    const size_t base = frame.base;
    for (uint32_t i = 0; i < n; ++i) {
      abl.push_back(AblSlot{static_cast<PageId>(stage[i].id), dmin[i],
                            need_minmax ? dminmax[i] : 0.0});
    }

    if (s1_active_ || s2_active_) {
      double min_minmax = std::numeric_limits<double>::infinity();
      for (size_t i = base; i < abl.size(); ++i) {
        min_minmax = std::min(min_minmax, abl[i].min_max_dist_sq);
      }
      if (s1_active_) {
        const double s1_bound = min_minmax * kMinMaxSlack;
        size_t kept = base;
        for (size_t i = base; i < abl.size(); ++i) {
          if (abl[i].min_dist_sq <= s1_bound) abl[kept++] = abl[i];
        }
        abl.resize(kept);
      }
      if (s2_active_ && min_minmax * kMinMaxSlack < estimate_sq_) {
        estimate_sq_ = min_minmax * kMinMaxSlack;
      }
    }
    const size_t m = abl.size() - base;

    if (lazy_heap_) {
      const auto greater = [](const AblSlot& a, const AblSlot& b) {
        return MinDistLess(b, a);
      };
      std::make_heap(abl.begin() + base, abl.end(), greater);
      size_t live = m;
      while (live > 0) {
        std::pop_heap(abl.begin() + base, abl.begin() + base + live, greater);
        const AblSlot slot = abl[base + --live];
        if (slot.min_dist_sq > PruneBoundSq()) break;
        SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
      }
      return Status::OK();
    }

    switch (options_.ordering) {
      case AblOrdering::kMinDist:
        std::sort(abl.begin() + base, abl.end(),
                  [](const AblSlot& a, const AblSlot& b) {
                    return MinDistLess(a, b);
                  });
        break;
      case AblOrdering::kMinMaxDist:
        std::sort(abl.begin() + base, abl.end(),
                  [](const AblSlot& a, const AblSlot& b) {
                    if (a.min_max_dist_sq != b.min_max_dist_sq) {
                      return a.min_max_dist_sq < b.min_max_dist_sq;
                    }
                    return a.child < b.child;
                  });
        break;
      case AblOrdering::kNone:
        break;
    }

    for (size_t i = 0; i < m; ++i) {
      const AblSlot slot = abl[base + i];
      if (slot.min_dist_sq > PruneBoundSq()) continue;
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  const KnnOptions options_;
  QueryScratch<D>* scratch_;
  const bool s1_active_;
  const bool s2_active_;
  const bool lazy_heap_;
  double estimate_sq_ = std::numeric_limits<double>::infinity();
};

template <int D>
Status Search(const RTree<D>& tree, const Point<D>& query,
              const KnnOptions& options, QueryScratch<D>* scratch,
              std::vector<Neighbor>* out) {
  out->clear();
  if (tree.empty()) return Status::OK();
  DepthFirstKnn<D> search(tree, query, options, scratch);
  return search.Run(out, /*append=*/false);
}

}  // namespace baseline

// ---------------------------------------------------------------------------
// The pinned engine: the production SoA traversal with the kernel set
// passed explicitly, so one process can time every built tier side by side
// (the real dispatch pins its tier once per process).
// ---------------------------------------------------------------------------
namespace pinned {

template <int D>
class DepthFirstKnn {
 public:
  DepthFirstKnn(const RTree<D>& tree, const Point<D>& query,
                const KnnOptions& options, const SoaKernelSet& set,
                QueryScratch<D>* scratch)
      : tree_(tree),
        query_(query),
        options_(options),
        set_(set),
        scratch_(scratch),
        s1_active_(options.use_s1 && options.k == 1),
        s2_active_(options.use_s2 && options.k == 1),
        lazy_heap_(options.ordering == AblOrdering::kMinDist &&
                   !options.force_full_sort) {}

  Status Run(std::vector<Neighbor>* out, bool append) {
    scratch_->buffer.Reset(options_.k);
    scratch_->abl.clear();
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    scratch_->buffer.ExtractSorted(out, append);
    return Status::OK();
  }

 private:
  double PruneBoundSq() const {
    double bound = std::numeric_limits<double>::infinity();
    if (options_.use_s3) {
      bound = std::min(bound, scratch_->buffer.WorstDistSq());
    }
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    return bound;
  }

  // StageSoa through the pinned tier's transpose kernel (QueryScratch's
  // StageSoa would route through the process-wide dispatch).
  SoaBlock<D> Stage(const Entry<D>* entries, uint32_t n) {
    const size_t stride = SoaStride(n);
    double* planes = scratch_->soa.EnsureCapacity(SoaDoubles(D, n));
    set_.transpose(entries, sizeof(Entry<D>), n, planes, stride);
    return SoaBlock<D>{planes, stride, n};
  }

  Status VisitLeaf(const Entry<D>* entries, uint32_t n) {
    const SoaBlock<D> soa = Stage(entries, n);
    double* dist =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    set_.object_dist(query_.coord.data(), soa.planes, soa.stride, soa.n, dist);
    NeighborBuffer& buffer = scratch_->buffer;
    double bound_sq = PruneBoundSq();
    uint32_t* idx =
        scratch_->filter_idx.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    const uint32_t kept = set_.filter_not_above(dist, n, bound_sq, idx);
    for (uint32_t j = 0; j < kept; ++j) {
      const uint32_t i = idx[j];
      if (dist[i] > bound_sq) continue;
      if (buffer.Offer(entries[i].id, dist[i])) bound_sq = PruneBoundSq();
    }
    return Status::OK();
  }

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("knn: node page has bad magic");
    }
    const uint32_t n = view.count();
    if (n == 0) return Status::OK();
    if (view.is_leaf()) return VisitLeaf(view.entries(), n);

    const Entry<D>* page_entries = view.entries();
    const SoaBlock<D> soa = Stage(page_entries, n);
    uint64_t* child_ids = scratch_->child_ids.EnsureCapacity(n);
    for (uint32_t i = 0; i < n; ++i) child_ids[i] = page_entries[i].id;
    handle.Release();

    double* dmin =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    const bool need_minmax = s1_active_ || s2_active_ ||
                             options_.ordering == AblOrdering::kMinMaxDist;
    double* dminmax = nullptr;
    if (need_minmax) {
      dminmax =
          scratch_->min_max_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
      set_.min_and_min_max(query_.coord.data(), soa.planes, soa.stride, soa.n,
                           dmin, dminmax);
    } else {
      set_.min_dist(query_.coord.data(), soa.planes, soa.stride, soa.n, dmin);
    }

    std::vector<AblSlot>& abl = scratch_->abl;
    AblFrame frame{&abl, abl.size()};
    const size_t base = frame.base;
    uint32_t* idx =
        scratch_->filter_idx.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    bool pushed = false;
    if (s1_active_ || s2_active_) {
      double min_minmax = std::numeric_limits<double>::infinity();
      for (uint32_t i = 0; i < n; ++i) {
        min_minmax = std::min(min_minmax, dminmax[i]);
      }
      if (s1_active_) {
        const double s1_bound = min_minmax * kMinMaxSlack;
        const uint32_t kept = set_.filter_not_above(dmin, n, s1_bound, idx);
        for (uint32_t j = 0; j < kept; ++j) {
          const uint32_t i = idx[j];
          abl.push_back(AblSlot{static_cast<PageId>(child_ids[i]), dmin[i],
                                dminmax[i]});
        }
        pushed = true;
      }
      if (s2_active_ && min_minmax * kMinMaxSlack < estimate_sq_) {
        estimate_sq_ = min_minmax * kMinMaxSlack;
      }
    }
    if (!pushed) {
      const double bound_sq = PruneBoundSq();
      const uint32_t kept = set_.filter_not_above(dmin, n, bound_sq, idx);
      for (uint32_t j = 0; j < kept; ++j) {
        const uint32_t i = idx[j];
        abl.push_back(AblSlot{static_cast<PageId>(child_ids[i]), dmin[i],
                              need_minmax ? dminmax[i] : 0.0});
      }
    }
    const size_t m = abl.size() - base;

    if (lazy_heap_) {
      size_t live = m;
      while (live > 0) {
        AblSlot* slots = abl.data() + base;
        size_t best = 0;
        for (size_t i = 1; i < live; ++i) {
          if (MinDistLess(slots[i], slots[best])) best = i;
        }
        const AblSlot slot = slots[best];
        if (slot.min_dist_sq > PruneBoundSq()) break;
        slots[best] = slots[--live];
        SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
      }
      return Status::OK();
    }

    for (size_t i = 0; i < m; ++i) {
      const AblSlot slot = abl[base + i];
      if (slot.min_dist_sq > PruneBoundSq()) continue;
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  const KnnOptions options_;
  const SoaKernelSet& set_;
  QueryScratch<D>* scratch_;
  const bool s1_active_;
  const bool s2_active_;
  const bool lazy_heap_;
  double estimate_sq_ = std::numeric_limits<double>::infinity();
};

template <int D>
Status Search(const RTree<D>& tree, const Point<D>& query,
              const KnnOptions& options, const SoaKernelSet& set,
              QueryScratch<D>* scratch, std::vector<Neighbor>* out) {
  out->clear();
  if (tree.empty()) return Status::OK();
  DepthFirstKnn<D> search(tree, query, options, set, scratch);
  return search.Run(out, /*append=*/false);
}

}  // namespace pinned

// ---------------------------------------------------------------------------

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Best-of-rounds throughput: every engine runs the same deterministic work
// each round, so the fastest pass is the least scheduler-disturbed one.
template <int D, typename Fn>
double TimeQps(const std::vector<Point<D>>& queries, size_t rounds, Fn&& fn) {
  for (const Point<D>& q : queries) fn(q);  // warm: arenas + buffer pool
  double best_seconds = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const Point<D>& q : queries) fn(q);
    const auto t1 = std::chrono::steady_clock::now();
    best_seconds = std::min(best_seconds, Seconds(t0, t1));
  }
  return static_cast<double>(queries.size()) / best_seconds;
}

template <int D>
struct Workload {
  Workload(size_t n_points, size_t n_queries, uint32_t frames)
      : disk(kPageSize), pool(&disk, frames) {
    Rng rng(kDataSeed);
    data = MakePointEntries(GenerateUniform<D>(n_points, UnitBounds<D>(), &rng));
    auto loaded = BulkLoad<D>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    UnwrapStatus(loaded.status(), "bulk load");
    tree.emplace(std::move(loaded).value());
    Rng qrng(kQuerySeed);
    queries = GenerateQueries<D>(data, n_queries, QueryDistribution::kUniform,
                                 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<D>> data;
  std::optional<RTree<D>> tree;
  std::vector<Point<D>> queries;
};

// Asserts `got` equals `want` bit for bit (ids and distances).
void CheckAnswers(const std::vector<Neighbor>& got,
                  const std::vector<Neighbor>& want, const char* engine,
                  int dims, uint32_t k) {
  if (got.size() != want.size() ||
      (!got.empty() && std::memcmp(got.data(), want.data(),
                                   got.size() * sizeof(Neighbor)) != 0)) {
    std::fprintf(stderr,
                 "E17: %s diverged from baseline at D=%d k=%u "
                 "(sizes %zu vs %zu)\n",
                 engine, dims, k, got.size(), want.size());
    for (size_t i = 0; i < got.size() && i < want.size(); ++i) {
      if (got[i].id != want[i].id || got[i].dist_sq != want[i].dist_sq) {
        std::fprintf(stderr, "  rank %zu: id %llu vs %llu, dist %.17g vs %.17g\n",
                     i, (unsigned long long)got[i].id,
                     (unsigned long long)want[i].id, got[i].dist_sq,
                     want[i].dist_sq);
      }
    }
    std::exit(1);
  }
}

constexpr KernelIsa kTiers[] = {KernelIsa::kScalar, KernelIsa::kSse2,
                                KernelIsa::kAvx2};

template <int D>
void RunDimension(size_t n_points, size_t n_queries, size_t rounds,
                  uint32_t frames, Table* table,
                  std::vector<std::pair<std::string, double>>* json) {
  Workload<D> w(n_points, n_queries, frames);
  const RTree<D>& tree = *w.tree;

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    QueryScratch<D> scratch;
    std::vector<Neighbor> want, got;

    // Answers first: every engine must reproduce baseline bit for bit.
    for (const Point<D>& q : w.queries) {
      UnwrapStatus(baseline::Search<D>(tree, q, options, &scratch, &want),
                   "baseline knn");
      UnwrapStatus(KnnSearchInto<D>(tree, q, options, &scratch, &got, nullptr),
                   "dispatched knn");
      CheckAnswers(got, want, "dispatched", D, k);
      for (KernelIsa tier : kTiers) {
        const SoaKernelSet* set = SoaKernelSetFor(D, tier);
        if (set == nullptr || !CpuSupportsKernelIsa(tier)) continue;
        UnwrapStatus(
            pinned::Search<D>(tree, q, options, *set, &scratch, &got),
            "pinned knn");
        CheckAnswers(got, want, KernelIsaName(tier), D, k);
      }
    }

    const double base_qps =
        TimeQps<D>(w.queries, rounds, [&](const Point<D>& q) {
          UnwrapStatus(baseline::Search<D>(tree, q, options, &scratch, &got),
                       "baseline knn");
        });

    struct Row {
      std::string name;
      double qps;
    };
    std::vector<Row> rows;
    rows.push_back({"baseline", base_qps});
    for (KernelIsa tier : kTiers) {
      const SoaKernelSet* set = SoaKernelSetFor(D, tier);
      if (set == nullptr || !CpuSupportsKernelIsa(tier)) continue;
      rows.push_back(
          {KernelIsaName(tier),
           TimeQps<D>(w.queries, rounds, [&](const Point<D>& q) {
             UnwrapStatus(
                 pinned::Search<D>(tree, q, options, *set, &scratch, &got),
                 "pinned knn");
           })});
    }
    rows.push_back(
        {"dispatched", TimeQps<D>(w.queries, rounds, [&](const Point<D>& q) {
           UnwrapStatus(
               KnnSearchInto<D>(tree, q, options, &scratch, &got, nullptr),
               "dispatched knn");
         })});

    for (const Row& row : rows) {
      const double speedup = row.qps / base_qps;
      table->AddRow({FmtInt(D), std::to_string(k), row.name,
                     FmtDouble(row.qps, 0), FmtDouble(speedup, 2)});
      const std::string suffix =
          "_" + row.name + "_d" + std::to_string(D) + "_k" + std::to_string(k);
      json->emplace_back("qps" + suffix, row.qps);
      json->emplace_back("speedup" + suffix, speedup);
    }
  }
}

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 2000;
  const size_t rounds = smoke ? 1 : 5;
  const uint32_t frames = 8192;  // covers the whole tree at every D

  PrintHeader("E17", "SIMD distance kernels (SoA staging + runtime dispatch)");
  std::printf("%zu uniform points, STR-packed, %zu queries x %zu rounds, "
              "dispatch resolves to %s%s\n\n",
              n_points, n_queries, rounds, KernelIsaName(ActiveKernelIsa()),
              smoke ? " [smoke]" : "");

  std::vector<std::pair<std::string, double>> json;
  Table table({"D", "k", "engine", "qps", "speedup"});
  RunDimension<2>(n_points, n_queries, rounds, frames, &table, &json);
  RunDimension<3>(n_points, n_queries, rounds, frames, &table, &json);
  RunDimension<4>(n_points, n_queries, rounds, frames, &table, &json);
  PrintTableAndCsv(table);

  const char* json_path =
      smoke ? "/tmp/BENCH_E17_smoke.json" : "BENCH_E17.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
