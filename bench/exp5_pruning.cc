// E6 (paper §4): ablation of the three pruning strategies for k = 1.
// Expected: S3 (upward pruning by the current NN distance) provides nearly
// all the pruning; S1/S2 (MINMAXDIST-based) add little on top but are cheap.
// Every configuration returns the exact answer (verified in the tests).

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

struct Config {
  const char* name;
  bool s1, s2, s3;
};

void Run() {
  PrintHeader("E6", "pruning strategy ablation (k = 1, N = 64000)");
  const Config configs[] = {
      {"none", false, false, false},
      {"s1", true, false, false},
      {"s2", false, true, false},
      {"s1+s2", true, true, false},
      {"s3", false, false, true},
      {"s3+s1", true, false, true},
      {"s3+s2", false, true, true},
      {"s3+s1+s2 (paper)", true, true, true},
  };
  Table table({"strategies", "family", "pages/query", "pruned-s1",
               "s2-updates", "pruned-s3", "us/query"});
  for (Family family : {Family::kUniform, Family::kTigerLike}) {
    auto data = MakeDataset(family, kN, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    // The "none" configuration touches every page; use fewer queries to
    // keep the runtime in check, the mean is stable anyway.
    auto queries = MakeQueries(data, /*n=*/50);
    for (const Config& config : configs) {
      KnnOptions knn;
      knn.use_s1 = config.s1;
      knn.use_s2 = config.s2;
      knn.use_s3 = config.s3;
      auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
      const double n_queries = static_cast<double>(queries.size());
      table.AddRow(
          {config.name, FamilyName(family),
           FmtDouble(batch.pages.mean(), 2),
           FmtDouble(static_cast<double>(batch.totals.pruned_s1) / n_queries,
                     2),
           FmtDouble(static_cast<double>(batch.totals.estimate_updates_s2) /
                         n_queries,
                     2),
           FmtDouble(static_cast<double>(batch.totals.pruned_s3) / n_queries,
                     2),
           FmtDouble(batch.wall_micros.mean(), 1)});
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
