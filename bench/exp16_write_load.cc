// E16 — Reader throughput under durable write load (serving mode).
//
// The durability subsystem's headline claim is that queries keep running
// against consistent snapshots while a single writer commits WAL-logged
// batches. This experiment quantifies the cost: a file-backed serving
// database is preloaded, then kNN query throughput is measured while a
// paced writer submits durable inserts/deletes at a target rate. Sweeping
// the write rate (0 = idle baseline) shows how reader qps and tail
// latency degrade as group commits, copy-on-write page churn, and
// rotation-triggered checkpoints compete for the same file.
//
// Per row: reader qps (and ratio vs the idle baseline), p50/p95/p99 query
// latency, the paper's pages/query, the achieved durable write rate, and
// how many checkpoints ran inside the measurement window.
//
// Writes BENCH_E16.json (flat metric -> value) for tools/bench_compare.py.
// `--smoke` runs a scaled-down configuration for ctest.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "db/serving_db.h"
#include "exp_common.h"
#include "service/query_service.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace bench {
namespace {

constexpr uint32_t kK = 10;
constexpr uint32_t kQueryWorkers = 4;
constexpr uint32_t kClientThreads = 2;

std::string DbPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/spatial_e16.sdb";
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 1024; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

Rect<2> PointRect(double x, double y) {
  Rect<2> r;
  r.lo[0] = r.hi[0] = x;
  r.lo[1] = r.hi[1] = y;
  return r;
}

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double pages_per_query = 0.0;
  double achieved_writes_per_s = 0.0;
  uint64_t checkpoints = 0;
};

// Measures reader throughput while a paced writer pushes durable ops at
// `write_rate` per second (0 = no writer). `next_id` advances across runs
// so inserted ids never collide.
RunResult RunLoad(QueryService<2>& service, const std::vector<Point2>& queries,
                  size_t num_queries, uint64_t write_rate,
                  uint64_t* next_id) {
  std::atomic<bool> stop{false};
  std::thread writer;
  if (write_rate > 0) {
    writer = std::thread([&] {
      Rng rng(4242 + write_rate);
      std::vector<std::future<QueryResponse<2>>> pending;
      std::vector<std::pair<Rect<2>, uint64_t>> live;
      const auto interval =
          std::chrono::nanoseconds(1000000000ull / write_rate);
      auto next = std::chrono::steady_clock::now();
      while (!stop.load(std::memory_order_acquire)) {
        if (!live.empty() && rng.NextBounded(5) == 0) {
          const size_t victim = rng.NextBounded(live.size());
          pending.push_back(service.Submit(QueryRequest<2>::Delete(
              live[victim].first, live[victim].second)));
          live.erase(live.begin() + victim);
        } else {
          const Rect<2> r =
              PointRect(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
          pending.push_back(
              service.Submit(QueryRequest<2>::Insert(r, *next_id)));
          live.emplace_back(r, *next_id);
          ++*next_id;
        }
        if (pending.size() >= 256) {
          for (auto& f : pending) {
            UnwrapStatus(f.get().status, "durable write");
          }
          pending.clear();
        }
        next += interval;
        std::this_thread::sleep_until(next);
      }
      for (auto& f : pending) {
        UnwrapStatus(f.get().status, "durable write");
      }
    });
  }

  // Counts every checkpoint in the window, including the rotation-triggered
  // ones the write path runs when a WAL segment fills.
  const uint64_t ckpts_before = service.serving_db()->checkpoints();

  // Warm the worker pools (and let the writer reach its pace) outside the
  // measurement window.
  for (size_t i = 0; i < 64; ++i) {
    UnwrapStatus(
        service.Execute(QueryRequest<2>::Knn(queries[i % queries.size()], kK))
            .status,
        "warmup query");
  }
  service.ResetStats();

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<QueryResponse<2>>> futures;
      for (size_t i = t; i < num_queries; i += kClientThreads) {
        futures.push_back(service.Submit(
            QueryRequest<2>::Knn(queries[i % queries.size()], kK)));
      }
      for (auto& f : futures) {
        UnwrapStatus(f.get().status, "service query");
      }
    });
  }
  for (auto& c : clients) c.join();

  const ServiceStats stats = service.Stats();
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  RunResult r;
  r.qps = stats.QueriesPerSecond();
  r.p50_ms = static_cast<double>(stats.latency.PercentileNs(0.50)) / 1e6;
  r.p95_ms = static_cast<double>(stats.latency.PercentileNs(0.95)) / 1e6;
  r.p99_ms = static_cast<double>(stats.latency.PercentileNs(0.99)) / 1e6;
  r.pages_per_query = stats.PageAccessesPerQuery();
  r.achieved_writes_per_s =
      stats.elapsed_seconds > 0
          ? static_cast<double>(stats.writes_ok) / stats.elapsed_seconds
          : 0.0;
  r.checkpoints = service.serving_db()->checkpoints() - ckpts_before;
  return r;
}

void Main(bool smoke) {
  PrintHeader("E16", "reader throughput under durable write load");
  const size_t preload_n = smoke ? 5000 : 60000;
  const size_t num_queries = smoke ? 1500 : 20000;
  const std::vector<uint64_t> rates =
      smoke ? std::vector<uint64_t>{0, 2000}
            : std::vector<uint64_t>{0, 500, 2000, 8000};
  std::printf("%zu preloaded points, %zu queries/run, %u query workers, "
              "%u client submitters\n\n",
              preload_n, num_queries, kQueryWorkers, kClientThreads);

  const std::string path = DbPath();
  CleanupDb(path);
  uint64_t next_id = 1;
  {
    ServingOptions serving;
    serving.page_size = kPageSize;
    auto sdb = Unwrap(ServingDb<2>::Open(path, serving), "create serving db");
    Rng rng(kDataSeed);
    std::vector<ServingDb<2>::WriteOp> batch;
    for (size_t i = 0; i < preload_n; ++i) {
      batch.push_back(ServingDb<2>::WriteOp::Insert(
          PointRect(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)), next_id++));
      if (batch.size() == 2000 || i + 1 == preload_n) {
        UnwrapStatus(sdb->ApplyBatch(batch, nullptr), "preload batch");
        batch.clear();
      }
    }
    UnwrapStatus(sdb->Close(), "close after preload");
  }

  Rng qrng(kQuerySeed);
  const std::vector<Point2> queries =
      GenerateUniform<2>(512, UnitBounds<2>(), &qrng);

  Table table({"write_rate", "qps", "vs_idle", "p50_ms", "p95_ms", "p99_ms",
               "pages/q", "writes/s", "ckpts"});
  std::vector<std::pair<std::string, double>> json;
  double idle_qps = 0.0;
  for (const uint64_t rate : rates) {
    QueryService<2>::Options options;
    options.num_workers = kQueryWorkers;
    options.frames_per_worker = 256;
    ServingOptions serving;
    serving.page_size = kPageSize;
    auto service = Unwrap(
        QueryService<2>::OpenServing(path, serving, options), "open serving");
    const RunResult r =
        RunLoad(*service, queries, num_queries, rate, &next_id);
    if (rate == 0) idle_qps = r.qps;
    table.AddRow({std::to_string(rate) + "/s", FmtDouble(r.qps, 0),
                  FmtDouble(idle_qps > 0 ? r.qps / idle_qps : 1.0, 3),
                  FmtDouble(r.p50_ms, 3), FmtDouble(r.p95_ms, 3),
                  FmtDouble(r.p99_ms, 3), FmtDouble(r.pages_per_query, 2),
                  FmtDouble(r.achieved_writes_per_s, 0),
                  std::to_string(r.checkpoints)});
    const std::string suffix = "_rate" + std::to_string(rate);
    json.emplace_back("qps" + suffix, r.qps);
    json.emplace_back("p95_ms" + suffix, r.p95_ms);
    json.emplace_back("p99_ms" + suffix, r.p99_ms);
    json.emplace_back("pages_per_query" + suffix, r.pages_per_query);
    json.emplace_back("write_rate_achieved" + suffix,
                      r.achieved_writes_per_s);
    service->Shutdown();
  }
  PrintTableAndCsv(table);

  const char* json_path =
      smoke ? "/tmp/BENCH_E16_smoke.json" : "BENCH_E16.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
  CleanupDb(path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  spatial::bench::Main(smoke);
  return 0;
}
