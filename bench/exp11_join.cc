// E12 (extension): R-tree intersection join vs nested loops. The join uses
// the same MBR-directed pruning idea as the NN search; expected shape:
// synchronized traversal touches orders of magnitude fewer entry pairs
// than the quadratic nested loop, with the gap widening in N.

#include <chrono>

#include "core/spatial_join.h"
#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

std::vector<Entry<2>> RandomRects(size_t n, double extent, uint64_t seed,
                                  uint64_t first_id) {
  Rng rng(seed);
  std::vector<Entry<2>> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    Point2 b{{a[0] + rng.Uniform(0, extent), a[1] + rng.Uniform(0, extent)}};
    data.push_back(Entry<2>{Rect2::FromCorners(a, b), first_id + i});
  }
  return data;
}

void Run() {
  PrintHeader("E12", "R-tree intersection join vs nested loop");
  Table table({"N (each side)", "results", "join-pages", "join-cmps",
               "join-ms", "nested-cmps", "nested-ms", "speedup"});
  for (size_t n : {1000u, 4000u, 16000u, 64000u}) {
    // Rectangle extent shrinks with N to keep selectivity stable.
    const double extent = 2.0 / std::sqrt(static_cast<double>(n));
    auto outer_data = RandomRects(n, extent, kDataSeed, 0);
    auto inner_data = RandomRects(n, extent, kDataSeed ^ 0xff, 1000000);
    auto outer = Unwrap(BuildTree2D(outer_data, BuildMethod::kBulkStr,
                                    kPageSize, kBufferPages),
                        "outer");
    auto inner = Unwrap(BuildTree2D(inner_data, BuildMethod::kBulkStr,
                                    kPageSize, kBufferPages),
                        "inner");
    using Clock = std::chrono::steady_clock;

    std::vector<JoinPair> pairs;
    JoinStats stats;
    const auto j0 = Clock::now();
    UnwrapStatus(SpatialJoin<2>(*outer.tree, *inner.tree, &pairs, &stats),
                 "join");
    const auto j1 = Clock::now();

    const auto n0 = Clock::now();
    auto nested = NestedLoopJoin<2>(outer_data, inner_data);
    const auto n1 = Clock::now();
    SPATIAL_CHECK(nested.size() == pairs.size());

    const double join_ms =
        std::chrono::duration<double, std::milli>(j1 - j0).count();
    const double nested_ms =
        std::chrono::duration<double, std::milli>(n1 - n0).count();
    table.AddRow({FmtInt(n), FmtInt(pairs.size()),
                  FmtInt(stats.pages_outer + stats.pages_inner),
                  FmtInt(stats.comparisons),
                  FmtDouble(join_ms, 1),
                  FmtInt(static_cast<uint64_t>(n) * n),
                  FmtDouble(nested_ms, 1),
                  FmtDouble(nested_ms / join_ms, 1)});
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
