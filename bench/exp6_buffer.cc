// E7: effect of the buffer pool on physical I/O. Logical page accesses (the
// paper's cost metric) are buffer-independent; physical reads collapse once
// the hot upper levels of the tree fit in the buffer.

#include "storage/disk_manager.h"
#include "exp_common.h"
#include "rtree/bulk_load.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E7", "buffer pool size vs physical I/O (N = 64000, k = 1)");

  // Build once on a large pool, flush, then re-query through pools of
  // different sizes over the same on-disk tree.
  auto data = MakeDataset(Family::kUniform, kN, kDataSeed);
  DiskManager disk(kPageSize);
  PageId root = kInvalidPageId;
  uint64_t total_pages = 0;
  {
    BufferPool pool(&disk, kBufferPages);
    auto tree = Unwrap(
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr),
        "bulk load");
    UnwrapStatus(pool.FlushAll(), "flush");
    root = tree.root_page();
    total_pages = disk.live_pages();
  }
  auto queries = MakeQueries(data, 500);

  Table table({"buffer[pages]", "policy", "logical/query",
               "physical/query", "hit-rate", "evictions/query"});
  for (uint32_t buffer_pages : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u,
                                512u, 1024u}) {
    for (EvictionPolicy policy :
         {EvictionPolicy::kLru, EvictionPolicy::kClock}) {
      BufferPool pool(&disk, buffer_pages, policy);
      auto tree =
          Unwrap(RTree<2>::Open(&pool, RTreeOptions{}, root), "open");
      pool.ResetStats();
      disk.ResetStats();
      KnnOptions knn;
      for (const Point2& q : queries) {
        Unwrap(KnnSearch<2>(tree, q, knn, nullptr), "query");
      }
      const double n = static_cast<double>(queries.size());
      table.AddRow(
          {FmtInt(buffer_pages), EvictionPolicyName(policy),
           FmtDouble(static_cast<double>(pool.stats().logical_fetches) / n,
                     2),
           FmtDouble(static_cast<double>(disk.stats().physical_reads) / n,
                     2),
           FmtDouble(pool.stats().HitRate(), 3),
           FmtDouble(static_cast<double>(pool.stats().evictions) / n, 2)});
    }
  }
  std::printf("tree occupies %llu pages on disk\n\n",
              static_cast<unsigned long long>(total_pages));
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
