// E19 — Sharded scatter-gather serving (shard + net layers).
//
// The SIGMOD'95 algorithm is single-tree; this experiment measures the
// production question layered on top (docs/SHARDING.md): what does
// spatially partitioning one dataset across N independent QueryService
// shards buy, and what does it cost?
//
// Four parts over one 100k-point uniform dataset:
//   (0) Bit-identity gate: every sharded kNN answer is memcmp'd against
//       the same query on a single tree holding the whole dataset. The
//       timed sections below only run if the merge is byte-exact.
//   (a) Aggregate kNN throughput: shards in {1, 2, 4}, two workers per
//       shard, every physical read carrying a simulated rotational-disk
//       latency (E14's regime — sleeping reads overlap across workers, so
//       scaling is independent of host core count). Each query scatters
//       to every shard, each shard searches a tree 1/N the size, and N×
//       more workers overlap I/O: aggregate qps must scale.
//   (b) Shared prune-bound streaming: with the router's atomic k-th-
//       distance bound on vs off, total pages scanned per query across
//       all shards. The shard holding the answer publishes its bound and
//       laggard shards prune subtrees they would otherwise read.
//   (c) Overload shedding through the RPC front door: a server with a
//       small in-flight budget, driven first under the budget (capacity),
//       then by 8x more closed-loop clients (overload). Excess requests
//       shed kOverloaded before any shard sees them, so the p99 of the
//       *accepted* requests stays bounded instead of growing a queue.
//
// Writes BENCH_E19.json for tools/bench_compare.py; `--smoke` runs a
// scaled-down pass and writes to /tmp without touching the manifest.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/knn.h"
#include "db/spatial_db.h"
#include "exp_common.h"
#include "net/client.h"
#include "net/server.h"
#include "shard/shard_router.h"
#include "shard/shard_set.h"

namespace spatial {
namespace bench {
namespace {

constexpr uint32_t kK = 10;
constexpr uint32_t kWorkersPerShard = 2;
constexpr uint32_t kFramesPerWorker = 16;
constexpr uint32_t kSimulatedLatencyUs = 200;

struct Params {
  size_t n_points;
  size_t gate_queries;
  size_t qps_queries;      // per throughput config
  size_t bound_queries;    // per bound mode
  size_t rpc_calls_per_client;
};

ShardSet<2>::Options SetOptions(uint32_t shards, uint32_t latency_us) {
  ShardSet<2>::Options options;
  options.num_shards = shards;
  options.page_size = kPageSize;
  options.service.num_workers = kWorkersPerShard;
  options.service.frames_per_worker = kFramesPerWorker;
  options.service.simulated_read_latency_us = latency_us;
  return options;
}

std::vector<Point2> RandomQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> queries(n);
  for (auto& q : queries) {
    q = {{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
  }
  return queries;
}

// (0) Byte-exact equivalence of the sharded merge against one tree.
void BitIdentityGate(const std::vector<Entry<2>>& data,
                     const std::vector<Point2>& queries) {
  SpatialDb<2>::Options db_options;
  db_options.page_size = kPageSize;
  db_options.buffer_pages = kBufferPages;
  auto reference =
      Unwrap(SpatialDb<2>::CreateInMemory(db_options), "reference db");
  UnwrapStatus(reference.BulkLoadData(data, BulkLoadMethod::kStr),
               "reference bulk load");

  for (uint32_t shards : {1u, 4u}) {
    auto set = Unwrap(ShardSet<2>::Build(data, SetOptions(shards, 0)),
                      "gate shard set");
    ShardRouter<2> router(set.get());
    for (const Point2& q : queries) {
      KnnOptions knn;
      knn.k = kK;
      auto want = Unwrap(KnnSearch<2>(reference.tree(), q, knn, nullptr),
                         "reference knn");
      QueryResponse<2> got = router.Execute(QueryRequest<2>::Knn(q, kK));
      UnwrapStatus(got.status, "sharded knn");
      if (got.neighbors.size() != want.size() ||
          std::memcmp(got.neighbors.data(), want.data(),
                      want.size() * sizeof(Neighbor)) != 0) {
        std::fprintf(stderr,
                     "E19 bit-identity gate FAILED at %u shards: sharded "
                     "answer differs from single tree\n",
                     shards);
        std::exit(1);
      }
    }
  }
  std::printf("bit-identity gate: sharded == single tree on %zu queries "
              "x {1, 4} shards (memcmp)\n\n",
              queries.size());
}

struct LoadResult {
  double qps = 0.0;
  double pages_per_query = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// Closed-loop load: `threads` clients call the router synchronously.
LoadResult RunRouterLoad(ShardRouter<2>* router,
                         const std::vector<Point2>& queries,
                         size_t num_queries, uint32_t threads) {
  std::atomic<uint64_t> pages{0};
  std::vector<std::vector<uint64_t>> lat(threads);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < num_queries; i += threads) {
        const auto t0 = std::chrono::steady_clock::now();
        QueryResponse<2> r = router->Execute(
            QueryRequest<2>::Knn(queries[i % queries.size()], kK));
        const auto t1 = std::chrono::steady_clock::now();
        UnwrapStatus(r.status, "router knn");
        pages.fetch_add(r.stats.nodes_visited, std::memory_order_relaxed);
        lat[t].push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    if (all.empty()) return 0.0;
    const size_t i = std::min(all.size() - 1,
                              static_cast<size_t>(p * (all.size() - 1)));
    return static_cast<double>(all[i]) / 1e6;
  };
  LoadResult r;
  r.qps = elapsed > 0
              ? static_cast<double>(num_queries) / elapsed
              : 0.0;
  r.pages_per_query =
      static_cast<double>(pages.load()) / static_cast<double>(num_queries);
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  return r;
}

struct RpcResult {
  uint64_t ok = 0;
  uint64_t shed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// Closed-loop RPC load, one client connection per thread; latency is
// collected over *accepted* requests only.
RpcResult RunRpcLoad(uint16_t port, const std::vector<Point2>& queries,
                     uint32_t threads, size_t calls_per_client) {
  std::atomic<uint64_t> ok{0}, shed{0};
  std::vector<std::vector<uint64_t>> lat(threads);
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto client =
          Unwrap(RpcClient<2>::Connect("127.0.0.1", port), "rpc connect");
      for (size_t i = 0; i < calls_per_client; ++i) {
        const Point2& q = queries[(t * calls_per_client + i) % queries.size()];
        const auto t0 = std::chrono::steady_clock::now();
        auto r = Unwrap(client->Call(QueryRequest<2>::Knn(q, kK)), "rpc call");
        const auto t1 = std::chrono::steady_clock::now();
        if (r.status.ok()) {
          ok.fetch_add(1);
          lat[t].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        } else if (r.status.IsOverloaded()) {
          shed.fetch_add(1);
        } else {
          UnwrapStatus(r.status, "rpc query");
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    if (all.empty()) return 0.0;
    const size_t i = std::min(all.size() - 1,
                              static_cast<size_t>(p * (all.size() - 1)));
    return static_cast<double>(all[i]) / 1e6;
  };
  RpcResult r;
  r.ok = ok.load();
  r.shed = shed.load();
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  return r;
}

void Main(bool smoke) {
  const Params p = smoke
                       ? Params{5000, 20, 60, 40, 20}
                       : Params{100000, 150, 600, 300, 100};
  PrintHeader("E19", "sharded scatter-gather serving (shard + net layers)");
  std::printf("host reports %u hardware threads; %u workers/shard, "
              "%u frames/worker, %u us simulated read latency%s\n\n",
              std::thread::hardware_concurrency(), kWorkersPerShard,
              kFramesPerWorker, kSimulatedLatencyUs, smoke ? " [smoke]" : "");

  const auto data = MakeDataset(Family::kUniform, p.n_points, kDataSeed);
  const auto queries = RandomQueries(512, kQuerySeed);

  BitIdentityGate(data, RandomQueries(p.gate_queries, kQuerySeed + 1));

  std::vector<std::pair<std::string, double>> json;

  // (a) Aggregate throughput vs shard count under the I/O-bound regime.
  double qps1 = 0.0, qps4 = 0.0;
  {
    std::printf("--- (a) aggregate kNN qps vs shard count: "
                "8 closed-loop clients, k=%u ---\n",
                kK);
    Table table({"shards", "workers", "qps", "speedup", "pages/q", "p50_ms",
                 "p99_ms"});
    double baseline = 0.0;
    for (uint32_t shards : {1u, 2u, 4u}) {
      auto set = Unwrap(
          ShardSet<2>::Build(data, SetOptions(shards, kSimulatedLatencyUs)),
          "qps shard set");
      ShardRouter<2> router(set.get());
      const LoadResult r = RunRouterLoad(&router, queries, p.qps_queries, 8);
      if (shards == 1) baseline = r.qps;
      if (shards == 1) qps1 = r.qps;
      if (shards == 4) qps4 = r.qps;
      table.AddRow({std::to_string(shards),
                    std::to_string(shards * kWorkersPerShard),
                    FmtDouble(r.qps, 0),
                    FmtDouble(baseline > 0 ? r.qps / baseline : 1.0, 2),
                    FmtDouble(r.pages_per_query, 2), FmtDouble(r.p50_ms, 3),
                    FmtDouble(r.p99_ms, 3)});
      json.emplace_back("qps_knn_shards" + std::to_string(shards), r.qps);
    }
    PrintTableAndCsv(table);
    json.emplace_back("speedup_shards4", qps1 > 0 ? qps4 / qps1 : 0.0);
  }

  // (b) Shared prune-bound streaming: pages scanned across all shards.
  double pages_shared = 0.0, pages_independent = 0.0;
  {
    std::printf("--- (b) shared prune-bound streaming: 4 shards, "
                "total pages scanned per query ---\n");
    Table table({"bound", "pages/q", "p50_ms"});
    for (bool stream : {false, true}) {
      auto set = Unwrap(ShardSet<2>::Build(data, SetOptions(4, 0)),
                        "bound shard set");
      ShardRouter<2>::Options router_options;
      router_options.stream_bound = stream;
      ShardRouter<2> router(set.get(), router_options);
      const LoadResult r =
          RunRouterLoad(&router, queries, p.bound_queries, 2);
      (stream ? pages_shared : pages_independent) = r.pages_per_query;
      table.AddRow({stream ? "shared (streamed)" : "independent",
                    FmtDouble(r.pages_per_query, 2), FmtDouble(r.p50_ms, 3)});
    }
    PrintTableAndCsv(table);
    json.emplace_back("pages_per_query_independent_bound", pages_independent);
    json.emplace_back("pages_per_query_shared_bound", pages_shared);
  }

  // (c) Overload shedding through the RPC front door.
  double p99_capacity = 0.0, p99_overload = 0.0, shed_fraction = 0.0;
  {
    constexpr uint32_t kBudget = 4;
    std::printf("--- (c) overload shedding: RPC server, in-flight budget "
                "%u, capacity (2 clients) vs overload (16 clients) ---\n",
                kBudget);
    auto set = Unwrap(
        ShardSet<2>::Build(data, SetOptions(4, kSimulatedLatencyUs)),
        "rpc shard set");
    ShardRouter<2> router(set.get());
    typename RpcServer<2>::Options server_options;
    server_options.max_pending = kBudget;
    server_options.max_connections = 32;
    auto server =
        Unwrap(RpcServer<2>::Start(&router, server_options), "rpc server");

    Table table({"phase", "clients", "accepted", "shed", "shed_frac",
                 "p50_ms", "p99_ms"});
    const RpcResult cap =
        RunRpcLoad(server->port(), queries, 2, p.rpc_calls_per_client);
    p99_capacity = cap.p99_ms;
    table.AddRow({"capacity", "2", std::to_string(cap.ok),
                  std::to_string(cap.shed),
                  FmtDouble(cap.ok + cap.shed > 0
                                ? static_cast<double>(cap.shed) /
                                      static_cast<double>(cap.ok + cap.shed)
                                : 0.0,
                            3),
                  FmtDouble(cap.p50_ms, 3), FmtDouble(cap.p99_ms, 3)});
    const RpcResult over =
        RunRpcLoad(server->port(), queries, 16, p.rpc_calls_per_client);
    p99_overload = over.p99_ms;
    shed_fraction = over.ok + over.shed > 0
                        ? static_cast<double>(over.shed) /
                              static_cast<double>(over.ok + over.shed)
                        : 0.0;
    table.AddRow({"overload", "16", std::to_string(over.ok),
                  std::to_string(over.shed), FmtDouble(shed_fraction, 3),
                  FmtDouble(over.p50_ms, 3), FmtDouble(over.p99_ms, 3)});
    PrintTableAndCsv(table);
    server->Stop();
    server->WaitUntilStopped();

    json.emplace_back("p99_accepted_ms_capacity", p99_capacity);
    json.emplace_back("p99_accepted_ms_overload", p99_overload);
    json.emplace_back("overload_shed_fraction", shed_fraction);
  }

  // The acceptance gates only bind at full scale; the smoke run is a
  // correctness/smoke pass over tiny inputs where the ratios are noise.
  if (!smoke) {
    if (qps1 <= 0 || qps4 / qps1 < 2.5) {
      std::fprintf(stderr,
                   "E19 FAILED: 4-shard speedup %.2fx < 2.5x required\n",
                   qps1 > 0 ? qps4 / qps1 : 0.0);
      std::exit(1);
    }
    if (pages_shared > pages_independent) {
      std::fprintf(stderr,
                   "E19 FAILED: shared bound scanned more pages "
                   "(%.2f) than independent bounds (%.2f)\n",
                   pages_shared, pages_independent);
      std::exit(1);
    }
    if (shed_fraction <= 0.0) {
      std::fprintf(stderr, "E19 FAILED: overload phase shed nothing\n");
      std::exit(1);
    }
  }

  const char* json_path =
      smoke ? "/tmp/BENCH_E19_smoke.json" : "BENCH_E19.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
