// E1 (paper §3): the MINDIST / MINMAXDIST / MAXDIST metrics — worked
// examples plus a large-scale verification of the bounding theorems.

#include <algorithm>
#include <cmath>

#include "exp_common.h"
#include "geom/metrics.h"

namespace spatial {
namespace bench {
namespace {

void RunExamples() {
  Table table({"query", "rect", "MINDIST", "MINMAXDIST", "MAXDIST"});
  struct Case {
    Point2 q;
    Rect2 r;
  };
  const Case cases[] = {
      {{{0.0, 0.0}}, Rect2{{{1, 1}}, {{2, 2}}}},
      {{{1.5, 1.5}}, Rect2{{{1, 1}}, {{2, 2}}}},   // inside
      {{{-1.0, 1.0}}, Rect2{{{0, 0}}, {{2, 2}}}},  // facing a side
      {{{3.0, 1.0}}, Rect2{{{0, 0}}, {{2, 2}}}},
      {{{5.0, 5.0}}, Rect2{{{0, 0}}, {{1, 1}}}},   // far corner
  };
  for (const Case& c : cases) {
    table.AddRow({c.q.ToString(), c.r.ToString(),
                  FmtDouble(MinDist(c.q, c.r), 4),
                  FmtDouble(MinMaxDist(c.q, c.r), 4),
                  FmtDouble(MaxDist(c.q, c.r), 4)});
  }
  PrintTableAndCsv(table);
}

void RunTheoremSweep() {
  // Random boxes with objects placed on every face (the MBR face property);
  // count violations of MINDIST <= d(NN) <= MINMAXDIST <= MAXDIST.
  Rng rng(kDataSeed);
  const int kTrials = 200000;
  int order_violations = 0;
  int t1_violations = 0;
  int t2_violations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Rect2 r = Rect2::FromCorners(
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}},
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}});
    const Point2 q{{rng.Uniform(-20, 20), rng.Uniform(-20, 20)}};
    const double min_d = MinDistSq(q, r);
    const double minmax_d = MinMaxDistSq(q, r);
    const double max_d = MaxDistSq(q, r);
    if (min_d > minmax_d || minmax_d > max_d) ++order_violations;
    double nearest = std::numeric_limits<double>::infinity();
    for (int dim = 0; dim < 2; ++dim) {
      for (double coord : {r.lo[dim], r.hi[dim]}) {
        Point2 obj;
        obj[dim] = coord;
        obj[1 - dim] = rng.Uniform(r.lo[1 - dim], r.hi[1 - dim]);
        nearest = std::min(nearest, SquaredDistance(q, obj));
        if (SquaredDistance(q, obj) < min_d - 1e-9) ++t1_violations;
      }
    }
    if (nearest > minmax_d + 1e-9) ++t2_violations;
  }
  Table table({"theorem", "trials", "violations"});
  table.AddRow({"MINDIST <= MINMAXDIST <= MAXDIST", FmtInt(kTrials),
                FmtInt(order_violations)});
  table.AddRow({"T1: MINDIST lower-bounds objects", FmtInt(kTrials * 4),
                FmtInt(t1_violations)});
  table.AddRow({"T2: face object within MINMAXDIST", FmtInt(kTrials),
                FmtInt(t2_violations)});
  PrintTableAndCsv(table);
}

void Run() {
  PrintHeader("E1", "metrics of the paper: examples and theorem checks");
  RunExamples();
  RunTheoremSweep();
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
