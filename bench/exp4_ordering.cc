// E5 (paper §5 discussion): effect of the Active-Branch-List ordering.
// The paper compares ordering the ABL by MINDIST vs MINMAXDIST and finds
// MINDIST superior for the depth-first traversal; unordered traversal
// isolates the contribution of ordering itself.

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E5", "ABL ordering: MINDIST vs MINMAXDIST vs none (N=64000)");
  Table table({"ordering", "k", "family", "pages/query", "pruned-s3/query",
               "us/query"});
  for (Family family : {Family::kUniform, Family::kTigerLike}) {
    auto data = MakeDataset(family, kN, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    auto queries = MakeQueries(data);
    for (AblOrdering ordering :
         {AblOrdering::kMinDist, AblOrdering::kMinMaxDist,
          AblOrdering::kNone}) {
      for (uint32_t k : {1u, 4u, 16u}) {
        KnnOptions knn;
        knn.ordering = ordering;
        knn.k = k;
        auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
        table.AddRow({AblOrderingName(ordering), FmtInt(k),
                      FamilyName(family), FmtDouble(batch.pages.mean(), 2),
                      FmtDouble(batch.pruned_s3.mean(), 2),
                      FmtDouble(batch.wall_micros.mean(), 1)});
      }
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
