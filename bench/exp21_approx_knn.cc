// E21 — Approximate kNN: throughput bought per unit of recall given up.
//
// The two approximation knobs (core/knn.h) trade answer quality for work:
//
//   epsilon     — branches and objects are pruned at bound/(1+eps)^2, so
//                 every reported distance is within (1+eps) of the true
//                 distance at its rank (a per-rank contract, enforced by
//                 tests/advanced_query_test.cc). Skips the long tail of
//                 near-boundary node visits that rarely change the answer.
//   max_visits  — hard node-visit budget; the descent stops after that
//                 many visits and returns the best candidates so far. No
//                 distance contract — recall is an empirical property,
//                 and this harness is where it gets measured.
//
// Workload: uniform points and queries (the paper's workload; also the
// honest regime for the epsilon contract — in clustered data the
// (1+eps) band around the k-th distance holds so many near-ties that
// recall collapses long before the visit savings arrive), STR-packed,
// paged tier (the default serving tier; the paper's cost model counts
// page accesses), k = 100, D = 2..4. The page size is set per dimension
// to hold fan-out at 10 (page = header + 10 entries), so every D builds
// the same ~11k-node tree and the sweep isolates dimensionality from
// node packing — at one fixed page size the fan-out would drift from 25
// (D=2) to 14 (D=4) and the D axis would mostly measure leaf
// granularity. The small fan-out mirrors the paper's testbed and is
// also where the epsilon knob has room to work: finer leaves mean the
// (1+eps)-skippable shell of boundary nodes is a larger fraction of
// the exact search's visits. For each (epsilon, max_visits) cell the
// harness measures recall@k as the id-set overlap with the exact answer,
// then times exact and approximate engines with interleaved rounds (same
// rationale as E20: paired rounds keep the ratio honest under frequency
// drift). Per D it selects the fastest cell whose recall is >= 0.95; in
// full mode that cell must be >= 2x exact qps or the binary exits
// nonzero — the recall/speedup contract the roadmap promises is enforced
// here, not just reported. Writes BENCH_E21.json; `--smoke` runs a
// scaled-down sweep for ctest and skips both the gate and the manifest.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "core/knn.h"
#include "exp_common.h"
#include "rtree/bulk_load.h"
#include "storage/disk_manager.h"
#include "storage/resident_tree.h"

namespace spatial {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr uint32_t kK = 100;

// Per-dimension page size pinning the fan-out: 8-byte node header plus
// kFanout entries of 16*D + 8 bytes each (rtree/node.h
// NodeView::MaxEntries).
constexpr uint32_t kFanout = 10;
constexpr uint32_t PageSizeFor(int d) {
  return 8 + kFanout * (16 * static_cast<uint32_t>(d) + 8);
}

// One cell of the sweep: an epsilon paired with a visit budget (0 = off).
struct Config {
  double epsilon;
  uint64_t max_visits;
};

struct CellResult {
  Config config;
  double recall = 0.0;
  double qps_exact = 0.0;
  double qps_approx = 0.0;
  double speedup = 0.0;
  double visits_exact = 0.0;   // mean nodes visited per query, exact
  double visits_approx = 0.0;  // mean nodes visited per query, this cell
};

template <int D>
struct Workload {
  Workload(size_t n_points, size_t n_queries, uint32_t frames)
      : disk(PageSizeFor(D)), pool(&disk, frames) {
    Rng rng(kDataSeed);
    data = MakePointEntries(GenerateUniform<D>(n_points, UnitBounds<D>(), &rng));
    auto loaded = BulkLoad<D>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    UnwrapStatus(loaded.status(), "bulk load");
    tree.emplace(std::move(loaded).value());
    auto compiled =
        ResidentTree<D>::Compile(&pool, tree->root_page(), tree->size(), {});
    UnwrapStatus(compiled.status(), "resident compile");
    resident.emplace(std::move(compiled).value());
    Rng qrng(kQuerySeed);
    queries = GenerateQueries<D>(data, n_queries, QueryDistribution::kUniform,
                                 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<D>> data;
  std::optional<RTree<D>> tree;
  std::optional<ResidentTree<D>> resident;
  std::vector<Point<D>> queries;
};

// Fraction of the exact answer's ids the approximate answer recovered,
// averaged over queries. A budget-truncated answer that returns fewer
// than k objects pays for every id it is missing.
double MeanRecall(const std::vector<std::vector<uint64_t>>& exact_ids,
                  const std::vector<std::vector<uint64_t>>& approx_ids) {
  double total = 0.0;
  for (size_t q = 0; q < exact_ids.size(); ++q) {
    if (exact_ids[q].empty()) continue;
    size_t hit = 0;
    for (uint64_t id : approx_ids[q]) {
      if (std::binary_search(exact_ids[q].begin(), exact_ids[q].end(), id)) {
        ++hit;
      }
    }
    total += static_cast<double>(hit) / static_cast<double>(exact_ids[q].size());
  }
  return total / static_cast<double>(exact_ids.size());
}

// Interleaved best-of-rounds timing of the exact and approximate engines
// (exact, approx, exact, approx, ...), same structure as E20's TimeEngines.
template <int D>
void TimeCell(const Workload<D>& w, const KnnOptions& exact_options,
              const KnnOptions& approx_options, size_t rounds,
              QueryScratch<D>* scratch, CellResult* cell) {
  const RTree<D>& tree = *w.tree;
  std::vector<Neighbor> out;
  auto run = [&](const KnnOptions& options) {
    for (const Point<D>& q : w.queries) {
      UnwrapStatus(KnnSearchInto<D>(tree, q, options, scratch, &out, nullptr),
                   "paged knn");
    }
  };
  run(exact_options);  // warm: scratch and output reach high-water marks
  run(approx_options);

  double best_exact = std::numeric_limits<double>::infinity();
  double best_approx = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run(exact_options);
    const auto t1 = std::chrono::steady_clock::now();
    run(approx_options);
    const auto t2 = std::chrono::steady_clock::now();
    best_exact = std::min(best_exact, Seconds(t0, t1));
    best_approx = std::min(best_approx, Seconds(t1, t2));
  }
  const double n = static_cast<double>(w.queries.size());
  cell->qps_exact = n / best_exact;
  cell->qps_approx = n / best_approx;
  cell->speedup = cell->qps_approx / cell->qps_exact;
}

template <int D>
void RunDimension(size_t n_points, size_t n_queries, size_t rounds,
                  uint32_t frames, const std::vector<Config>& configs,
                  bool enforce_gate, Table* table,
                  std::vector<std::pair<std::string, double>>* json,
                  bool* gate_ok) {
  Workload<D> w(n_points, n_queries, frames);
  QueryScratch<D> scratch;

  // Exact answers once: sorted id sets are the recall ground truth.
  KnnOptions exact;
  exact.k = kK;
  std::vector<Neighbor> out;
  std::vector<std::vector<uint64_t>> exact_ids(w.queries.size());
  QueryStats exact_stats;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    QueryStats stats;
    UnwrapStatus(KnnSearchInto<D>(*w.tree, w.queries[q], exact, &scratch,
                                  &out, &stats),
                 "exact knn");
    exact_stats.Add(stats);
    for (const Neighbor& n : out) exact_ids[q].push_back(n.id);
    std::sort(exact_ids[q].begin(), exact_ids[q].end());
  }
  const double mean_visits_exact =
      static_cast<double>(exact_stats.nodes_visited) /
      static_cast<double>(w.queries.size());

  const std::string dim_suffix = "_d" + std::to_string(D);
  std::optional<CellResult> best;  // fastest cell meeting the recall floor
  std::vector<CellResult> cells;
  for (const Config& config : configs) {
    KnnOptions approx = exact;
    approx.epsilon = config.epsilon;
    approx.max_visits = config.max_visits;

    std::vector<std::vector<uint64_t>> approx_ids(w.queries.size());
    QueryStats approx_stats;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      QueryStats stats;
      UnwrapStatus(KnnSearchInto<D>(*w.tree, w.queries[q], approx,
                                    &scratch, &out, &stats),
                   "approx knn");
      approx_stats.Add(stats);
      for (const Neighbor& n : out) approx_ids[q].push_back(n.id);
    }

    CellResult cell;
    cell.config = config;
    cell.recall = MeanRecall(exact_ids, approx_ids);
    cell.visits_exact = mean_visits_exact;
    cell.visits_approx = static_cast<double>(approx_stats.nodes_visited) /
                         static_cast<double>(w.queries.size());
    TimeCell<D>(w, exact, approx, rounds, &scratch, &cell);
    table->AddRow({FmtInt(D), FmtDouble(config.epsilon, 2),
                   FmtInt(config.max_visits), FmtDouble(cell.visits_exact, 1),
                   FmtDouble(cell.visits_approx, 1),
                   FmtDouble(cell.qps_exact, 0), FmtDouble(cell.qps_approx, 0),
                   FmtDouble(cell.speedup, 2), FmtDouble(cell.recall, 4)});
    cells.push_back(cell);
    if (cell.recall >= 0.95 &&
        (!best || cell.speedup > best->speedup)) {
      best = cell;
    }
  }

  if (!best) {
    // No cell met the floor: report the best-recall cell so the JSON and
    // the table stay complete, and let the gate (full runs only) fail the
    // binary after every dimension has printed its landscape.
    if (enforce_gate) {
      std::fprintf(stderr, "E21: GATE FAILED at D=%d — no config reached "
                   "recall >= 0.95\n", D);
      *gate_ok = false;
    }
    for (const CellResult& cell : cells) {
      if (!best || cell.recall > best->recall) best = cell;
    }
  }
  json->emplace_back("qps_exact" + dim_suffix, best->qps_exact);
  json->emplace_back("qps_approx" + dim_suffix, best->qps_approx);
  json->emplace_back("speedup" + dim_suffix, best->speedup);
  json->emplace_back("recall" + dim_suffix, best->recall);
  json->emplace_back("epsilon" + dim_suffix, best->config.epsilon);
  json->emplace_back("max_visits" + dim_suffix,
                     static_cast<double>(best->config.max_visits));
  std::printf("D=%d best contract cell: eps=%.2f visits=%llu -> "
              "%.2fx at recall %.4f\n",
              D, best->config.epsilon,
              static_cast<unsigned long long>(best->config.max_visits),
              best->speedup, best->recall);
  if (enforce_gate && best->speedup < 2.0) {
    std::fprintf(stderr,
                 "E21: GATE FAILED at D=%d — best recall>=0.95 cell is only "
                 "%.2fx (need 2.0x)\n",
                 D, best->speedup);
    *gate_ok = false;
  }
}

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 1000;
  const size_t rounds = smoke ? 1 : 7;
  const uint32_t frames = 8192;

  PrintHeader("E21", "Approximate kNN (epsilon + visit budget vs exact)");
  std::printf("%zu uniform points, STR-packed, paged tier, k=%u, "
              "%zu queries x %zu rounds%s\n",
              n_points, kK, n_queries, rounds, smoke ? " [smoke]" : "");
  std::printf("per-dimension page sizes %u/%u/%u B (override the banner "
              "default) pin fan-out at %u for every D\n\n",
              PageSizeFor(2), PageSizeFor(3), PageSizeFor(4), kFanout);

  // Budgets scale with tree size: a budget must at least cover the root
  // path or recall collapses, and what "aggressive" means depends on how
  // many nodes the exact search visits at that scale.
  std::vector<Config> configs;
  for (double eps : {0.1, 0.25, 0.35, 0.5, 1.0}) configs.push_back({eps, 0});
  const std::vector<uint64_t> budgets =
      smoke ? std::vector<uint64_t>{16, 8}
            : std::vector<uint64_t>{96, 64, 48, 32, 24, 16};
  for (uint64_t budget : budgets) {
    configs.push_back({0.0, budget});
    configs.push_back({0.25, budget});
  }

  std::vector<std::pair<std::string, double>> json;
  Table table({"D", "eps", "budget", "visits_exact", "visits_approx",
               "qps_exact", "qps_approx", "speedup", "recall"});
  bool gate_ok = true;
  RunDimension<2>(n_points, n_queries, rounds, frames, configs, !smoke, &table,
                  &json, &gate_ok);
  RunDimension<3>(n_points, n_queries, rounds, frames, configs, !smoke, &table,
                  &json, &gate_ok);
  RunDimension<4>(n_points, n_queries, rounds, frames, configs, !smoke, &table,
                  &json, &gate_ok);
  PrintTableAndCsv(table);

  const char* json_path =
      smoke ? "/tmp/BENCH_E21_smoke.json" : "BENCH_E21.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
  if (!gate_ok) std::exit(1);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
