// E11 (ablation): sensitivity to the query-point distribution. The paper
// draws queries uniformly; real workloads often query near the data
// (data-drawn / perturbed). Expected: data-drawn queries are cheaper on
// skewed data because the nearest neighbor is closer and S3 tightens
// earlier; uniform queries over skewed data hit sparse regions.

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E11", "query distribution sensitivity (N = 64000, k = 4)");
  Table table({"queries", "family", "pages/query", "objects/query",
               "us/query"});
  for (Family family : {Family::kUniform, Family::kTigerLike}) {
    auto data = MakeDataset(family, kN, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    for (QueryDistribution distribution :
         {QueryDistribution::kUniform, QueryDistribution::kDataDrawn,
          QueryDistribution::kPerturbed}) {
      Rng rng(kQuerySeed);
      auto queries = GenerateQueries<2>(data, kQueriesPerPoint, distribution,
                                        /*perturb_fraction=*/0.01, &rng);
      KnnOptions knn;
      knn.k = 4;
      auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
      table.AddRow({QueryDistributionName(distribution), FamilyName(family),
                    FmtDouble(batch.pages.mean(), 2),
                    FmtDouble(batch.objects.mean(), 1),
                    FmtDouble(batch.wall_micros.mean(), 1)});
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
