// E20 — Resident tier throughput (pinned SoA-native arena vs paged path).
//
// Measures what the memory-resident tree tier (storage/resident_tree.h)
// buys over the paged traversal it shadows, on a cached-memory workload
// where the buffer pool already holds the whole tree — i.e. the delta is
// purely the per-visit overhead the resident tier deletes: page-table
// lookup, frame pin/unpin, magic check, and the SoA transpose that the
// paged path re-runs on every node visit but the compiler ran exactly once.
//
// Engines, all answering the same uniform kNN workload:
//
//   paged     — KnnSearchInto over the RTree as shipped: buffer-pool
//               fetches + per-visit SoA staging through the runtime-
//               dispatched kernels (the E17 "dispatched" engine).
//   resident  — KnnSearchInto over the compiled ResidentTree: direct
//               offset lookups into the arena's precomputed planes, same
//               dispatched kernels, zero pins.
//
// The resident engine's answers are checked bit-identical to paged before
// any timing. Reported per (D, k): queries/sec, speedup over paged, and
// steady-state allocations/query for the resident engine (this binary
// links spatial_alloc_tracker); plus per-D arena bytes and one-shot
// compile time. Writes BENCH_E20.json for tools/bench_compare.py;
// `--smoke` runs a scaled-down configuration for ctest.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "common/alloc_tracker.h"
#include "core/knn.h"
#include "exp_common.h"
#include "rtree/bulk_load.h"
#include "storage/disk_manager.h"
#include "storage/resident_tree.h"

namespace spatial {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Best-of-rounds throughput plus steady-state allocation rate: the warm
// pass grows every arena to its high-water mark, so allocations observed
// across the timed rounds are genuine steady-state traffic.
struct EngineResult {
  double qps = 0.0;
  double allocs_per_query = 0.0;
};

// Times the two engines with interleaved rounds (paged, resident, paged,
// resident, ...) rather than back to back: frequency scaling and scheduler
// noise drift on the scale of a full timing block, so paired rounds keep
// the speedup ratio honest even when absolute qps wobbles between runs.
template <int D, typename PagedFn, typename ResidentFn>
void TimeEngines(const std::vector<Point<D>>& queries, size_t rounds,
                 PagedFn&& paged_fn, ResidentFn&& resident_fn,
                 EngineResult* paged, EngineResult* resident) {
  // Warm both: arenas reach their high-water mark, pool faults in the tree.
  for (const Point<D>& q : queries) paged_fn(q);
  for (const Point<D>& q : queries) resident_fn(q);

  double best_paged = std::numeric_limits<double>::infinity();
  double best_resident = std::numeric_limits<double>::infinity();
  uint64_t paged_allocs = 0, resident_allocs = 0;
  for (size_t r = 0; r < rounds; ++r) {
    const AllocCounts b0 = ThreadAllocCounts();
    const auto t0 = std::chrono::steady_clock::now();
    for (const Point<D>& q : queries) paged_fn(q);
    const auto t1 = std::chrono::steady_clock::now();
    const AllocCounts b1 = ThreadAllocCounts();
    for (const Point<D>& q : queries) resident_fn(q);
    const auto t2 = std::chrono::steady_clock::now();
    const AllocCounts b2 = ThreadAllocCounts();
    best_paged = std::min(best_paged, Seconds(t0, t1));
    best_resident = std::min(best_resident, Seconds(t1, t2));
    paged_allocs += (b1 - b0).allocations;
    resident_allocs += (b2 - b1).allocations;
  }
  const double n = static_cast<double>(queries.size());
  const double total = n * static_cast<double>(rounds);
  paged->qps = n / best_paged;
  paged->allocs_per_query = static_cast<double>(paged_allocs) / total;
  resident->qps = n / best_resident;
  resident->allocs_per_query = static_cast<double>(resident_allocs) / total;
}

template <int D>
struct Workload {
  Workload(size_t n_points, size_t n_queries, uint32_t frames)
      : disk(kPageSize), pool(&disk, frames) {
    Rng rng(kDataSeed);
    data = MakePointEntries(GenerateUniform<D>(n_points, UnitBounds<D>(), &rng));
    auto loaded = BulkLoad<D>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    UnwrapStatus(loaded.status(), "bulk load");
    tree.emplace(std::move(loaded).value());
    Rng qrng(kQuerySeed);
    queries = GenerateQueries<D>(data, n_queries, QueryDistribution::kUniform,
                                 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<D>> data;
  std::optional<RTree<D>> tree;
  std::vector<Point<D>> queries;
};

// Asserts `got` equals `want` bit for bit (ids and distances).
void CheckAnswers(const std::vector<Neighbor>& got,
                  const std::vector<Neighbor>& want, int dims, uint32_t k) {
  if (got.size() != want.size() ||
      (!got.empty() && std::memcmp(got.data(), want.data(),
                                   got.size() * sizeof(Neighbor)) != 0)) {
    std::fprintf(stderr,
                 "E20: resident diverged from paged at D=%d k=%u "
                 "(sizes %zu vs %zu)\n",
                 dims, k, got.size(), want.size());
    for (size_t i = 0; i < got.size() && i < want.size(); ++i) {
      if (got[i].id != want[i].id || got[i].dist_sq != want[i].dist_sq) {
        std::fprintf(stderr,
                     "  rank %zu: id %llu vs %llu, dist %.17g vs %.17g\n", i,
                     (unsigned long long)got[i].id,
                     (unsigned long long)want[i].id, got[i].dist_sq,
                     want[i].dist_sq);
      }
    }
    std::exit(1);
  }
}

template <int D>
void RunDimension(size_t n_points, size_t n_queries, size_t rounds,
                  uint32_t frames, Table* table,
                  std::vector<std::pair<std::string, double>>* json) {
  Workload<D> w(n_points, n_queries, frames);
  const RTree<D>& tree = *w.tree;

  auto compiled = ResidentTree<D>::Compile(&w.pool, tree.root_page(),
                                           tree.size(), {});
  UnwrapStatus(compiled.status(), "resident compile");
  const ResidentTree<D>& resident = *compiled;
  const std::string dim_suffix = "_d" + std::to_string(D);
  json->emplace_back("arena_bytes" + dim_suffix,
                     static_cast<double>(resident.arena_bytes()));
  json->emplace_back("compile_ms" + dim_suffix,
                     static_cast<double>(resident.compile_ns()) / 1e6);

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    QueryScratch<D> scratch;
    std::vector<Neighbor> want, got;

    // Answers first: the resident tier must reproduce the paged path bit
    // for bit before its timings mean anything.
    for (const Point<D>& q : w.queries) {
      UnwrapStatus(KnnSearchInto<D>(tree, q, options, &scratch, &want, nullptr),
                   "paged knn");
      UnwrapStatus(
          KnnSearchInto<D>(resident, q, options, &scratch, &got, nullptr),
          "resident knn");
      CheckAnswers(got, want, D, k);
    }

    EngineResult paged, res;
    TimeEngines<D>(
        w.queries, rounds,
        [&](const Point<D>& q) {
          UnwrapStatus(
              KnnSearchInto<D>(tree, q, options, &scratch, &got, nullptr),
              "paged knn");
        },
        [&](const Point<D>& q) {
          UnwrapStatus(
              KnnSearchInto<D>(resident, q, options, &scratch, &got, nullptr),
              "resident knn");
        },
        &paged, &res);

    struct Row {
      const char* name;
      const EngineResult& r;
    };
    for (const Row& row : {Row{"paged", paged}, Row{"resident", res}}) {
      const double speedup = row.r.qps / paged.qps;
      table->AddRow({FmtInt(D), std::to_string(k), row.name,
                     FmtDouble(row.r.qps, 0), FmtDouble(speedup, 2),
                     FmtDouble(row.r.allocs_per_query, 3)});
      const std::string suffix = "_" + std::string(row.name) + dim_suffix +
                                 "_k" + std::to_string(k);
      json->emplace_back("qps" + suffix, row.r.qps);
      json->emplace_back("speedup" + suffix, speedup);
      json->emplace_back("allocs_per_query" + suffix, row.r.allocs_per_query);
    }
  }
}

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 2000;
  // Best-of-9: this host's run-to-run drift is large (±10-15% on a shared
  // core), and each engine's best round converges with more samples.
  const size_t rounds = smoke ? 1 : 9;
  const uint32_t frames = 8192;  // covers the whole tree at every D

  PrintHeader("E20", "Resident tier (pinned SoA-native arena vs paged path)");
  std::printf("%zu uniform points, STR-packed, %zu queries x %zu rounds%s\n\n",
              n_points, n_queries, rounds, smoke ? " [smoke]" : "");

  std::vector<std::pair<std::string, double>> json;
  Table table({"D", "k", "engine", "qps", "speedup", "allocs/q"});
  RunDimension<2>(n_points, n_queries, rounds, frames, &table, &json);
  RunDimension<3>(n_points, n_queries, rounds, frames, &table, &json);
  RunDimension<4>(n_points, n_queries, rounds, frames, &table, &json);
  PrintTableAndCsv(table);

  const char* json_path =
      smoke ? "/tmp/BENCH_E20_smoke.json" : "BENCH_E20.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
