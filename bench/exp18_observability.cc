// E18 — observability overhead (metrics registry + sampled tracing).
//
// The observability layer's promise is "negligible when you don't look":
// per query the instrumented worker loop adds one queue-wait histogram
// record, one xorshift sampling draw, a per-kind atomic-counter mirror of
// QueryStats, and one slow-log threshold test; traversals add one pointer
// test per node visit. This experiment prices exactly that delta on a
// memory-resident STR-packed tree. Engines, all answering the same uniform
// kNN workload through the production dispatched KnnSearchInto:
//
//   baseline    — the worker-loop bookkeeping as it shipped before the
//                 observability layer: two clock reads, a latency
//                 histogram record, an ok-counter add, and a plain
//                 QueryStats accumulate.
//   metrics     — the instrumented loop with tracing off (the production
//                 default): queue-wait record, sampling draw at 0%,
//                 per-kind StatCounter mirror, slow-log threshold test.
//   sampled-1pct— the instrumented loop with 1% trace sampling: ~1 query
//                 in 100 runs with the trace context armed and lands in
//                 the slow-query log's reservoir.
//
// Every engine's answers are checked bit-identical to baseline before
// timing. Reported per k: queries/sec and overhead vs baseline (negative
// = slower). Writes BENCH_E18.json for tools/bench_compare.py; `--smoke`
// runs a scaled-down configuration for ctest.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_util/experiment.h"
#include "core/knn.h"
#include "exp_common.h"
#include "obs/histogram.h"
#include "obs/query_metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "rtree/bulk_load.h"
#include "storage/disk_manager.h"

namespace spatial {
namespace bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Paired interleaved timing. The effect being priced (~1-2%) is an order
// of magnitude below this host's run-to-run throughput drift (~±10%), so
// absolute best-of-rounds comparisons across engines are meaningless.
// Instead the engines alternate at sub-millisecond chunk granularity and
// the overhead is the median of per-chunk paired ratios (see
// TimeInterleaved / PairedOverheadPct below).
struct TimedEngine {
  std::function<void(const Point<2>&)> run;
  std::vector<double> round_seconds;
  std::vector<double> chunk_seconds;  // one entry per timed chunk

  double BestSeconds() const {
    return *std::min_element(round_seconds.begin(), round_seconds.end());
  }
  double Qps(size_t n_queries) const {
    return static_cast<double>(n_queries) / BestSeconds();
  }
};

// Chunks of 64 queries (~0.5 ms) alternate between the engines, with the
// order rotated every chunk so no engine systematically runs on a warmer
// cache or a quieter instant; each engine's per-round time is the sum of
// its chunks. Host drift operates on tens-of-milliseconds timescales, so
// within one chunk cycle it is effectively constant and cancels in the
// per-round ratio.
void TimeInterleaved(const std::vector<Point<2>>& queries, size_t rounds,
                     std::vector<TimedEngine*> engines) {
  constexpr size_t kChunk = 64;
  const size_t n_engines = engines.size();
  for (TimedEngine* e : engines) {
    for (const Point<2>& q : queries) e->run(q);  // warm: arenas + pool
  }
  for (size_t r = 0; r < rounds; ++r) {
    for (TimedEngine* e : engines) e->round_seconds.push_back(0.0);
    size_t cycle = r;
    for (size_t base = 0; base < queries.size(); base += kChunk, ++cycle) {
      const size_t end = std::min(base + kChunk, queries.size());
      for (size_t j = 0; j < n_engines; ++j) {
        TimedEngine* e = engines[(cycle + j) % n_engines];
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = base; i < end; ++i) e->run(queries[i]);
        const auto t1 = std::chrono::steady_clock::now();
        const double dt = Seconds(t0, t1);
        e->round_seconds[r] += dt;
        e->chunk_seconds.push_back(dt);
      }
    }
  }
}

// Median over all timed chunks of (engine / baseline) - 1, as a percentage.
// Chunk pairs run the same 64 queries within ~1.5 ms of each other, so the
// per-chunk ratio is immune to drift slower than that; the median over
// rounds x chunks samples (~470 for the full config) discards the chunks
// where a scheduler event hit one side of the pair.
double PairedOverheadPct(const TimedEngine& base, const TimedEngine& engine) {
  std::vector<double> ratios;
  for (size_t r = 0; r < base.chunk_seconds.size(); ++r) {
    ratios.push_back(engine.chunk_seconds[r] / base.chunk_seconds[r]);
  }
  std::sort(ratios.begin(), ratios.end());
  const size_t n = ratios.size();
  const double median = n % 2 == 1
                            ? ratios[n / 2]
                            : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
  return (median - 1.0) * 100.0;
}

struct Workload {
  Workload(size_t n_points, size_t n_queries, uint32_t frames)
      : disk(kPageSize), pool(&disk, frames) {
    Rng rng(kDataSeed);
    data =
        MakePointEntries(GenerateUniform<2>(n_points, UnitBounds<2>(), &rng));
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    UnwrapStatus(loaded.status(), "bulk load");
    tree.emplace(std::move(loaded).value());
    Rng qrng(kQuerySeed);
    queries = GenerateQueries<2>(data, n_queries, QueryDistribution::kUniform,
                                 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<2>> data;
  std::optional<RTree<2>> tree;
  std::vector<Point<2>> queries;
};

void CheckAnswers(const std::vector<Neighbor>& got,
                  const std::vector<Neighbor>& want, const char* engine,
                  uint32_t k) {
  if (got.size() != want.size() ||
      (!got.empty() && std::memcmp(got.data(), want.data(),
                                   got.size() * sizeof(Neighbor)) != 0)) {
    std::fprintf(stderr,
                 "E18: %s diverged from baseline at k=%u (sizes %zu vs %zu)\n",
                 engine, k, got.size(), want.size());
    std::exit(1);
  }
}

// The per-query worker bookkeeping exactly as it shipped before the
// observability layer (PR 4's WorkerLoop, minus the queue machinery the
// single-threaded harness has no equivalent of): clock, search, clock,
// histogram record, atomic ok-count, plain QueryStats accumulate.
struct BaselineLoop {
  LatencyHistogram histogram;
  std::atomic<uint64_t> ok{0};
  QueryStats totals;

  template <typename SearchFn>
  void RunQuery(SearchFn&& search) {
    const auto start = std::chrono::steady_clock::now();
    QueryStats stats;
    search(&stats, nullptr);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    histogram.Record(ns);
    ok.fetch_add(1, std::memory_order_relaxed);
    totals.Add(stats);
  }
};

// The instrumented loop: what the observability layer added to the worker.
struct InstrumentedLoop {
  explicit InstrumentedLoop(uint32_t sample_per_million_,
                            obs::SlowQueryLog* log_)
      : sample_per_million(sample_per_million_), log(log_) {}

  const uint32_t sample_per_million;
  obs::SlowQueryLog* log;
  LatencyHistogram histogram;
  LatencyHistogram queue_wait;
  std::atomic<uint64_t> ok{0};
  obs::AtomicQueryStats kind_stats;
  obs::StatCounter kind_count;
  obs::TraceContext trace_ctx;
  uint64_t rng = 0x9E3779B97F4A7C15ULL;

  template <typename SearchFn>
  void RunQuery(SearchFn&& search) {
    const auto submit = std::chrono::steady_clock::now();
    const auto start = std::chrono::steady_clock::now();
    const uint64_t queue_wait_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(start - submit)
            .count());
    queue_wait.Record(queue_wait_ns);
    const bool sampled = obs::SampleDraw(&rng, sample_per_million);
    obs::TraceContext* trace = nullptr;
    if (sampled) {
      trace_ctx.Reset();
      trace_ctx.SetSpan(obs::SpanKind::kQueueWait, queue_wait_ns);
      trace = &trace_ctx;
    }
    QueryStats stats;
    search(&stats, trace);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    histogram.Record(ns);
    ok.fetch_add(1, std::memory_order_relaxed);
    ++kind_count;
    kind_stats.Add(stats);
    if (sampled) {
      trace_ctx.SetSpan(obs::SpanKind::kExecute, ns);
    }
    if (sampled || ns >= log->slow_threshold_ns()) {
      obs::QueryTraceRecord rec;
      rec.worker = 0;
      rec.k = 0;
      rec.SetKindName("knn");
      rec.latency_ns = ns;
      rec.queue_wait_ns = queue_wait_ns;
      rec.traced = sampled;
      rec.stats = stats;
      if (sampled) {
        for (int l = 0; l < obs::kTraceMaxLevels; ++l) {
          rec.nodes_per_level[l] = trace_ctx.nodes_per_level[l];
        }
      }
      log->Record(rec);
    }
  }
};

void Main(bool smoke) {
  const size_t n_points = smoke ? 4000 : 100000;
  const size_t n_queries = smoke ? 64 : 2000;
  const size_t rounds = smoke ? 1 : 15;
  const uint32_t frames = 8192;  // covers the whole tree

  PrintHeader("E18", "observability overhead (metrics + sampled tracing)");
  std::printf("%zu uniform points, STR-packed, %zu queries x %zu rounds, "
              "D=2 dispatched kNN%s\n\n",
              n_points, n_queries, rounds, smoke ? " [smoke]" : "");

  Workload w(n_points, n_queries, frames);
  const RTree<2>& tree = *w.tree;

  std::vector<std::pair<std::string, double>> json;
  Table table({"k", "engine", "qps", "overhead_pct"});

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    QueryScratch<2> scratch;
    std::vector<Neighbor> want, got;

    // The trace hook must not change answers: run every query twice, with
    // the context armed and not, and require bit-identity.
    obs::TraceContext check_trace;
    for (const Point<2>& q : w.queries) {
      scratch.trace = nullptr;
      UnwrapStatus(KnnSearchInto<2>(tree, q, options, &scratch, &want, nullptr),
                   "baseline knn");
      scratch.trace = &check_trace;
      check_trace.Reset();
      UnwrapStatus(KnnSearchInto<2>(tree, q, options, &scratch, &got, nullptr),
                   "traced knn");
      scratch.trace = nullptr;
      CheckAnswers(got, want, "traced", k);
    }

    BaselineLoop base_loop;
    TimedEngine base_engine;
    base_engine.run = [&](const Point<2>& q) {
      base_loop.RunQuery([&](QueryStats* stats, obs::TraceContext*) {
        UnwrapStatus(
            KnnSearchInto<2>(tree, q, options, &scratch, &got, stats),
            "baseline knn");
      });
    };

    obs::SlowQueryLog::Options log_options;  // default 10 ms threshold
    obs::SlowQueryLog metrics_log(log_options);
    InstrumentedLoop metrics_loop(/*sample_per_million=*/0, &metrics_log);
    TimedEngine metrics_engine;
    metrics_engine.run = [&](const Point<2>& q) {
      metrics_loop.RunQuery([&](QueryStats* stats, obs::TraceContext* trace) {
        scratch.trace = trace;
        UnwrapStatus(
            KnnSearchInto<2>(tree, q, options, &scratch, &got, stats),
            "metrics knn");
        scratch.trace = nullptr;
      });
    };

    obs::SlowQueryLog sampled_log(log_options);
    InstrumentedLoop sampled_loop(/*sample_per_million=*/10'000, &sampled_log);
    TimedEngine sampled_engine;
    sampled_engine.run = [&](const Point<2>& q) {
      sampled_loop.RunQuery([&](QueryStats* stats, obs::TraceContext* trace) {
        scratch.trace = trace;
        UnwrapStatus(
            KnnSearchInto<2>(tree, q, options, &scratch, &got, stats),
            "sampled knn");
        scratch.trace = nullptr;
      });
    };

    TimeInterleaved(w.queries, rounds,
                    {&base_engine, &metrics_engine, &sampled_engine});

    // The mirror must agree with the plain accumulate it replaced (both
    // loops ran warm-pass + `rounds` timed passes over the same queries).
    const QueryStats mirrored = metrics_loop.kind_stats.Snapshot();
    const QueryStats plain = base_loop.totals;
    if (mirrored.nodes_visited != plain.nodes_visited) {
      std::fprintf(stderr,
                   "E18: stat mirror diverged at k=%u: %llu vs %llu nodes\n",
                   k, (unsigned long long)mirrored.nodes_visited,
                   (unsigned long long)plain.nodes_visited);
      std::exit(1);
    }

    struct Row {
      const char* name;
      const TimedEngine* engine;
    };
    for (const Row& row : {Row{"baseline", &base_engine},
                           Row{"metrics", &metrics_engine},
                           Row{"sampled-1pct", &sampled_engine}}) {
      const double qps = row.engine->Qps(w.queries.size());
      const double overhead = PairedOverheadPct(base_engine, *row.engine);
      table.AddRow({std::to_string(k), row.name, FmtDouble(qps, 0),
                    FmtDouble(overhead, 2)});
      const std::string suffix =
          std::string("_") + row.name + "_k" + std::to_string(k);
      json.emplace_back("qps" + suffix, qps);
      json.emplace_back("overhead_pct" + suffix, overhead);
    }
  }

  PrintTableAndCsv(table);

  const char* json_path =
      smoke ? "/tmp/BENCH_E18_smoke.json" : "BENCH_E18.json";
  WriteBenchJson(json_path, json, /*update_manifest=*/!smoke);
  std::printf("wrote %s\n", json_path);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  spatial::bench::Main(smoke);
  return 0;
}
