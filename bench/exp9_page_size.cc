// E10 (ablation): effect of the page size — i.e., of the node fan-out — on
// NN cost. Mid-1990s pages were 1-2 KiB; modern systems use 4-8 KiB.
// Expected: larger pages -> higher fan-out -> shallower trees and fewer
// page accesses per query, but more bytes transferred per access.

#include "exp_common.h"
#include "storage/disk_manager.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E10", "page size / fan-out ablation (N = 64000, k = 4)");
  Table table({"page[B]", "fan-out", "height", "pages/query", "KiB/query",
               "us/query"});
  auto data = MakeDataset(Family::kUniform, kN, kDataSeed);
  for (uint32_t page_size : {512u, 1024u, 2048u, 4096u, 8192u}) {
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    page_size, kBufferPages),
                        "build");
    auto queries = MakeQueries(data);
    KnnOptions knn;
    knn.k = 4;
    auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
    table.AddRow(
        {FmtInt(page_size), FmtInt(built.tree->max_entries()),
         FmtInt(built.tree->height()), FmtDouble(batch.pages.mean(), 2),
         FmtDouble(batch.pages.mean() * page_size / 1024.0, 1),
         FmtDouble(batch.wall_micros.mean(), 1)});
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
