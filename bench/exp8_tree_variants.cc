// E9: build-method ablation. How the index construction method (dynamic
// inserts with linear/quadratic/R* splits, or STR/Hilbert/Morton packing)
// affects NN page accesses. Expected: packed trees need fewer pages than
// dynamic ones; quadratic beats linear; R* is the best dynamic variant.

#include <chrono>

#include "exp_common.h"
#include "rtree/validator.h"

namespace spatial {
namespace bench {
namespace {

constexpr size_t kN = 64000;

void Run() {
  PrintHeader("E9", "tree construction ablation under NN load (N = 64000)");
  Table table({"build", "family", "build-ms", "height", "nodes", "leaf-fill",
               "overlap", "pages/query", "us/query"});
  for (Family family : {Family::kUniform, Family::kTigerLike}) {
    auto data = MakeDataset(family, kN, kDataSeed);
    auto queries = MakeQueries(data);
    for (BuildMethod method :
         {BuildMethod::kInsertLinear, BuildMethod::kInsertQuadratic,
          BuildMethod::kInsertRStar, BuildMethod::kBulkStr,
          BuildMethod::kBulkHilbert, BuildMethod::kBulkMorton}) {
      const auto start = std::chrono::steady_clock::now();
      auto built =
          Unwrap(BuildTree2D(data, method, kPageSize, kBufferPages), "build");
      const auto stop = std::chrono::steady_clock::now();
      const double build_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      auto report =
          Unwrap(ValidateTree<2>(*built.tree, /*check_min_fill=*/false),
                 "validate");
      KnnOptions knn;
      knn.k = 4;
      auto batch = Unwrap(RunKnnBatch(*built.tree, queries, knn), "batch");
      table.AddRow({BuildMethodName(method), FamilyName(family),
                    FmtDouble(build_ms, 1), FmtInt(report.height),
                    FmtInt(report.nodes), FmtDouble(report.avg_leaf_fill, 3),
                    FmtDouble(report.total_sibling_overlap(), 3),
                    FmtDouble(batch.pages.mean(), 2),
                    FmtDouble(batch.wall_micros.mean(), 1)});
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
