// E3 (paper Fig. "NN on real/TIGER data"): pages accessed per 1-NN query vs
// dataset cardinality on the synthetic TIGER-like street data (see the
// substitution note in DESIGN.md). Expected shape: logarithmic growth, with
// slightly higher counts than uniform data at equal N due to skew.

#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

void Run() {
  PrintHeader("E3",
              "page accesses vs dataset size (TIGER-like street data, k=1)");
  Table table({"N", "family", "height", "pages/query", "leaf", "internal",
               "us/query"});
  for (size_t n : {2000u, 8000u, 32000u, 128000u, 256000u}) {
    for (Family family : {Family::kTigerLike, Family::kUniform}) {
      auto data = MakeDataset(family, n, kDataSeed);
      auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                      kPageSize, kBufferPages),
                          "build");
      auto queries = MakeQueries(data);
      auto batch =
          Unwrap(RunKnnBatch(*built.tree, queries, KnnOptions{}), "batch");
      table.AddRow({FmtInt(n), FamilyName(family),
                    FmtInt(built.tree->height()),
                    FmtDouble(batch.pages.mean(), 2),
                    FmtDouble(batch.leaf_pages.mean(), 2),
                    FmtDouble(batch.internal_pages.mean(), 2),
                    FmtDouble(batch.wall_micros.mean(), 1)});
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
