// Google-benchmark microbenchmarks for the hot paths: metric evaluation,
// node codec access, buffer pool fetches, inserts, bulk loading, and the
// k-NN search itself.

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "storage/disk_manager.h"
#include "bench_util/experiment.h"
#include "common/rng.h"
#include "core/best_first.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "baselines/grid_file.h"
#include "baselines/kd_tree.h"
#include "geom/metrics.h"
#include "rtree/bulk_load.h"
#include "storage/heap_file.h"

namespace spatial {
namespace {

std::vector<Rect2> RandomRects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect2> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point2 a{{rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    Point2 b{{a[0] + rng.Uniform(0, 10), a[1] + rng.Uniform(0, 10)}};
    rects.push_back(Rect2::FromCorners(a, b));
  }
  return rects;
}

void BM_MinDist(benchmark::State& state) {
  auto rects = RandomRects(1024, 1);
  const Point2 q{{50.0, 50.0}};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinDistSq(q, rects[i++ & 1023]));
  }
}
BENCHMARK(BM_MinDist);

void BM_MinMaxDist(benchmark::State& state) {
  auto rects = RandomRects(1024, 2);
  const Point2 q{{50.0, 50.0}};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinMaxDistSq(q, rects[i++ & 1023]));
  }
}
BENCHMARK(BM_MinMaxDist);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 16);
  PageId id;
  {
    auto page = pool.NewPage();
    id = page->id();
  }
  for (auto _ : state) {
    auto handle = pool.Fetch(id);
    benchmark::DoNotOptimize(handle->data());
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMiss(benchmark::State& state) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 2);
  PageId a, b, c;
  {
    auto pa = pool.NewPage();
    a = pa->id();
  }
  {
    auto pb = pool.NewPage();
    b = pb->id();
  }
  {
    auto pc = pool.NewPage();
    c = pc->id();
  }
  // Cycling three pages through two frames forces a miss per fetch.
  PageId ids[3] = {a, b, c};
  size_t i = 0;
  for (auto _ : state) {
    auto handle = pool.Fetch(ids[i++ % 3]);
    benchmark::DoNotOptimize(handle->data());
  }
}
BENCHMARK(BM_BufferPoolFetchMiss);

void BM_Insert(benchmark::State& state) {
  const auto split = static_cast<SplitAlgorithm>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager disk(1024);
    BufferPool pool(&disk, 256);
    RTreeOptions options;
    options.split = split;
    auto tree = RTree<2>::Create(&pool, options);
    auto points = GenerateUniform<2>(4096, UnitBounds<2>(), &rng);
    state.ResumeTiming();
    for (size_t i = 0; i < points.size(); ++i) {
      benchmark::DoNotOptimize(
          tree->Insert(Rect2::FromPoint(points[i]), i).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Insert)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BulkLoadStr(benchmark::State& state) {
  Rng rng(4);
  auto data = MakePointEntries(
      GenerateUniform<2>(static_cast<size_t>(state.range(0)),
                         UnitBounds<2>(), &rng));
  for (auto _ : state) {
    DiskManager disk(1024);
    BufferPool pool(&disk, 256);
    auto tree =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    benchmark::DoNotOptimize(tree.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkLoadStr)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

struct KnnFixtureState {
  std::optional<BuiltTree> built;
  std::vector<Point2> queries;
};

KnnFixtureState& KnnFixture(size_t n) {
  static KnnFixtureState states[2];
  KnnFixtureState& s = states[n == 65536 ? 1 : 0];
  if (!s.built.has_value()) {
    Rng rng(5);
    auto data = MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
    auto built = BuildTree2D(data, BuildMethod::kInsertQuadratic, 1024, 4096);
    s.built.emplace(std::move(built).value());
    s.queries = GenerateQueries<2>(data, 512, QueryDistribution::kUniform,
                                   0.0, &rng);
  }
  return s;
}

void BM_KnnDepthFirst(benchmark::State& state) {
  auto& fixture = KnnFixture(static_cast<size_t>(state.range(0)));
  KnnOptions knn;
  knn.k = static_cast<uint32_t>(state.range(1));
  size_t i = 0;
  for (auto _ : state) {
    auto result = KnnSearch<2>(*fixture.built->tree,
                               fixture.queries[i++ & 511], knn, nullptr);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_KnnDepthFirst)
    ->Args({4096, 1})
    ->Args({4096, 10})
    ->Args({65536, 1})
    ->Args({65536, 10});

void BM_KnnBestFirst(benchmark::State& state) {
  auto& fixture = KnnFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        BestFirstKnn<2>(*fixture.built->tree, fixture.queries[i++ & 511],
                        static_cast<uint32_t>(state.range(1)), nullptr);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_KnnBestFirst)
    ->Args({4096, 1})
    ->Args({4096, 10})
    ->Args({65536, 1})
    ->Args({65536, 10});

void BM_HeapFileAppend(benchmark::State& state) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  auto heap = HeapFile::Create(&pool);
  const std::string record(64, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap->Append(record).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapFileAppend);

void BM_HeapFileRead(benchmark::State& state) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  auto heap = HeapFile::Create(&pool);
  std::vector<RecordId> rids;
  for (int i = 0; i < 1024; ++i) {
    rids.push_back(heap->Append(std::string(64, 'r')).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap->Read(rids[i++ & 1023]).ok());
  }
}
BENCHMARK(BM_HeapFileRead);

void BM_GridFileKnn(benchmark::State& state) {
  Rng rng(6);
  auto data = MakePointEntries(
      GenerateUniform<2>(65536, UnitBounds<2>(), &rng));
  GridFile<2> grid(data, 128);
  auto queries = GenerateQueries<2>(data, 512,
                                    QueryDistribution::kUniform, 0.0, &rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Knn(queries[i++ & 511], 1, nullptr).ok());
  }
}
BENCHMARK(BM_GridFileKnn);

void BM_KdTreeKnn(benchmark::State& state) {
  Rng rng(7);
  auto data = MakePointEntries(
      GenerateUniform<2>(65536, UnitBounds<2>(), &rng));
  KdTree<2> tree(data);
  auto queries = GenerateQueries<2>(data, 512,
                                    QueryDistribution::kUniform, 0.0, &rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Knn(queries[i++ & 511], 1, nullptr).ok());
  }
}
BENCHMARK(BM_KdTreeKnn);

}  // namespace
}  // namespace spatial

BENCHMARK_MAIN();
