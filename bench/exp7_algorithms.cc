// E8: algorithm comparison. The paper's ordered depth-first branch-and-bound
// vs: global best-first (page-optimal comparator), repeated range expansion
// (the naive R-tree alternative), a uniform grid, and a full linear scan.
// Expected shape: branch-and-bound beats the scan by orders of magnitude at
// large N and stays within a whisker of the best-first page counts.

#include <chrono>

#include "baselines/grid_file.h"
#include "baselines/kd_tree.h"
#include "baselines/linear_scan.h"
#include "baselines/range_expand.h"
#include "core/best_first.h"
#include "exp_common.h"

namespace spatial {
namespace bench {
namespace {

void Run() {
  PrintHeader("E8", "k-NN algorithm comparison (uniform data)");
  Table table({"N", "k", "algorithm", "pages/query", "objects/query",
               "us/query"});
  for (size_t n : {4000u, 16000u, 64000u, 256000u}) {
    auto data = MakeDataset(Family::kUniform, n, kDataSeed);
    auto built = Unwrap(BuildTree2D(data, BuildMethod::kInsertQuadratic,
                                    kPageSize, kBufferPages),
                        "build");
    GridFile<2> grid(data, 64);
    KdTree<2> kd(data);
    auto queries = MakeQueries(data, 100);
    for (uint32_t k : {1u, 10u}) {
      QueryStats df_total, bf_total, re_total;
      GridQueryStats grid_total;
      KdQueryStats kd_total;
      double df_us = 0, bf_us = 0, re_us = 0, grid_us = 0, kd_us = 0,
             scan_us = 0;
      uint64_t scan_objects = 0;
      for (const Point2& q : queries) {
        using Clock = std::chrono::steady_clock;
        KnnOptions knn;
        knn.k = k;
        auto t0 = Clock::now();
        Unwrap(KnnSearch<2>(*built.tree, q, knn, &df_total), "df");
        auto t1 = Clock::now();
        Unwrap(BestFirstKnn<2>(*built.tree, q, k, &bf_total), "bf");
        auto t2 = Clock::now();
        Unwrap(RangeExpandKnn<2>(*built.tree, q, k, 0.0, &re_total), "re");
        auto t3 = Clock::now();
        Unwrap(grid.Knn(q, k, &grid_total), "grid");
        auto t4 = Clock::now();
        Unwrap(kd.Knn(q, k, &kd_total), "kd");
        auto t4b = Clock::now();
        QueryStats scan_stats;
        LinearScanKnn<2>(data, q, k, &scan_stats);
        auto t5 = Clock::now();
        scan_objects += scan_stats.objects_examined;
        const auto us = [](auto a, auto b) {
          return std::chrono::duration<double, std::micro>(b - a).count();
        };
        df_us += us(t0, t1);
        bf_us += us(t1, t2);
        re_us += us(t2, t3);
        grid_us += us(t3, t4);
        kd_us += us(t4, t4b);
        scan_us += us(t4b, t5);
      }
      const double nq = static_cast<double>(queries.size());
      auto add = [&](const char* name, double pages, double objects,
                     double micros) {
        table.AddRow({FmtInt(n), FmtInt(k), name, FmtDouble(pages, 2),
                      FmtDouble(objects, 1), FmtDouble(micros, 1)});
      };
      add("bb-depth-first (paper)",
          static_cast<double>(df_total.nodes_visited) / nq,
          static_cast<double>(df_total.objects_examined) / nq, df_us / nq);
      add("best-first",
          static_cast<double>(bf_total.nodes_visited) / nq,
          static_cast<double>(bf_total.objects_examined) / nq, bf_us / nq);
      add("range-expand",
          static_cast<double>(re_total.nodes_visited) / nq,
          static_cast<double>(re_total.objects_examined) / nq, re_us / nq);
      add("grid-file (cells)",
          static_cast<double>(grid_total.cells_examined) / nq,
          static_cast<double>(grid_total.objects_examined) / nq,
          grid_us / nq);
      add("kd-tree (in-memory nodes)",
          static_cast<double>(kd_total.nodes_visited) / nq,
          static_cast<double>(kd_total.nodes_visited) / nq, kd_us / nq);
      add("linear-scan",
          static_cast<double>(LinearScanPageCost<2>(n, kPageSize)),
          static_cast<double>(scan_objects) / nq, scan_us / nq);
    }
  }
  PrintTableAndCsv(table);
}

}  // namespace
}  // namespace bench
}  // namespace spatial

int main() {
  spatial::bench::Run();
  return 0;
}
