// End-to-end cartographic pipeline over the TIGER-like street generator
// (the reproduction's substitute for the paper's TIGER/Line county files):
//
//   1. generate a street network and persist midpoints as CSV,
//   2. bulk-load an R-tree over the segment MBRs,
//   3. validate the structure and print a tree profile,
//   4. run nearest-street queries and cross-check with a linear scan,
//   5. reopen the index from "disk" through a cold, tiny buffer pool.
//
//   $ ./build/examples/tiger_pipeline [num_segments]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/disk_manager.h"
#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "rtree/bulk_load.h"
#include "rtree/validator.h"

int main(int argc, char** argv) {
  using namespace spatial;
  const size_t num_segments =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;

  // 1. Generate the county.
  Rng rng(1995);
  auto network = GenerateTigerLike(num_segments, UnitBounds<2>(),
                                   TigerLikeOptions{}, &rng);
  std::printf("generated %zu street segments around %zu urban cores\n",
              network.segments.size(), network.core_centers.size());
  const std::string csv = "/tmp/tiger_like_midpoints.csv";
  if (Status s = WritePointsCsv(csv, SegmentMidpoints(network.segments));
      s.ok()) {
    std::printf("midpoints written to %s\n", csv.c_str());
  }

  // 2. Index the segment MBRs.
  DiskManager disk(1024);
  BufferPool pool(&disk, 2048);
  auto data = SegmentsToEntries(network.segments);
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data,
                            BulkLoadMethod::kHilbert);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  RTree<2> tree = std::move(loaded).value();

  // 3. Validate and profile.
  auto report = ValidateTree<2>(tree, /*check_min_fill=*/false);
  if (!report.ok()) {
    std::fprintf(stderr, "validation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("tree: height %d, %llu nodes, avg leaf fill %.2f, "
              "%llu pages on disk\n",
              report->height,
              static_cast<unsigned long long>(report->nodes),
              report->avg_leaf_fill,
              static_cast<unsigned long long>(disk.live_pages()));
  std::printf("nodes per level (leaves first):");
  for (uint64_t n : report->nodes_per_level) {
    std::printf(" %llu", static_cast<unsigned long long>(n));
  }
  std::printf("\n");

  // 4. Nearest-street queries, verified against a scan.
  auto queries =
      GenerateQueries<2>(data, 20, QueryDistribution::kUniform, 0.0, &rng);
  uint64_t pages_total = 0;
  for (const Point2& q : queries) {
    KnnOptions options;
    options.k = 3;
    QueryStats stats;
    auto result = KnnSearch<2>(tree, q, options, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    pages_total += stats.nodes_visited;
    auto expected = LinearScanKnn<2>(data, q, 3, nullptr);
    for (size_t i = 0; i < expected.size(); ++i) {
      if ((*result)[i].dist_sq != expected[i].dist_sq) {
        std::fprintf(stderr, "MISMATCH against linear scan!\n");
        return 1;
      }
    }
  }
  std::printf("%zu 3-NN queries verified against linear scan, "
              "avg %.1f pages/query\n",
              queries.size(),
              static_cast<double>(pages_total) /
                  static_cast<double>(queries.size()));

  // 5. Cold reopen through a 4-frame pool.
  if (Status s = pool.FlushAll(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  BufferPool cold(&disk, 4);
  auto reopened = RTree<2>::Open(&cold, RTreeOptions{}, tree.root_page());
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  cold.ResetStats();
  disk.ResetStats();
  KnnOptions options;
  auto nearest = KnnSearch<2>(*reopened, {{0.5, 0.5}}, options, nullptr);
  if (!nearest.ok() || nearest->empty()) {
    std::fprintf(stderr, "cold query failed\n");
    return 1;
  }
  std::printf("cold reopen: nearest street to the center at distance %.4f "
              "(%llu physical reads through a 4-frame pool)\n",
              std::sqrt((*nearest)[0].dist_sq),
              static_cast<unsigned long long>(disk.stats().physical_reads));
  return 0;
}
