// Map analytics: the extension APIs working together on one scene —
// a spatial join (which bus stops lie on which streets), constrained k-NN
// (closest stops inside the visible viewport), farthest neighbors
// (coverage extremes), and incremental distance browsing.
//
//   $ ./build/examples/map_analytics

#include <cstdio>

#include "common/rng.h"
#include "core/constrained.h"
#include "core/farthest.h"
#include "core/incremental.h"
#include "core/spatial_join.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "rtree/bulk_load.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

int main() {
  using namespace spatial;
  DiskManager disk(1024);
  BufferPool pool(&disk, 1024);
  Rng rng(42);

  // Streets (extended objects) and bus stops (points), separate indexes.
  auto network =
      GenerateTigerLike(20000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  auto streets = SegmentsToEntries(network.segments);
  auto stops =
      MakePointEntries(GenerateUniform<2>(800, UnitBounds<2>(), &rng));

  auto street_tree = BulkLoad<2>(&pool, RTreeOptions{}, streets,
                                 BulkLoadMethod::kHilbert);
  auto stop_tree =
      BulkLoad<2>(&pool, RTreeOptions{}, stops, BulkLoadMethod::kStr);
  if (!street_tree.ok() || !stop_tree.ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("indexed %zu streets and %zu bus stops\n", streets.size(),
              stops.size());

  // 1. Spatial join: stop-MBR x street-MBR overlaps (candidate matches of
  //    a map-matching pipeline).
  std::vector<JoinPair> matches;
  JoinStats join_stats;
  if (!SpatialJoin<2>(*stop_tree, *street_tree, &matches, &join_stats)
           .ok()) {
    std::fprintf(stderr, "join failed\n");
    return 1;
  }
  std::printf("join: %zu stop/street candidate pairs "
              "(%llu pages, %llu comparisons)\n",
              matches.size(),
              static_cast<unsigned long long>(join_stats.pages_outer +
                                              join_stats.pages_inner),
              static_cast<unsigned long long>(join_stats.comparisons));

  // 2. Constrained k-NN: closest stops inside the visible viewport.
  const Rect2 viewport{{{0.40, 0.40}}, {{0.60, 0.60}}};
  const Point2 user{{0.45, 0.52}};
  KnnOptions options;
  options.k = 3;
  auto visible =
      ConstrainedKnnSearch<2>(*stop_tree, user, viewport, options, nullptr);
  if (!visible.ok()) return 1;
  std::printf("3 closest stops inside the viewport:");
  for (const Neighbor& n : *visible) {
    const Point2 p = stops[n.id].mbr.Center();
    std::printf("  (%.3f, %.3f)", p[0], p[1]);
  }
  std::printf("\n");

  // 3. Farthest neighbors: the stops a depot at the center covers worst.
  auto extremes = FarthestSearch<2>(*stop_tree, {{0.5, 0.5}}, 3, nullptr);
  if (!extremes.ok()) return 1;
  std::printf("3 stops farthest from a central depot:");
  for (const Neighbor& n : *extremes) {
    std::printf("  d=%.3f", std::sqrt(n.dist_sq));
  }
  std::printf("\n");

  // 4. Payloads: the index stores geometry + ids; the actual stop records
  //    (names here) live in a slotted-page heap file on the same pool.
  auto heap = HeapFile::Create(&pool);
  if (!heap.ok()) return 1;
  std::vector<RecordId> stop_records(stops.size());
  for (size_t i = 0; i < stops.size(); ++i) {
    auto rid = heap->Append("stop #" + std::to_string(i) +
                            (i % 2 == 0 ? " (accessible)" : ""));
    if (!rid.ok()) return 1;
    stop_records[i] = *rid;
  }

  // 5. Distance browsing: walk outward from the user until a stop with an
  //    even id (an accessible stop, per the records) appears — k is
  //    unknown up front.
  IncrementalKnn<2> browse(*stop_tree, user, nullptr);
  int examined = 0;
  for (;;) {
    auto next = browse.Next();
    if (!next.ok() || !next->has_value()) break;
    ++examined;
    if ((*next)->id % 2 == 0) {
      auto record = heap->Read(stop_records[(*next)->id]);
      std::printf("first accessible stop is \"%s\" at distance %.3f "
                  "(%d stops browsed)\n",
                  record.ok() ? record->c_str() : "?",
                  std::sqrt((*next)->dist_sq), examined);
      break;
    }
  }
  return 0;
}
