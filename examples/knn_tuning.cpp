// Tuning tour: how the knobs of the SIGMOD'95 search (ABL ordering,
// pruning strategies, k) and the index layout (split algorithm vs packing)
// change the cost of a query on YOUR data — a miniature, single-dataset
// version of the full experiment suite in bench/.
//
//   $ ./build/examples/knn_tuning

#include <cstdio>
#include <iostream>

#include "bench_util/experiment.h"
#include "bench_util/table.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"

int main() {
  using namespace spatial;
  Rng rng(7);
  auto data =
      MakePointEntries(GenerateUniform<2>(20000, UnitBounds<2>(), &rng));
  auto queries =
      GenerateQueries<2>(data, 100, QueryDistribution::kUniform, 0.0, &rng);

  auto run = [&](const RTree<2>& tree, const KnnOptions& options) {
    auto batch = RunKnnBatch(tree, queries, options);
    return batch.ok() ? batch->pages.mean() : -1.0;
  };

  // --- Knob 1: ABL ordering -------------------------------------------
  {
    auto built = BuildTree2D(data, BuildMethod::kInsertQuadratic, 1024, 512);
    if (!built.ok()) return 1;
    Table table({"ordering", "pages/query (k=4)"});
    for (AblOrdering ordering :
         {AblOrdering::kMinDist, AblOrdering::kMinMaxDist,
          AblOrdering::kNone}) {
      KnnOptions options;
      options.k = 4;
      options.ordering = ordering;
      table.AddRow({AblOrderingName(ordering),
                    FmtDouble(run(*built->tree, options), 2)});
    }
    std::printf("Active Branch List ordering (paper: use MINDIST):\n");
    table.Print(std::cout);
  }

  // --- Knob 2: pruning strategies --------------------------------------
  {
    auto built = BuildTree2D(data, BuildMethod::kInsertQuadratic, 1024, 512);
    if (!built.ok()) return 1;
    Table table({"strategies", "pages/query (k=1)"});
    const struct {
      const char* name;
      bool s1, s2, s3;
    } configs[] = {
        {"all off (full traversal)", false, false, false},
        {"S3 only", false, false, true},
        {"S1+S2+S3 (paper)", true, true, true},
    };
    for (const auto& config : configs) {
      KnnOptions options;
      options.use_s1 = config.s1;
      options.use_s2 = config.s2;
      options.use_s3 = config.s3;
      table.AddRow(
          {config.name, FmtDouble(run(*built->tree, options), 2)});
    }
    std::printf("\nPruning strategies:\n");
    table.Print(std::cout);
  }

  // --- Knob 3: index construction --------------------------------------
  {
    Table table({"build method", "pages/query (k=4)"});
    for (BuildMethod method :
         {BuildMethod::kInsertLinear, BuildMethod::kInsertQuadratic,
          BuildMethod::kInsertRStar, BuildMethod::kBulkHilbert}) {
      auto built = BuildTree2D(data, method, 1024, 512);
      if (!built.ok()) return 1;
      KnnOptions options;
      options.k = 4;
      table.AddRow({BuildMethodName(method),
                    FmtDouble(run(*built->tree, options), 2)});
    }
    std::printf("\nIndex construction (same data, same queries):\n");
    table.Print(std::cout);
  }
  return 0;
}
