// Quickstart: build an R-tree on a simulated disk, insert points, and run
// the SIGMOD'95 branch-and-bound k-nearest-neighbor search.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/knn.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

int main() {
  using namespace spatial;

  // 1. Storage: a simulated disk with 1 KiB pages and an LRU buffer pool.
  DiskManager disk(/*page_size=*/1024);
  BufferPool pool(&disk, /*capacity=*/256);

  // 2. An empty R-tree (quadratic split, 40% min fill — the paper's setup).
  auto created = RTree<2>::Create(&pool, RTreeOptions{});
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  RTree<2> tree = std::move(created).value();

  // 3. Index a few cities (x = longitude-ish, y = latitude-ish).
  struct City {
    const char* name;
    double x, y;
  };
  const City cities[] = {
      {"San Jose", -121.9, 37.3},   {"San Francisco", -122.4, 37.8},
      {"Los Angeles", -118.2, 34.1}, {"Seattle", -122.3, 47.6},
      {"Denver", -104.9, 39.7},      {"Chicago", -87.6, 41.9},
      {"Boston", -71.1, 42.4},       {"New York", -74.0, 40.7},
      {"Austin", -97.7, 30.3},       {"Portland", -122.7, 45.5},
  };
  for (size_t i = 0; i < std::size(cities); ++i) {
    const Rect2 mbr = Rect2::FromPoint({{cities[i].x, cities[i].y}});
    if (Status s = tree.Insert(mbr, i); !s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %llu cities, tree height %d\n",
              static_cast<unsigned long long>(tree.size()), tree.height());

  // 4. Find the 3 cities nearest to Sacramento.
  const Point2 query{{-121.5, 38.6}};
  KnnOptions options;
  options.k = 3;
  QueryStats stats;
  auto result = KnnSearch<2>(tree, query, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("3 nearest cities to (%.1f, %.1f):\n", query[0], query[1]);
  for (const Neighbor& n : *result) {
    std::printf("  %-14s at distance %.2f\n", cities[n.id].name,
                std::sqrt(n.dist_sq));
  }
  std::printf("(%llu R-tree pages read, %llu distance computations)\n",
              static_cast<unsigned long long>(stats.nodes_visited),
              static_cast<unsigned long long>(stats.distance_computations));
  return 0;
}
