// POI finder: the paper's motivating scenario. A synthetic city holds
// thousands of points of interest in several categories; users issue
// interactive "k closest pharmacies to me" queries. One R-tree per
// category, built once; each query is a branch-and-bound k-NN search.
//
//   $ ./build/examples/poi_finder

#include <cstdio>
#include <optional>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "core/knn.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/bulk_load.h"

namespace {

using namespace spatial;

struct Category {
  const char* name;
  size_t count;
  uint32_t clusters;  // how concentrated the category is in the city
};

struct CategoryIndex {
  std::optional<RTree<2>> tree;
  std::vector<Point2> locations;
};

constexpr Category kCategories[] = {
    {"restaurant", 4000, 24},
    {"pharmacy", 600, 40},
    {"fuel station", 350, 60},
    {"hospital", 40, 8},
};

}  // namespace

int main() {
  DiskManager disk(1024);
  BufferPool pool(&disk, 1024);
  Rng rng(2024);

  // Build one packed index per category. Different categories cluster
  // differently: restaurants crowd downtown, fuel stations spread out.
  std::vector<CategoryIndex> indexes;
  for (const Category& category : kCategories) {
    ClusteredOptions distribution;
    distribution.num_clusters = category.clusters;
    distribution.sigma_fraction = 0.05;
    CategoryIndex index;
    index.locations = GenerateClustered<2>(category.count, UnitBounds<2>(),
                                           distribution, &rng);
    auto loaded = BulkLoad<2>(&pool, RTreeOptions{},
                              MakePointEntries(index.locations),
                              BulkLoadMethod::kHilbert);
    if (!loaded.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    index.tree.emplace(std::move(loaded).value());
    indexes.push_back(std::move(index));
    std::printf("indexed %5zu %-12s (tree height %d)\n", category.count,
                category.name, indexes.back().tree->height());
  }

  // A user wanders through the city and asks for the closest POIs.
  const Point2 user_positions[] = {
      {{0.52, 0.48}},  // downtown
      {{0.05, 0.93}},  // suburb corner
      {{0.80, 0.20}},
  };
  for (const Point2& user : user_positions) {
    std::printf("\nuser at (%.2f, %.2f):\n", user[0], user[1]);
    for (size_t c = 0; c < indexes.size(); ++c) {
      KnnOptions options;
      options.k = 3;
      QueryStats stats;
      auto result = KnnSearch<2>(*indexes[c].tree, user, options, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("  closest %-12s:", kCategories[c].name);
      for (const Neighbor& n : *result) {
        const Point2& p = indexes[c].locations[n.id];
        std::printf("  (%.3f, %.3f) d=%.3f", p[0], p[1],
                    std::sqrt(n.dist_sq));
      }
      std::printf("   [%llu pages]\n",
                  static_cast<unsigned long long>(stats.nodes_visited));
    }
  }
  return 0;
}
