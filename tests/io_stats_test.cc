// Aggregation semantics of the storage/service counter structs: the
// query service folds per-worker counters together with operator+=, so
// these stay in lockstep with the struct fields.

#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include "obs/histogram.h"

namespace spatial {
namespace {

TEST(IoStatsTest, PlusEqualsSumsEveryField) {
  IoStats a;
  a.physical_reads = 1;
  a.physical_writes = 2;
  a.pages_allocated = 3;
  a.pages_freed = 4;

  IoStats b;
  b.physical_reads = 10;
  b.physical_writes = 20;
  b.pages_allocated = 30;
  b.pages_freed = 40;

  a += b;
  EXPECT_EQ(a.physical_reads, 11u);
  EXPECT_EQ(a.physical_writes, 22u);
  EXPECT_EQ(a.pages_allocated, 33u);
  EXPECT_EQ(a.pages_freed, 44u);
  // `b` is untouched.
  EXPECT_EQ(b.physical_reads, 10u);
}

TEST(IoStatsTest, BinaryPlusDoesNotMutateOperands) {
  IoStats a;
  a.physical_reads = 5;
  IoStats b;
  b.physical_reads = 7;
  const IoStats c = a + b;
  EXPECT_EQ(c.physical_reads, 12u);
  EXPECT_EQ(a.physical_reads, 5u);
  EXPECT_EQ(b.physical_reads, 7u);
}

TEST(BufferStatsTest, PlusEqualsSumsEveryField) {
  BufferStats a;
  a.logical_fetches = 100;
  a.hits = 60;
  a.misses = 40;
  a.evictions = 10;
  a.dirty_writebacks = 5;

  BufferStats b;
  b.logical_fetches = 50;
  b.hits = 25;
  b.misses = 25;
  b.evictions = 3;
  b.dirty_writebacks = 1;

  a += b;
  EXPECT_EQ(a.logical_fetches, 150u);
  EXPECT_EQ(a.hits, 85u);
  EXPECT_EQ(a.misses, 65u);
  EXPECT_EQ(a.evictions, 13u);
  EXPECT_EQ(a.dirty_writebacks, 6u);
  EXPECT_DOUBLE_EQ(a.HitRate(), 85.0 / 150.0);
}

TEST(BufferStatsTest, AggregatedHitRateIsWeightedNotAveraged) {
  BufferStats hot;  // 100% hit rate, many fetches
  hot.logical_fetches = 90;
  hot.hits = 90;
  BufferStats cold;  // 0% hit rate, few fetches
  cold.logical_fetches = 10;
  cold.misses = 10;
  BufferStats sum = hot + cold;
  EXPECT_DOUBLE_EQ(sum.HitRate(), 0.9);  // not (1.0 + 0.0) / 2
}

TEST(LatencySnapshotTest, MergeAndPercentiles) {
  LatencyHistogram worker1;
  LatencyHistogram worker2;
  // worker1: 90 fast observations (~1 us); worker2: 10 slow (~1 ms).
  for (int i = 0; i < 90; ++i) worker1.Record(1000);
  for (int i = 0; i < 10; ++i) worker2.Record(1000000);

  LatencySnapshot merged = worker1.Snapshot();
  merged += worker2.Snapshot();
  EXPECT_EQ(merged.total_count, 100u);
  EXPECT_EQ(merged.max, 1000000u);

  // p50 falls in the fast buckets, p99 in the slow ones. Buckets are
  // power-of-two wide, so compare against bucket bounds, not exact values.
  EXPECT_LT(merged.PercentileNs(0.50), 2048u);
  EXPECT_GE(merged.PercentileNs(0.99), 524288u);
  EXPECT_GE(merged.MeanNs(), 1000.0);
}

TEST(LatencySnapshotTest, EmptyHistogram) {
  LatencyHistogram h;
  LatencySnapshot s = h.Snapshot();
  EXPECT_EQ(s.total_count, 0u);
  EXPECT_EQ(s.PercentileNs(0.5), 0u);
  EXPECT_DOUBLE_EQ(s.MeanNs(), 0.0);
}

TEST(LatencySnapshotTest, ResetClears) {
  LatencyHistogram h;
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.Snapshot().total_count, 0u);
  EXPECT_EQ(h.Snapshot().max, 0u);
}

}  // namespace
}  // namespace spatial
