#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "rtree/split.h"

namespace spatial {
namespace {

std::vector<Entry<2>> RandomEntries(size_t n, Rng* rng,
                                    bool points_only = false) {
  std::vector<Entry<2>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point2 a{{rng->Uniform(0, 100), rng->Uniform(0, 100)}};
    if (points_only) {
      entries.push_back(Entry<2>{Rect2::FromPoint(a), i});
    } else {
      Point2 b{{a[0] + rng->Uniform(0, 5), a[1] + rng->Uniform(0, 5)}};
      entries.push_back(Entry<2>{Rect2::FromCorners(a, b), i});
    }
  }
  return entries;
}

// Postconditions every split algorithm must satisfy.
void CheckSplitInvariants(const std::vector<Entry<2>>& input,
                          const SplitResult<2>& result,
                          uint32_t min_entries) {
  EXPECT_GE(result.group_a.size(), min_entries);
  EXPECT_GE(result.group_b.size(), min_entries);
  EXPECT_EQ(result.group_a.size() + result.group_b.size(), input.size());
  // Exact multiset partition of the ids.
  std::multiset<uint64_t> in_ids, out_ids;
  for (const auto& e : input) in_ids.insert(e.id);
  for (const auto& e : result.group_a) out_ids.insert(e.id);
  for (const auto& e : result.group_b) out_ids.insert(e.id);
  EXPECT_EQ(in_ids, out_ids);
}

class SplitAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<SplitAlgorithm, uint64_t>> {
};

TEST_P(SplitAlgorithmTest, InvariantsHoldOnRandomInputs) {
  const auto [algo, seed] = GetParam();
  Rng rng(seed);
  for (size_t n : {4u, 5u, 11u, 26u, 51u, 101u}) {
    const uint32_t min_entries =
        std::max<uint32_t>(1, static_cast<uint32_t>(n) * 2 / 5 / 2);
    auto input = RandomEntries(n, &rng);
    auto result = SplitEntries<2>(algo, min_entries, input);
    CheckSplitInvariants(input, result, min_entries);
  }
}

TEST_P(SplitAlgorithmTest, HandlesDuplicateRectangles) {
  const auto [algo, seed] = GetParam();
  Rng rng(seed);
  // All entries identical: worst case for seed picking.
  std::vector<Entry<2>> input(10, Entry<2>{Rect2{{{1, 1}}, {{2, 2}}}, 0});
  for (size_t i = 0; i < input.size(); ++i) input[i].id = i;
  auto result = SplitEntries<2>(algo, 3, input);
  CheckSplitInvariants(input, result, 3);
}

TEST_P(SplitAlgorithmTest, HandlesCollinearPoints) {
  const auto [algo, seed] = GetParam();
  std::vector<Entry<2>> input;
  for (size_t i = 0; i < 20; ++i) {
    input.push_back(
        Entry<2>{Rect2::FromPoint({{static_cast<double>(i), 0.0}}), i});
  }
  auto result = SplitEntries<2>(algo, 5, input);
  CheckSplitInvariants(input, result, 5);
}

TEST_P(SplitAlgorithmTest, MinEntriesOneWorks) {
  const auto [algo, seed] = GetParam();
  Rng rng(seed ^ 0x77);
  auto input = RandomEntries(6, &rng, /*points_only=*/true);
  auto result = SplitEntries<2>(algo, 1, input);
  CheckSplitInvariants(input, result, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SplitAlgorithmTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kLinear,
                                         SplitAlgorithm::kQuadratic,
                                         SplitAlgorithm::kRStar),
                       ::testing::Values(1u, 99u, 4242u)));

// Split-quality sanity: on two well-separated clusters every algorithm
// should produce the obvious grouping.
TEST(SplitQualityTest, SeparatedClustersAreSeparated) {
  // Two tight 2-D clusters 100 units apart. (Collinear degenerate points
  // would make every area-based heuristic tie at zero, so spread in y too.)
  std::vector<Entry<2>> input;
  for (size_t i = 0; i < 5; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    input.push_back(Entry<2>{Rect2::FromPoint({{t, 0.7 * t + 0.05}}), i});
  }
  for (size_t i = 0; i < 5; ++i) {
    const double t = static_cast<double>(i) * 0.1;
    input.push_back(Entry<2>{
        Rect2::FromPoint({{100.0 + t, 1.3 * t + 0.02}}), 100 + i});
  }
  for (SplitAlgorithm algo :
       {SplitAlgorithm::kLinear, SplitAlgorithm::kQuadratic,
        SplitAlgorithm::kRStar}) {
    auto result = SplitEntries<2>(algo, 2, input);
    auto is_low = [](const Entry<2>& e) { return e.id < 100; };
    const bool a_all_low =
        std::all_of(result.group_a.begin(), result.group_a.end(), is_low);
    const bool a_all_high =
        std::none_of(result.group_a.begin(), result.group_a.end(), is_low);
    const bool b_all_low =
        std::all_of(result.group_b.begin(), result.group_b.end(), is_low);
    const bool b_all_high =
        std::none_of(result.group_b.begin(), result.group_b.end(), is_low);
    EXPECT_TRUE((a_all_low && b_all_high) || (a_all_high && b_all_low))
        << "algorithm " << SplitAlgorithmName(algo)
        << " mixed two well-separated clusters";
  }
}

TEST(SplitQualityTest, RStarMinimizesOverlapOnGrid) {
  // A 6x1 row of unit squares: the R* split along x produces zero overlap.
  std::vector<Entry<2>> input;
  for (size_t i = 0; i < 6; ++i) {
    const double x = static_cast<double>(i);
    input.push_back(Entry<2>{Rect2{{{x, 0}}, {{x + 1, 1}}}, i});
  }
  auto result = SplitEntries<2>(SplitAlgorithm::kRStar, 2, input);
  Rect2 mbr_a = Rect2::Empty(), mbr_b = Rect2::Empty();
  for (const auto& e : result.group_a) mbr_a.ExpandToInclude(e.mbr);
  for (const auto& e : result.group_b) mbr_b.ExpandToInclude(e.mbr);
  EXPECT_DOUBLE_EQ(mbr_a.OverlapArea(mbr_b), 0.0);
}

TEST(SplitTest, ThreeDimensionalEntries) {
  Rng rng(5);
  std::vector<Entry<3>> input;
  for (size_t i = 0; i < 30; ++i) {
    Point3 p{{rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    input.push_back(Entry<3>{Rect3::FromPoint(p), i});
  }
  for (SplitAlgorithm algo :
       {SplitAlgorithm::kLinear, SplitAlgorithm::kQuadratic,
        SplitAlgorithm::kRStar}) {
    auto result = SplitEntries<3>(algo, 10, input);
    EXPECT_GE(result.group_a.size(), 10u);
    EXPECT_GE(result.group_b.size(), 10u);
    EXPECT_EQ(result.group_a.size() + result.group_b.size(), 30u);
  }
}

}  // namespace
}  // namespace spatial
