#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rtree/node.h"
#include "rtree/node_codec.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 1024;

Entry<2> MakeEntry(double x, double y, uint64_t id) {
  return Entry<2>{Rect2::FromPoint({{x, y}}), id};
}

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : view_(buffer_, kPageSize) { view_.InitEmpty(0); }

  char buffer_[kPageSize] = {};
  NodeView<2> view_;
};

TEST_F(NodeTest, MaxEntriesMatchesLayout) {
  // (1024 - 8) / 40 = 25 entries for D = 2.
  EXPECT_EQ(NodeView<2>::MaxEntries(1024), 25u);
  // D = 3: entry = 6 doubles + id = 56 bytes -> 18 entries.
  EXPECT_EQ(NodeView<3>::MaxEntries(1024), 18u);
}

TEST_F(NodeTest, InitEmptySetsHeader) {
  EXPECT_TRUE(view_.has_valid_magic());
  EXPECT_EQ(view_.count(), 0u);
  EXPECT_EQ(view_.level(), 0u);
  EXPECT_TRUE(view_.is_leaf());
}

TEST_F(NodeTest, InternalLevel) {
  view_.InitEmpty(3);
  EXPECT_EQ(view_.level(), 3u);
  EXPECT_FALSE(view_.is_leaf());
}

TEST_F(NodeTest, AppendAndReadBack) {
  view_.Append(MakeEntry(1, 2, 100));
  view_.Append(MakeEntry(3, 4, 200));
  ASSERT_EQ(view_.count(), 2u);
  EXPECT_EQ(view_.entry(0).id, 100u);
  EXPECT_EQ(view_.entry(1).id, 200u);
  EXPECT_EQ(view_.entry(1).mbr.lo[0], 3.0);
}

TEST_F(NodeTest, SetEntryOverwrites) {
  view_.Append(MakeEntry(1, 2, 100));
  view_.set_entry(0, MakeEntry(9, 9, 900));
  EXPECT_EQ(view_.entry(0).id, 900u);
  EXPECT_EQ(view_.entry(0).mbr.hi[1], 9.0);
}

TEST_F(NodeTest, RemoveAtSwapsWithLast) {
  view_.Append(MakeEntry(1, 1, 1));
  view_.Append(MakeEntry(2, 2, 2));
  view_.Append(MakeEntry(3, 3, 3));
  view_.RemoveAt(0);
  ASSERT_EQ(view_.count(), 2u);
  EXPECT_EQ(view_.entry(0).id, 3u);  // last moved into slot 0
  EXPECT_EQ(view_.entry(1).id, 2u);
}

TEST_F(NodeTest, RemoveLastEntry) {
  view_.Append(MakeEntry(1, 1, 1));
  view_.Append(MakeEntry(2, 2, 2));
  view_.RemoveAt(1);
  ASSERT_EQ(view_.count(), 1u);
  EXPECT_EQ(view_.entry(0).id, 1u);
}

TEST_F(NodeTest, FillToCapacity) {
  const uint32_t max = view_.max_entries();
  for (uint32_t i = 0; i < max; ++i) {
    EXPECT_FALSE(view_.full());
    view_.Append(MakeEntry(i, i, i));
  }
  EXPECT_TRUE(view_.full());
  EXPECT_EQ(view_.count(), max);
  for (uint32_t i = 0; i < max; ++i) {
    ASSERT_EQ(view_.entry(i).id, i);
  }
}

TEST_F(NodeTest, SetEntriesReplacesContents) {
  view_.Append(MakeEntry(1, 1, 1));
  std::vector<Entry<2>> entries{MakeEntry(5, 5, 5), MakeEntry(6, 6, 6),
                                MakeEntry(7, 7, 7)};
  view_.SetEntries(entries);
  ASSERT_EQ(view_.count(), 3u);
  EXPECT_EQ(view_.entry(2).id, 7u);
  EXPECT_EQ(view_.GetEntries().size(), 3u);
}

TEST_F(NodeTest, ClearKeepsLevel) {
  view_.InitEmpty(2);
  view_.Append(MakeEntry(1, 1, 1));
  view_.Clear();
  EXPECT_EQ(view_.count(), 0u);
  EXPECT_EQ(view_.level(), 2u);
}

TEST_F(NodeTest, ComputeMbrIsTightUnion) {
  view_.Append(Entry<2>{Rect2{{{0, 0}}, {{1, 1}}}, 1});
  view_.Append(Entry<2>{Rect2{{{2, -1}}, {{3, 0.5}}}, 2});
  const Rect2 mbr = view_.ComputeMbr();
  EXPECT_EQ(mbr.lo[0], 0.0);
  EXPECT_EQ(mbr.lo[1], -1.0);
  EXPECT_EQ(mbr.hi[0], 3.0);
  EXPECT_EQ(mbr.hi[1], 1.0);
}

TEST_F(NodeTest, ComputeMbrOfEmptyNodeIsEmpty) {
  EXPECT_TRUE(view_.ComputeMbr().IsEmpty());
}

// --------------------------------------------------------------------------
// Codec / corruption checks.

TEST(NodeCodecTest, ValidPagePasses) {
  char buffer[kPageSize] = {};
  NodeView<2> view(buffer, kPageSize);
  view.InitEmpty(1);
  view.Append(MakeEntry(1, 2, 3));
  EXPECT_TRUE(CheckNodePage<2>(buffer, kPageSize).ok());
}

TEST(NodeCodecTest, ZeroedPageHasBadMagic) {
  char buffer[kPageSize] = {};
  EXPECT_TRUE(CheckNodePage<2>(buffer, kPageSize).IsCorruption());
}

TEST(NodeCodecTest, GarbagePageRejected) {
  char buffer[kPageSize];
  std::memset(buffer, 0x5a, kPageSize);
  EXPECT_TRUE(CheckNodePage<2>(buffer, kPageSize).IsCorruption());
}

TEST(NodeCodecTest, OverflowCountRejected) {
  char buffer[kPageSize] = {};
  NodeView<2> view(buffer, kPageSize);
  view.InitEmpty(0);
  NodeHeader header;
  std::memcpy(&header, buffer, sizeof(header));
  header.count = 1000;  // > capacity
  std::memcpy(buffer, &header, sizeof(header));
  EXPECT_TRUE(CheckNodePage<2>(buffer, kPageSize).IsCorruption());
}

TEST(NodeCodecTest, InvalidRectangleRejected) {
  char buffer[kPageSize] = {};
  NodeView<2> view(buffer, kPageSize);
  view.InitEmpty(0);
  Entry<2> bad;
  bad.mbr.lo = {{2.0, 2.0}};
  bad.mbr.hi = {{1.0, 1.0}};  // lo > hi
  bad.id = 7;
  view.Append(bad);
  EXPECT_TRUE(CheckNodePage<2>(buffer, kPageSize).IsCorruption());
}

TEST(NodeCodecTest, TooSmallPageRejected) {
  char buffer[32] = {};
  EXPECT_TRUE(CheckNodePage<2>(buffer, 32).IsInvalidArgument());
}

}  // namespace
}  // namespace spatial
