#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/farthest.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "geom/metrics.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// Reference: exhaustive k-farthest under the same object-distance
// definition (distance to the farthest point of the object's MBR).
std::vector<Neighbor> BruteFarthest(const std::vector<Entry<2>>& data,
                                    const Point2& q, uint32_t k) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (const Entry<2>& e : data) {
    all.push_back(Neighbor{e.id, MaxDistSq(q, e.mbr)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq > b.dist_sq;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(FarthestTest, RejectsZeroK) {
  TestIndex2D index;
  EXPECT_TRUE(FarthestSearch<2>(*index.tree, {{0.0, 0.0}}, 0, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(FarthestTest, EmptyTree) {
  TestIndex2D index;
  auto result = FarthestSearch<2>(*index.tree, {{0.0, 0.0}}, 2, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(FarthestTest, HandCase) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{1.0, 0.0}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{5.0, 0.0}}), 2).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{3.0, 0.0}}), 3).ok());
  auto result = FarthestSearch<2>(*index.tree, {{0.0, 0.0}}, 2, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 2u);  // farthest first
  EXPECT_EQ((*result)[1].id, 3u);
}

class FarthestPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FarthestPropertyTest, MatchesBruteForce) {
  TestIndex2D index;
  Rng rng(GetParam());
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 50, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (uint32_t k : {1u, 7u}) {
    for (const Point2& q : queries) {
      auto result = FarthestSearch<2>(*index.tree, q, k, nullptr);
      ASSERT_TRUE(result.ok());
      auto expected = BruteFarthest(data, q, k);
      ASSERT_EQ(result->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FarthestPropertyTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(FarthestTest, PrunesMostOfTheTree) {
  TestIndex2D index;
  Rng rng(44);
  auto data =
      MakePointEntries(GenerateUniform<2>(20000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  QueryStats stats;
  // A corner query makes the opposite corner's subtrees dominate; most of
  // the tree is prunable.
  auto result = FarthestSearch<2>(*index.tree, {{0.0, 0.0}}, 1, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(stats.nodes_visited, 200u);
  EXPECT_GT(stats.pruned_s3, 0u);
}

TEST(FarthestTest, RectObjectsUseFarCorner) {
  TestIndex2D index;
  // A huge box whose far corner beats a slightly farther point.
  ASSERT_TRUE(index.tree->Insert(Rect2{{{0, 0}}, {{10, 10}}}, 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{12.0, 0.0}}), 2).ok());
  auto result = FarthestSearch<2>(*index.tree, {{0.0, 0.0}}, 1, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 1u);  // corner (10,10): 200 > 144
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 200.0);
}

TEST(FarthestTest, KBeyondSizeReturnsAllDescending) {
  TestIndex2D index;
  Rng rng(55);
  auto data =
      MakePointEntries(GenerateUniform<2>(30, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto result = FarthestSearch<2>(*index.tree, {{0.5, 0.5}}, 100, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 30u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i - 1].dist_sq, (*result)[i].dist_sq);
  }
}

}  // namespace
}  // namespace spatial
