#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/bulk_load.h"
#include "rtree/validator.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 512;

class BulkLoadParamTest
    : public ::testing::TestWithParam<std::tuple<BulkLoadMethod, size_t>> {};

TEST_P(BulkLoadParamTest, StructureValidAndAllEntriesPresent) {
  const auto [method, n] = GetParam();
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 64);
  Rng rng(1000 + n);
  auto data = MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data, method);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RTree<2>& tree = *loaded;
  EXPECT_EQ(tree.size(), n);

  auto report = ValidateTree<2>(tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, n);

  std::vector<Entry<2>> found;
  ASSERT_TRUE(tree.Search(UnitBounds<2>(), &found).ok());
  std::set<uint64_t> ids;
  for (const auto& e : found) ids.insert(e.id);
  EXPECT_EQ(ids.size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSizes, BulkLoadParamTest,
    ::testing::Combine(::testing::Values(BulkLoadMethod::kStr,
                                         BulkLoadMethod::kHilbert,
                                         BulkLoadMethod::kMorton),
                       ::testing::Values<size_t>(1, 7, 12, 13, 100, 1000,
                                                 5000)));

TEST(BulkLoadTest, EmptyInputYieldsEmptyTree) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 16);
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, {}, BulkLoadMethod::kStr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->height(), 1);
}

TEST(BulkLoadTest, PackedTreeIsShallowerOrEqualToDynamicTree) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 128);
  Rng rng(55);
  auto data =
      MakePointEntries(GenerateUniform<2>(4000, UnitBounds<2>(), &rng));

  auto packed = BulkLoad<2>(&pool, RTreeOptions{}, data,
                            BulkLoadMethod::kStr);
  ASSERT_TRUE(packed.ok());

  auto created = RTree<2>::Create(&pool, RTreeOptions{});
  ASSERT_TRUE(created.ok());
  RTree<2> dynamic = std::move(created).value();
  for (const auto& e : data) ASSERT_TRUE(dynamic.Insert(e.mbr, e.id).ok());

  EXPECT_LE(packed->height(), dynamic.height());

  auto packed_report = ValidateTree<2>(*packed, true);
  auto dynamic_report = ValidateTree<2>(dynamic, true);
  ASSERT_TRUE(packed_report.ok());
  ASSERT_TRUE(dynamic_report.ok());
  // Full packing uses no more nodes than the dynamically grown tree.
  EXPECT_LE(packed_report->nodes, dynamic_report->nodes);
  EXPECT_GT(packed_report->avg_leaf_fill, 0.9);
}

TEST(BulkLoadTest, FillFactorControlsLeafOccupancy) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 64);
  Rng rng(56);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data,
                            BulkLoadMethod::kStr, /*fill_factor=*/0.8);
  ASSERT_TRUE(loaded.ok());
  auto report = ValidateTree<2>(*loaded, true);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->avg_leaf_fill, 0.7);
  EXPECT_LT(report->avg_leaf_fill, 0.9);
}

TEST(BulkLoadTest, RejectsBadFillFactor) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 16);
  auto too_big =
      BulkLoad<2>(&pool, RTreeOptions{}, {}, BulkLoadMethod::kStr, 1.5);
  EXPECT_TRUE(too_big.status().IsInvalidArgument());
  auto too_small =
      BulkLoad<2>(&pool, RTreeOptions{}, {}, BulkLoadMethod::kStr, 0.3);
  EXPECT_TRUE(too_small.status().IsInvalidArgument());
}

TEST(BulkLoadTest, RejectsInvalidEntryRect) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 16);
  Entry<2> bad;
  bad.mbr.lo = {{1.0, 1.0}};
  bad.mbr.hi = {{0.0, 0.0}};
  auto loaded =
      BulkLoad<2>(&pool, RTreeOptions{}, {bad}, BulkLoadMethod::kStr);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(BulkLoadTest, HilbertRejectedForNon2D) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 16);
  auto loaded = BulkLoad<3>(&pool, RTreeOptions{}, {},
                            BulkLoadMethod::kHilbert);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(BulkLoadTest, MortonWorksIn3D) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  Rng rng(57);
  std::vector<Entry<3>> data;
  for (uint64_t i = 0; i < 900; ++i) {
    Point3 p{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    data.push_back(Entry<3>{Rect3::FromPoint(p), i});
  }
  auto loaded =
      BulkLoad<3>(&pool, RTreeOptions{}, data, BulkLoadMethod::kMorton);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto report = ValidateTree<3>(*loaded, true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, 900u);
}

TEST(BulkLoadTest, LoadedTreeAcceptsFurtherInserts) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 64);
  Rng rng(58);
  auto data =
      MakePointEntries(GenerateUniform<2>(1000, UnitBounds<2>(), &rng));
  auto loaded =
      BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kHilbert);
  ASSERT_TRUE(loaded.ok());
  RTree<2> tree = std::move(loaded).value();
  for (uint64_t i = 0; i < 500; ++i) {
    Point2 p{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    ASSERT_TRUE(tree.Insert(Rect2::FromPoint(p), 10000 + i).ok());
  }
  EXPECT_EQ(tree.size(), 1500u);
  auto report = ValidateTree<2>(tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

TEST(BulkLoadTest, SingleEntryTree) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 16);
  std::vector<Entry<2>> data{
      Entry<2>{Rect2::FromPoint({{0.5, 0.5}}), 99}};
  auto loaded =
      BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->height(), 1);
  std::vector<Entry<2>> found;
  ASSERT_TRUE(loaded->Search(UnitBounds<2>(), &found).ok());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, 99u);
}

}  // namespace
}  // namespace spatial
