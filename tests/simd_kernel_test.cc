// Bit-identity fuzz for the SoA SIMD distance kernels (geom/metrics_simd.h).
//
// The dispatch contract is that every kernel tier — scalar SoA, SSE2, AVX2 —
// reproduces the scalar AoS batch kernels of geom/metrics.h *bit for bit*:
// same products, same summation order, same plane selection on ties and on
// non-finite inputs (empty rects carry lo=+inf/hi=-inf). The engine's
// correctness tests only exercise whichever tier the host dispatches to;
// this test pins each tier explicitly and compares raw bit patterns, so a
// rounding divergence (e.g. an accidental FMA contraction) fails loudly on
// any machine rather than only on exotic hardware.
//
// The ctest registrations run the whole binary once per
// SPATIAL_FORCE_KERNEL value, which additionally exercises the env-forced
// dispatch path end to end (see Dispatch.RespectsForceEnvironment).

#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "core/scratch.h"
#include "geom/metrics.h"
#include "geom/metrics_simd.h"
#include "gtest/gtest.h"
#include "rtree/node.h"

namespace spatial {
namespace {

// Minimal AoS element: the kernels only require an `mbr` member.
template <int D>
struct Box {
  Rect<D> mbr;
};

// Largest batch the fuzz sweeps. Covers every real fan-out: a 1 KiB page
// holds at most (1024-8)/sizeof(Entry<2>) = 25 entries at D=2 and fewer at
// higher D, and the bulk loader never packs beyond the page fan-out.
constexpr uint32_t kMaxBatch = 40;

// Bit pattern used to pre-fill output buffers so a lane the kernel failed
// to write is caught (it would compare unequal against any real distance).
constexpr unsigned char kSentinelByte = 0xCB;

template <int D>
Rect<D> RandomRect(Rng& rng) {
  Rect<D> r;
  for (int d = 0; d < D; ++d) {
    const double a = rng.Uniform(-100.0, 100.0);
    const double b = rng.Uniform(-100.0, 100.0);
    r.lo[d] = std::min(a, b);
    r.hi[d] = std::max(a, b);
  }
  return r;
}

template <int D>
Rect<D> PointRect(Rng& rng) {
  Rect<D> r;
  for (int d = 0; d < D; ++d) {
    const double a = rng.Uniform(-100.0, 100.0);
    r.lo[d] = a;
    r.hi[d] = a;
  }
  return r;
}

template <int D>
std::vector<Box<D>> RandomBoxes(Rng& rng, uint32_t n) {
  std::vector<Box<D>> boxes(n);
  for (uint32_t j = 0; j < n; ++j) {
    // Mix in the degenerate shapes the engine actually produces: point
    // MBRs (every leaf entry of a point dataset) and the empty rect
    // (lo=+inf, hi=-inf; never stored in a node, but the kernels must not
    // turn its infinities into NaN mismatches if one ever reaches them).
    const uint64_t flavor = rng.NextBounded(8);
    if (flavor == 0) {
      boxes[j].mbr = Rect<D>::Empty();
    } else if (flavor <= 2) {
      boxes[j].mbr = PointRect<D>(rng);
    } else {
      boxes[j].mbr = RandomRect<D>(rng);
    }
  }
  return boxes;
}

template <int D>
Point<D> RandomPoint(Rng& rng) {
  Point<D> p;
  // Occasionally drop the query inside the data cube's typical box so the
  // "p inside the rect" (distance 0) branch is exercised too.
  for (int d = 0; d < D; ++d) p[d] = rng.Uniform(-120.0, 120.0);
  return p;
}

// EXPECT bit-equality of the first n doubles; NaN == NaN, +0 != -0.
void ExpectBitEqual(const double* got, const double* want, uint32_t n,
                    const char* what, KernelIsa isa, int dims, uint32_t batch) {
  for (uint32_t j = 0; j < n; ++j) {
    EXPECT_EQ(std::memcmp(&got[j], &want[j], sizeof(double)), 0)
        << what << " diverges from the scalar AoS reference at lane " << j
        << " (isa=" << KernelIsaName(isa) << ", D=" << dims << ", n=" << batch
        << "): got " << got[j] << ", want " << want[j];
  }
}

// Reference for the bound filter: ascending indices with !(dist[j] > bound).
uint32_t FilterReference(const double* dist, uint32_t n, double bound,
                         uint32_t* idx_out) {
  uint32_t kept = 0;
  for (uint32_t j = 0; j < n; ++j) {
    if (!(dist[j] > bound)) idx_out[kept++] = j;
  }
  return kept;
}

// Checks set.filter_not_above against FilterReference for a spread of
// bounds derived from the data. `dist` need not be aligned; it is staged
// into the aligned scratch the kernel requires.
template <int D>
void CheckFilter(const SoaKernelSet& set, const double* dist, uint32_t n) {
  AlignedArray<double> staged_arr;
  double* staged = staged_arr.EnsureCapacity(SoaStride(n) + 1);
  if (n > 0) std::memcpy(staged, dist, n * sizeof(double));
  for (size_t j = n; j < SoaStride(n); ++j) staged[j] = 0.0;

  std::vector<double> bounds = {0.0, -1.0,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity()};
  if (n > 0) bounds.push_back(dist[n / 2]);  // an exact value: ties kept

  std::vector<uint32_t> want(n + 1);
  AlignedArray<uint32_t> got_arr;
  uint32_t* got = got_arr.EnsureCapacity(n + 1);
  for (double bound : bounds) {
    const uint32_t want_kept = FilterReference(staged, n, bound, want.data());
    std::memset(got, kSentinelByte, (n + 1) * sizeof(uint32_t));
    const uint32_t got_kept = set.filter_not_above(staged, n, bound, got);
    ASSERT_EQ(got_kept, want_kept)
        << "filter_not_above kept count (isa=" << KernelIsaName(set.isa)
        << ", D=" << D << ", n=" << n << ", bound=" << bound << ")";
    EXPECT_EQ(std::memcmp(got, want.data(), want_kept * sizeof(uint32_t)), 0)
        << "filter_not_above indices (isa=" << KernelIsaName(set.isa)
        << ", D=" << D << ", n=" << n << ", bound=" << bound << ")";
    uint32_t sentinel;
    std::memset(&sentinel, kSentinelByte, sizeof(sentinel));
    for (uint32_t j = want_kept; j < n + 1; ++j) {
      ASSERT_EQ(got[j], sentinel)
          << "filter_not_above wrote past its survivors at slot " << j;
    }
  }
}

// Runs every kernel of `set` over one staged batch and compares against the
// AoS references computed by geom/metrics.h.
template <int D>
void CheckKernelSet(const SoaKernelSet& set, const std::vector<Box<D>>& boxes,
                    const Point<D>& q, const Rect<D>& qr) {
  const uint32_t n = static_cast<uint32_t>(boxes.size());
  const size_t stride = SoaStride(n);

  AlignedArray<double> planes_arr;
  double* planes = planes_arr.EnsureCapacity(SoaDoubles(D, n));
  TransposeToSoa<D>(boxes.data(), n, planes, stride);

  // References from the scalar AoS batch kernels (the spec).
  std::vector<double> ref_min(n), ref_minmax(n), ref_obj(n), ref_rect(n);
  MinDistSqBatch<D>(q, boxes.data(), n, ref_min.data());
  MinMaxDistSqBatch<D>(q, boxes.data(), n, ref_minmax.data());
  ObjectDistSqBatch<D>(q, boxes.data(), n, ref_obj.data());
  MinDistSqBatch<D>(qr, boxes.data(), n, ref_rect.data());

  // Outputs sized to the padded stride: vector kernels store whole vectors,
  // so lanes [n, stride) are theirs to clobber — but nothing past stride.
  AlignedArray<double> out_arr, out2_arr;
  double* out = out_arr.EnsureCapacity(stride + 1);
  double* out2 = out2_arr.EnsureCapacity(stride + 1);
  const auto rearm = [&] {
    std::memset(out, kSentinelByte, (stride + 1) * sizeof(double));
    std::memset(out2, kSentinelByte, (stride + 1) * sizeof(double));
  };
  double guard;
  std::memset(&guard, kSentinelByte, sizeof(guard));
  const auto check_guard = [&](const char* what) {
    EXPECT_EQ(std::memcmp(&out[stride], &guard, sizeof(double)), 0)
        << what << " wrote past SoaStride(n) (D=" << D << ", n=" << n << ")";
    EXPECT_EQ(std::memcmp(&out2[stride], &guard, sizeof(double)), 0)
        << what << " wrote past SoaStride(n) (D=" << D << ", n=" << n << ")";
  };

  rearm();
  set.min_dist(q.coord.data(), planes, stride, n, out);
  ExpectBitEqual(out, ref_min.data(), n, "min_dist", set.isa, D, n);
  check_guard("min_dist");

  rearm();
  set.min_max_dist(q.coord.data(), planes, stride, n, out);
  ExpectBitEqual(out, ref_minmax.data(), n, "min_max_dist", set.isa, D, n);
  check_guard("min_max_dist");

  rearm();
  set.object_dist(q.coord.data(), planes, stride, n, out);
  ExpectBitEqual(out, ref_obj.data(), n, "object_dist", set.isa, D, n);
  check_guard("object_dist");

  rearm();
  set.rect_min_dist(qr.lo.coord.data(), planes, stride, n, out);
  ExpectBitEqual(out, ref_rect.data(), n, "rect_min_dist", set.isa, D, n);
  check_guard("rect_min_dist");

  rearm();
  set.min_and_min_max(q.coord.data(), planes, stride, n, out, out2);
  ExpectBitEqual(out, ref_min.data(), n, "fused min", set.isa, D, n);
  ExpectBitEqual(out2, ref_minmax.data(), n, "fused minmax", set.isa, D, n);
  check_guard("min_and_min_max");

  // Fused MINDIST + bound filter: the distance array must match min_dist
  // bit for bit and the survivor list must match filter_not_above run over
  // the finished reference array, for the same spread of bounds the
  // standalone filter is exercised with.
  {
    std::vector<double> bounds = {0.0, -1.0,
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity()};
    if (n > 0) bounds.push_back(ref_min[n / 2]);  // exact value: ties kept
    std::vector<uint32_t> want_idx(n + 1);
    AlignedArray<uint32_t> got_idx_arr;
    uint32_t* got_idx = got_idx_arr.EnsureCapacity(n + 1);
    uint32_t idx_sentinel;
    std::memset(&idx_sentinel, kSentinelByte, sizeof(idx_sentinel));
    for (double bound : bounds) {
      const uint32_t want_kept =
          FilterReference(ref_min.data(), n, bound, want_idx.data());
      rearm();
      std::memset(got_idx, kSentinelByte, (n + 1) * sizeof(uint32_t));
      const uint32_t got_kept = set.min_dist_filter(q.coord.data(), planes,
                                                    stride, n, bound, out,
                                                    got_idx);
      ExpectBitEqual(out, ref_min.data(), n, "min_dist_filter distances",
                     set.isa, D, n);
      check_guard("min_dist_filter");
      ASSERT_EQ(got_kept, want_kept)
          << "min_dist_filter kept count (isa=" << KernelIsaName(set.isa)
          << ", D=" << D << ", n=" << n << ", bound=" << bound << ")";
      EXPECT_EQ(std::memcmp(got_idx, want_idx.data(),
                            want_kept * sizeof(uint32_t)),
                0)
          << "min_dist_filter indices (isa=" << KernelIsaName(set.isa)
          << ", D=" << D << ", n=" << n << ", bound=" << bound << ")";
      for (uint32_t j = want_kept; j < n + 1; ++j) {
        ASSERT_EQ(got_idx[j], idx_sentinel)
            << "min_dist_filter wrote past its survivors at slot " << j;
      }
    }
  }

  // Fused MINDIST + min-MINMAXDIST reduction: the distance array must match
  // min_dist bit for bit and the returned scalar must equal a std::min
  // reduction of the reference MINMAXDIST array (+inf for n == 0 and NaN
  // candidates skipped — the fuzz batches force an empty rect, whose
  // MINMAXDIST is NaN, into every batch of size >= 2).
  {
    double want_min = std::numeric_limits<double>::infinity();
    for (uint32_t j = 0; j < n; ++j) {
      want_min = std::min(want_min, ref_minmax[j]);
    }
    rearm();
    const double got_min =
        set.min_dist_min_minmax(q.coord.data(), planes, stride, n, out);
    ExpectBitEqual(out, ref_min.data(), n, "min_dist_min_minmax distances",
                   set.isa, D, n);
    check_guard("min_dist_min_minmax");
    EXPECT_EQ(std::memcmp(&got_min, &want_min, sizeof(double)), 0)
        << "min_dist_min_minmax reduced min (isa=" << KernelIsaName(set.isa)
        << ", D=" << D << ", n=" << n << "): got " << got_min << ", want "
        << want_min;
  }

  // Staging kernel: every plane — including the replicated padding tail —
  // must match the portable TransposeToSoa reference bit for bit.
  AlignedArray<double> planes2_arr;
  double* planes2 = planes2_arr.EnsureCapacity(SoaDoubles(D, n) + 1);
  std::memset(planes2, kSentinelByte, (SoaDoubles(D, n) + 1) * sizeof(double));
  set.transpose(boxes.data(), sizeof(Box<D>), n, planes2, stride);
  ExpectBitEqual(planes2, planes, static_cast<uint32_t>(SoaDoubles(D, n)),
                 "transpose", set.isa, D, n);
  EXPECT_EQ(std::memcmp(&planes2[SoaDoubles(D, n)], &guard, sizeof(double)), 0)
      << "transpose wrote past its planes (D=" << D << ", n=" << n << ")";

  // Bound filter: survivors of !(dist > bound), ascending, for bounds on
  // every interesting side of the data — nothing, everything, an exact
  // distance value (ties must be kept), and zero (the join's predicate).
  CheckFilter<D>(set, ref_min.data(), n);
  if (n > 0) {
    // NaN lanes must be kept: the traversal's prune drops only values that
    // compare greater than the bound, and NaN compares false.
    std::vector<double> with_nan(ref_min.begin(), ref_min.end());
    with_nan[n / 2] = std::numeric_limits<double>::quiet_NaN();
    CheckFilter<D>(set, with_nan.data(), n);
  }
}

constexpr KernelIsa kAllIsas[] = {KernelIsa::kScalar, KernelIsa::kSse2,
                                  KernelIsa::kAvx2};

template <int D>
void FuzzDimension(uint64_t seed) {
  Rng rng(seed);
  for (uint32_t n = 0; n <= kMaxBatch; ++n) {
    std::vector<Box<D>> boxes = RandomBoxes<D>(rng, n);
    if (n >= 2) {
      // Force at least one empty rect and one point MBR into every batch
      // of size >= 2 so the non-finite and zero-extent paths are always
      // present, not just when the random flavors happen to include them.
      boxes[0].mbr = Rect<D>::Empty();
      boxes[1].mbr = PointRect<D>(rng);
    }
    const Point<D> q = RandomPoint<D>(rng);
    const Rect<D> qr = RandomRect<D>(rng);
    for (KernelIsa isa : kAllIsas) {
      const SoaKernelSet* set = SoaKernelSetFor(D, isa);
      if (isa == KernelIsa::kScalar) {
        ASSERT_NE(set, nullptr) << "scalar tier must exist for D=" << D;
      }
      if (set == nullptr || !CpuSupportsKernelIsa(isa)) continue;
      EXPECT_EQ(set->isa, isa);
      CheckKernelSet<D>(*set, boxes, q, qr);
    }
  }
}

TEST(SimdKernel, BitIdenticalAcrossIsasD2) { FuzzDimension<2>(0xA1); }
TEST(SimdKernel, BitIdenticalAcrossIsasD3) { FuzzDimension<3>(0xA2); }
TEST(SimdKernel, BitIdenticalAcrossIsasD4) { FuzzDimension<4>(0xA3); }
TEST(SimdKernel, BitIdenticalAcrossIsasD5) { FuzzDimension<5>(0xA4); }
TEST(SimdKernel, BitIdenticalAcrossIsasD6) { FuzzDimension<6>(0xA5); }
TEST(SimdKernel, BitIdenticalAcrossIsasD7) { FuzzDimension<7>(0xA6); }
TEST(SimdKernel, BitIdenticalAcrossIsasD8) { FuzzDimension<8>(0xA7); }

// The dispatched wrappers (what the engine actually calls) must agree with
// the scalar AoS reference under whatever tier the environment resolves —
// the ctest matrix runs this once per SPATIAL_FORCE_KERNEL value.
template <int D>
void CheckDispatchedWrappers(uint64_t seed) {
  Rng rng(seed);
  for (uint32_t n : {0u, 1u, 7u, 25u, kMaxBatch}) {
    std::vector<Box<D>> boxes = RandomBoxes<D>(rng, n);
    const Point<D> q = RandomPoint<D>(rng);
    const Rect<D> qr = RandomRect<D>(rng);

    AlignedArray<double> planes_arr;
    const size_t stride = SoaStride(n);
    double* planes = planes_arr.EnsureCapacity(SoaDoubles(D, n));
    TransposeToSoa<D>(boxes.data(), n, planes, stride);
    const SoaBlock<D> soa{planes, stride, n};

    std::vector<double> ref(n), ref2(n);
    AlignedArray<double> out_arr, out2_arr;
    double* out = out_arr.EnsureCapacity(stride);
    double* out2 = out2_arr.EnsureCapacity(stride);

    MinDistSqBatch<D>(q, boxes.data(), n, ref.data());
    MinDistSqBatchSoa<D>(q, soa, out);
    ExpectBitEqual(out, ref.data(), n, "dispatched min_dist",
                   ActiveKernelIsa(), D, n);

    MinMaxDistSqBatch<D>(q, boxes.data(), n, ref.data());
    MinMaxDistSqBatchSoa<D>(q, soa, out);
    ExpectBitEqual(out, ref.data(), n, "dispatched min_max_dist",
                   ActiveKernelIsa(), D, n);

    ObjectDistSqBatch<D>(q, boxes.data(), n, ref.data());
    ObjectDistSqBatchSoa<D>(q, soa, out);
    ExpectBitEqual(out, ref.data(), n, "dispatched object_dist",
                   ActiveKernelIsa(), D, n);

    MinDistSqBatch<D>(qr, boxes.data(), n, ref.data());
    MinDistSqBatchSoa<D>(qr, soa, out);
    ExpectBitEqual(out, ref.data(), n, "dispatched rect_min_dist",
                   ActiveKernelIsa(), D, n);

    MinDistSqBatch<D>(q, boxes.data(), n, ref.data());
    MinMaxDistSqBatch<D>(q, boxes.data(), n, ref2.data());
    MinAndMinMaxDistSqBatchSoa<D>(q, soa, out, out2);
    ExpectBitEqual(out, ref.data(), n, "dispatched fused min",
                   ActiveKernelIsa(), D, n);
    ExpectBitEqual(out2, ref2.data(), n, "dispatched fused minmax",
                   ActiveKernelIsa(), D, n);
  }
}

TEST(SimdKernel, DispatchedWrappersMatchReferenceD2) {
  CheckDispatchedWrappers<2>(0xB1);
}
TEST(SimdKernel, DispatchedWrappersMatchReferenceD3) {
  CheckDispatchedWrappers<3>(0xB2);
}
TEST(SimdKernel, DispatchedWrappersMatchReferenceD4) {
  CheckDispatchedWrappers<4>(0xB3);
}

// SoA staging invariants the kernels rely on.
TEST(SoaStaging, StrideRoundsUpToCacheLine) {
  EXPECT_EQ(SoaStride(0), 0u);
  EXPECT_EQ(SoaStride(1), kSoaLane);
  EXPECT_EQ(SoaStride(kSoaLane), kSoaLane);
  EXPECT_EQ(SoaStride(kSoaLane + 1), 2 * kSoaLane);
  EXPECT_EQ(SoaStride(25), 32u);
  EXPECT_EQ(SoaDoubles(2, 25), 4u * 32u);
}

TEST(SoaStaging, TransposePadsTailWithLastEntry) {
  constexpr int D = 3;
  Rng rng(0xC1);
  const uint32_t n = 5;
  std::vector<Box<D>> boxes = RandomBoxes<D>(rng, n);
  boxes[n - 1].mbr = RandomRect<D>(rng);  // finite, so padding is checkable

  AlignedArray<double> planes_arr;
  const size_t stride = SoaStride(n);
  double* planes = planes_arr.EnsureCapacity(SoaDoubles(D, n));
  TransposeToSoa<D>(boxes.data(), n, planes, stride);
  const SoaBlock<D> soa{planes, stride, n};

  for (int d = 0; d < D; ++d) {
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(soa.lo(d)[j], boxes[j].mbr.lo[d]);
      EXPECT_EQ(soa.hi(d)[j], boxes[j].mbr.hi[d]);
    }
    for (size_t j = n; j < stride; ++j) {
      EXPECT_EQ(soa.lo(d)[j], boxes[n - 1].mbr.lo[d]);
      EXPECT_EQ(soa.hi(d)[j], boxes[n - 1].mbr.hi[d]);
    }
  }
}

// The staging kernels are stride-generic: Entry<D> carries an id after its
// rect, so its element stride differs from Box<D>'s. Every tier must
// reproduce the reference transpose for that layout too (this is the
// layout the traversals actually stage).
template <int D>
void CheckTransposeEntryStride(uint64_t seed) {
  Rng rng(seed);
  for (uint32_t n = 0; n <= kMaxBatch; ++n) {
    std::vector<Entry<D>> entries(n);
    for (uint32_t j = 0; j < n; ++j) {
      entries[j].mbr = RandomRect<D>(rng);
      entries[j].id = rng.Next64();
    }
    const size_t stride = SoaStride(n);
    AlignedArray<double> ref_arr, got_arr;
    // +1 keeps the buffers non-null at n == 0 (zero-length memset on a
    // null pointer is UB, and EnsureCapacity(0) does not allocate).
    double* ref = ref_arr.EnsureCapacity(SoaDoubles(D, n) + 1);
    double* got = got_arr.EnsureCapacity(SoaDoubles(D, n) + 1);
    TransposeToSoa<D>(entries.data(), n, ref, stride);
    for (KernelIsa isa : kAllIsas) {
      const SoaKernelSet* set = SoaKernelSetFor(D, isa);
      if (set == nullptr || !CpuSupportsKernelIsa(isa)) continue;
      std::memset(got, kSentinelByte, SoaDoubles(D, n) * sizeof(double));
      set->transpose(entries.data(), sizeof(Entry<D>), n, got, stride);
      ExpectBitEqual(got, ref, static_cast<uint32_t>(SoaDoubles(D, n)),
                     "entry-stride transpose", isa, D, n);
    }
    // The dispatched wrapper the engine calls must agree as well.
    std::memset(got, kSentinelByte, SoaDoubles(D, n) * sizeof(double));
    TransposeToSoaDispatched<D>(entries.data(), n, got, stride);
    ExpectBitEqual(got, ref, static_cast<uint32_t>(SoaDoubles(D, n)),
                   "dispatched transpose", ActiveKernelIsa(), D, n);
  }
}

TEST(SoaStaging, TransposeEntryStrideBitIdenticalD2) {
  CheckTransposeEntryStride<2>(0xD1);
}
TEST(SoaStaging, TransposeEntryStrideBitIdenticalD3) {
  CheckTransposeEntryStride<3>(0xD2);
}
TEST(SoaStaging, TransposeEntryStrideBitIdenticalD4) {
  CheckTransposeEntryStride<4>(0xD3);
}

TEST(SoaStaging, QueryScratchStagesAndSizesOutputs) {
  QueryScratch<2> scratch;
  Rng rng(0xC2);
  std::vector<Entry<2>> entries(10);
  for (auto& e : entries) {
    e.mbr = RandomRect<2>(rng);
    e.id = rng.Next64();
  }
  const SoaBlock<2> soa =
      scratch.StageSoa(entries.data(), static_cast<uint32_t>(entries.size()));
  EXPECT_EQ(soa.n, 10u);
  EXPECT_EQ(soa.stride, SoaStride(10));
  EXPECT_EQ(QueryScratch<2>::DistSlots(10), SoaStride(10));
  EXPECT_GE(scratch.soa.capacity(), SoaDoubles(2, 10));
  for (uint32_t j = 0; j < soa.n; ++j) {
    EXPECT_EQ(soa.lo(0)[j], entries[j].mbr.lo[0]);
    EXPECT_EQ(soa.hi(1)[j], entries[j].mbr.hi[1]);
  }
}

TEST(SoaStaging, NodeViewCopyEntriesSoaMatchesEntries) {
  constexpr int D = 2;
  alignas(8) char page[1024];
  NodeView<D> view(page, sizeof(page));
  view.InitEmpty(/*level=*/0);
  Rng rng(0xC3);
  const uint32_t n = 9;
  for (uint32_t i = 0; i < n; ++i) {
    Entry<D> e;
    e.mbr = RandomRect<D>(rng);
    e.id = i;
    view.Append(e);
  }
  AlignedArray<double> planes_arr;
  const size_t stride = SoaStride(n);
  double* planes = planes_arr.EnsureCapacity(SoaDoubles(D, n));
  view.CopyEntriesSoa(planes, stride);
  const SoaBlock<D> soa{planes, stride, n};
  for (uint32_t j = 0; j < n; ++j) {
    const Entry<D> e = view.entry(j);
    for (int d = 0; d < D; ++d) {
      EXPECT_EQ(soa.lo(d)[j], e.mbr.lo[d]);
      EXPECT_EQ(soa.hi(d)[j], e.mbr.hi[d]);
    }
  }
}

// Dispatch plumbing: the resolved tier must equal the forced tier clamped
// to what the CPU and the build can actually run.
TEST(Dispatch, RespectsForceEnvironment) {
  KernelIsa best = KernelIsa::kScalar;
  for (KernelIsa isa : kAllIsas) {
    if (CpuSupportsKernelIsa(isa) && SoaKernelBuildSupports(isa)) best = isa;
  }
  KernelIsa expected = best;
  if (std::optional<KernelIsa> forced = ForcedKernelIsa();
      forced.has_value() && static_cast<int>(*forced) < static_cast<int>(best)) {
    expected = *forced;
  }
  EXPECT_EQ(ActiveKernelIsa(), expected)
      << "active=" << KernelIsaName(ActiveKernelIsa())
      << " expected=" << KernelIsaName(expected);
  // Whatever tier is active must have a full kernel complement.
  const SoaKernelSet* set = SoaKernelSetFor(2, ActiveKernelIsa());
  ASSERT_NE(set, nullptr);
  EXPECT_NE(set->min_dist, nullptr);
  EXPECT_NE(set->min_max_dist, nullptr);
  EXPECT_NE(set->object_dist, nullptr);
  EXPECT_NE(set->rect_min_dist, nullptr);
  EXPECT_NE(set->min_and_min_max, nullptr);
  EXPECT_NE(set->transpose, nullptr);
  EXPECT_NE(set->filter_not_above, nullptr);
}

TEST(Dispatch, IsaNamesRoundTrip) {
  for (KernelIsa isa : kAllIsas) {
    const std::optional<KernelIsa> parsed = ParseKernelIsa(KernelIsaName(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(ParseKernelIsa("avx512").has_value());
  EXPECT_FALSE(ParseKernelIsa("").has_value());
  EXPECT_FALSE(ParseKernelIsa(nullptr).has_value());
}

TEST(Dispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(CpuSupportsKernelIsa(KernelIsa::kScalar));
  EXPECT_TRUE(SoaKernelBuildSupports(KernelIsa::kScalar));
  for (int dims = kSoaMinDims; dims <= kSoaMaxDims; ++dims) {
    EXPECT_NE(SoaKernelSetFor(dims, KernelIsa::kScalar), nullptr);
  }
  EXPECT_EQ(SoaKernelSetFor(kSoaMinDims - 1, KernelIsa::kScalar), nullptr);
  EXPECT_EQ(SoaKernelSetFor(kSoaMaxDims + 1, KernelIsa::kScalar), nullptr);
}

}  // namespace
}  // namespace spatial
