// ServingDb lifecycle: durable writes, read-your-writes, crash recovery
// via WAL replay, checkpoint segment truncation, snapshot publication,
// and the serving mode of QueryService (writes alongside queries).

#include "db/serving_db.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rtree/validator.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"
#include "tests/test_util.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 64; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

Rect<2> UnitBox(double x, double y) {
  Rect<2> r;
  r.lo[0] = x;
  r.lo[1] = y;
  r.hi[0] = x + 0.01;
  r.hi[1] = y + 0.01;
  return r;
}

Rect<2> Everything() {
  Rect<2> r;
  r.lo[0] = r.lo[1] = -1e9;
  r.hi[0] = r.hi[1] = 1e9;
  return r;
}

std::vector<uint64_t> AllIds(RTree<2>& tree) {
  std::vector<Entry<2>> entries;
  EXPECT_TRUE(tree.Search(Everything(), &entries).ok());
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

using WriteOp2 = ServingDb<2>::WriteOp;
using WriteResult2 = ServingDb<2>::WriteResult;

TEST(ServingDbTest, CreateApplyReadYourWrites) {
  const std::string path = TempPath("serving_basic.sdb");
  CleanupDb(path);
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  EXPECT_TRUE((*sdb)->recovery_info().created);
  EXPECT_EQ((*sdb)->last_lsn(), 0u);

  Rng rng(11);
  std::vector<WriteOp2> ops;
  for (uint64_t id = 1; id <= 40; ++id) {
    ops.push_back(WriteOp2::Insert(
        UnitBox(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)), id));
  }
  std::vector<WriteResult2> results;
  ASSERT_TRUE((*sdb)->ApplyBatch(ops, &results).ok());
  ASSERT_EQ(results.size(), 40u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].lsn, i + 1);
    EXPECT_TRUE(results[i].applied);
  }
  EXPECT_EQ((*sdb)->last_lsn(), 40u);
  EXPECT_EQ((*sdb)->writer_tree().size(), 40u);

  // Read-your-writes through the writer's own tree handle.
  EXPECT_EQ(AllIds((*sdb)->writer_tree()).size(), 40u);
  auto report = ValidateTree<2>((*sdb)->writer_tree(), true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, 40u);

  // Snapshot publication tracks the write.
  const TreeSnapshot snap = (*sdb)->CurrentSnapshot();
  EXPECT_EQ(snap.size, 40u);
  EXPECT_EQ(snap.lsn, 40u);
  EXPECT_EQ(snap.epoch, (*sdb)->epoch());

  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, DeleteReportsWhetherItApplied) {
  const std::string path = TempPath("serving_delete.sdb");
  CleanupDb(path);
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok());

  std::vector<WriteResult2> results;
  ASSERT_TRUE((*sdb)
                  ->ApplyBatch({WriteOp2::Insert(UnitBox(0.1, 0.1), 1),
                                WriteOp2::Insert(UnitBox(0.2, 0.2), 2)},
                               &results)
                  .ok());
  ASSERT_TRUE((*sdb)
                  ->ApplyBatch({WriteOp2::Delete(UnitBox(0.1, 0.1), 1),
                                WriteOp2::Delete(UnitBox(0.9, 0.9), 77)},
                               &results)
                  .ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].applied);    // exact match removed
  EXPECT_FALSE(results[1].applied);   // no such entry: durable no-op
  EXPECT_EQ((*sdb)->writer_tree().size(), 1u);

  // Inserts with an empty MBR are rejected before anything is logged.
  EXPECT_TRUE((*sdb)
                  ->ApplyBatch({WriteOp2::Insert(Rect<2>::Empty(), 9)}, nullptr)
                  .IsInvalidArgument());
  EXPECT_EQ((*sdb)->last_lsn(), 4u);

  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, ReopenAfterCloseFindsCheckpointedState) {
  const std::string path = TempPath("serving_reopen.sdb");
  CleanupDb(path);
  std::vector<uint64_t> expected_ids;
  {
    auto sdb = ServingDb<2>::Open(path, ServingOptions{});
    ASSERT_TRUE(sdb.ok());
    Rng rng(5);
    std::vector<WriteOp2> ops;
    for (uint64_t id = 100; id < 130; ++id) {
      ops.push_back(WriteOp2::Insert(
          UnitBox(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)), id));
      expected_ids.push_back(id);
    }
    ASSERT_TRUE((*sdb)->ApplyBatch(ops, nullptr).ok());
    ASSERT_TRUE((*sdb)->Close().ok());
  }
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  EXPECT_FALSE((*sdb)->recovery_info().created);
  // Close checkpointed, so nothing needed replay.
  EXPECT_EQ((*sdb)->recovery_info().replayed_records, 0u);
  EXPECT_EQ((*sdb)->recovery_info().checkpoint_lsn, 30u);
  EXPECT_EQ((*sdb)->last_lsn(), 30u);
  EXPECT_EQ(AllIds((*sdb)->writer_tree()), expected_ids);
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, ReopenAfterCrashReplaysWalTail) {
  const std::string path = TempPath("serving_crash.sdb");
  CleanupDb(path);
  {
    auto sdb = ServingDb<2>::Open(path, ServingOptions{});
    ASSERT_TRUE(sdb.ok());
    std::vector<WriteOp2> ops;
    for (uint64_t id = 1; id <= 25; ++id) {
      ops.push_back(WriteOp2::Insert(UnitBox(0.03 * id, 0.03 * id), id));
    }
    ASSERT_TRUE((*sdb)->ApplyBatch(ops, nullptr).ok());
    ASSERT_TRUE(
        (*sdb)->ApplyBatch({WriteOp2::Delete(UnitBox(0.03, 0.03), 1)}, nullptr)
            .ok());
    // Crash: no checkpoint, no flush — the acked state exists only in the
    // base file's old root plus the WAL tail.
    (*sdb)->Abandon();
  }
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  EXPECT_EQ((*sdb)->recovery_info().replayed_records, 26u);
  EXPECT_EQ((*sdb)->recovery_info().recovered_lsn, 26u);
  EXPECT_EQ((*sdb)->writer_tree().size(), 24u);
  std::vector<uint64_t> want;
  for (uint64_t id = 2; id <= 25; ++id) want.push_back(id);
  EXPECT_EQ(AllIds((*sdb)->writer_tree()), want);
  auto report = ValidateTree<2>((*sdb)->writer_tree(), true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, CheckpointTruncatesWalSegments) {
  const std::string path = TempPath("serving_ckpt.sdb");
  CleanupDb(path);
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok());
  ASSERT_TRUE(
      (*sdb)->ApplyBatch({WriteOp2::Insert(UnitBox(0.5, 0.5), 1)}, nullptr)
          .ok());
  const uint64_t before = (*sdb)->checkpoints();
  ASSERT_TRUE((*sdb)->Checkpoint().ok());
  EXPECT_EQ((*sdb)->checkpoints(), before + 1);

  // Every segment below the current one is gone; the current one exists.
  const uint64_t seq = (*sdb)->db().wal_seq();
  ASSERT_GE(seq, 2u);
  for (uint64_t s = 1; s < seq; ++s) {
    EXPECT_EQ(std::fopen(WalWriter::SegmentPath(path, s).c_str(), "rb"),
              nullptr)
        << "segment " << s << " should have been truncated";
  }
  std::FILE* cur = std::fopen(WalWriter::SegmentPath(path, seq).c_str(), "rb");
  EXPECT_NE(cur, nullptr);
  if (cur != nullptr) std::fclose(cur);
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, DiesOnInjectedCommitFailureButRecovers) {
  const std::string path = TempPath("serving_dead.sdb");
  CleanupDb(path);
  FaultInjector injector;
  ServingOptions options;
  options.injector = &injector;
  uint64_t acked_lsn = 0;
  {
    auto sdb = ServingDb<2>::Open(path, options);
    ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
    std::vector<WriteResult2> results;
    ASSERT_TRUE(
        (*sdb)
            ->ApplyBatch({WriteOp2::Insert(UnitBox(0.2, 0.2), 1)}, &results)
            .ok());
    acked_lsn = results.back().lsn;

    // The next durable op (the WAL batch write) fails: the batch is not
    // acked and the db is dead.
    injector.Arm(1);
    EXPECT_FALSE(
        (*sdb)
            ->ApplyBatch({WriteOp2::Insert(UnitBox(0.4, 0.4), 2)}, nullptr)
            .ok());
    EXPECT_TRUE((*sdb)->dead());
    injector.Arm(0);  // "disk" works again; the db stays dead regardless
    EXPECT_TRUE(
        (*sdb)
            ->ApplyBatch({WriteOp2::Insert(UnitBox(0.6, 0.6), 3)}, nullptr)
            .IsInternal());
    EXPECT_TRUE((*sdb)->Checkpoint().IsInternal());
    EXPECT_TRUE((*sdb)->Close().IsInternal());
  }
  // Reopen recovers every acknowledged write.
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  EXPECT_GE((*sdb)->recovery_info().recovered_lsn, acked_lsn);
  EXPECT_EQ((*sdb)->writer_tree().size(), 1u);
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingDbTest, PinnedSnapshotDefersReclamation) {
  const std::string path = TempPath("serving_pin.sdb");
  CleanupDb(path);
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok());

  auto slot = (*sdb)->RegisterReader();
  ASSERT_TRUE(slot.ok());
  const TreeSnapshot pinned = (*sdb)->PinSnapshot(*slot);

  // COW writes retire pages the pinned snapshot can still reach; a
  // checkpoint while pinned must not recycle any of them (every retiree
  // is tagged with an epoch >= the pin).
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(
        (*sdb)
            ->ApplyBatch({WriteOp2::Insert(UnitBox(0.04 * id, 0.1), id)},
                         nullptr)
            .ok());
  }
  const uint64_t gen_before = (*sdb)->reclaim_gen();
  ASSERT_TRUE((*sdb)->Checkpoint().ok());
  EXPECT_EQ((*sdb)->reclaim_gen(), gen_before);  // nothing freed while pinned
  EXPECT_EQ(pinned.size, 0u);                    // the old version, intact

  (*sdb)->UnpinSnapshot(*slot);
  (*sdb)->ReleaseReader(*slot);
  ASSERT_TRUE((*sdb)->Checkpoint().ok());
  EXPECT_GT((*sdb)->reclaim_gen(), gen_before);  // retirees now reclaimed
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingServiceTest, WritesAndQueriesEndToEnd) {
  const std::string path = TempPath("serving_service.sdb");
  CleanupDb(path);
  QueryService<2>::Options options;
  options.num_workers = 3;
  auto service = QueryService<2>::OpenServing(path, ServingOptions{}, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->serving());

  Rng rng(23);
  std::vector<Entry<2>> reference;
  std::vector<std::future<QueryResponse<2>>> pending;
  for (uint64_t id = 1; id <= 200; ++id) {
    const Rect<2> box =
        UnitBox(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    reference.push_back(Entry<2>{box, id});
    pending.push_back((*service)->Submit(QueryRequest<2>::Insert(box, id)));
  }
  uint64_t max_lsn = 0;
  for (auto& f : pending) {
    QueryResponse<2> resp = f.get();
    ASSERT_TRUE(resp.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.affected, 1u);
    max_lsn = std::max(max_lsn, resp.lsn);
  }
  EXPECT_EQ(max_lsn, 200u);

  // Queries see the acknowledged writes.
  for (int i = 0; i < 20; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    QueryResponse<2> got = (*service)->Execute(QueryRequest<2>::Knn(q, 5));
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    ExpectKnnMatchesBruteForce(reference, q, 5, got.neighbors);
  }

  // Deletes and checkpoints flow through the same write path.
  QueryResponse<2> del =
      (*service)->Execute(QueryRequest<2>::Delete(reference[0].mbr, 1));
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.affected, 1u);
  QueryResponse<2> ckpt = (*service)->Execute(QueryRequest<2>::Checkpoint());
  ASSERT_TRUE(ckpt.ok()) << ckpt.status.ToString();

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.writes_ok, 201u);
  EXPECT_EQ(stats.writes_failed, 0u);
  EXPECT_GE(stats.checkpoints, 1u);

  (*service)->Shutdown();

  // The served data survived: reopen and check.
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  EXPECT_EQ((*sdb)->writer_tree().size(), 199u);
  ASSERT_TRUE((*sdb)->Close().ok());
  CleanupDb(path);
}

TEST(ServingServiceTest, WritesRejectedOnReadOnlyService) {
  const std::string path = TempPath("serving_readonly.sdb");
  CleanupDb(path);
  {
    auto sdb = ServingDb<2>::Open(path, ServingOptions{});
    ASSERT_TRUE(sdb.ok());
    ASSERT_TRUE(
        (*sdb)->ApplyBatch({WriteOp2::Insert(UnitBox(0.5, 0.5), 1)}, nullptr)
            .ok());
    ASSERT_TRUE((*sdb)->Close().ok());
  }
  auto service =
      QueryService<2>::Open(path, ServingOptions{}.page_size,
                            QueryService<2>::Options{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_FALSE((*service)->serving());
  QueryResponse<2> resp =
      (*service)->Execute(QueryRequest<2>::Insert(UnitBox(0.1, 0.1), 2));
  EXPECT_TRUE(resp.status.IsInvalidArgument()) << resp.status.ToString();
  CleanupDb(path);
}

}  // namespace
}  // namespace spatial
