#include <gtest/gtest.h>

#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {
namespace {

TEST(PointTest, IndexingAndEquality) {
  Point2 p{{1.0, 2.0}};
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], 2.0);
  Point2 q{{1.0, 2.0}};
  EXPECT_EQ(p, q);
  q[1] = 3.0;
  EXPECT_NE(p, q);
}

TEST(PointTest, Distances) {
  Point2 a{{0.0, 0.0}};
  Point2 b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(PointTest, HigherDimensions) {
  Point<4> a{{1, 1, 1, 1}};
  Point<4> b{{2, 2, 2, 2}};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 4.0);
}

TEST(RectTest, EmptyBehaviour) {
  Rect2 e = Rect2::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.IsValid());
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_EQ(e.Margin(), 0.0);
}

TEST(RectTest, FromPointIsDegenerateAndValid) {
  Rect2 r = Rect2::FromPoint({{2.0, 3.0}});
  EXPECT_TRUE(r.IsValid());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point2{{2.0, 3.0}}));
  EXPECT_FALSE(r.Contains(Point2{{2.0, 3.1}}));
}

TEST(RectTest, FromCornersNormalizesOrder) {
  Rect2 r = Rect2::FromCorners({{5.0, 1.0}}, {{2.0, 4.0}});
  EXPECT_EQ(r.lo[0], 2.0);
  EXPECT_EQ(r.hi[0], 5.0);
  EXPECT_EQ(r.lo[1], 1.0);
  EXPECT_EQ(r.hi[1], 4.0);
}

TEST(RectTest, ContainsPointIncludesBoundary) {
  Rect2 r{{{0, 0}}, {{1, 1}}};
  EXPECT_TRUE(r.Contains(Point2{{0.0, 0.0}}));
  EXPECT_TRUE(r.Contains(Point2{{1.0, 1.0}}));
  EXPECT_TRUE(r.Contains(Point2{{0.5, 0.5}}));
  EXPECT_FALSE(r.Contains(Point2{{1.0001, 0.5}}));
}

TEST(RectTest, ContainsRect) {
  Rect2 outer{{{0, 0}}, {{10, 10}}};
  Rect2 inner{{{2, 2}}, {{3, 3}}};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(RectTest, IntersectsIncludesTouching) {
  Rect2 a{{{0, 0}}, {{1, 1}}};
  Rect2 b{{{1, 1}}, {{2, 2}}};  // corner touch
  Rect2 c{{{1.5, 0}}, {{2, 1}}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(RectTest, UnionAndExpand) {
  Rect2 a{{{0, 0}}, {{1, 1}}};
  Rect2 b{{{2, -1}}, {{3, 0.5}}};
  Rect2 u = Rect2::Union(a, b);
  EXPECT_EQ(u.lo[0], 0.0);
  EXPECT_EQ(u.lo[1], -1.0);
  EXPECT_EQ(u.hi[0], 3.0);
  EXPECT_EQ(u.hi[1], 1.0);

  Rect2 e = Rect2::Empty();
  e.ExpandToInclude(a);
  EXPECT_EQ(e, a);
  e.ExpandToInclude(Point2{{-1.0, 5.0}});
  EXPECT_EQ(e.lo[0], -1.0);
  EXPECT_EQ(e.hi[1], 5.0);
}

TEST(RectTest, IntersectionMayBeEmpty) {
  Rect2 a{{{0, 0}}, {{1, 1}}};
  Rect2 b{{{2, 2}}, {{3, 3}}};
  EXPECT_TRUE(Rect2::Intersection(a, b).IsEmpty());
  Rect2 c{{{0.5, 0.5}}, {{2, 2}}};
  Rect2 i = Rect2::Intersection(a, c);
  EXPECT_EQ(i.lo[0], 0.5);
  EXPECT_EQ(i.hi[0], 1.0);
}

TEST(RectTest, AreaMarginCenter) {
  Rect2 r{{{1, 2}}, {{4, 6}}};
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), (Point2{{2.5, 4.0}}));
}

TEST(RectTest, OverlapArea) {
  Rect2 a{{{0, 0}}, {{2, 2}}};
  Rect2 b{{{1, 1}}, {{3, 3}}};
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapArea(a), 1.0);
  Rect2 c{{{5, 5}}, {{6, 6}}};
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  // Touching edges overlap with zero area.
  Rect2 d{{{2, 0}}, {{3, 2}}};
  EXPECT_DOUBLE_EQ(a.OverlapArea(d), 0.0);
}

TEST(RectTest, Enlargement) {
  Rect2 a{{{0, 0}}, {{2, 2}}};
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect2{{{1, 1}}, {{2, 2}}}), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect2{{{0, 0}}, {{4, 2}}}), 4.0);
}

TEST(RectTest, ThreeDimensionalVolume) {
  Rect3 r{{{0, 0, 0}}, {{2, 3, 4}}};
  EXPECT_DOUBLE_EQ(r.Area(), 24.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 9.0);
}

}  // namespace
}  // namespace spatial
