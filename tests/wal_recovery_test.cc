// The crash matrix: kill the serving database at EVERY durable operation
// of a scripted workload (fail-stop, and torn for WAL writes), reopen, and
// prove the recovered tree (a) validates, (b) contains every acknowledged
// write, and (c) answers queries exactly like a reference rebuilt from the
// durable op prefix — the acked ⊆ recovered ⊆ submitted contract of
// docs/DURABILITY.md.
//
// A baseline run in counting mode measures the total number of durable
// operations N; the matrix then sweeps fail_at_op over 1..N. The full
// sweep runs in the `heavy` ctest configuration; `--smoke` thins it to a
// spread of crash points (plus both edges) for tier-1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/knn.h"
#include "db/serving_db.h"
#include "rtree/validator.h"
#include "storage/fault_injector.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

bool g_smoke = false;

using WriteOp2 = ServingDb<2>::WriteOp;
using WriteResult2 = ServingDb<2>::WriteResult;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 128; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

// The scripted workload: batches of inserts with interleaved deletes of
// earlier ids, plus explicit checkpoints after batches 4 and 8 so the
// matrix crosses every checkpoint step too. Fully deterministic.
std::vector<std::vector<WriteOp2>> MakeWorkload() {
  Rng rng(1234);
  std::vector<std::vector<WriteOp2>> batches;
  std::vector<WriteOp2> inserted;  // ids still expected to be present
  uint64_t next_id = 1;
  for (int b = 0; b < 12; ++b) {
    std::vector<WriteOp2> batch;
    for (int i = 0; i < 4; ++i) {
      const bool do_delete = !inserted.empty() && (b * 4 + i) % 7 == 6;
      if (do_delete) {
        const WriteOp2 victim =
            inserted[rng.NextBounded(inserted.size())];
        batch.push_back(WriteOp2::Delete(victim.mbr, victim.id));
        inserted.erase(
            std::find_if(inserted.begin(), inserted.end(),
                         [&](const WriteOp2& op) {
                           return op.id == victim.id;
                         }));
      } else {
        Rect<2> r;
        r.lo[0] = rng.Uniform(0.0, 1.0);
        r.lo[1] = rng.Uniform(0.0, 1.0);
        r.hi[0] = r.lo[0] + rng.Uniform(0.0, 0.02);
        r.hi[1] = r.lo[1] + rng.Uniform(0.0, 0.02);
        const WriteOp2 op = WriteOp2::Insert(r, next_id++);
        batch.push_back(op);
        inserted.push_back(op);
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

bool IsCheckpointBatch(size_t batch_index) {
  return batch_index == 4 || batch_index == 8;
}

struct RunOutcome {
  // submitted_by_lsn[lsn] = the op the writer assigned that lsn (index 0
  // unused). Covers acked batches AND the batch in flight at the crash —
  // replay may legitimately resurrect a durable-but-unacked prefix of it.
  std::vector<WriteOp2> submitted_by_lsn;
  uint64_t last_acked_lsn = 0;
};

// Runs the workload against `path` until the injector kills it (or to
// completion), then abandons the database — the simulated crash.
RunOutcome RunWorkload(const std::string& path, FaultInjector* injector) {
  RunOutcome outcome;
  outcome.submitted_by_lsn.resize(1);
  ServingOptions options;
  options.injector = injector;
  auto sdb = ServingDb<2>::Open(path, options);
  if (!sdb.ok()) return outcome;  // crashed inside Open/recovery

  const auto workload = MakeWorkload();
  for (size_t b = 0; b < workload.size(); ++b) {
    for (const WriteOp2& op : workload[b]) {
      outcome.submitted_by_lsn.push_back(op);
    }
    std::vector<WriteResult2> results;
    const Status st = (*sdb)->ApplyBatch(workload[b], &results);
    if (!st.ok()) break;
    outcome.last_acked_lsn = results.back().lsn;
    if (IsCheckpointBatch(b) && !(*sdb)->Checkpoint().ok()) break;
  }
  (*sdb)->Abandon();
  return outcome;
}

// Applies submitted ops with lsn <= recovered_lsn, in lsn order — exactly
// what replay promises the recovered tree contains.
std::vector<Entry<2>> RebuildReference(const RunOutcome& outcome,
                                       uint64_t recovered_lsn) {
  std::vector<Entry<2>> entries;
  for (uint64_t lsn = 1;
       lsn <= recovered_lsn && lsn < outcome.submitted_by_lsn.size(); ++lsn) {
    const WriteOp2& op = outcome.submitted_by_lsn[lsn];
    if (op.is_insert) {
      entries.push_back(Entry<2>{op.mbr, op.id});
    } else {
      auto it = std::find_if(entries.begin(), entries.end(),
                             [&](const Entry<2>& e) { return e.id == op.id; });
      if (it != entries.end()) entries.erase(it);
    }
  }
  return entries;
}

// Reopens after the crash (injection off) and checks the contract.
void VerifyRecovery(const std::string& path, const RunOutcome& outcome,
                    const std::string& label) {
  auto sdb = ServingDb<2>::Open(path, ServingOptions{});
  ASSERT_TRUE(sdb.ok()) << label << ": recovery failed: "
                        << sdb.status().ToString();
  // recovered_lsn starts at the superblock's checkpoint lsn and advances
  // over the replayed tail, so it IS the recovered high-water mark.
  const uint64_t recovered = (*sdb)->recovery_info().recovered_lsn;

  // acked ⊆ recovered ⊆ submitted.
  ASSERT_GE(recovered, outcome.last_acked_lsn) << label;
  ASSERT_LT(recovered, outcome.submitted_by_lsn.size()) << label;

  const std::vector<Entry<2>> reference = RebuildReference(outcome, recovered);
  RTree<2>& tree = (*sdb)->writer_tree();
  ASSERT_EQ(tree.size(), reference.size()) << label;

  auto report = ValidateTree<2>(tree, true);
  ASSERT_TRUE(report.ok()) << label << ": " << report.status().ToString();
  ASSERT_EQ(report->leaf_entries, reference.size()) << label;

  // Exact content match (ids are unique, so ids suffice).
  Rect<2> everything;
  everything.lo[0] = everything.lo[1] = -1e9;
  everything.hi[0] = everything.hi[1] = 1e9;
  std::vector<Entry<2>> found;
  ASSERT_TRUE(tree.Search(everything, &found).ok()) << label;
  std::vector<uint64_t> got_ids, want_ids;
  for (const auto& e : found) got_ids.push_back(e.id);
  for (const auto& e : reference) want_ids.push_back(e.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  ASSERT_EQ(got_ids, want_ids) << label;

  // Query equivalence: recovered index answers like the reference.
  Rng rng(99);
  for (int i = 0; i < 4; ++i) {
    const Point<2> q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    KnnOptions knn;
    knn.k = 5;
    auto got = KnnSearch<2>(tree, q, knn, nullptr);
    ASSERT_TRUE(got.ok()) << label;
    const std::vector<Neighbor> want = LinearScanKnn<2>(reference, q, 5,
                                                        nullptr);
    ASSERT_EQ(got->size(), want.size()) << label;
    for (size_t j = 0; j < want.size(); ++j) {
      ASSERT_DOUBLE_EQ((*got)[j].dist_sq, want[j].dist_sq)
          << label << " rank " << j;
    }
  }
  ASSERT_TRUE((*sdb)->Close().ok()) << label;
}

TEST(WalRecoveryTest, CrashMatrix) {
  const std::string path = TempPath("crash_matrix.sdb");

  // Baseline: count the workload's durable operations.
  CleanupDb(path);
  FaultInjector injector;
  injector.Arm(0);
  const RunOutcome baseline = RunWorkload(path, &injector);
  ASSERT_FALSE(injector.tripped());
  const uint64_t total_ops = injector.ops_seen();
  ASSERT_GT(total_ops, 20u);
  ASSERT_EQ(baseline.last_acked_lsn, 48u);  // every batch acked

  // The baseline itself must recover (crash at the very end).
  VerifyRecovery(path, baseline, "baseline");
  if (::testing::Test::HasFatalFailure()) return;

  const uint64_t step =
      g_smoke ? std::max<uint64_t>(1, total_ops / 12) : 1;
  uint64_t matrix_runs = 0;
  for (uint64_t fail_at = 1; fail_at <= total_ops; ++fail_at) {
    // Smoke keeps a spread of interior points plus both edges.
    if (g_smoke && fail_at != 1 && fail_at != total_ops &&
        fail_at % step != 0) {
      continue;
    }
    for (const bool torn : {false, true}) {
      const std::string label = "fail_at=" + std::to_string(fail_at) +
                                (torn ? " torn" : " failstop");
      CleanupDb(path);
      injector.Arm(fail_at, torn);
      const RunOutcome outcome = RunWorkload(path, &injector);
      EXPECT_TRUE(injector.tripped()) << label;
      injector.Arm(0);
      VerifyRecovery(path, outcome, label);
      if (::testing::Test::HasFatalFailure()) return;
      ++matrix_runs;
    }
  }
  EXPECT_GE(matrix_runs, g_smoke ? 20u : 2 * (total_ops - 1));
  CleanupDb(path);
}

}  // namespace
}  // namespace spatial

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") spatial::g_smoke = true;
  }
  return RUN_ALL_TESTS();
}
