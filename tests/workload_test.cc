#include <gtest/gtest.h>

#include <vector>

#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"

namespace spatial {
namespace {

std::vector<Entry<2>> SampleData(uint64_t seed, size_t n = 500) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

TEST(WorkloadTest, UniformQueriesStayInDataBounds) {
  auto data = SampleData(1);
  Rng rng(2);
  auto queries = GenerateQueries<2>(data, 1000, QueryDistribution::kUniform,
                                    0.0, &rng);
  ASSERT_EQ(queries.size(), 1000u);
  const Rect2 bounds = BoundsOf(data);
  for (const auto& q : queries) {
    ASSERT_TRUE(bounds.Contains(q));
  }
}

TEST(WorkloadTest, DataDrawnQueriesAreDataCenters) {
  auto data = SampleData(3);
  Rng rng(4);
  auto queries = GenerateQueries<2>(data, 200, QueryDistribution::kDataDrawn,
                                    0.0, &rng);
  for (const auto& q : queries) {
    bool found = false;
    for (const auto& e : data) {
      if (e.mbr.Center() == q) {
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
}

TEST(WorkloadTest, PerturbedQueriesDeviateFromData) {
  auto data = SampleData(5);
  Rng rng(6);
  auto queries = GenerateQueries<2>(data, 200, QueryDistribution::kPerturbed,
                                    0.05, &rng);
  int exact_matches = 0;
  for (const auto& q : queries) {
    for (const auto& e : data) {
      if (e.mbr.Center() == q) {
        ++exact_matches;
        break;
      }
    }
  }
  EXPECT_LT(exact_matches, 5);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  auto data = SampleData(7);
  Rng a(8), b(8);
  auto qa = GenerateQueries<2>(data, 50, QueryDistribution::kUniform, 0.0, &a);
  auto qb = GenerateQueries<2>(data, 50, QueryDistribution::kUniform, 0.0, &b);
  EXPECT_EQ(qa, qb);
}

TEST(WorkloadTest, EmptyDatasetUsesUnitFallbackBounds) {
  Rng rng(9);
  auto queries = GenerateQueries<2>({}, 100, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const auto& q : queries) {
    ASSERT_TRUE(UnitBounds<2>().Contains(q));
  }
}

TEST(WorkloadTest, DistributionNames) {
  EXPECT_STREQ(QueryDistributionName(QueryDistribution::kUniform), "uniform");
  EXPECT_STREQ(QueryDistributionName(QueryDistribution::kDataDrawn),
               "data-drawn");
  EXPECT_STREQ(QueryDistributionName(QueryDistribution::kPerturbed),
               "perturbed");
}

}  // namespace
}  // namespace spatial
