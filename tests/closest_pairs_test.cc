#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/closest_pairs.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "geom/metrics.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// Exhaustive reference: all |outer| x |inner| pairs, k smallest distances.
std::vector<ClosestPair> BrutePairs(const std::vector<Entry<2>>& outer,
                                    const std::vector<Entry<2>>& inner,
                                    uint32_t k) {
  std::vector<ClosestPair> all;
  all.reserve(outer.size() * inner.size());
  for (const auto& a : outer) {
    for (const auto& b : inner) {
      all.push_back(ClosestPair{a.id, b.id, MinDistSq(a.mbr, b.mbr)});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ClosestPair& a, const ClosestPair& b) {
              return a.dist_sq < b.dist_sq;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(ClosestPairsTest, RejectsZeroK) {
  TestIndex2D a, b;
  EXPECT_TRUE(ClosestPairs<2>(*a.tree, *b.tree, 0, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(ClosestPairsTest, EmptySideYieldsNothing) {
  TestIndex2D a, b;
  ASSERT_TRUE(a.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  auto result = ClosestPairs<2>(*a.tree, *b.tree, 3, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ClosestPairsTest, HandCase) {
  TestIndex2D a, b;
  ASSERT_TRUE(a.tree->Insert(Rect2::FromPoint({{0.0, 0.0}}), 1).ok());
  ASSERT_TRUE(a.tree->Insert(Rect2::FromPoint({{10.0, 0.0}}), 2).ok());
  ASSERT_TRUE(b.tree->Insert(Rect2::FromPoint({{1.0, 0.0}}), 10).ok());
  ASSERT_TRUE(b.tree->Insert(Rect2::FromPoint({{50.0, 0.0}}), 20).ok());
  auto result = ClosestPairs<2>(*a.tree, *b.tree, 2, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].outer_id, 1u);
  EXPECT_EQ((*result)[0].inner_id, 10u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 1.0);
  EXPECT_EQ((*result)[1].outer_id, 2u);
  EXPECT_EQ((*result)[1].inner_id, 10u);
  EXPECT_DOUBLE_EQ((*result)[1].dist_sq, 81.0);
}

class ClosestPairsPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ClosestPairsPropertyTest, MatchesBruteForcePoints) {
  Rng rng(GetParam());
  auto outer_data =
      MakePointEntries(GenerateUniform<2>(400, UnitBounds<2>(), &rng), 0);
  auto inner_data = MakePointEntries(
      GenerateUniform<2>(300, UnitBounds<2>(), &rng), 100000);
  TestIndex2D outer, inner;
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  for (uint32_t k : {1u, 10u, 50u}) {
    auto result = ClosestPairs<2>(*outer.tree, *inner.tree, k, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = BrutePairs(outer_data, inner_data, k);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq)
          << "rank " << i << " k " << k;
    }
  }
}

TEST_P(ClosestPairsPropertyTest, MatchesBruteForceRects) {
  Rng rng(GetParam() ^ 0x9e9e);
  std::vector<Entry<2>> outer_data, inner_data;
  for (uint64_t i = 0; i < 250; ++i) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.5), a[1] + rng.Uniform(0, 0.5)}};
    outer_data.push_back(Entry<2>{Rect2::FromCorners(a, b), i});
  }
  for (uint64_t i = 0; i < 250; ++i) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.5), a[1] + rng.Uniform(0, 0.5)}};
    inner_data.push_back(Entry<2>{Rect2::FromCorners(a, b), 100000 + i});
  }
  TestIndex2D outer, inner;
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  auto result = ClosestPairs<2>(*outer.tree, *inner.tree, 20, nullptr);
  ASSERT_TRUE(result.ok());
  auto expected = BrutePairs(outer_data, inner_data, 20);
  ASSERT_EQ(result->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPairsPropertyTest,
                         ::testing::Values(13u, 131u, 1313u));

TEST(ClosestPairsTest, KBeyondAllPairsReturnsEverything) {
  Rng rng(14);
  auto outer_data =
      MakePointEntries(GenerateUniform<2>(8, UnitBounds<2>(), &rng), 0);
  auto inner_data =
      MakePointEntries(GenerateUniform<2>(5, UnitBounds<2>(), &rng), 1000);
  TestIndex2D outer, inner;
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  auto result = ClosestPairs<2>(*outer.tree, *inner.tree, 1000, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 40u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].dist_sq, (*result)[i].dist_sq);
  }
}

TEST(ClosestPairsTest, PrunesOnWellSeparatedClouds) {
  // Two disjoint clouds with a gap: only node pairs near the facing
  // boundary can host the closest pair, so expansion must stay far below
  // the full node count. (On heavily *overlapping* clouds the zero-MBR-
  // distance pair frontier is legitimately large — not tested here.)
  Rng rng(15);
  auto outer_data =
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng), 0);
  std::vector<Point2> shifted = GenerateUniform<2>(3000, UnitBounds<2>(), &rng);
  for (auto& p : shifted) p[0] += 1.05;  // gap of 0.05 along x
  auto inner_data = MakePointEntries(shifted, 1000000);
  TestIndex2D outer(1024, 256), inner(1024, 256);
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  QueryStats stats;
  auto result = ClosestPairs<2>(*outer.tree, *inner.tree, 1, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  auto expected = BrutePairs(outer_data, inner_data, 1);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, expected[0].dist_sq);
  EXPECT_GE((*result)[0].dist_sq, 0.05 * 0.05);
  // Both trees together hold ~250 nodes; only the boundary strip matters.
  EXPECT_LT(stats.nodes_visited, 80u);
}

}  // namespace
}  // namespace spatial
