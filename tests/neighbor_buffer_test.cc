#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/neighbor_buffer.h"

namespace spatial {
namespace {

TEST(NeighborBufferTest, WorstIsInfiniteUntilFull) {
  NeighborBuffer buffer(3);
  EXPECT_EQ(buffer.WorstDistSq(), std::numeric_limits<double>::infinity());
  buffer.Offer(1, 5.0);
  buffer.Offer(2, 1.0);
  EXPECT_EQ(buffer.WorstDistSq(), std::numeric_limits<double>::infinity());
  buffer.Offer(3, 3.0);
  EXPECT_EQ(buffer.WorstDistSq(), 5.0);
}

TEST(NeighborBufferTest, KeepsKSmallest) {
  NeighborBuffer buffer(2);
  EXPECT_TRUE(buffer.Offer(1, 9.0));
  EXPECT_TRUE(buffer.Offer(2, 7.0));
  EXPECT_TRUE(buffer.Offer(3, 3.0));   // evicts 9.0
  EXPECT_FALSE(buffer.Offer(4, 8.0));  // worse than current worst (7.0)
  auto result = buffer.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_EQ(result[0].dist_sq, 3.0);
  EXPECT_EQ(result[1].id, 2u);
  EXPECT_EQ(result[1].dist_sq, 7.0);
}

TEST(NeighborBufferTest, TieWithWorstIsRejectedWhenFull) {
  NeighborBuffer buffer(1);
  EXPECT_TRUE(buffer.Offer(1, 4.0));
  EXPECT_FALSE(buffer.Offer(2, 4.0));
  auto result = buffer.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(NeighborBufferTest, FewerCandidatesThanK) {
  NeighborBuffer buffer(10);
  buffer.Offer(1, 2.0);
  buffer.Offer(2, 1.0);
  auto result = buffer.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 2u);
  EXPECT_EQ(result[1].id, 1u);
}

TEST(NeighborBufferTest, SortedOutputMatchesStdSortOnRandomInput) {
  Rng rng(101);
  for (uint32_t k : {1u, 4u, 16u, 64u}) {
    NeighborBuffer buffer(k);
    std::vector<double> all;
    for (int i = 0; i < 500; ++i) {
      const double d = rng.Uniform(0, 1000);
      all.push_back(d);
      buffer.Offer(static_cast<uint64_t>(i), d);
    }
    std::sort(all.begin(), all.end());
    auto result = buffer.TakeSorted();
    ASSERT_EQ(result.size(), std::min<size_t>(k, all.size()));
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_DOUBLE_EQ(result[i].dist_sq, all[i]) << "rank " << i;
    }
    // Output is nondecreasing.
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].dist_sq, result[i].dist_sq);
    }
  }
}

TEST(NeighborBufferTest, WorstTracksKthSmallestExactly) {
  Rng rng(102);
  NeighborBuffer buffer(5);
  std::vector<double> seen;
  for (int i = 0; i < 200; ++i) {
    const double d = rng.Uniform(0, 100);
    seen.push_back(d);
    buffer.Offer(static_cast<uint64_t>(i), d);
    if (seen.size() >= 5) {
      std::vector<double> sorted = seen;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_DOUBLE_EQ(buffer.WorstDistSq(), sorted[4]);
    }
  }
}

}  // namespace
}  // namespace spatial
