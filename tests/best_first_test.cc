#include <gtest/gtest.h>

#include <vector>

#include "core/best_first.h"
#include "core/knn.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(BestFirstTest, RejectsZeroK) {
  TestIndex2D index;
  auto result = BestFirstKnn<2>(*index.tree, {{0.5, 0.5}}, 0, nullptr);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(BestFirstTest, EmptyTreeReturnsNothing) {
  TestIndex2D index;
  auto result = BestFirstKnn<2>(*index.tree, {{0.5, 0.5}}, 3, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(BestFirstTest, MatchesBruteForceAcrossKs) {
  TestIndex2D index;
  Rng rng(61);
  auto data =
      MakePointEntries(GenerateUniform<2>(2500, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 50, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (uint32_t k : {1u, 4u, 20u}) {
    for (const Point2& q : queries) {
      auto result = BestFirstKnn<2>(*index.tree, q, k, nullptr);
      ASSERT_TRUE(result.ok());
      ExpectKnnMatchesBruteForce(data, q, k, *result);
    }
  }
}

TEST(BestFirstTest, VisitsNoMoreNodesThanDepthFirst) {
  // Global best-first expansion is page-access optimal: it can never read
  // more nodes than the depth-first branch-and-bound for the same query.
  TestIndex2D index;
  Rng rng(62);
  auto data =
      MakePointEntries(GenerateUniform<2>(4000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 100, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    QueryStats df_stats, bf_stats;
    KnnOptions knn;
    knn.k = 4;
    auto df = KnnSearch<2>(*index.tree, q, knn, &df_stats);
    auto bf = BestFirstKnn<2>(*index.tree, q, 4, &bf_stats);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(bf.ok());
    EXPECT_LE(bf_stats.nodes_visited, df_stats.nodes_visited);
  }
}

TEST(BestFirstTest, HeapTrafficIsRecorded) {
  TestIndex2D index;
  Rng rng(63);
  auto data =
      MakePointEntries(GenerateUniform<2>(1000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  QueryStats stats;
  auto result = BestFirstKnn<2>(*index.tree, {{0.5, 0.5}}, 2, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.heap_pushes, 0u);
  EXPECT_GT(stats.heap_pops, 0u);
  EXPECT_GE(stats.heap_pushes, stats.heap_pops);
}

TEST(BestFirstTest, KBeyondTreeSizeReturnsEverythingOrdered) {
  TestIndex2D index;
  Rng rng(64);
  auto data =
      MakePointEntries(GenerateUniform<2>(50, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto result = BestFirstKnn<2>(*index.tree, {{0.0, 0.0}}, 100, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].dist_sq, (*result)[i].dist_sq);
  }
}

}  // namespace
}  // namespace spatial
