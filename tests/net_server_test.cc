// The RPC front door end to end: a real TCP round trip must return exactly
// what the router returns locally, handshake mismatches must be refused,
// admission control must shed with kOverloaded at the pending budget, and
// max_requests must stop the server cleanly.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "net/client.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 33) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

struct Fixture {
  explicit Fixture(uint32_t read_latency_us = 0) {
    ShardSet<2>::Options options;
    options.num_shards = 2;
    options.page_size = 512;
    options.buffer_pages = 64;
    options.service.num_workers = 2;
    options.service.frames_per_worker = 32;
    options.service.simulated_read_latency_us = read_latency_us;
    auto built = ShardSet<2>::Build(MakeData(1000), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    set = std::move(*built);
    router = std::make_unique<ShardRouter<2>>(set.get());
  }

  std::unique_ptr<ShardSet<2>> set;
  std::unique_ptr<ShardRouter<2>> router;
};

TEST(RpcServerTest, RoundTripMatchesLocalRouter) {
  Fixture fx;
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_NE((*server)->port(), 0);

  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    const QueryRequest<2> request = QueryRequest<2>::Knn(q, 7);
    const QueryResponse<2> want = fx.router->Execute(request);
    auto got = (*client)->Call(request);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got->status.ok());
    ASSERT_EQ(got->neighbors.size(), want.neighbors.size());
    EXPECT_EQ(0, std::memcmp(got->neighbors.data(), want.neighbors.data(),
                             want.neighbors.size() * sizeof(Neighbor)));
  }

  // Range over RPC too.
  const Rect<2> window = Rect<2>::FromCorners({{0.2, 0.2}}, {{0.6, 0.7}});
  const QueryResponse<2> want = fx.router->Execute(QueryRequest<2>::Range(window));
  auto got = (*client)->Call(QueryRequest<2>::Range(window));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->entries.size(), want.entries.size());
  EXPECT_EQ(0, std::memcmp(got->entries.data(), want.entries.data(),
                           want.entries.size() * sizeof(Entry<2>)));

  // The server counts a request *after* flushing its reply, so the last
  // response can reach us a beat before the counter ticks.
  for (int spin = 0; (*server)->requests_served() < 26 && spin < 1000; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_GE((*server)->requests_served(), 26u);
  const std::string scrape = fx.router->ScrapeMetrics();
  EXPECT_NE(scrape.find("spatial_rpc_requests_total"), std::string::npos);
  EXPECT_NE(scrape.find("spatial_rpc_connections"), std::string::npos);
}

TEST(RpcServerTest, RefusesDimensionMismatch) {
  Fixture fx;
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok());
  // A 3-D client against a 2-D server: the server drops the connection
  // during the handshake, so Connect fails.
  auto client = RpcClient<3>::Connect("127.0.0.1", (*server)->port());
  EXPECT_FALSE(client.ok());
}

TEST(RpcServerTest, ShedsAtPendingBudget) {
  // Slow shards (simulated read latency) + a budget of 1 in-flight request:
  // concurrent clients must observe kOverloaded sheds, and every shed must
  // be a well-formed response on a healthy connection.
  Fixture fx(/*read_latency_us=*/1000);
  typename RpcServer<2>::Options options;
  options.max_pending = 1;
  auto server = RpcServer<2>::Start(fx.router.get(), options);
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 4;
  std::atomic<uint64_t> ok{0}, shed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(client.ok());
      Rng rng(100 + t);
      // Keep hammering until the budget has demonstrably shed, with a
      // generous cap so the test cannot spin forever.
      for (int i = 0; i < 500 && shed.load() == 0; ++i) {
        const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        auto r = (*client)->Call(QueryRequest<2>::Knn(q, 5));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        if (r->status.ok()) {
          ok.fetch_add(1);
          ASSERT_GT(r->neighbors.size(), 0u);
        } else {
          ASSERT_TRUE(r->status.IsOverloaded()) << r->status.ToString();
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(shed.load(), 0u);
  EXPECT_EQ((*server)->requests_shed(), shed.load());
}

TEST(RpcServerTest, MaxRequestsStopsServer) {
  Fixture fx;
  typename RpcServer<2>::Options options;
  options.max_requests = 10;
  auto server = RpcServer<2>::Start(fx.router.get(), options);
  ASSERT_TRUE(server.ok());

  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    auto r = (*client)->Call(QueryRequest<2>::Knn({{0.5, 0.5}}, 3));
    if (!r.ok()) break;  // server stopped mid-stream
    ++completed;
  }
  EXPECT_EQ(completed, 10);
  (*server)->WaitUntilStopped();
  EXPECT_EQ((*server)->requests_served(), 10u);
}

}  // namespace
}  // namespace spatial
