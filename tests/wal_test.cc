// Write-ahead log unit tests: record framing, group commit, segment
// rotation, replay semantics (torn tail vs mid-log corruption), and
// torn-segment repair.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "storage/fault_injector.h"
#include "wal/wal_reader.h"
#include "wal/wal_record.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

std::string TempPrefix(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveSegments(const std::string& prefix) {
  for (uint64_t s = 1; s <= 64; ++s) {
    std::remove(WalWriter::SegmentPath(prefix, s).c_str());
  }
}

WalRecord MakeInsert(uint64_t lsn, uint64_t id) {
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.dim = 2;
  rec.lsn = lsn;
  rec.object_id = id;
  rec.epoch = 7;
  rec.lo[0] = 0.25 * static_cast<double>(id);
  rec.lo[1] = -1.5;
  rec.hi[0] = 0.25 * static_cast<double>(id) + 1.0;
  rec.hi[1] = 2.5;
  return rec;
}

std::vector<WalRecord> ReplayAll(const std::string& prefix, uint64_t seq,
                                 WalReplayIterator* out_it = nullptr) {
  auto it = WalReplayIterator::Open(prefix, seq);
  EXPECT_TRUE(it.ok()) << it.status().ToString();
  std::vector<WalRecord> records;
  WalRecord rec;
  while (true) {
    auto more = it->Next(&rec);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    records.push_back(rec);
  }
  if (out_it != nullptr) *out_it = std::move(*it);
  return records;
}

TEST(WalRecordTest, RoundTripAllTypes) {
  for (uint8_t dim : {2, 3}) {
    WalRecord rec = MakeInsert(42, 9);
    rec.dim = dim;
    rec.type = WalRecordType::kDelete;
    std::string buf;
    AppendWalRecord(rec, &buf);
    ASSERT_EQ(buf.size(), kWalHeaderBytes + WalPayloadSize(dim));

    WalRecord decoded;
    size_t frame = 0;
    ASSERT_TRUE(DecodeWalRecord(buf.data(), buf.size(), &decoded, &frame).ok());
    EXPECT_EQ(frame, buf.size());
    EXPECT_EQ(decoded.type, rec.type);
    EXPECT_EQ(decoded.dim, rec.dim);
    EXPECT_EQ(decoded.lsn, rec.lsn);
    EXPECT_EQ(decoded.object_id, rec.object_id);
    EXPECT_EQ(decoded.epoch, rec.epoch);
    for (int d = 0; d < dim; ++d) {
      EXPECT_DOUBLE_EQ(decoded.lo[d], rec.lo[d]);
      EXPECT_DOUBLE_EQ(decoded.hi[d], rec.hi[d]);
    }
  }
  // Checkpoint markers carry no rectangle.
  WalRecord marker;
  marker.type = WalRecordType::kCheckpoint;
  marker.dim = 0;
  marker.lsn = 100;
  std::string buf;
  AppendWalRecord(marker, &buf);
  WalRecord decoded;
  size_t frame = 0;
  ASSERT_TRUE(DecodeWalRecord(buf.data(), buf.size(), &decoded, &frame).ok());
  EXPECT_EQ(decoded.type, WalRecordType::kCheckpoint);
  EXPECT_EQ(decoded.lsn, 100u);
}

TEST(WalRecordTest, ShortBufferIsOutOfRange) {
  std::string buf;
  AppendWalRecord(MakeInsert(1, 1), &buf);
  WalRecord decoded;
  size_t frame = 0;
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const Status st = DecodeWalRecord(buf.data(), cut, &decoded, &frame);
    EXPECT_TRUE(st.IsOutOfRange()) << "cut=" << cut << ": " << st.ToString();
  }
}

TEST(WalRecordTest, BitFlipIsCorruption) {
  std::string buf;
  AppendWalRecord(MakeInsert(1, 1), &buf);
  WalRecord decoded;
  size_t frame = 0;
  // Flip one payload byte: CRC must catch it.
  buf[kWalHeaderBytes + 5] ^= 0x40;
  EXPECT_TRUE(
      DecodeWalRecord(buf.data(), buf.size(), &decoded, &frame).IsCorruption());
}

TEST(WalWriterTest, AppendIsInvisibleUntilCommit) {
  const std::string prefix = TempPrefix("wal_group");
  RemoveSegments(prefix);
  auto writer = WalWriter::Open(prefix, 1, WalOptions{});
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(MakeInsert(1, 1)).ok());
  ASSERT_TRUE(writer->Append(MakeInsert(2, 2)).ok());

  // Nothing committed yet: replay sees an empty (but healthy) log.
  EXPECT_EQ(ReplayAll(prefix, 1).size(), 0u);

  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(writer->commits(), 1u);
  const std::vector<WalRecord> records = ReplayAll(prefix, 1);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[1].lsn, 2u);
  RemoveSegments(prefix);
}

TEST(WalWriterTest, RotationChainsSegments) {
  const std::string prefix = TempPrefix("wal_rotate");
  RemoveSegments(prefix);
  auto writer = WalWriter::Open(prefix, 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  uint64_t lsn = 0;
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 4; ++i) {
      lsn += 1;
      ASSERT_TRUE(writer->Append(MakeInsert(lsn, lsn)).ok());
    }
    ASSERT_TRUE(writer->Commit().ok());
    if (seg < 2) {
      auto rotated = writer->Rotate();
      ASSERT_TRUE(rotated.ok()) << rotated.status().ToString();
      EXPECT_EQ(*rotated, static_cast<uint64_t>(seg + 2));
    }
  }
  WalReplayIterator it = *WalReplayIterator::Open(prefix, 1);
  const std::vector<WalRecord> records = ReplayAll(prefix, 1, &it);
  ASSERT_EQ(records.size(), 12u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);
  }
  EXPECT_EQ(it.segments_read(), 3u);
  EXPECT_FALSE(it.tail_torn());

  // Checkpoint-style cleanup: drop everything below the newest segment.
  writer->DeleteSegmentsBelow(3);
  EXPECT_EQ(std::fopen(WalWriter::SegmentPath(prefix, 1).c_str(), "rb"),
            nullptr);
  EXPECT_EQ(std::fopen(WalWriter::SegmentPath(prefix, 2).c_str(), "rb"),
            nullptr);
  EXPECT_EQ(ReplayAll(prefix, 3).size(), 4u);
  RemoveSegments(prefix);
}

TEST(WalWriterTest, RotateWithPendingRecordsFails) {
  const std::string prefix = TempPrefix("wal_rotate_pending");
  RemoveSegments(prefix);
  auto writer = WalWriter::Open(prefix, 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeInsert(1, 1)).ok());
  EXPECT_FALSE(writer->Rotate().ok());
  RemoveSegments(prefix);
}

TEST(WalReplayTest, TornCommitIsDiscardedCleanly) {
  const std::string prefix = TempPrefix("wal_torn");
  RemoveSegments(prefix);
  FaultInjector injector;
  auto writer = WalWriter::Open(prefix, 1, WalOptions{}, &injector);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeInsert(1, 1)).ok());
  ASSERT_TRUE(writer->Append(MakeInsert(2, 2)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // Arm so the NEXT durable op (the batch's write) is torn: half of the
  // single 72-byte frame lands, cutting mid-record.
  injector.Arm(1, /*torn=*/true);
  ASSERT_TRUE(writer->Append(MakeInsert(3, 3)).ok());
  EXPECT_FALSE(writer->Commit().ok());

  WalReplayIterator it = *WalReplayIterator::Open(prefix, 1);
  const std::vector<WalRecord> records = ReplayAll(prefix, 1, &it);
  // The committed batch survives in full; the torn record is discarded.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[1].lsn, 2u);
  EXPECT_TRUE(it.tail_torn());
  // Keep-bytes covers the segment header plus both committed frames.
  const uint64_t frame = kWalHeaderBytes + WalPayloadSize(2);
  EXPECT_EQ(it.torn_keep_bytes(), kWalSegmentHeaderBytes + 2 * frame);

  // Repair, then replay again: same records, now a clean end.
  ASSERT_TRUE(
      WalWriter::TruncateSegment(prefix, it.torn_seq(), it.torn_keep_bytes())
          .ok());
  WalReplayIterator again = *WalReplayIterator::Open(prefix, 1);
  EXPECT_EQ(ReplayAll(prefix, 1, &again).size(), records.size());
  EXPECT_FALSE(again.tail_torn());
  RemoveSegments(prefix);
}

TEST(WalReplayTest, DamageInNonLastSegmentIsCorruption) {
  const std::string prefix = TempPrefix("wal_midlog");
  RemoveSegments(prefix);
  auto writer = WalWriter::Open(prefix, 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeInsert(1, 1)).ok());
  ASSERT_TRUE(writer->Commit().ok());
  ASSERT_TRUE(writer->Rotate().ok());
  ASSERT_TRUE(writer->Append(MakeInsert(2, 2)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // Flip a byte inside segment 1's record: fsynced data changed under us.
  {
    const std::string path = WalWriter::SegmentPath(prefix, 1);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, kWalSegmentHeaderBytes + kWalHeaderBytes + 3, SEEK_SET);
    std::fputc('!', f);
    std::fclose(f);
  }
  auto it = WalReplayIterator::Open(prefix, 1);
  ASSERT_TRUE(it.ok());
  WalRecord rec;
  auto next = it->Next(&rec);
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption()) << next.status().ToString();
  RemoveSegments(prefix);
}

TEST(WalReplayTest, MissingStartSegmentIsEmptyLog) {
  const std::string prefix = TempPrefix("wal_missing");
  RemoveSegments(prefix);
  WalReplayIterator it = *WalReplayIterator::Open(prefix, 5);
  EXPECT_EQ(ReplayAll(prefix, 5, &it).size(), 0u);
  EXPECT_FALSE(it.tail_torn());
  EXPECT_EQ(it.next_seq(), 5u);
}

TEST(WalReplayTest, GarbledHeaderOfLastSegmentIsTornTail) {
  const std::string prefix = TempPrefix("wal_badheader");
  RemoveSegments(prefix);
  {
    std::FILE* f =
        std::fopen(WalWriter::SegmentPath(prefix, 1).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("junk", 1, 4, f);  // crashed during the header write
    std::fclose(f);
  }
  WalReplayIterator it = *WalReplayIterator::Open(prefix, 1);
  EXPECT_EQ(ReplayAll(prefix, 1, &it).size(), 0u);
  EXPECT_TRUE(it.tail_torn());
  EXPECT_EQ(it.torn_keep_bytes(), 0u);
  // Repair unlinks the garbage file; the seq is reusable.
  ASSERT_TRUE(WalWriter::TruncateSegment(prefix, 1, 0).ok());
  EXPECT_EQ(it.next_seq(), 1u);
  EXPECT_EQ(std::fopen(WalWriter::SegmentPath(prefix, 1).c_str(), "rb"),
            nullptr);
}

TEST(WalWriterTest, FailStopCommitLosesWholeBatch) {
  const std::string prefix = TempPrefix("wal_failstop");
  RemoveSegments(prefix);
  FaultInjector injector;
  auto writer = WalWriter::Open(prefix, 1, WalOptions{}, &injector);
  ASSERT_TRUE(writer.ok());
  injector.Arm(1, /*torn=*/false);
  ASSERT_TRUE(writer->Append(MakeInsert(1, 1)).ok());
  EXPECT_FALSE(writer->Commit().ok());
  EXPECT_TRUE(injector.tripped());
  WalReplayIterator it = *WalReplayIterator::Open(prefix, 1);
  EXPECT_EQ(ReplayAll(prefix, 1, &it).size(), 0u);
  RemoveSegments(prefix);
}

}  // namespace
}  // namespace spatial
