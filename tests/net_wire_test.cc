// The binary wire protocol: every request and response field must survive
// an encode/decode round trip bit-exactly, malformed frames must be
// rejected without reading out of bounds, and the framed socket I/O must
// move payloads intact.

#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace spatial {
namespace {

template <int D>
QueryRequest<D> RoundTripRequest(const QueryRequest<D>& in) {
  std::string buf;
  EncodeRequest<D>(in, &buf);
  auto out = DecodeRequest<D>(reinterpret_cast<const uint8_t*>(buf.data()),
                              buf.size());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

TEST(WireTest, KnnRequestRoundTrip) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.25, -3.5}}, 17);
  in.knn.ordering = AblOrdering::kMinMaxDist;
  in.knn.use_s2 = false;
  QueryRequest<2> out = RoundTripRequest(in);
  EXPECT_EQ(out.kind, QueryKind::kKnn);
  EXPECT_EQ(out.query[0], 0.25);
  EXPECT_EQ(out.query[1], -3.5);
  EXPECT_EQ(out.knn.k, 17u);
  EXPECT_EQ(out.knn.ordering, AblOrdering::kMinMaxDist);
  EXPECT_TRUE(out.knn.use_s1);
  EXPECT_FALSE(out.knn.use_s2);
  EXPECT_TRUE(out.knn.use_s3);
}

TEST(WireTest, AllKindsRoundTrip) {
  const Rect<2> window = Rect<2>::FromCorners({{0.1, 0.2}}, {{0.7, 0.9}});
  std::vector<QueryRequest<2>> requests = {
      QueryRequest<2>::Knn({{0.5, 0.5}}, 3),
      QueryRequest<2>::ConstrainedKnn({{0.5, 0.5}}, window, 4),
      QueryRequest<2>::Range(window),
      QueryRequest<2>::TopK({{0.3, 0.4}}, 9),
      QueryRequest<2>::BatchKnn({{{0.1, 0.1}}, {{0.9, 0.8}}}, 2),
      QueryRequest<2>::Insert(window, 12345),
      QueryRequest<2>::Delete(window, 777),
      QueryRequest<2>::Checkpoint(),
      QueryRequest<2>::ReverseKnn({{0.6, 0.4}}, 5),
      QueryRequest<2>::NnSkyline({{{0.2, 0.3}}, {{0.8, 0.1}}}),
      QueryRequest<2>::ApproxKnn({{0.5, 0.5}}, 8, 0.25, 4096),
  };
  for (const auto& in : requests) {
    QueryRequest<2> out = RoundTripRequest(in);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.window.lo, in.window.lo);
    EXPECT_EQ(out.window.hi, in.window.hi);
    EXPECT_EQ(out.object_id, in.object_id);
    EXPECT_EQ(out.top_k, in.top_k);
    ASSERT_EQ(out.batch_queries.size(), in.batch_queries.size());
    for (size_t i = 0; i < in.batch_queries.size(); ++i) {
      EXPECT_EQ(out.batch_queries[i], in.batch_queries[i]);
    }
  }
}

TEST(WireTest, ApproxAndBoundedKnobsRoundTripBitExact) {
  QueryRequest<2> in = QueryRequest<2>::ApproxKnn({{0.1, 0.9}}, 3, 0.125, 77);
  in.knn.max_distance = 0.4375;  // exactly representable
  QueryRequest<2> out = RoundTripRequest(in);
  EXPECT_EQ(out.kind, QueryKind::kApproxKnn);
  EXPECT_EQ(out.knn.k, 3u);
  EXPECT_EQ(out.knn.epsilon, 0.125);
  EXPECT_EQ(out.knn.max_visits, 77u);
  EXPECT_EQ(out.knn.max_distance, 0.4375);
  EXPECT_FALSE(out.rknn_candidates_only);

  // The unbounded default (+inf) survives as +inf, not as a large finite.
  QueryRequest<2> plain = QueryRequest<2>::Knn({{0.5, 0.5}}, 2);
  QueryRequest<2> plain_out = RoundTripRequest(plain);
  EXPECT_TRUE(std::isinf(plain_out.knn.max_distance));
  EXPECT_EQ(plain_out.knn.epsilon, 0.0);
  EXPECT_EQ(plain_out.knn.max_visits, 0u);

  QueryRequest<2> cand = QueryRequest<2>::ReverseKnn({{0.3, 0.3}}, 4);
  cand.rknn_candidates_only = true;
  QueryRequest<2> cand_out = RoundTripRequest(cand);
  EXPECT_EQ(cand_out.kind, QueryKind::kReverseKnn);
  EXPECT_EQ(cand_out.knn.k, 4u);
  EXPECT_TRUE(cand_out.rknn_candidates_only);
}

TEST(WireTest, RejectsBadCandidatesFlag) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  // Layout: the candidates-only flag byte sits immediately before the
  // 4-byte batch count that ends every request frame.
  std::string bad = buf;
  bad[bad.size() - 5] = 2;
  EXPECT_TRUE(DecodeRequest<2>(reinterpret_cast<const uint8_t*>(bad.data()),
                               bad.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, ResponseRoundTrip) {
  QueryResponse<2> in;
  in.status = Status::OK();
  in.neighbors = {{42, 0.125}, {7, 3.875}};
  in.entries = {{Rect<2>::FromCorners({{0, 0}}, {{1, 1}}), 9}};
  in.batch_offsets = {0, 1, 2};
  in.stats.nodes_visited = 11;
  in.stats.pruned_s3 = 5;
  in.stats.heap_pops = 2;
  in.latency_ns = 123456789;
  in.worker_id = 3;
  in.lsn = 17;
  in.affected = 1;

  std::string buf;
  EncodeResponse<2>(in, &buf);
  auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok());
  ASSERT_EQ(out->neighbors.size(), 2u);
  EXPECT_EQ(0, std::memcmp(out->neighbors.data(), in.neighbors.data(),
                           2 * sizeof(Neighbor)));
  ASSERT_EQ(out->entries.size(), 1u);
  EXPECT_EQ(out->entries[0].id, 9u);
  EXPECT_EQ(out->batch_offsets, in.batch_offsets);
  EXPECT_EQ(out->stats.nodes_visited, 11u);
  EXPECT_EQ(out->stats.pruned_s3, 5u);
  EXPECT_EQ(out->stats.heap_pops, 2u);
  EXPECT_EQ(out->latency_ns, in.latency_ns);
  EXPECT_EQ(out->worker_id, 3u);
  EXPECT_EQ(out->lsn, 17u);
  EXPECT_EQ(out->affected, 1u);
}

TEST(WireTest, ErrorStatusRoundTrip) {
  QueryResponse<2> in;
  in.status = Status::Overloaded("server at max_pending; retry later");
  std::string buf;
  EncodeResponse<2>(in, &buf);
  auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.IsOverloaded());
  EXPECT_EQ(out->status.message(), "server at max_pending; retry later");
}

TEST(WireTest, RejectsTruncatedAndTrailingBytes) {
  QueryRequest<2> in = QueryRequest<2>::BatchKnn({{{0.1, 0.1}}}, 2);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto out = DecodeRequest<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                cut);
    EXPECT_FALSE(out.ok()) << "accepted a frame truncated to " << cut;
  }
  buf.push_back('\0');
  auto padded = DecodeRequest<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                 buf.size());
  EXPECT_TRUE(padded.status().IsCorruption());
}

TEST(WireTest, RejectsUnknownKindAndLyingCounts) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  std::string bad_kind = buf;
  bad_kind[0] = 99;
  EXPECT_TRUE(DecodeRequest<2>(
                  reinterpret_cast<const uint8_t*>(bad_kind.data()),
                  bad_kind.size())
                  .status()
                  .IsCorruption());

  // A batch count promising far more points than the frame holds must be
  // rejected before any allocation is sized from it.
  std::string lying = buf;
  const size_t count_at = lying.size() - 4;
  lying[count_at] = '\xff';
  lying[count_at + 1] = '\xff';
  lying[count_at + 2] = '\xff';
  lying[count_at + 3] = '\x7f';
  EXPECT_TRUE(DecodeRequest<2>(
                  reinterpret_cast<const uint8_t*>(lying.data()), lying.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, FramesCrossSocketsIntact) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));

  std::string sent(100000, 'x');
  for (size_t i = 0; i < sent.size(); ++i) sent[i] = static_cast<char>(i % 251);
  std::thread writer([&] {
    EXPECT_TRUE(SendFrame(fds[0], sent).ok());
    WireHandshake hs;
    hs.dim = 2;
    EXPECT_TRUE(SendHandshake(fds[0], hs).ok());
    ::close(fds[0]);
  });
  std::string got;
  ASSERT_TRUE(RecvFrame(fds[1], &got).ok());
  EXPECT_EQ(got, sent);
  auto hs = RecvHandshake(fds[1]);
  ASSERT_TRUE(hs.ok());
  EXPECT_EQ(hs->magic, kWireMagic);
  EXPECT_EQ(hs->version, kWireVersion);
  EXPECT_EQ(hs->dim, 2u);
  // Peer closed: the next read reports clean end-of-stream, not an error.
  EXPECT_TRUE(RecvFrame(fds[1], &got).IsNotFound());
  writer.join();
  ::close(fds[1]);
}

TEST(WireTest, OversizedFrameLengthRejected) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A length prefix beyond kMaxFrameBytes must be rejected without
  // attempting the read.
  const uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(4, ::write(fds[0], evil, 4));
  std::string got;
  EXPECT_TRUE(RecvFrame(fds[1], &got).IsCorruption());
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace spatial
