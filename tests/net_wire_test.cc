// The binary wire protocol: every request and response field must survive
// an encode/decode round trip bit-exactly, malformed frames must be
// rejected without reading out of bounds, and the framed socket I/O must
// move payloads intact.

#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace spatial {
namespace {

template <int D>
QueryRequest<D> RoundTripRequest(const QueryRequest<D>& in) {
  std::string buf;
  EncodeRequest<D>(in, &buf);
  auto out = DecodeRequest<D>(reinterpret_cast<const uint8_t*>(buf.data()),
                              buf.size());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

TEST(WireTest, KnnRequestRoundTrip) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.25, -3.5}}, 17);
  in.knn.ordering = AblOrdering::kMinMaxDist;
  in.knn.use_s2 = false;
  QueryRequest<2> out = RoundTripRequest(in);
  EXPECT_EQ(out.kind, QueryKind::kKnn);
  EXPECT_EQ(out.query[0], 0.25);
  EXPECT_EQ(out.query[1], -3.5);
  EXPECT_EQ(out.knn.k, 17u);
  EXPECT_EQ(out.knn.ordering, AblOrdering::kMinMaxDist);
  EXPECT_TRUE(out.knn.use_s1);
  EXPECT_FALSE(out.knn.use_s2);
  EXPECT_TRUE(out.knn.use_s3);
}

TEST(WireTest, AllKindsRoundTrip) {
  const Rect<2> window = Rect<2>::FromCorners({{0.1, 0.2}}, {{0.7, 0.9}});
  std::vector<QueryRequest<2>> requests = {
      QueryRequest<2>::Knn({{0.5, 0.5}}, 3),
      QueryRequest<2>::ConstrainedKnn({{0.5, 0.5}}, window, 4),
      QueryRequest<2>::Range(window),
      QueryRequest<2>::TopK({{0.3, 0.4}}, 9),
      QueryRequest<2>::BatchKnn({{{0.1, 0.1}}, {{0.9, 0.8}}}, 2),
      QueryRequest<2>::Insert(window, 12345),
      QueryRequest<2>::Delete(window, 777),
      QueryRequest<2>::Checkpoint(),
      QueryRequest<2>::ReverseKnn({{0.6, 0.4}}, 5),
      QueryRequest<2>::NnSkyline({{{0.2, 0.3}}, {{0.8, 0.1}}}),
      QueryRequest<2>::ApproxKnn({{0.5, 0.5}}, 8, 0.25, 4096),
  };
  for (const auto& in : requests) {
    QueryRequest<2> out = RoundTripRequest(in);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.window.lo, in.window.lo);
    EXPECT_EQ(out.window.hi, in.window.hi);
    EXPECT_EQ(out.object_id, in.object_id);
    EXPECT_EQ(out.top_k, in.top_k);
    ASSERT_EQ(out.batch_queries.size(), in.batch_queries.size());
    for (size_t i = 0; i < in.batch_queries.size(); ++i) {
      EXPECT_EQ(out.batch_queries[i], in.batch_queries[i]);
    }
  }
}

TEST(WireTest, ApproxAndBoundedKnobsRoundTripBitExact) {
  QueryRequest<2> in = QueryRequest<2>::ApproxKnn({{0.1, 0.9}}, 3, 0.125, 77);
  in.knn.max_distance = 0.4375;  // exactly representable
  QueryRequest<2> out = RoundTripRequest(in);
  EXPECT_EQ(out.kind, QueryKind::kApproxKnn);
  EXPECT_EQ(out.knn.k, 3u);
  EXPECT_EQ(out.knn.epsilon, 0.125);
  EXPECT_EQ(out.knn.max_visits, 77u);
  EXPECT_EQ(out.knn.max_distance, 0.4375);
  EXPECT_FALSE(out.rknn_candidates_only);

  // The unbounded default (+inf) survives as +inf, not as a large finite.
  QueryRequest<2> plain = QueryRequest<2>::Knn({{0.5, 0.5}}, 2);
  QueryRequest<2> plain_out = RoundTripRequest(plain);
  EXPECT_TRUE(std::isinf(plain_out.knn.max_distance));
  EXPECT_EQ(plain_out.knn.epsilon, 0.0);
  EXPECT_EQ(plain_out.knn.max_visits, 0u);

  QueryRequest<2> cand = QueryRequest<2>::ReverseKnn({{0.3, 0.3}}, 4);
  cand.rknn_candidates_only = true;
  QueryRequest<2> cand_out = RoundTripRequest(cand);
  EXPECT_EQ(cand_out.kind, QueryKind::kReverseKnn);
  EXPECT_EQ(cand_out.knn.k, 4u);
  EXPECT_TRUE(cand_out.rknn_candidates_only);
}

TEST(WireTest, RejectsBadCandidatesFlag) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  // Layout: the candidates-only flag byte sits ahead of the v3 trace
  // context (trace id 8, parent span 8, sampled flag 1, deadline 8) and
  // the 4-byte batch count that ends every request frame.
  std::string bad = buf;
  bad[bad.size() - 30] = 2;
  EXPECT_TRUE(DecodeRequest<2>(reinterpret_cast<const uint8_t*>(bad.data()),
                               bad.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, TraceContextAndDeadlineRoundTrip) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 7);
  in.trace_id = 0xDEADBEEFCAFEF00DULL;
  in.parent_span_id = 0x0123456789ABCDEFULL;
  in.trace_sampled = true;
  in.deadline_budget_ns = 2'000'000;
  QueryRequest<2> out = RoundTripRequest(in);
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.parent_span_id, in.parent_span_id);
  EXPECT_TRUE(out.trace_sampled);
  EXPECT_EQ(out.deadline_budget_ns, 2'000'000u);

  // The v2 defaults (no trace, no deadline) survive as exact zeros.
  QueryRequest<2> plain = RoundTripRequest(QueryRequest<2>::Knn({{0, 0}}, 1));
  EXPECT_EQ(plain.trace_id, 0u);
  EXPECT_EQ(plain.parent_span_id, 0u);
  EXPECT_FALSE(plain.trace_sampled);
  EXPECT_EQ(plain.deadline_budget_ns, 0u);
}

TEST(WireTest, RejectsBadTraceSampledFlag) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  // The sampled flag byte sits ahead of the 8-byte deadline and the
  // 4-byte batch count.
  std::string bad = buf;
  bad[bad.size() - 13] = 2;
  EXPECT_TRUE(DecodeRequest<2>(reinterpret_cast<const uint8_t*>(bad.data()),
                               bad.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, ResponseRoundTrip) {
  QueryResponse<2> in;
  in.status = Status::OK();
  in.neighbors = {{42, 0.125}, {7, 3.875}};
  in.entries = {{Rect<2>::FromCorners({{0, 0}}, {{1, 1}}), 9}};
  in.batch_offsets = {0, 1, 2};
  in.stats.nodes_visited = 11;
  in.stats.pruned_s3 = 5;
  in.stats.heap_pops = 2;
  in.latency_ns = 123456789;
  in.worker_id = 3;
  in.lsn = 17;
  in.affected = 1;

  std::string buf;
  EncodeResponse<2>(in, &buf);
  auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok());
  ASSERT_EQ(out->neighbors.size(), 2u);
  EXPECT_EQ(0, std::memcmp(out->neighbors.data(), in.neighbors.data(),
                           2 * sizeof(Neighbor)));
  ASSERT_EQ(out->entries.size(), 1u);
  EXPECT_EQ(out->entries[0].id, 9u);
  EXPECT_EQ(out->batch_offsets, in.batch_offsets);
  EXPECT_EQ(out->stats.nodes_visited, 11u);
  EXPECT_EQ(out->stats.pruned_s3, 5u);
  EXPECT_EQ(out->stats.heap_pops, 2u);
  EXPECT_EQ(out->latency_ns, in.latency_ns);
  EXPECT_EQ(out->worker_id, 3u);
  EXPECT_EQ(out->lsn, 17u);
  EXPECT_EQ(out->affected, 1u);
}

TEST(WireTest, ResponseWithTraceRecordRoundTrip) {
  QueryResponse<2> in;
  in.neighbors = {{42, 0.125}};
  in.stats.nodes_visited = 11;
  in.latency_ns = 5555;
  in.has_trace = true;
  in.trace.worker = 3;
  in.trace.k = 7;
  in.trace.SetKindName("knn");
  in.trace.latency_ns = 5555;
  in.trace.queue_wait_ns = 1234;
  in.trace.traced = true;
  in.trace.stats.nodes_visited = 11;
  in.trace.stats.heap_pops = 4;
  in.trace.nodes_per_level[0] = 9;
  in.trace.nodes_per_level[2] = 1;

  std::string buf;
  EncodeResponse<2>(in, &buf);
  auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->has_trace);
  EXPECT_EQ(out->trace.worker, 3u);
  EXPECT_EQ(out->trace.k, 7u);
  EXPECT_STREQ(out->trace.kind_name, "knn");
  EXPECT_EQ(out->trace.latency_ns, 5555u);
  EXPECT_EQ(out->trace.queue_wait_ns, 1234u);
  EXPECT_TRUE(out->trace.traced);
  EXPECT_EQ(out->trace.stats.nodes_visited, 11u);
  EXPECT_EQ(out->trace.stats.heap_pops, 4u);
  EXPECT_EQ(out->trace.nodes_per_level[0], 9u);
  EXPECT_EQ(out->trace.nodes_per_level[2], 1u);

  // A traceless response decodes with has_trace off and an untouched
  // (default) record.
  QueryResponse<2> plain;
  std::string plain_buf;
  EncodeResponse<2>(plain, &plain_buf);
  auto plain_out = DecodeResponse<2>(
      reinterpret_cast<const uint8_t*>(plain_buf.data()), plain_buf.size());
  ASSERT_TRUE(plain_out.ok());
  EXPECT_FALSE(plain_out->has_trace);
}

TEST(WireTest, RejectsTruncatedTraceResponse) {
  // With has_trace set, the truncation sweep covers every byte of the
  // embedded record — the new v3 truncation points.
  QueryResponse<2> in;
  in.has_trace = true;
  in.trace.traced = true;
  in.trace.SetKindName("top-k");
  std::string buf;
  EncodeResponse<2>(in, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                 cut);
    EXPECT_FALSE(out.ok()) << "accepted a response truncated to " << cut;
  }
  buf.push_back('\0');
  auto padded = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                  buf.size());
  EXPECT_TRUE(padded.status().IsCorruption());
}

TEST(WireTest, RejectsBadTraceFlags) {
  // A traceless response ends with its has_trace byte; anything but 0/1
  // there is corruption, not a bool.
  QueryResponse<2> plain;
  std::string buf;
  EncodeResponse<2>(plain, &buf);
  buf.back() = 2;
  EXPECT_TRUE(DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                buf.size())
                  .status()
                  .IsCorruption());

  // Inside the embedded record, the traced flag sits ahead of the stats
  // block (12 u64) and the 12-slot level array that end the frame.
  QueryResponse<2> traced;
  traced.has_trace = true;
  std::string tbuf;
  EncodeResponse<2>(traced, &tbuf);
  tbuf[tbuf.size() - 145] = 2;
  EXPECT_TRUE(DecodeResponse<2>(reinterpret_cast<const uint8_t*>(tbuf.data()),
                                tbuf.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, AdminRequestRoundTrip) {
  for (const AdminKind kind :
       {AdminKind::kScrapeMetrics, AdminKind::kDumpSlowLog}) {
    std::string buf;
    EncodeAdminRequest(kind, &buf);
    ASSERT_FALSE(buf.empty());
    EXPECT_TRUE(IsAdminRequest(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size()));
    auto out = DecodeAdminRequest(reinterpret_cast<const uint8_t*>(buf.data()),
                                  buf.size());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, kind);
  }

  // Query kinds never look like admin frames: their tag bytes are small
  // enum values, far below the reserved 0xF0 range.
  QueryRequest<2> query = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string qbuf;
  EncodeRequest<2>(query, &qbuf);
  EXPECT_FALSE(IsAdminRequest(reinterpret_cast<const uint8_t*>(qbuf.data()),
                              qbuf.size()));
  EXPECT_FALSE(IsAdminRequest(nullptr, 0));
}

TEST(WireTest, AdminResponseRoundTrip) {
  const std::string text = "spatial_router_requests_total{kind=\"knn\"} 3\n";
  std::string buf;
  EncodeAdminResponse(Status::OK(), text, &buf);
  auto out = DecodeAdminResponse(reinterpret_cast<const uint8_t*>(buf.data()),
                                 buf.size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, text);

  // An application-level error travels inside the frame and surfaces as
  // the Result's error.
  std::string err_buf;
  EncodeAdminResponse(Status::Overloaded("busy"), "", &err_buf);
  auto err = DecodeAdminResponse(
      reinterpret_cast<const uint8_t*>(err_buf.data()), err_buf.size());
  EXPECT_TRUE(err.status().IsOverloaded());
  EXPECT_EQ(err.status().message(), "busy");
}

TEST(WireTest, RejectsMalformedAdminFrames) {
  // Unknown admin tag.
  const uint8_t bad_tag[1] = {0xFE};
  EXPECT_TRUE(DecodeAdminRequest(bad_tag, 1).status().IsCorruption());
  // Trailing bytes after the tag.
  std::string req;
  EncodeAdminRequest(AdminKind::kScrapeMetrics, &req);
  req.push_back('\0');
  EXPECT_TRUE(DecodeAdminRequest(reinterpret_cast<const uint8_t*>(req.data()),
                                 req.size())
                  .status()
                  .IsCorruption());
  // Truncated admin responses: every cut of a valid frame is rejected.
  std::string buf;
  EncodeAdminResponse(Status::OK(), "payload", &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto out =
        DecodeAdminResponse(reinterpret_cast<const uint8_t*>(buf.data()), cut);
    EXPECT_FALSE(out.ok()) << "accepted an admin response truncated to "
                           << cut;
  }
  // A text length promising more bytes than the frame holds.
  std::string lying = buf;
  lying.resize(lying.size() - 3);
  EXPECT_FALSE(
      DecodeAdminResponse(reinterpret_cast<const uint8_t*>(lying.data()),
                          lying.size())
          .ok());
}

TEST(WireTest, ErrorStatusRoundTrip) {
  QueryResponse<2> in;
  in.status = Status::Overloaded("server at max_pending; retry later");
  std::string buf;
  EncodeResponse<2>(in, &buf);
  auto out = DecodeResponse<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.IsOverloaded());
  EXPECT_EQ(out->status.message(), "server at max_pending; retry later");
}

TEST(WireTest, RejectsTruncatedAndTrailingBytes) {
  QueryRequest<2> in = QueryRequest<2>::BatchKnn({{{0.1, 0.1}}}, 2);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto out = DecodeRequest<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                cut);
    EXPECT_FALSE(out.ok()) << "accepted a frame truncated to " << cut;
  }
  buf.push_back('\0');
  auto padded = DecodeRequest<2>(reinterpret_cast<const uint8_t*>(buf.data()),
                                 buf.size());
  EXPECT_TRUE(padded.status().IsCorruption());
}

TEST(WireTest, RejectsUnknownKindAndLyingCounts) {
  QueryRequest<2> in = QueryRequest<2>::Knn({{0.5, 0.5}}, 1);
  std::string buf;
  EncodeRequest<2>(in, &buf);
  std::string bad_kind = buf;
  bad_kind[0] = 99;
  EXPECT_TRUE(DecodeRequest<2>(
                  reinterpret_cast<const uint8_t*>(bad_kind.data()),
                  bad_kind.size())
                  .status()
                  .IsCorruption());

  // A batch count promising far more points than the frame holds must be
  // rejected before any allocation is sized from it.
  std::string lying = buf;
  const size_t count_at = lying.size() - 4;
  lying[count_at] = '\xff';
  lying[count_at + 1] = '\xff';
  lying[count_at + 2] = '\xff';
  lying[count_at + 3] = '\x7f';
  EXPECT_TRUE(DecodeRequest<2>(
                  reinterpret_cast<const uint8_t*>(lying.data()), lying.size())
                  .status()
                  .IsCorruption());
}

TEST(WireTest, FramesCrossSocketsIntact) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));

  std::string sent(100000, 'x');
  for (size_t i = 0; i < sent.size(); ++i) sent[i] = static_cast<char>(i % 251);
  std::thread writer([&] {
    EXPECT_TRUE(SendFrame(fds[0], sent).ok());
    WireHandshake hs;
    hs.dim = 2;
    EXPECT_TRUE(SendHandshake(fds[0], hs).ok());
    ::close(fds[0]);
  });
  std::string got;
  ASSERT_TRUE(RecvFrame(fds[1], &got).ok());
  EXPECT_EQ(got, sent);
  auto hs = RecvHandshake(fds[1]);
  ASSERT_TRUE(hs.ok());
  EXPECT_EQ(hs->magic, kWireMagic);
  EXPECT_EQ(hs->version, kWireVersion);
  EXPECT_EQ(hs->dim, 2u);
  // Peer closed: the next read reports clean end-of-stream, not an error.
  EXPECT_TRUE(RecvFrame(fds[1], &got).IsNotFound());
  writer.join();
  ::close(fds[1]);
}

TEST(WireTest, OversizedFrameLengthRejected) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A length prefix beyond kMaxFrameBytes must be rejected without
  // attempting the read.
  const uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(4, ::write(fds[0], evil, 4));
  std::string got;
  EXPECT_TRUE(RecvFrame(fds[1], &got).IsCorruption());
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace spatial
