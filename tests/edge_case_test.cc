// Degenerate and extreme inputs across the stack: identical points,
// collinear data, huge/tiny coordinates, adversarial k values.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/best_first.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "rtree/validator.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(EdgeCaseTest, ThousandsOfIdenticalPoints) {
  // All objects identical: every split is degenerate, yet structure and
  // queries must remain correct.
  TestIndex2D index;
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 3000; ++i) {
    data.push_back(Entry<2>{Rect2::FromPoint({{0.5, 0.5}}), i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  KnnOptions knn;
  knn.k = 10;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, knn, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (const Neighbor& n : *result) {
    EXPECT_DOUBLE_EQ(n.dist_sq, 0.0);
  }
}

TEST(EdgeCaseTest, CollinearPoints) {
  // Zero-area MBRs everywhere (all heuristics tie); correctness must hold.
  TestIndex2D index;
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 2000; ++i) {
    data.push_back(Entry<2>{
        Rect2::FromPoint({{static_cast<double>(i) * 0.001, 0.0}}), i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (double x : {0.0, 0.51237, 1.999, 5.0}) {
    const Point2 q{{x, 0.3}};
    KnnOptions knn;
    knn.k = 5;
    auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, q, 5, *result);
  }
}

TEST(EdgeCaseTest, HugeAndTinyCoordinates) {
  TestIndex2D index;
  std::vector<Entry<2>> data{
      Entry<2>{Rect2::FromPoint({{1e15, -1e15}}), 1},
      Entry<2>{Rect2::FromPoint({{-1e15, 1e15}}), 2},
      Entry<2>{Rect2::FromPoint({{1e-15, 1e-15}}), 3},
      Entry<2>{Rect2::FromPoint({{0.0, 0.0}}), 4},
  };
  for (const auto& e : data) {
    ASSERT_TRUE(index.tree->Insert(e.mbr, e.id).ok());
  }
  auto result = KnnSearch<2>(*index.tree, {{1.0, 1.0}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 3u);
}

TEST(EdgeCaseTest, NegativeCoordinateDomain) {
  TestIndex2D index;
  Rng rng(71);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 1000; ++i) {
    data.push_back(Entry<2>{
        Rect2::FromPoint({{rng.Uniform(-500, -400), rng.Uniform(-9, -8)}}),
        i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  const Point2 q{{-450.0, -8.5}};
  KnnOptions knn;
  knn.k = 7;
  auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, q, 7, *result);
}

TEST(EdgeCaseTest, KEqualsTreeSizeExactly) {
  TestIndex2D index;
  Rng rng(72);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 137; ++i) {
    data.push_back(Entry<2>{
        Rect2::FromPoint({{rng.Uniform(0, 1), rng.Uniform(0, 1)}}), i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  KnnOptions knn;
  knn.k = 137;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, knn, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 137u);
  ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 137, *result);
}

TEST(EdgeCaseTest, NestedContainedRectangles) {
  // Matryoshka rectangles: heavily overlapping internal nodes.
  TestIndex2D index;
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 300; ++i) {
    const double inset = static_cast<double>(i) * 0.001;
    data.push_back(Entry<2>{
        Rect2{{{inset, inset}}, {{1.0 - inset, 1.0 - inset}}}, i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok());
  const Point2 q{{2.0, 2.0}};  // outside all of them
  KnnOptions knn;
  knn.k = 4;
  auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, q, 4, *result);
  // Inside every rectangle: all distances zero.
  auto inside = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, knn, nullptr);
  ASSERT_TRUE(inside.ok());
  for (const Neighbor& n : *inside) {
    EXPECT_DOUBLE_EQ(n.dist_sq, 0.0);
  }
}

TEST(EdgeCaseTest, BestFirstOnDuplicatePoints) {
  TestIndex2D index;
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        index.tree->Insert(Rect2::FromPoint({{0.25, 0.75}}), i).ok());
  }
  auto result = BestFirstKnn<2>(*index.tree, {{0.25, 0.75}}, 20, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 20u);
}

TEST(EdgeCaseTest, AlternatingGrowShrinkAroundRootTransitions) {
  // Repeatedly cross the root-split / root-shrink boundary.
  TestIndex2D index;
  const uint32_t max = index.tree->max_entries();
  std::vector<Entry<2>> data;
  for (int round = 0; round < 10; ++round) {
    // Grow past a root split.
    for (uint32_t i = 0; i < max + 2; ++i) {
      const Rect2 r = Rect2::FromPoint(
          {{static_cast<double>(i), static_cast<double>(round)}});
      const uint64_t id =
          static_cast<uint64_t>(round) * 1000 + i;
      ASSERT_TRUE(index.tree->Insert(r, id).ok());
      data.push_back(Entry<2>{r, id});
    }
    EXPECT_GE(index.tree->height(), 2);
    // Shrink back to (almost) nothing.
    while (data.size() > 1) {
      auto removed = index.tree->Delete(data.back().mbr, data.back().id);
      ASSERT_TRUE(removed.ok());
      ASSERT_TRUE(*removed);
      data.pop_back();
    }
    auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(index.tree->height(), 1);
  }
}

}  // namespace
}  // namespace spatial
