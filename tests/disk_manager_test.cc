#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/disk_manager.h"

namespace spatial {
namespace {

TEST(DiskManagerTest, AllocateGivesDistinctIds) {
  DiskManager disk(256);
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(disk.live_pages(), 2u);
}

TEST(DiskManagerTest, WriteThenReadRoundTrips) {
  DiskManager disk(256);
  const PageId id = disk.AllocatePage();
  std::vector<char> out(256, 'x');
  ASSERT_TRUE(disk.WritePage(id, out.data()).ok());
  std::vector<char> in(256, 0);
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 256), 0);
}

TEST(DiskManagerTest, FreshPagesAreZeroFilled) {
  DiskManager disk(128);
  const PageId id = disk.AllocatePage();
  std::vector<char> in(128, 'y');
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
}

TEST(DiskManagerTest, FreedPageIsReusedAndZeroed) {
  DiskManager disk(128);
  const PageId id = disk.AllocatePage();
  std::vector<char> buf(128, 'z');
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  ASSERT_TRUE(disk.FreePage(id).ok());
  EXPECT_EQ(disk.live_pages(), 0u);
  const PageId again = disk.AllocatePage();
  EXPECT_EQ(again, id);  // free list reuse
  std::vector<char> in(128, 'q');
  ASSERT_TRUE(disk.ReadPage(again, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
}

TEST(DiskManagerTest, ReadWriteFreedPageFails) {
  DiskManager disk(128);
  const PageId id = disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(id).ok());
  std::vector<char> buf(128);
  EXPECT_TRUE(disk.ReadPage(id, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk.WritePage(id, buf.data()).IsInvalidArgument());
}

TEST(DiskManagerTest, DoubleFreeRejected) {
  DiskManager disk(128);
  const PageId id = disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(id).ok());
  EXPECT_TRUE(disk.FreePage(id).IsInvalidArgument());
}

TEST(DiskManagerTest, OutOfRangeAccessRejected) {
  DiskManager disk(128);
  std::vector<char> buf(128);
  EXPECT_TRUE(disk.ReadPage(99, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk.FreePage(99).IsInvalidArgument());
}

TEST(DiskManagerTest, StatsCountOperations) {
  DiskManager disk(128);
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  std::vector<char> buf(128);
  ASSERT_TRUE(disk.WritePage(a, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(a, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(b, buf.data()).ok());
  ASSERT_TRUE(disk.FreePage(b).ok());
  EXPECT_EQ(disk.stats().pages_allocated, 2u);
  EXPECT_EQ(disk.stats().pages_freed, 1u);
  EXPECT_EQ(disk.stats().physical_writes, 1u);
  EXPECT_EQ(disk.stats().physical_reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().physical_reads, 0u);
}

}  // namespace
}  // namespace spatial
