#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"

#include "storage/disk_manager.h"

namespace spatial {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 128;
  DiskManager disk_{kPageSize};
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndWritable) {
  BufferPool pool(&disk_, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  std::memset(page->data(), 'a', kPageSize);
  page->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, FetchReturnsWrittenContentAfterEviction) {
  BufferPool pool(&disk_, 2);
  PageId id;
  {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->data(), 'b', kPageSize);
    page->MarkDirty();
  }
  // Evict by filling the pool with other pages.
  for (int i = 0; i < 4; ++i) {
    auto other = pool.NewPage();
    ASSERT_TRUE(other.ok());
  }
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  for (uint32_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(again->data()[i], 'b');
  }
}

TEST_F(BufferPoolTest, HitDoesNotTouchDisk) {
  BufferPool pool(&disk_, 4);
  PageId id;
  {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->id();
  }
  disk_.ResetStats();
  pool.ResetStats();
  auto a = pool.Fetch(id);
  ASSERT_TRUE(a.ok());
  auto b = pool.Fetch(id);  // second pin of the same page
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(disk_.stats().physical_reads, 0u);
  EXPECT_EQ(pool.stats().logical_fetches, 2u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST_F(BufferPoolTest, MissReadsFromDisk) {
  BufferPool pool(&disk_, 1);
  PageId a_id, b_id;
  {
    auto a = pool.NewPage();
    ASSERT_TRUE(a.ok());
    a_id = a->id();
  }
  {
    auto b = pool.NewPage();  // evicts a
    ASSERT_TRUE(b.ok());
    b_id = b->id();
  }
  (void)b_id;
  pool.ResetStats();
  disk_.ResetStats();
  auto again = pool.Fetch(a_id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(disk_.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(&disk_, 2);
  PageId a_id, b_id;
  {
    auto a = pool.NewPage();
    ASSERT_TRUE(a.ok());
    a_id = a->id();
  }
  {
    auto b = pool.NewPage();
    ASSERT_TRUE(b.ok());
    b_id = b->id();
  }
  // Touch a so b becomes LRU.
  { auto a = pool.Fetch(a_id); ASSERT_TRUE(a.ok()); }
  { auto c = pool.NewPage(); ASSERT_TRUE(c.ok()); }  // must evict b
  pool.ResetStats();
  { auto a = pool.Fetch(a_id); ASSERT_TRUE(a.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);
  { auto b = pool.Fetch(b_id); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&disk_, 2);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted());
  // Releasing one frame makes allocation possible again.
  a->Release();
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
}

TEST_F(BufferPoolTest, PinnedPageIsNeverEvicted) {
  BufferPool pool(&disk_, 2);
  auto pinned = pool.NewPage();
  ASSERT_TRUE(pinned.ok());
  std::memset(pinned->data(), 'p', kPageSize);
  const char* stable_ptr = pinned->data();
  for (int i = 0; i < 8; ++i) {
    auto other = pool.NewPage();
    ASSERT_TRUE(other.ok());
  }
  // The pinned frame must be untouched.
  EXPECT_EQ(pinned->data(), stable_ptr);
  for (uint32_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(pinned->data()[i], 'p');
  }
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  BufferPool pool(&disk_, 1);
  PageId id;
  {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->data(), 'd', kPageSize);
    page->MarkDirty();
  }
  { auto other = pool.NewPage(); ASSERT_TRUE(other.ok()); }  // evicts
  std::vector<char> raw(kPageSize);
  ASSERT_TRUE(disk_.ReadPage(id, raw.data()).ok());
  for (char c : raw) ASSERT_EQ(c, 'd');
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  BufferPool pool(&disk_, 4);
  PageId id;
  {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->data(), 'f', kPageSize);
    page->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> raw(kPageSize);
  ASSERT_TRUE(disk_.ReadPage(id, raw.data()).ok());
  for (char c : raw) ASSERT_EQ(c, 'f');
}

TEST_F(BufferPoolTest, FreePinnedPageRejected) {
  BufferPool pool(&disk_, 2);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(pool.FreePage(page->id()).IsInvalidArgument());
  const PageId id = page->id();
  page->Release();
  EXPECT_TRUE(pool.FreePage(id).ok());
}

TEST_F(BufferPoolTest, FetchInvalidIdRejected) {
  BufferPool pool(&disk_, 2);
  EXPECT_TRUE(pool.Fetch(kInvalidPageId).status().IsInvalidArgument());
  EXPECT_TRUE(pool.Fetch(12345).status().IsInvalidArgument());
}

TEST_F(BufferPoolTest, MoveTransfersPinOwnership) {
  BufferPool pool(&disk_, 2);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageHandle moved = std::move(page.value());
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(page->valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, ManyPagesStressWithTinyPool) {
  BufferPool pool(&disk_, 3);
  std::vector<PageId> ids;
  for (int i = 0; i < 50; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    std::memset(page->data(), static_cast<char>(i), kPageSize);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  for (int i = 0; i < 50; ++i) {
    auto page = pool.Fetch(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>(i));
  }
}

TEST_F(BufferPoolTest, ClockPolicyBasicCorrectness) {
  BufferPool pool(&disk_, 3, EvictionPolicy::kClock);
  EXPECT_EQ(pool.policy(), EvictionPolicy::kClock);
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    std::memset(page->data(), static_cast<char>(i), kPageSize);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  for (int i = 0; i < 20; ++i) {
    auto page = pool.Fetch(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>(i));
  }
}

TEST_F(BufferPoolTest, ClockPolicyExhaustsWhenAllPinned) {
  BufferPool pool(&disk_, 2, EvictionPolicy::kClock);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.NewPage();
  EXPECT_TRUE(c.status().IsResourceExhausted());
  a->Release();
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST_F(BufferPoolTest, ClockGivesSecondChanceToReferencedFrames) {
  // After the first eviction sweep clears every reference bit, a frame
  // that is touched again must survive the next eviction while an
  // untouched one is chosen.
  BufferPool pool(&disk_, 3, EvictionPolicy::kClock);
  PageId a_id, b_id, c_id;
  {
    auto a = pool.NewPage();
    a_id = a->id();
  }
  {
    auto b = pool.NewPage();
    b_id = b->id();
  }
  {
    auto c = pool.NewPage();
    c_id = c->id();
  }
  (void)a_id;
  // First eviction: all bits are set from creation, so the sweep clears
  // them all and takes the first frame (A) — textbook CLOCK.
  { auto d = pool.NewPage(); ASSERT_TRUE(d.ok()); }
  // Re-reference B; C's bit stays clear.
  { auto b = pool.Fetch(b_id); ASSERT_TRUE(b.ok()); }
  // Next eviction must pass over B (second chance) and take C.
  { auto e = pool.NewPage(); ASSERT_TRUE(e.ok()); }
  pool.ResetStats();
  { auto b = pool.Fetch(b_id); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);   // B survived
  { auto c = pool.Fetch(c_id); ASSERT_TRUE(c.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);  // C was the victim
}

TEST_F(BufferPoolTest, PolicyNames) {
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicy::kClock), "clock");
}

}  // namespace
}  // namespace spatial
