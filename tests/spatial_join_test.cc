#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/spatial_join.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/bulk_load.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> RandomRects(size_t n, double extent, uint64_t seed,
                                  uint64_t first_id = 0) {
  Rng rng(seed);
  std::vector<Entry<2>> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, extent), a[1] + rng.Uniform(0, extent)}};
    data.push_back(Entry<2>{Rect2::FromCorners(a, b), first_id + i});
  }
  return data;
}

std::multiset<JoinPair> AsSet(std::vector<JoinPair> pairs) {
  return std::multiset<JoinPair>(pairs.begin(), pairs.end());
}

TEST(SpatialJoinTest, EmptyInputsYieldNoPairs) {
  TestIndex2D a, b;
  ASSERT_TRUE(a.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  std::vector<JoinPair> out;
  ASSERT_TRUE(SpatialJoin<2>(*a.tree, *b.tree, &out, nullptr).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(SpatialJoin<2>(*b.tree, *a.tree, &out, nullptr).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SpatialJoinTest, SmallHandCase) {
  TestIndex2D a, b;
  ASSERT_TRUE(a.tree->Insert(Rect2{{{0, 0}}, {{2, 2}}}, 1).ok());
  ASSERT_TRUE(a.tree->Insert(Rect2{{{5, 5}}, {{6, 6}}}, 2).ok());
  ASSERT_TRUE(b.tree->Insert(Rect2{{{1, 1}}, {{3, 3}}}, 10).ok());
  ASSERT_TRUE(b.tree->Insert(Rect2{{{9, 9}}, {{9.5, 9.5}}}, 20).ok());
  std::vector<JoinPair> out;
  ASSERT_TRUE(SpatialJoin<2>(*a.tree, *b.tree, &out, nullptr).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (JoinPair{1, 10}));
}

class SpatialJoinParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(SpatialJoinParamTest, MatchesNestedLoop) {
  const auto [n_outer, n_inner, extent] = GetParam();
  auto outer_data = RandomRects(n_outer, extent, 91, 0);
  auto inner_data = RandomRects(n_inner, extent, 92, 100000);
  TestIndex2D outer, inner;
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  std::vector<JoinPair> out;
  JoinStats stats;
  ASSERT_TRUE(SpatialJoin<2>(*outer.tree, *inner.tree, &out, &stats).ok());
  EXPECT_EQ(AsSet(out), AsSet(NestedLoopJoin<2>(outer_data, inner_data)));
  EXPECT_EQ(stats.results, out.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SpatialJoinParamTest,
    ::testing::Values(std::make_tuple<size_t, size_t, double>(1, 500, 0.3),
                      std::make_tuple<size_t, size_t, double>(500, 1, 0.3),
                      std::make_tuple<size_t, size_t, double>(300, 300, 0.2),
                      std::make_tuple<size_t, size_t, double>(1500, 700,
                                                              0.05),
                      std::make_tuple<size_t, size_t, double>(64, 2000,
                                                              0.1)));

TEST(SpatialJoinTest, DifferentHeightsHandled) {
  // One tall tree joined with a tiny one (and vice versa).
  auto big_data = RandomRects(3000, 0.05, 93, 0);
  auto small_data = RandomRects(5, 1.0, 94, 100000);
  TestIndex2D big, small;
  big.InsertAll(big_data);
  small.InsertAll(small_data);
  ASSERT_GT(big.tree->height(), small.tree->height());
  std::vector<JoinPair> ab, ba;
  ASSERT_TRUE(SpatialJoin<2>(*big.tree, *small.tree, &ab, nullptr).ok());
  ASSERT_TRUE(SpatialJoin<2>(*small.tree, *big.tree, &ba, nullptr).ok());
  auto expected = NestedLoopJoin<2>(big_data, small_data);
  EXPECT_EQ(AsSet(ab), AsSet(expected));
  // Swapped argument order flips each pair.
  std::vector<JoinPair> ba_flipped;
  for (auto [x, y] : ba) ba_flipped.push_back({y, x});
  EXPECT_EQ(AsSet(ba_flipped), AsSet(expected));
}

TEST(SpatialJoinTest, SelfJoinContainsIdentityPairs) {
  auto data = RandomRects(400, 0.1, 95, 0);
  TestIndex2D index;
  index.InsertAll(data);
  std::vector<JoinPair> out;
  ASSERT_TRUE(SpatialJoin<2>(*index.tree, *index.tree, &out, nullptr).ok());
  // Every object intersects itself.
  std::set<uint64_t> self_paired;
  for (auto [a, b] : out) {
    if (a == b) self_paired.insert(a);
  }
  EXPECT_EQ(self_paired.size(), data.size());
  EXPECT_EQ(AsSet(out), AsSet(NestedLoopJoin<2>(data, data)));
}

TEST(SpatialJoinTest, PrunesFarApartData) {
  // Two spatially disjoint datasets: the join must touch only the roots.
  Rng rng(96);
  std::vector<Entry<2>> left, right;
  for (uint64_t i = 0; i < 2000; ++i) {
    left.push_back(Entry<2>{
        Rect2::FromPoint({{rng.Uniform(0, 1), rng.Uniform(0, 1)}}), i});
    right.push_back(Entry<2>{
        Rect2::FromPoint({{rng.Uniform(100, 101), rng.Uniform(0, 1)}}), i});
  }
  TestIndex2D a, b;
  a.InsertAll(left);
  b.InsertAll(right);
  std::vector<JoinPair> out;
  JoinStats stats;
  ASSERT_TRUE(SpatialJoin<2>(*a.tree, *b.tree, &out, &stats).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_LE(stats.pages_outer + stats.pages_inner, 4u);
}

TEST(SpatialJoinTest, CountsPagesAgainstBothPools) {
  auto outer_data = RandomRects(1000, 0.1, 97, 0);
  auto inner_data = RandomRects(1000, 0.1, 98, 100000);
  TestIndex2D outer, inner;
  outer.InsertAll(outer_data);
  inner.InsertAll(inner_data);
  outer.pool.ResetStats();
  inner.pool.ResetStats();
  std::vector<JoinPair> out;
  JoinStats stats;
  ASSERT_TRUE(SpatialJoin<2>(*outer.tree, *inner.tree, &out, &stats).ok());
  EXPECT_EQ(stats.pages_outer, outer.pool.stats().logical_fetches);
  EXPECT_EQ(stats.pages_inner, inner.pool.stats().logical_fetches);
  EXPECT_GT(stats.comparisons, 0u);
}

TEST(SpatialJoinTest, WorksOnPackedTrees) {
  Rng rng(99);
  auto outer_data = RandomRects(2000, 0.08, 99, 0);
  auto inner_data = RandomRects(1500, 0.08, 100, 100000);
  DiskManager disk(512);
  BufferPool pool(&disk, 128);
  auto outer =
      BulkLoad<2>(&pool, RTreeOptions{}, outer_data, BulkLoadMethod::kStr);
  auto inner = BulkLoad<2>(&pool, RTreeOptions{}, inner_data,
                           BulkLoadMethod::kHilbert);
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner.ok());
  std::vector<JoinPair> out;
  ASSERT_TRUE(SpatialJoin<2>(*outer, *inner, &out, nullptr).ok());
  EXPECT_EQ(AsSet(out), AsSet(NestedLoopJoin<2>(outer_data, inner_data)));
}

}  // namespace
}  // namespace spatial
