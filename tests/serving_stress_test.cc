// Concurrent read/write stress over the serving stack: one submitter
// drives inserts/deletes (with periodic checkpoints) at a fixed rate while
// four query threads hammer kNN and range queries through the worker pool.
// Every query must succeed against SOME consistent snapshot (no dangling
// page ids, sorted results), and the final tree must validate and match
// the reference model of all acknowledged writes.
//
// Designed to run under ThreadSanitizer (tools/tsan_check.sh) — it crosses
// every serving-mode synchronization point: write queue, group commit,
// snapshot publish/pin, reclaim_gen invalidation, and concurrent preads.
// `--smoke` shortens the run for tier-1 ctest.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/serving_db.h"
#include "rtree/validator.h"
#include "service/query_service.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

bool g_smoke = false;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 256; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

TEST(ServingStressTest, ReadersSeeConsistentSnapshotsUnderWriteLoad) {
  const std::string path = TempPath("serving_stress.sdb");
  CleanupDb(path);

  const int kWrites = g_smoke ? 300 : 3000;
  const int kQueriesPerThread = g_smoke ? 400 : 4000;
  const int kQueryThreads = 4;
  const int kCheckpointEvery = 64;

  QueryService<2>::Options options;
  options.num_workers = kQueryThreads;
  options.frames_per_worker = 32;
  ServingOptions serving;
  serving.wal_segment_bytes = 64 * 1024;  // exercise rotation checkpoints
  auto service = QueryService<2>::OpenServing(path, serving, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> query_failures{0};
  std::atomic<uint64_t> malformed_results{0};

  // The single write submitter. All writes are acked in submission order,
  // so the reference model is just "replay the script".
  std::vector<Entry<2>> reference;
  std::thread writer([&] {
    Rng rng(2026);
    std::vector<std::future<QueryResponse<2>>> pending;
    std::vector<Entry<2>> live;
    uint64_t next_id = 1;
    for (int i = 0; i < kWrites; ++i) {
      const bool do_delete = !live.empty() && i % 5 == 4;
      if (do_delete) {
        const size_t victim = rng.NextBounded(live.size());
        pending.push_back((*service)->Submit(
            QueryRequest<2>::Delete(live[victim].mbr, live[victim].id)));
        live.erase(live.begin() + victim);
      } else {
        Rect<2> r;
        r.lo[0] = rng.Uniform(0.0, 1.0);
        r.lo[1] = rng.Uniform(0.0, 1.0);
        r.hi[0] = r.lo[0] + 0.005;
        r.hi[1] = r.lo[1] + 0.005;
        pending.push_back(
            (*service)->Submit(QueryRequest<2>::Insert(r, next_id)));
        live.push_back(Entry<2>{r, next_id});
        ++next_id;
      }
      if (i % kCheckpointEvery == kCheckpointEvery - 1) {
        pending.push_back(
            (*service)->Submit(QueryRequest<2>::Checkpoint()));
      }
      // Fixed pacing: ~10k submits/s, so queries overlap many epochs.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    for (auto& f : pending) {
      const QueryResponse<2> resp = f.get();
      EXPECT_TRUE(resp.ok()) << resp.status.ToString();
    }
    reference = std::move(live);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(777 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Point<2> q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        QueryResponse<2> resp;
        if (i % 3 == 0) {
          Rect<2> window;
          window.lo[0] = q[0];
          window.lo[1] = q[1];
          window.hi[0] = q[0] + 0.1;
          window.hi[1] = q[1] + 0.1;
          resp = (*service)->Execute(QueryRequest<2>::Range(window));
        } else {
          resp = (*service)->Execute(QueryRequest<2>::Knn(q, 8));
        }
        // A query against a pinned snapshot must never fail — a dangling
        // page id or torn traversal would surface here as an error.
        if (!resp.ok()) {
          ++query_failures;
          continue;
        }
        ++queries_ok;
        bool sorted = true;
        for (size_t j = 1; j < resp.neighbors.size(); ++j) {
          sorted &= resp.neighbors[j - 1].dist_sq <= resp.neighbors[j].dist_sq;
        }
        if (!sorted || resp.neighbors.size() > 8) ++malformed_results;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_EQ(malformed_results.load(), 0u);
  EXPECT_EQ(queries_ok.load(),
            static_cast<uint64_t>(kQueryThreads) * kQueriesPerThread);

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.writes_failed, 0u);
  EXPECT_EQ(stats.writes_ok, static_cast<uint64_t>(kWrites));
  EXPECT_GE(stats.checkpoints, static_cast<uint64_t>(
                                   kWrites / kCheckpointEvery));

  // Final state: every acked write, nothing else, in a valid tree.
  ServingDb<2>* sdb = (*service)->serving_db();
  ASSERT_NE(sdb, nullptr);
  ASSERT_EQ(sdb->writer_tree().size(), reference.size());
  auto report = ValidateTree<2>(sdb->writer_tree(), true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, reference.size());

  Rect<2> everything;
  everything.lo[0] = everything.lo[1] = -1e9;
  everything.hi[0] = everything.hi[1] = 1e9;
  std::vector<Entry<2>> found;
  ASSERT_TRUE(sdb->writer_tree().Search(everything, &found).ok());
  std::vector<uint64_t> got_ids, want_ids;
  for (const auto& e : found) got_ids.push_back(e.id);
  for (const auto& e : reference) want_ids.push_back(e.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);

  (*service)->Shutdown();
  CleanupDb(path);
}

}  // namespace
}  // namespace spatial

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") spatial::g_smoke = true;
  }
  return RUN_ALL_TESTS();
}
