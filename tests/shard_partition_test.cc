// The STR spatial partitioner: the shards must be an exact disjoint cover
// of the input, balanced to within one object, spatially tiled, and a pure
// function of the input (determinism is what makes sharded answers
// reproducible).

#include "shard/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 17) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

TEST(PartitionerTest, DisjointCoverAndBalance) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    const auto data = MakeData(1000);
    auto partition = PartitionStr<2>(data, shards);
    ASSERT_TRUE(partition.ok()) << partition.status().ToString();
    ASSERT_EQ(partition->num_shards(), shards);

    // Every input object lands in exactly one shard.
    std::map<uint64_t, int> seen;
    size_t total = 0;
    const size_t base = data.size() / shards;
    for (uint32_t s = 0; s < shards; ++s) {
      const auto& shard = partition->shards[s];
      EXPECT_GE(shard.size(), base);
      EXPECT_LE(shard.size(), base + 1);
      total += shard.size();
      for (const auto& e : shard) seen[e.id]++;
    }
    EXPECT_EQ(total, data.size());
    for (const auto& [id, count] : seen) {
      EXPECT_EQ(count, 1) << "object " << id << " in " << count << " shards";
    }
  }
}

TEST(PartitionerTest, TilesBoundTheirShards) {
  const auto data = MakeData(900);
  auto partition = PartitionStr<2>(data, 4);
  ASSERT_TRUE(partition.ok());
  for (uint32_t s = 0; s < 4; ++s) {
    const Rect<2>& tile = partition->tiles[s];
    ASSERT_TRUE(tile.IsValid());
    Rect<2> bounds = Rect<2>::Empty();
    for (const auto& e : partition->shards[s]) {
      EXPECT_TRUE(tile.Contains(e.mbr)) << "shard " << s;
      bounds.ExpandToInclude(e.mbr);
    }
    // The tile is the exact bounding box, not a loose superset.
    EXPECT_EQ(tile, bounds);
  }
}

TEST(PartitionerTest, TilesAreSpatiallyCoherent) {
  // STR on uniform data should produce tiles whose total area is a small
  // fraction of the unit square times the shard count — i.e. genuinely
  // localized tiles, not interleaved stripes of the whole domain.
  const auto data = MakeData(4000);
  auto partition = PartitionStr<2>(data, 4);
  ASSERT_TRUE(partition.ok());
  double total_area = 0.0;
  for (const auto& tile : partition->tiles) total_area += tile.Area();
  // 4 perfect quarter tiles would sum to ~1.0; allow generous slack.
  EXPECT_LT(total_area, 1.6);
}

TEST(PartitionerTest, Deterministic) {
  const auto data = MakeData(500);
  auto a = PartitionStr<2>(data, 7);
  auto b = PartitionStr<2>(data, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t s = 0; s < 7; ++s) {
    ASSERT_EQ(a->shards[s].size(), b->shards[s].size());
    for (size_t i = 0; i < a->shards[s].size(); ++i) {
      EXPECT_EQ(a->shards[s][i].id, b->shards[s][i].id);
      EXPECT_EQ(a->shards[s][i].mbr, b->shards[s][i].mbr);
    }
    EXPECT_EQ(a->tiles[s], b->tiles[s]);
  }
}

TEST(PartitionerTest, MoreShardsThanObjects) {
  const auto data = MakeData(3);
  auto partition = PartitionStr<2>(data, 7);
  ASSERT_TRUE(partition.ok());
  size_t total = 0, empty = 0;
  for (uint32_t s = 0; s < 7; ++s) {
    total += partition->shards[s].size();
    if (partition->shards[s].empty()) {
      ++empty;
      EXPECT_TRUE(partition->tiles[s].IsEmpty());
    }
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(empty, 4u);
}

TEST(PartitionerTest, EmptyInput) {
  auto partition = PartitionStr<2>({}, 3);
  ASSERT_TRUE(partition.ok());
  for (const auto& shard : partition->shards) EXPECT_TRUE(shard.empty());
  for (const auto& tile : partition->tiles) EXPECT_TRUE(tile.IsEmpty());
}

TEST(PartitionerTest, RejectsBadArguments) {
  EXPECT_TRUE(PartitionStr<2>(MakeData(10), 0).status().IsInvalidArgument());
  std::vector<Entry<2>> bad = MakeData(2);
  bad[0].mbr = Rect<2>::Empty();
  EXPECT_TRUE(PartitionStr<2>(bad, 2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace spatial
