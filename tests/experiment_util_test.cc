#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bench_util/experiment.h"
#include "bench_util/table.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "rtree/validator.h"

namespace spatial {
namespace {

// --------------------------------------------------------------------------
// Table printer.

TEST(TableTest, PrintAlignsColumns) {
  Table table({"n", "pages"});
  table.AddRow({"100", "3.5"});
  table.AddRow({"100000", "12.25"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("     n  pages"), std::string::npos);
  EXPECT_NE(out.find("100000  12.25"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(FmtInt(12345), "12345");
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(2.0, 1), "2.0");
}

// --------------------------------------------------------------------------
// BuildTree2D across every method.

class BuildMethodTest : public ::testing::TestWithParam<BuildMethod> {};

TEST_P(BuildMethodTest, BuildsValidTreeAndResetsCounters) {
  Rng rng(11);
  auto data =
      MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
  auto built = BuildTree2D(data, GetParam(), /*page_size=*/1024,
                           /*buffer_pages=*/128);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(built->tree.has_value());
  EXPECT_EQ(built->tree->size(), data.size());
  // Build traffic was reset so experiments start from zero (checked before
  // validation, which itself fetches pages).
  EXPECT_EQ(built->pool->stats().logical_fetches, 0u);
  EXPECT_EQ(built->disk->stats().physical_reads, 0u);
  // check_min_fill only for dynamic builds; packed trees also satisfy it
  // but assert the weaker property uniformly here.
  auto report = ValidateTree<2>(*built->tree, /*check_min_fill=*/false);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, data.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, BuildMethodTest,
    ::testing::Values(BuildMethod::kInsertLinear,
                      BuildMethod::kInsertQuadratic,
                      BuildMethod::kInsertRStar, BuildMethod::kBulkStr,
                      BuildMethod::kBulkHilbert, BuildMethod::kBulkMorton));

TEST(BuildMethodTest, NamesAreStable) {
  EXPECT_STREQ(BuildMethodName(BuildMethod::kInsertQuadratic),
               "insert-quadratic");
  EXPECT_STREQ(BuildMethodName(BuildMethod::kBulkStr), "bulk-str");
}

// --------------------------------------------------------------------------
// RunKnnBatch.

TEST(RunKnnBatchTest, AggregatesOverAllQueries) {
  Rng rng(12);
  auto data =
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
  auto built = BuildTree2D(data, BuildMethod::kInsertQuadratic, 1024, 128);
  ASSERT_TRUE(built.ok());
  auto queries = GenerateQueries<2>(data, 64, QueryDistribution::kUniform,
                                    0.0, &rng);
  KnnOptions knn;
  knn.k = 4;
  auto batch = RunKnnBatch(*built->tree, queries, knn);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->pages.count(), queries.size());
  EXPECT_GE(batch->pages.mean(), static_cast<double>(built->tree->height()));
  EXPECT_GT(batch->dist_comps.mean(), 0.0);
  EXPECT_EQ(batch->totals.nodes_visited,
            static_cast<uint64_t>(batch->pages.sum() + 0.5));
  EXPECT_GT(batch->wall_micros.mean(), 0.0);
}

TEST(RunKnnBatchTest, EmptyQuerySetYieldsEmptyAggregates) {
  Rng rng(13);
  auto data =
      MakePointEntries(GenerateUniform<2>(100, UnitBounds<2>(), &rng));
  auto built = BuildTree2D(data, BuildMethod::kBulkStr, 1024, 64);
  ASSERT_TRUE(built.ok());
  auto batch = RunKnnBatch(*built->tree, {}, KnnOptions{});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->pages.count(), 0u);
}

}  // namespace
}  // namespace spatial
