#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/reverse_nn.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "geom/metrics.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// Brute-force reverse NN: o qualifies iff no other object is strictly
// closer to o than the query is.
std::set<uint64_t> BruteReverseNn(const std::vector<Entry<2>>& data,
                                  const Point2& q) {
  std::set<uint64_t> result;
  for (size_t i = 0; i < data.size(); ++i) {
    const Point2 o = data[i].mbr.Center();
    const double to_query = SquaredDistance(o, q);
    double nearest_other = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < data.size(); ++j) {
      if (j == i) continue;
      nearest_other = std::min(
          nearest_other, SquaredDistance(o, data[j].mbr.Center()));
    }
    if (to_query <= nearest_other) result.insert(data[i].id);
  }
  return result;
}

std::set<uint64_t> IdsOf(const std::vector<Neighbor>& neighbors) {
  std::set<uint64_t> ids;
  for (const Neighbor& n : neighbors) ids.insert(n.id);
  return ids;
}

TEST(ReverseNnTest, EmptyTree) {
  TestIndex2D index;
  auto result = ReverseNnSearch<2>(*index.tree, {{0.5, 0.5}}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ReverseNnTest, SingleObjectIsAlwaysReverseNn) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.3, 0.3}}), 7).ok());
  auto result = ReverseNnSearch<2>(*index.tree, {{0.9, 0.9}}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 7u);
}

TEST(ReverseNnTest, HandCaseAsymmetry) {
  // a at 0, b at 3, query at 1: q is a's nearest entity (|aq|=1 < |ab|=3),
  // but b prefers a (|bq|=2 vs |ba|=3 -> q closer? |bq|=2 < |ab|=3, so b
  // also picks q). Move b to 2.5: |bq|=1.5, |ba|=2.5 -> q wins again.
  // Put a third point c at 2.8 next to b: now b's nearest is c (0.3).
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.0, 0.0}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{2.5, 0.0}}), 2).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{2.8, 0.0}}), 3).ok());
  auto result = ReverseNnSearch<2>(*index.tree, {{1.0, 0.0}}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(IdsOf(*result), (std::set<uint64_t>{1}));
}

TEST(ReverseNnTest, QueryOnDataPoint) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.9, 0.9}}), 2).ok());
  auto result = ReverseNnSearch<2>(*index.tree, {{0.5, 0.5}}, nullptr);
  ASSERT_TRUE(result.ok());
  // Object 1 coincides with q (distance 0); object 2's nearest other is 1.
  const std::set<uint64_t> got = IdsOf(*result);
  EXPECT_TRUE(got.count(1));
}

class ReverseNnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReverseNnPropertyTest, MatchesBruteForceUniform) {
  TestIndex2D index;
  Rng rng(GetParam());
  auto data =
      MakePointEntries(GenerateUniform<2>(600, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  for (int trial = 0; trial < 30; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto result = ReverseNnSearch<2>(*index.tree, q, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(IdsOf(*result), BruteReverseNn(data, q)) << "trial " << trial;
  }
}

TEST_P(ReverseNnPropertyTest, MatchesBruteForceClustered) {
  TestIndex2D index;
  Rng rng(GetParam() ^ 0xcafe);
  auto data = MakePointEntries(
      GenerateClustered<2>(500, UnitBounds<2>(), ClusteredOptions{}, &rng));
  index.InsertAll(data);
  for (int trial = 0; trial < 30; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto result = ReverseNnSearch<2>(*index.tree, q, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(IdsOf(*result), BruteReverseNn(data, q)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseNnPropertyTest,
                         ::testing::Values(3u, 33u, 333u, 3333u));

TEST(ReverseNnTest, ResultCountIsBoundedBySix) {
  // Classic 2-D fact: a point has at most six reverse nearest neighbors in
  // general position (one per 60-degree sector).
  TestIndex2D index;
  Rng rng(99);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto result = ReverseNnSearch<2>(*index.tree, q, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->size(), 6u);
  }
}

TEST(ReverseNnTest, IsolatedQueryFarFromDenseClusterHasNoReverseNn) {
  // All points huddle together; a faraway query attracts nobody.
  TestIndex2D index;
  Rng rng(100);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 300; ++i) {
    data.push_back(Entry<2>{
        Rect2::FromPoint(
            {{0.5 + rng.Uniform(0, 0.01), 0.5 + rng.Uniform(0, 0.01)}}),
        i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  auto result = ReverseNnSearch<2>(*index.tree, {{5.0, 5.0}}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace spatial
