// Tests for the validator's tree-quality diagnostics and for the
// cross-configuration identities of the query counters.

#include <gtest/gtest.h>

#include <vector>

#include "bench_util/experiment.h"
#include "common/rng.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "rtree/validator.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(QualityMetricsTest, DisjointLeavesHaveZeroLeafOverlap) {
  // A 1-D-ish grid of disjoint unit squares bulk-loaded with STR: leaf
  // *entries* never overlap, so level-0 overlap must be exactly zero.
  DiskManager disk(512);
  BufferPool pool(&disk, 64);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i % 25) * 2.0;
    const double y = static_cast<double>(i / 25) * 2.0;
    data.push_back(Entry<2>{Rect2{{{x, y}}, {{x + 1, y + 1}}}, i});
  }
  auto tree = BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
  ASSERT_TRUE(tree.ok());
  auto report = ValidateTree<2>(*tree, /*check_min_fill=*/false);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->sibling_overlap_per_level.empty());
  EXPECT_DOUBLE_EQ(report->sibling_overlap_per_level[0], 0.0);
  EXPECT_GT(report->entry_area_per_level[0], 0.0);
}

TEST(QualityMetricsTest, RStarOverlapBelowLinearSplitOverlap) {
  Rng rng(7);
  auto data =
      MakePointEntries(GenerateUniform<2>(8000, UnitBounds<2>(), &rng));
  auto linear = BuildTree2D(data, BuildMethod::kInsertLinear, 1024, 512);
  auto rstar = BuildTree2D(data, BuildMethod::kInsertRStar, 1024, 512);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(rstar.ok());
  auto linear_report = ValidateTree<2>(*linear->tree, false);
  auto rstar_report = ValidateTree<2>(*rstar->tree, false);
  ASSERT_TRUE(linear_report.ok());
  ASSERT_TRUE(rstar_report.ok());
  // The whole point of the R* heuristics: much less sibling overlap.
  EXPECT_LT(rstar_report->total_sibling_overlap(),
            0.5 * linear_report->total_sibling_overlap());
}

TEST(QualityMetricsTest, VectorsSizedByHeight) {
  Rng rng(8);
  auto data =
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
  auto built = BuildTree2D(data, BuildMethod::kInsertQuadratic, 512, 128);
  ASSERT_TRUE(built.ok());
  auto report = ValidateTree<2>(*built->tree, true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->sibling_overlap_per_level.size(),
            static_cast<size_t>(report->height));
  EXPECT_EQ(report->entry_area_per_level.size(),
            static_cast<size_t>(report->height));
}

// --------------------------------------------------------------------------
// Counter identities across query configurations.

class CounterIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CounterIdentityTest, InvariantsHoldAcrossKs) {
  TestIndex2D index(/*page_size=*/1024, /*buffer_pages=*/2048);
  Rng rng(GetParam());
  auto data =
      MakePointEntries(GenerateUniform<2>(10000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 30, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    uint64_t previous_pages = 0;
    for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      KnnOptions knn;
      knn.k = k;
      QueryStats stats;
      index.pool.ResetStats();
      auto result = KnnSearch<2>(*index.tree, q, knn, &stats);
      ASSERT_TRUE(result.ok());
      // Identity 1: node visits split exactly into leaf + internal.
      ASSERT_EQ(stats.nodes_visited,
                stats.leaf_nodes_visited + stats.internal_nodes_visited);
      // Identity 2: every visit is one logical buffer fetch.
      ASSERT_EQ(stats.nodes_visited, index.pool.stats().logical_fetches);
      // Identity 3: objects examined = sum of visited leaf populations,
      // so examined >= results returned.
      ASSERT_GE(stats.objects_examined, result->size());
      // Identity 4: page cost is monotone nondecreasing in k.
      ASSERT_GE(stats.nodes_visited, previous_pages);
      previous_pages = stats.nodes_visited;
    }
  }
}

TEST_P(CounterIdentityTest, PrunedPlusVisitedCoversGeneratedAbl) {
  TestIndex2D index(/*page_size=*/512);
  Rng rng(GetParam() ^ 0xaa);
  auto data =
      MakePointEntries(GenerateUniform<2>(5000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  KnnOptions knn;  // defaults: k = 1, all pruning on
  QueryStats stats;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, knn, &stats);
  ASSERT_TRUE(result.ok());
  // Every generated ABL entry is either visited (a node fetch below the
  // root), pruned by S1, or pruned by S3.
  EXPECT_EQ(stats.abl_entries_generated,
            (stats.nodes_visited - 1) + stats.pruned_s1 + stats.pruned_s3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterIdentityTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace spatial
