// Behavior of the concurrent query service: every query kind must return
// exactly what the corresponding single-threaded call returns, stats must
// aggregate across workers, and lifecycle edges (shutdown, read-only
// database, invalid requests) must fail cleanly.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/constrained.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "storage/read_only_disk.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

// An in-memory database, bulk-loaded and flushed, ready to serve.
Result<SpatialDb<2>> MakeServableDb(const std::vector<Entry<2>>& data) {
  SpatialDb<2>::Options options;
  options.page_size = 512;
  options.buffer_pages = 64;
  SPATIAL_ASSIGN_OR_RETURN(SpatialDb<2> db,
                           SpatialDb<2>::CreateInMemory(options));
  SPATIAL_RETURN_IF_ERROR(db.BulkLoadData(data, BulkLoadMethod::kStr));
  return db;
}

TEST(QueryServiceTest, KnnMatchesSingleThreadedSearch) {
  const auto data = MakeData(2000);
  auto db = MakeServableDb(data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  QueryService<2>::Options options;
  options.num_workers = 3;
  options.frames_per_worker = 16;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    KnnOptions knn;
    knn.k = 5;
    auto expected = KnnSearch<2>(db->tree(), q, knn, nullptr);
    ASSERT_TRUE(expected.ok());

    QueryResponse<2> got =
        (*service)->Execute(QueryRequest<2>::Knn(q, 5));
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    ASSERT_EQ(got.neighbors.size(), expected->size());
    for (size_t j = 0; j < expected->size(); ++j) {
      EXPECT_EQ(got.neighbors[j].id, (*expected)[j].id);
      EXPECT_EQ(got.neighbors[j].dist_sq, (*expected)[j].dist_sq);
    }
    EXPECT_GT(got.stats.nodes_visited, 0u);
  }
}

TEST(QueryServiceTest, AllQueryKindsMatchDirectCalls) {
  const auto data = MakeData(1500);
  auto db = MakeServableDb(data);
  ASSERT_TRUE(db.ok());

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok());

  const Point2 q{{0.4, 0.6}};
  const Rect2 region = Rect2::FromCorners({{0.2, 0.2}}, {{0.8, 0.8}});

  {  // constrained kNN
    KnnOptions knn;
    knn.k = 7;
    auto expected = ConstrainedKnnSearch<2>(db->tree(), q, region, knn,
                                            nullptr);
    ASSERT_TRUE(expected.ok());
    QueryResponse<2> got =
        (*service)->Execute(QueryRequest<2>::ConstrainedKnn(q, region, 7));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.neighbors.size(), expected->size());
    for (size_t j = 0; j < expected->size(); ++j) {
      EXPECT_EQ(got.neighbors[j].id, (*expected)[j].id);
      EXPECT_EQ(got.neighbors[j].dist_sq, (*expected)[j].dist_sq);
    }
  }
  {  // range
    std::vector<Entry<2>> expected;
    ASSERT_TRUE(db->tree().Search(region, &expected).ok());
    QueryResponse<2> got =
        (*service)->Execute(QueryRequest<2>::Range(region));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.entries.size(), expected.size());
  }
  {  // top-k via the incremental scan
    IncrementalKnn<2> scan(db->tree(), q, nullptr);
    std::vector<Neighbor> expected;
    for (int i = 0; i < 9; ++i) {
      auto next = scan.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      expected.push_back(**next);
    }
    QueryResponse<2> got = (*service)->Execute(QueryRequest<2>::TopK(q, 9));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.neighbors.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(got.neighbors[j].id, expected[j].id);
      EXPECT_EQ(got.neighbors[j].dist_sq, expected[j].dist_sq);
    }
  }
}

TEST(QueryServiceTest, StatsAggregateAcrossWorkers) {
  const auto data = MakeData(1000);
  auto db = MakeServableDb(data);
  ASSERT_TRUE(db.ok());

  QueryService<2>::Options options;
  options.num_workers = 4;
  options.frames_per_worker = 8;
  // This test asserts the paged path's page-access accounting; the
  // resident tier would answer without touching the buffer pools.
  options.resident_tier = false;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok());

  constexpr int kQueries = 120;
  std::vector<std::future<QueryResponse<2>>> futures;
  Rng rng(99);
  for (int i = 0; i < kQueries; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    futures.push_back((*service)->Submit(QueryRequest<2>::Knn(q, 3)));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.queries_ok, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.latency.total_count, static_cast<uint64_t>(kQueries));
  // Every query touches at least the root: logical fetches ≥ queries.
  EXPECT_GE(stats.buffer.logical_fetches,
            static_cast<uint64_t>(kQueries));
  EXPECT_GT(stats.PageAccessesPerQuery(), 0.0);
  EXPECT_GT(stats.QueriesPerSecond(), 0.0);
  EXPECT_GT(stats.latency.PercentileNs(0.5), 0u);
  EXPECT_GE(stats.latency.PercentileNs(0.99),
            stats.latency.PercentileNs(0.5));
  // Per-query algorithm counters flowed through the workers.
  EXPECT_GE(stats.query.nodes_visited, static_cast<uint64_t>(kQueries));
  // With the tier disabled, no query may be counted against it.
  EXPECT_EQ(stats.resident_hits, 0u);
  EXPECT_EQ(stats.resident_fallbacks, 0u);
  EXPECT_EQ(stats.resident_compiles, 0u);

  (*service)->ResetStats();
  const ServiceStats zeroed = (*service)->Stats();
  EXPECT_EQ(zeroed.queries_ok, 0u);
  EXPECT_EQ(zeroed.buffer.logical_fetches, 0u);
  EXPECT_EQ(zeroed.latency.total_count, 0u);
}

TEST(QueryServiceTest, InvalidRequestsFailCleanly) {
  const auto data = MakeData(200);
  auto db = MakeServableDb(data);
  ASSERT_TRUE(db.ok());
  auto service = QueryService<2>::Attach(*db, {});
  ASSERT_TRUE(service.ok());

  QueryRequest<2> bad = QueryRequest<2>::Knn({{0.5, 0.5}}, 0);  // k = 0
  QueryResponse<2> got = (*service)->Execute(bad);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status.IsInvalidArgument());

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.queries_failed, 1u);
}

TEST(QueryServiceTest, SubmitAfterShutdownResolvesWithError) {
  const auto data = MakeData(100);
  auto db = MakeServableDb(data);
  ASSERT_TRUE(db.ok());
  auto service = QueryService<2>::Attach(*db, {});
  ASSERT_TRUE(service.ok());

  (*service)->Shutdown();
  auto future = (*service)->Submit(QueryRequest<2>::Knn({{0.1, 0.1}}, 1));
  QueryResponse<2> got = future.get();
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status.IsInvalidArgument());
  (*service)->Shutdown();  // idempotent
}

TEST(QueryServiceTest, OpenServesFileBackedDatabaseReadOnly) {
  const std::string path = TempPath("service_open.sdb");
  const auto data = MakeData(800);
  {
    SpatialDb<2>::Options options;
    options.page_size = 512;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
    ASSERT_TRUE(db->Flush().ok());
  }

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::Open(path, 512, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_TRUE((*service)->db().read_only());

  const Point2 q{{0.25, 0.75}};
  QueryResponse<2> got = (*service)->Execute(QueryRequest<2>::Knn(q, 4));
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  ExpectKnnMatchesBruteForce(data, q, 4, got.neighbors);

  std::remove(path.c_str());
}

TEST(QueryServiceTest, ReadOnlyDbRejectsMutationAndFlush) {
  const std::string path = TempPath("service_ro.sdb");
  const auto data = MakeData(100);
  {
    SpatialDb<2>::Options options;
    options.page_size = 512;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
  }
  auto db = SpatialDb<2>::OpenFromFileReadOnly(path, 512, 32);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db->read_only());
  EXPECT_TRUE(db->Flush().IsInvalidArgument());
  EXPECT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr)
                  .IsInvalidArgument());
  // Queries still work.
  auto nn = KnnSearch<2>(db->tree(), {{0.5, 0.5}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(nn.ok());
  ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 1, *nn);
  std::remove(path.c_str());
}

TEST(ReadOnlyDiskViewTest, ForwardsReadsAndCountsPrivately) {
  DiskManager base(128);
  const PageId id = base.AllocatePage();
  std::vector<char> buf(128, 'v');
  ASSERT_TRUE(base.WritePage(id, buf.data()).ok());

  ReadOnlyDiskView view(&base);
  EXPECT_EQ(view.page_size(), 128u);
  EXPECT_EQ(view.live_pages(), 1u);

  std::vector<char> out(128, 0);
  ASSERT_TRUE(view.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 'v');
  EXPECT_EQ(view.stats().physical_reads, 1u);
  EXPECT_EQ(base.stats().physical_reads, 0u);  // base untouched

  EXPECT_TRUE(view.WritePage(id, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(view.FreePage(id).IsInvalidArgument());
  EXPECT_FALSE(view.ReadPage(999, out.data()).ok());
}

}  // namespace
}  // namespace spatial
