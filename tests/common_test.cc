#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace spatial {
namespace {

// --------------------------------------------------------------------------
// Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 17");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "page 17");
  EXPECT_EQ(s.ToString(), "NotFound: page 17");
}

TEST(StatusTest, EachFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    SPATIAL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsCorruption());
}

// --------------------------------------------------------------------------
// Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("x"); };
  auto outer = [&]() -> Status {
    SPATIAL_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsOutOfRange());
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto inner = []() -> Result<int> { return 5; };
  int seen = 0;
  auto outer = [&]() -> Status {
    SPATIAL_ASSIGN_OR_RETURN(seen, inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_EQ(seen, 5);
}

// --------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianHasPlausibleMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, NextBoolProbabilityRoughlyHolds) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// --------------------------------------------------------------------------
// RunningStat / Percentiles

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic example is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, left, right;
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-10, 10);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Merge(b);  // merge empty into non-empty
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // merge non-empty into empty
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentilesTest, QuantilesOfKnownSequence) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.95), 95.0);
}

TEST(PercentilesTest, AddAfterQuantileStaysCorrect) {
  Percentiles p;
  p.Add(10.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 10.0);
  p.Add(1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 10.0);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace spatial
