#ifndef SPATIAL_TESTS_TEST_UTIL_H_
#define SPATIAL_TESTS_TEST_UTIL_H_

// Shared helpers for the nearest-neighbor test suites.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "storage/disk_manager.h"
#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/neighbor_buffer.h"
#include "data/dataset.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace spatial {

// A 2-D index with its own simulated disk and pool.
struct TestIndex2D {
  explicit TestIndex2D(uint32_t page_size = 512, uint32_t buffer_pages = 64,
                       RTreeOptions options = RTreeOptions{})
      : disk(page_size), pool(&disk, buffer_pages) {
    auto created = RTree<2>::Create(&pool, options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    tree.emplace(std::move(created).value());
  }

  void InsertAll(const std::vector<Entry<2>>& data) {
    for (const auto& e : data) {
      ASSERT_TRUE(tree->Insert(e.mbr, e.id).ok());
    }
  }

  DiskManager disk;
  BufferPool pool;
  std::optional<RTree<2>> tree;
};

// Asserts that `actual` is a correct k-NN answer for `query` over `data`:
// identical distance sequence as the brute-force scan (ids may differ only
// within exact distance ties).
inline void ExpectKnnMatchesBruteForce(const std::vector<Entry<2>>& data,
                                       const Point2& query, uint32_t k,
                                       const std::vector<Neighbor>& actual) {
  const std::vector<Neighbor> expected =
      LinearScanKnn<2>(data, query, k, nullptr);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_DOUBLE_EQ(actual[i].dist_sq, expected[i].dist_sq)
        << "rank " << i << " of k=" << k;
  }
  // Results must be sorted by distance.
  for (size_t i = 1; i < actual.size(); ++i) {
    ASSERT_LE(actual[i - 1].dist_sq, actual[i].dist_sq);
  }
}

}  // namespace spatial

#endif  // SPATIAL_TESTS_TEST_UTIL_H_
