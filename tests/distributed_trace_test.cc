// End-to-end distributed tracing and the remote admin plane: a sampled
// kNN through a 4-shard router over real RPC must produce one assembled
// trace whose per-shard spans sum to the router-merged stats; the router's
// own sampling and slow-capture paths must populate the trace log; the
// deadline hint must shed expired requests before any shard sees them; the
// admin frames must serve metrics and the trace log over the wire without
// touching the request budget; and a v2 client must be refused at the
// handshake.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/dist_trace.h"
#include "shard/shard_router.h"
#include "shard/shard_set.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 77) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

struct Fixture {
  explicit Fixture(const ShardRouter<2>::Options& router_options = {},
                   uint32_t num_shards = 4) {
    ShardSet<2>::Options options;
    options.num_shards = num_shards;
    options.page_size = 512;
    options.buffer_pages = 64;
    options.service.num_workers = 2;
    options.service.frames_per_worker = 32;
    auto built = ShardSet<2>::Build(MakeData(1200), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    set = std::move(*built);
    router = std::make_unique<ShardRouter<2>>(set.get(), router_options);
  }

  std::unique_ptr<ShardSet<2>> set;
  std::unique_ptr<ShardRouter<2>> router;
};

uint64_t SumNodesVisited(const obs::RouterTraceRecord& rec) {
  uint64_t sum = 0;
  for (uint32_t s = 0; s < rec.captured_shards(); ++s) {
    sum += rec.shards[s].stats.nodes_visited;
  }
  return sum;
}

TEST(DistributedTraceTest, SampledKnnOverRpcAssemblesOneTrace) {
  Fixture fx;
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // An externally sampled trace context, as a remote caller would stamp.
  QueryRequest<2> request = QueryRequest<2>::Knn({{0.41, 0.57}}, 9);
  request.trace_id = 0xABCDEF0123456789ULL;
  request.trace_sampled = true;
  auto response = (*client)->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok());
  ASSERT_EQ(response->neighbors.size(), 9u);

  // The router recorded exactly one assembled trace before replying.
  const obs::DistTraceLog& log = fx.router->trace_log();
  ASSERT_EQ(log.total_recorded(), 1u);
  std::vector<obs::RouterTraceRecord> entries = log.SampledEntries();
  if (entries.empty()) entries = log.SlowEntries();  // slow machine
  ASSERT_EQ(entries.size(), 1u);
  const obs::RouterTraceRecord& rec = entries[0];

  // Root identity: the propagated trace id, a router-minted root span.
  EXPECT_TRUE(rec.traced);
  EXPECT_EQ(rec.trace_id, request.trace_id);
  EXPECT_NE(rec.root_span_id, 0u);
  EXPECT_STREQ(rec.kind_name, "knn");
  EXPECT_EQ(rec.k, 9u);
  EXPECT_EQ(rec.num_shards, 4u);
  EXPECT_LT(rec.straggler, 4u);
  EXPECT_EQ(rec.total_ns, rec.scatter_ns + rec.merge_ns);
  EXPECT_GT(rec.scatter_ns, 0u);

  // Every shard span is present, traced, and internally consistent: the
  // router-observed round trip bounds the shard's own execute time.
  for (uint32_t s = 0; s < 4; ++s) {
    const obs::ShardSpan& span = rec.shards[s];
    EXPECT_EQ(span.shard, s);
    EXPECT_TRUE(span.traced) << "shard " << s << " returned no trace record";
    EXPECT_GT(span.rpc_ns, 0u);
    EXPECT_GE(span.rpc_ns, span.execute_ns);
    EXPECT_GT(span.stats.nodes_visited, 0u);
  }

  // The cross-shard invariant the trace exists to certify: per-shard stats
  // sum to the router-merged stats, which are exactly what the RPC
  // response reported.
  EXPECT_EQ(SumNodesVisited(rec), rec.merged_stats.nodes_visited);
  EXPECT_EQ(rec.merged_stats.nodes_visited, response->stats.nodes_visited);
  uint64_t heap_pops = 0, dists = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    heap_pops += rec.shards[s].stats.heap_pops;
    dists += rec.shards[s].stats.distance_computations;
  }
  EXPECT_EQ(heap_pops, response->stats.heap_pops);
  EXPECT_EQ(dists, response->stats.distance_computations);

  // The assembled-trace counter ticked; the JSON dump carries the spans.
  const std::string scrape = fx.router->ScrapeMetrics();
  EXPECT_NE(scrape.find("spatial_router_traces_assembled_total 1"),
            std::string::npos);
  std::string id_json = "\"trace_id\":";
  id_json += std::to_string(request.trace_id);
  const std::string json = log.DumpJson();
  EXPECT_NE(json.find(id_json), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
}

TEST(DistributedTraceTest, RouterOwnSamplingMintsTraceIds) {
  ShardRouter<2>::Options options;
  options.trace_sample_per_million = 1'000'000;  // trace everything
  Fixture fx(options);

  const QueryResponse<2> response =
      fx.router->Execute(QueryRequest<2>::Knn({{0.3, 0.3}}, 5));
  ASSERT_TRUE(response.status.ok());

  const obs::DistTraceLog& log = fx.router->trace_log();
  ASSERT_EQ(log.total_recorded(), 1u);
  std::vector<obs::RouterTraceRecord> entries = log.SampledEntries();
  if (entries.empty()) entries = log.SlowEntries();
  ASSERT_EQ(entries.size(), 1u);
  // No caller-provided context: the router minted a nonzero trace id.
  EXPECT_TRUE(entries[0].traced);
  EXPECT_NE(entries[0].trace_id, 0u);
  EXPECT_NE(entries[0].root_span_id, 0u);
  EXPECT_EQ(SumNodesVisited(entries[0]),
            entries[0].merged_stats.nodes_visited);
}

TEST(DistributedTraceTest, SlowRoundTripsCaptureWithoutSampling) {
  ShardRouter<2>::Options options;
  options.slow_threshold_ns = 0;  // every round trip is "slow"
  Fixture fx(options);

  ASSERT_TRUE(
      fx.router->Execute(QueryRequest<2>::Knn({{0.6, 0.2}}, 3)).status.ok());

  const obs::DistTraceLog& log = fx.router->trace_log();
  ASSERT_EQ(log.slow_captured(), 1u);
  const obs::RouterTraceRecord rec = log.SlowEntries()[0];
  // Unsampled capture: no trace identity or per-shard queue detail, but
  // the per-shard execute/stats split is still there.
  EXPECT_FALSE(rec.traced);
  EXPECT_EQ(rec.trace_id, 0u);
  EXPECT_EQ(rec.num_shards, 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(rec.shards[s].traced);
    EXPECT_GT(rec.shards[s].stats.nodes_visited, 0u);
  }
}

TEST(DistributedTraceTest, ExpiredDeadlineShedsBeforeShards) {
  Fixture fx;
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok());
  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  // A caller whose deadline already passed sends budget=1: the server
  // sheds before the router (and any shard) sees the request.
  QueryRequest<2> expired = QueryRequest<2>::Knn({{0.5, 0.5}}, 5);
  expired.deadline_budget_ns = 1;
  auto response = (*client)->Call(expired);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsOverloaded());
  EXPECT_EQ(response->status.message(), "deadline expired before execution");

  const std::string scrape = fx.router->ScrapeMetrics();
  EXPECT_NE(scrape.find("spatial_rpc_deadline_shed_total 1"),
            std::string::npos);
  // Counted apart from capacity sheds, and the router never saw it.
  EXPECT_NE(scrape.find("spatial_rpc_shed_total 0"), std::string::npos);
  EXPECT_NE(scrape.find("spatial_router_requests_total{kind=\"knn\"} 0"),
            std::string::npos);

  // A generous budget sails through admission.
  QueryRequest<2> fresh = QueryRequest<2>::Knn({{0.5, 0.5}}, 5);
  fresh.deadline_budget_ns = 5'000'000'000;  // 5 s
  auto ok = (*client)->Call(fresh);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok());
  EXPECT_EQ(ok->neighbors.size(), 5u);
}

TEST(DistributedTraceTest, AdminFramesServeMetricsAndSlowLog) {
  ShardRouter<2>::Options options;
  options.trace_sample_per_million = 1'000'000;
  Fixture fx(options);
  typename RpcServer<2>::Options server_options;
  server_options.max_requests = 2;  // admin frames must not consume these
  auto server = RpcServer<2>::Start(fx.router.get(), server_options);
  ASSERT_TRUE(server.ok());
  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE((*client)->Call(QueryRequest<2>::Knn({{0.2, 0.8}}, 4)).ok());

  // Remote scrape: the labeled router family, the per-shard families, and
  // the admin counter itself are all in the one document.
  auto metrics = (*client)->Admin(AdminKind::kScrapeMetrics);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("spatial_router_requests_total{kind=\"knn\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics->find("spatial_shard_queries_total{shard=\"0\""),
            std::string::npos);
  EXPECT_NE(metrics->find("spatial_rpc_admin_requests_total"),
            std::string::npos);

  // Remote trace dump: the sampled query above is in it, spans and all.
  auto slow_log = (*client)->Admin(AdminKind::kDumpSlowLog);
  ASSERT_TRUE(slow_log.ok()) << slow_log.status().ToString();
  EXPECT_NE(slow_log->find("\"slow_threshold_ns\""), std::string::npos);
  EXPECT_NE(slow_log->find("\"trace_id\""), std::string::npos);
  EXPECT_NE(slow_log->find("\"kind\":\"knn\""), std::string::npos);

  // Neither admin round trip consumed the 2-request budget: one query
  // slot is still open.
  EXPECT_EQ((*server)->requests_served(), 1u);
  auto last = (*client)->Call(QueryRequest<2>::Knn({{0.7, 0.1}}, 4));
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last->status.ok());
  (*server)->WaitUntilStopped();
  EXPECT_EQ((*server)->requests_served(), 2u);
}

TEST(DistributedTraceTest, RejectsWireV2Handshake) {
  Fixture fx(ShardRouter<2>::Options{}, 2);
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok());

  // A v2 client: right magic and dimensionality, older protocol version.
  // The server drops the connection before answering, so the handshake
  // never completes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  ASSERT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  WireHandshake v2;
  v2.version = 2;
  v2.dim = 2;
  ASSERT_TRUE(SendHandshake(fd, v2).ok());
  EXPECT_FALSE(RecvHandshake(fd).ok());
  ::close(fd);

  // A current-version client on the same server still connects fine.
  auto client = RpcClient<2>::Connect("127.0.0.1", (*server)->port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
}

TEST(DistributedTraceTest, ConcurrentRemoteScrapesUnderSampledLoad) {
  // TSan coverage (tools/tsan_check.sh): remote admin scrapes and slow-log
  // dumps racing sampled query traffic across connections must be clean —
  // the scrape reads the same StatCounter cells and trace log the query
  // path writes.
  ShardRouter<2>::Options options;
  options.trace_sample_per_million = 1'000'000;
  Fixture fx(options);
  auto server = RpcServer<2>::Start(fx.router.get(), {});
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  constexpr int kQueryThreads = 3;
  constexpr int kScrapeThreads = 2;
  constexpr int kRounds = 40;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = RpcClient<2>::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(500 + t);
      for (int i = 0; i < kRounds; ++i) {
        const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        auto response = (*client)->Call(QueryRequest<2>::Knn(q, 5));
        if (!response.ok() || !response->status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kScrapeThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = RpcClient<2>::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        const AdminKind kind = (i + t) % 2 == 0 ? AdminKind::kScrapeMetrics
                                                : AdminKind::kDumpSlowLog;
        auto text = (*client)->Admin(kind);
        if (!text.ok() || text->empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(fx.router->trace_log().total_recorded(),
            static_cast<uint64_t>(kQueryThreads * kRounds));
}

}  // namespace
}  // namespace spatial
