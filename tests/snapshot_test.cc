// Snapshot-isolation building blocks: SnapshotManager (publish / pin /
// reclamation horizon), PageVersionTable (fresh / retired / epoch
// tagging), and BufferPool::InvalidateAll (reader cache drop after a
// checkpoint recycles page ids).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "snapshot/epoch.h"
#include "snapshot/snapshot.h"
#include "snapshot/version_table.h"
#include "storage/buffer_pool.h"
#include "storage/file_disk_manager.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TreeSnapshot Snap(uint64_t epoch) {
  TreeSnapshot s;
  s.root_page = epoch;  // arbitrary, just needs to round-trip
  s.epoch = epoch;
  s.lsn = epoch * 10;
  return s;
}

TEST(SnapshotManagerTest, PublishAndCurrent) {
  SnapshotManager mgr(4);
  EXPECT_EQ(mgr.Current().epoch, 0u);
  mgr.Publish(Snap(3));
  EXPECT_EQ(mgr.Current().epoch, 3u);
  EXPECT_EQ(mgr.Current().lsn, 30u);
}

TEST(SnapshotManagerTest, PinBlocksReclamationHorizon) {
  SnapshotManager mgr(4);
  mgr.Publish(Snap(5));
  auto slot = mgr.RegisterReader();
  ASSERT_TRUE(slot.ok());

  // Nothing pinned: the horizon is the current epoch (nothing older can
  // ever be pinned again).
  EXPECT_EQ(mgr.MinPinnedEpoch(), 5u);

  const TreeSnapshot pinned = mgr.Pin(*slot);
  EXPECT_EQ(pinned.epoch, 5u);
  mgr.Publish(Snap(9));
  // The reader still pins epoch 5; retired pages tagged >= 5 must survive.
  EXPECT_EQ(mgr.MinPinnedEpoch(), 5u);

  mgr.Unpin(*slot);
  EXPECT_EQ(mgr.MinPinnedEpoch(), 9u);
  mgr.ReleaseReader(*slot);
}

TEST(SnapshotManagerTest, SlotExhaustionAndReuse) {
  SnapshotManager mgr(2);
  auto a = mgr.RegisterReader();
  auto b = mgr.RegisterReader();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  auto c = mgr.RegisterReader();
  EXPECT_TRUE(c.status().IsResourceExhausted());

  mgr.ReleaseReader(*a);
  auto d = mgr.RegisterReader();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, *a);  // slot recycled
}

TEST(SnapshotManagerTest, ReleaseDropsStalePin) {
  SnapshotManager mgr(2);
  mgr.Publish(Snap(4));
  auto slot = mgr.RegisterReader();
  ASSERT_TRUE(slot.ok());
  mgr.Pin(*slot);
  // A reader that exits without unpinning must not wedge reclamation.
  mgr.ReleaseReader(*slot);
  mgr.Publish(Snap(8));
  EXPECT_EQ(mgr.MinPinnedEpoch(), 8u);
}

TEST(PageVersionTableTest, FreshPagesNeedNoShadow) {
  PageVersionTable table;
  table.BeginEpoch(1);
  EXPECT_TRUE(table.NeedsShadow(7));  // reachable from the snapshot
  table.OnPageAllocated(7);
  EXPECT_FALSE(table.NeedsShadow(7));  // fresh: invisible to readers
  EXPECT_EQ(table.fresh_count(), 1u);

  // Publishing the next epoch makes fresh pages reachable.
  table.BeginEpoch(2);
  EXPECT_TRUE(table.NeedsShadow(7));
  EXPECT_EQ(table.fresh_count(), 0u);
}

TEST(PageVersionTableTest, ReclaimRespectsEpochHorizon) {
  PageVersionTable table;
  table.BeginEpoch(1);
  table.OnPageRetired(10);  // tagged epoch 1
  table.BeginEpoch(2);
  table.OnPageRetired(20);  // tagged epoch 2
  table.BeginEpoch(3);
  EXPECT_EQ(table.retired_count(), 2u);

  std::vector<PageId> freed;
  auto collect = [&freed](PageId id) { freed.push_back(id); };

  // Horizon 2: only the epoch-1 retiree is unreachable.
  EXPECT_EQ(table.ReclaimUpTo(2, collect), 1u);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 10u);
  EXPECT_EQ(table.retired_count(), 1u);

  // Raising the horizon releases the rest; a second pass is a no-op.
  EXPECT_EQ(table.ReclaimUpTo(3, collect), 1u);
  EXPECT_EQ(freed[1], 20u);
  EXPECT_EQ(table.ReclaimUpTo(100, collect), 0u);
}

TEST(BufferPoolTest, InvalidateAllDropsStaleImages) {
  const std::string path = TempPath("invalidate_all.pages");
  std::remove(path.c_str());
  auto disk = FileDiskManager::Create(path, 256);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  const PageId id = disk->AllocatePage();
  std::string bytes(256, 'a');
  ASSERT_TRUE(disk->WritePage(id, bytes.data()).ok());

  BufferPool pool(&*disk, 8);
  {
    auto h = pool.Fetch(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 'a');

    // Pinned frames must block invalidation.
    EXPECT_TRUE(pool.InvalidateAll().IsInvalidArgument());
  }

  // The "writer" rewrites the page behind the pool's back (a checkpoint
  // recycling a freed id for new contents).
  bytes.assign(256, 'b');
  ASSERT_TRUE(disk->WritePage(id, bytes.data()).ok());

  // Without invalidation the pool would serve the cached 'a' image.
  {
    auto h = pool.Fetch(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 'a');
  }
  ASSERT_TRUE(pool.InvalidateAll().ok());
  {
    auto h = pool.Fetch(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->data()[0], 'b');
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatial
