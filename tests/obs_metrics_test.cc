// Unit tests for the observability layer (src/obs/): the shared power-of-
// two histogram, the metrics registry and its Prometheus-style text
// exposition (parsed and cross-checked line by line), the trace context,
// and the slow-query log's two capture populations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/query_metrics.h"
#include "obs/slow_query_log.h"
#include "obs/stat_counter.h"
#include "obs/trace.h"

namespace spatial {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Exposition parsing helpers: a minimal Prometheus text-format reader.

struct ParsedSample {
  std::string name;    // full series name including _bucket/_sum/_count
  std::string labels;  // raw label body, "" when absent
  double value = 0.0;
};

struct ParsedExposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::vector<ParsedSample> samples;

  const ParsedSample* Find(const std::string& name,
                           const std::string& labels = "") const {
    for (const ParsedSample& s : samples) {
      if (s.name == name && s.labels == labels) return &s;
    }
    return nullptr;
  }

  double Value(const std::string& name, const std::string& labels = "") const {
    const ParsedSample* s = Find(name, labels);
    EXPECT_NE(s, nullptr) << "missing series " << name << "{" << labels << "}";
    return s == nullptr ? -1.0 : s->value;
  }
};

// Strict parser: any malformed line fails the calling test (EXPECT_, since
// gtest ASSERT_ cannot be used in a value-returning function).
ParsedExposition MustParse(const std::string& text) {
  ParsedExposition out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      EXPECT_FALSE(name.empty());
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      out.types[name] = type;
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment line: " << line;
    ParsedSample sample;
    const size_t brace = line.find('{');
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    if (brace != std::string::npos && brace < space) {
      const size_t close = line.find('}', brace);
      EXPECT_NE(close, std::string::npos) << line;
      sample.name = line.substr(0, brace);
      sample.labels = line.substr(brace + 1, close - brace - 1);
    } else {
      sample.name = line.substr(0, space);
    }
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    sample.value = std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0')
        << "unparseable value in: " << line;
    out.samples.push_back(std::move(sample));
  }
  return out;
}

// ---------------------------------------------------------------------------
// StatCounter

TEST(StatCounterTest, BehavesLikeUint64) {
  StatCounter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 4;
  EXPECT_EQ(static_cast<uint64_t>(c), 5u);
  --c;
  c -= 2;
  EXPECT_EQ(c.value(), 2u);
  StatCounter copy = c;  // copy takes a value snapshot
  ++c;
  EXPECT_EQ(copy.value(), 2u);
  EXPECT_EQ(c.value(), 3u);
  c.Store(42);
  EXPECT_EQ(c.value(), 42u);
}

// ---------------------------------------------------------------------------
// PowerHistogram

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(PowerHistogram::Bucket(0), 0);
  EXPECT_EQ(PowerHistogram::Bucket(1), 1);
  EXPECT_EQ(PowerHistogram::Bucket(2), 2);
  EXPECT_EQ(PowerHistogram::Bucket(3), 2);  // [2, 4)
  EXPECT_EQ(PowerHistogram::Bucket(4), 3);
  EXPECT_EQ(PowerHistogram::Bucket(~0ull), kHistogramBuckets - 1);
}

TEST(HistogramTest, SnapshotAndPercentiles) {
  PowerHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);  // bucket 10
  h.Record(1'000'000);                           // ~bucket 20
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.total_count, 101u);
  EXPECT_EQ(s.total, 100u * 1000u + 1'000'000u);
  EXPECT_EQ(s.max, 1'000'000u);
  // p50 lands in the 1000-value bucket: upper bound 2^10 - 1 = 1023.
  EXPECT_EQ(s.Percentile(0.5), 1023u);
  EXPECT_GE(s.Percentile(1.0), 1'000'000u - 1);
  EXPECT_NEAR(s.Mean(), (100.0 * 1000.0 + 1e6) / 101.0, 1.0);
}

TEST(HistogramTest, MergeAcrossShards) {
  PowerHistogram a, b;
  a.Record(10);
  b.Record(10'000);
  HistogramSnapshot merged = a.Snapshot();
  merged += b.Snapshot();
  EXPECT_EQ(merged.total_count, 2u);
  EXPECT_EQ(merged.total, 10'010u);
  EXPECT_EQ(merged.max, 10'000u);
}

// ---------------------------------------------------------------------------
// AtomicQueryStats

TEST(AtomicQueryStatsTest, AddAndSnapshotRoundTrip) {
  AtomicQueryStats shard;
  QueryStats q;
  q.nodes_visited = 7;
  q.leaf_nodes_visited = 5;
  q.internal_nodes_visited = 2;
  q.distance_computations = 300;
  q.heap_pushes = 40;
  q.heap_pops = 39;
  shard.Add(q);
  shard.Add(q);
  const QueryStats sum = shard.Snapshot();
  EXPECT_EQ(sum.nodes_visited, 14u);
  EXPECT_EQ(sum.leaf_nodes_visited, 10u);
  EXPECT_EQ(sum.internal_nodes_visited, 4u);
  EXPECT_EQ(sum.distance_computations, 600u);
  EXPECT_EQ(sum.heap_pushes, 80u);
  EXPECT_EQ(sum.heap_pops, 78u);
  shard.Reset();
  EXPECT_EQ(shard.Snapshot().nodes_visited, 0u);
}

// ---------------------------------------------------------------------------
// Registry + exposition

TEST(MetricsRegistryTest, OwnedInstrumentsExpose) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("test_ops_total", "ops");
  Gauge* g = registry.AddGauge("test_depth", "depth");
  PowerHistogram* h = registry.AddHistogram("test_latency_ns", "latency");
  c->Add(3);
  g->Set(1.5);
  h->Record(100);
  h->Record(200);

  const ParsedExposition parsed = MustParse(registry.ScrapeText());
  EXPECT_EQ(parsed.types.at("test_ops_total"), "counter");
  EXPECT_EQ(parsed.types.at("test_depth"), "gauge");
  EXPECT_EQ(parsed.types.at("test_latency_ns"), "histogram");
  EXPECT_EQ(parsed.Value("test_ops_total"), 3.0);
  EXPECT_DOUBLE_EQ(parsed.Value("test_depth"), 1.5);
  EXPECT_EQ(parsed.Value("test_latency_ns_count"), 2.0);
  EXPECT_EQ(parsed.Value("test_latency_ns_sum"), 300.0);
  EXPECT_EQ(parsed.Value("test_latency_ns_bucket", "le=\"+Inf\""), 2.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeAndConsistent) {
  MetricsRegistry registry;
  PowerHistogram* h = registry.AddHistogram("t_ns", "t");
  h->Record(1);      // bucket 1, ub 1
  h->Record(5);      // bucket 3, ub 7
  h->Record(5);
  h->Record(1000);   // bucket 10, ub 1023

  const ParsedExposition parsed = MustParse(registry.ScrapeText());
  double prev = 0.0;
  int buckets_seen = 0;
  for (const ParsedSample& s : parsed.samples) {
    if (s.name != "t_ns_bucket") continue;
    ++buckets_seen;
    EXPECT_GE(s.value, prev) << "buckets must be cumulative";
    prev = s.value;
  }
  EXPECT_GT(buckets_seen, 1);
  EXPECT_EQ(prev, parsed.Value("t_ns_count"));
  EXPECT_EQ(parsed.Value("t_ns_bucket", "le=\"1\""), 1.0);
  EXPECT_EQ(parsed.Value("t_ns_bucket", "le=\"7\""), 3.0);
  EXPECT_EQ(parsed.Value("t_ns_bucket", "le=\"1023\""), 4.0);
  EXPECT_EQ(parsed.Value("t_ns_bucket", "le=\"+Inf\""), 4.0);
  EXPECT_EQ(parsed.Value("t_ns_sum"), 1011.0);
}

TEST(MetricsRegistryTest, CountersAreMonotoneAcrossScrapes) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("mono_total", "m");
  double last = -1.0;
  for (int round = 0; round < 5; ++round) {
    c->Add(static_cast<uint64_t>(round));
    const ParsedExposition parsed = MustParse(registry.ScrapeText());
    const double v = parsed.Value("mono_total");
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_EQ(last, 10.0);  // 0+1+2+3+4
}

TEST(MetricsRegistryTest, CollectorsRunAfterOwnedInstruments) {
  MetricsRegistry registry;
  registry.AddCounter("owned_total", "o");
  registry.AddCollector([](ExpositionWriter& w) {
    w.Family("collected_total", "c", MetricType::kCounter);
    w.Sample("collected_total", "kind=\"knn\"", uint64_t{9});
  });
  const std::string text = registry.ScrapeText();
  EXPECT_LT(text.find("owned_total"), text.find("collected_total"));
  const ParsedExposition parsed = MustParse(text);
  EXPECT_EQ(parsed.Value("collected_total", "kind=\"knn\""), 9.0);
}

// ---------------------------------------------------------------------------
// TraceContext

TEST(TraceTest, CountsNodesPerLevelWithClamp) {
  TraceContext t;
  t.CountNode(0);
  t.CountNode(0);
  t.CountNode(3);
  t.CountNode(200);  // clamps into the top slot
  EXPECT_EQ(t.nodes_per_level[0], 2u);
  EXPECT_EQ(t.nodes_per_level[3], 1u);
  EXPECT_EQ(t.nodes_per_level[kTraceMaxLevels - 1], 1u);
  t.SetSpan(SpanKind::kQueueWait, 42);
  t.SetSpan(SpanKind::kExecute, 100);
  EXPECT_EQ(t.span_ns[0], 42u);
  EXPECT_EQ(t.span_ns[1], 100u);
  t.Reset();
  EXPECT_EQ(t.nodes_per_level[0], 0u);
  EXPECT_EQ(t.span_ns[1], 0u);
}

TEST(TraceTest, SampleDrawRespectsRate) {
  uint64_t rng = 12345;
  EXPECT_FALSE(SampleDraw(&rng, 0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (SampleDraw(&rng, 1'000'000)) ++hits;
  }
  EXPECT_EQ(hits, 10000);  // 100% always samples
  hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (SampleDraw(&rng, 10'000)) ++hits;  // 1%
  }
  EXPECT_GT(hits, 500);
  EXPECT_LT(hits, 2000);
}

// ---------------------------------------------------------------------------
// SlowQueryLog

QueryTraceRecord MakeRecord(uint64_t latency_ns, bool traced = false) {
  QueryTraceRecord r;
  r.worker = 1;
  r.k = 10;
  r.SetKindName("knn");
  r.latency_ns = latency_ns;
  r.queue_wait_ns = 50;
  r.traced = traced;
  r.stats.nodes_visited = 4;
  r.stats.leaf_nodes_visited = 3;
  if (traced) {
    r.nodes_per_level[0] = 3;
    r.nodes_per_level[1] = 1;
  }
  return r;
}

TEST(SlowQueryLogTest, RoutesByThreshold) {
  SlowQueryLog::Options options;
  options.slow_capacity = 4;
  options.sampled_capacity = 4;
  options.slow_threshold_ns = 1000;
  SlowQueryLog log(options);
  log.Record(MakeRecord(2000));  // slow
  log.Record(MakeRecord(10));    // sampled
  EXPECT_EQ(log.total_recorded(), 2u);
  EXPECT_EQ(log.slow_captured(), 1u);
  EXPECT_EQ(log.sampled_captured(), 1u);
  EXPECT_EQ(log.SlowEntries()[0].latency_ns, 2000u);
  EXPECT_EQ(log.SampledEntries()[0].latency_ns, 10u);
}

TEST(SlowQueryLogTest, SlowRingKeepsNewest) {
  SlowQueryLog::Options options;
  options.slow_capacity = 2;
  options.slow_threshold_ns = 0;  // everything is slow
  SlowQueryLog log(options);
  for (uint64_t i = 1; i <= 5; ++i) log.Record(MakeRecord(i * 1000));
  EXPECT_EQ(log.slow_captured(), 2u);
  std::vector<uint64_t> latencies;
  for (const QueryTraceRecord& r : log.SlowEntries()) {
    latencies.push_back(r.latency_ns);
  }
  // Newest-wins ring: the two most recent records survive.
  EXPECT_NE(std::find(latencies.begin(), latencies.end(), 5000u),
            latencies.end());
  EXPECT_NE(std::find(latencies.begin(), latencies.end(), 4000u),
            latencies.end());
}

TEST(SlowQueryLogTest, ReservoirIsBoundedAndUniformish) {
  SlowQueryLog::Options options;
  options.sampled_capacity = 8;
  options.slow_threshold_ns = ~0ull;  // nothing is slow
  SlowQueryLog log(options);
  for (uint64_t i = 0; i < 1000; ++i) log.Record(MakeRecord(i));
  EXPECT_EQ(log.sampled_captured(), 8u);
  EXPECT_EQ(log.total_recorded(), 1000u);
  // Reservoir property: retained set is not just the first 8 offered.
  bool any_late = false;
  for (const QueryTraceRecord& r : log.SampledEntries()) {
    if (r.latency_ns >= 8) any_late = true;
  }
  EXPECT_TRUE(any_late);
}

TEST(SlowQueryLogTest, DumpJsonIsWellFormedEnough) {
  SlowQueryLog::Options options;
  options.slow_threshold_ns = 1000;
  SlowQueryLog log(options);
  log.Record(MakeRecord(5000, /*traced=*/true));
  log.Record(MakeRecord(10));
  const std::string json = log.DumpJson();
  EXPECT_NE(json.find("\"slow_threshold_ns\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"slow\":["), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"knn\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes_visited\":4"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_per_level\":[3,1]"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace obs
}  // namespace spatial
