#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace spatial {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 256;
  DiskManager disk_{kPageSize};
  BufferPool pool_{&disk_, 8};
};

TEST_F(HeapFileTest, AppendReadRoundTrip) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto rid = heap->Append("hello heap");
  ASSERT_TRUE(rid.ok());
  auto record = heap->Read(*rid);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, "hello heap");
  EXPECT_EQ(heap->num_records(), 1u);
}

TEST_F(HeapFileTest, EmptyRecordSupported) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Append("");
  ASSERT_TRUE(rid.ok());
  auto record = heap->Read(*rid);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, "");
}

TEST_F(HeapFileTest, TooLargeRecordRejected) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  const std::string big(HeapFile::MaxRecordSize(kPageSize) + 1, 'x');
  EXPECT_TRUE(heap->Append(big).status().IsInvalidArgument());
  // Exactly max size fits.
  const std::string exact(HeapFile::MaxRecordSize(kPageSize), 'y');
  auto rid = heap->Append(exact);
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  auto record = heap->Read(*rid);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, exact);
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  std::vector<RecordId> rids;
  // Each record ~60 bytes; a 256-byte page holds 3 -> many pages needed.
  for (int i = 0; i < 50; ++i) {
    const std::string record(60, static_cast<char>('a' + i % 26));
    auto rid = heap->Append(record);
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap->num_records(), 50u);
  EXPECT_GT(disk_.live_pages(), 10u);  // definitely chained
  for (int i = 0; i < 50; ++i) {
    auto record = heap->Read(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(*record, std::string(60, static_cast<char>('a' + i % 26)));
  }
}

TEST_F(HeapFileTest, ReopenWalksChainAndCounts) {
  PageId first;
  std::vector<RecordId> rids;
  {
    auto heap = HeapFile::Create(&pool_);
    ASSERT_TRUE(heap.ok());
    first = heap->first_page();
    for (int i = 0; i < 30; ++i) {
      auto rid = heap->Append("record-" + std::to_string(i));
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
    }
    ASSERT_TRUE(pool_.FlushAll().ok());
  }
  auto heap = HeapFile::Open(&pool_, first);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_EQ(heap->num_records(), 30u);
  for (int i = 0; i < 30; ++i) {
    auto record = heap->Read(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(*record, "record-" + std::to_string(i));
  }
  // Appending after reopen continues the chain.
  auto rid = heap->Append("after reopen");
  ASSERT_TRUE(rid.ok());
  auto record = heap->Read(*rid);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, "after reopen");
}

TEST_F(HeapFileTest, InvalidReadsRejected) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Append("x");
  ASSERT_TRUE(rid.ok());
  // Bad slot.
  RecordId bad_slot{rid->page, 7};
  EXPECT_TRUE(heap->Read(bad_slot).status().IsOutOfRange());
  // Bad page.
  RecordId bad_page{9999, 0};
  EXPECT_FALSE(heap->Read(bad_page).ok());
}

TEST_F(HeapFileTest, OpenGarbagePageFails) {
  const PageId raw = disk_.AllocatePage();
  std::vector<char> junk(kPageSize, 0x2f);
  ASSERT_TRUE(disk_.WritePage(raw, junk.data()).ok());
  EXPECT_TRUE(HeapFile::Open(&pool_, raw).status().IsCorruption());
}

TEST_F(HeapFileTest, RandomizedRoundTripAgainstModel) {
  auto heap = HeapFile::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  Rng rng(500);
  std::vector<std::pair<RecordId, std::string>> model;
  for (int i = 0; i < 600; ++i) {
    if (rng.NextBool(0.7) || model.empty()) {
      const size_t length =
          rng.NextBounded(HeapFile::MaxRecordSize(kPageSize));
      std::string record(length, '\0');
      for (char& c : record) {
        c = static_cast<char>(rng.NextBounded(256));
      }
      auto rid = heap->Append(record);
      ASSERT_TRUE(rid.ok()) << rid.status().ToString();
      model.push_back({*rid, std::move(record)});
    } else {
      const auto& [rid, expected] =
          model[rng.NextBounded(model.size())];
      auto record = heap->Read(rid);
      ASSERT_TRUE(record.ok());
      ASSERT_EQ(*record, expected);
    }
  }
  EXPECT_EQ(heap->num_records(), model.size());
}

}  // namespace
}  // namespace spatial
