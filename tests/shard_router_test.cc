// Scatter-gather correctness: for every shard count and backend, the
// router's merged answers must be byte-identical (memcmp) to the same
// query against one tree holding the whole dataset. Also covers write
// routing (insert to one shard, delete broadcast) through the serving
// backend, and that bound streaming never changes an answer.

#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "db/spatial_db.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 99) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

// The router's deterministic order: (dist_sq, id). Random-double data has
// no distance ties, so this is also the unique sorted-by-distance order
// the single tree produces.
std::vector<Neighbor> Normalized(std::vector<Neighbor> v) {
  std::sort(v.begin(), v.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq != b.dist_sq ? a.dist_sq < b.dist_sq : a.id < b.id;
  });
  return v;
}

void ExpectByteIdentical(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Neighbor)));
  }
}

void ExpectEntriesByteIdentical(std::vector<Entry<2>> got,
                                std::vector<Entry<2>> want) {
  auto by_id = [](const Entry<2>& a, const Entry<2>& b) {
    return a.id < b.id;
  };
  std::sort(want.begin(), want.end(), by_id);  // got is already id-sorted
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Entry<2>)));
  }
}

// The whole dataset in one tree — the answer the shards must reproduce.
Result<SpatialDb<2>> MakeReference(const std::vector<Entry<2>>& data) {
  SpatialDb<2>::Options options;
  options.page_size = 512;
  options.buffer_pages = 128;
  SPATIAL_ASSIGN_OR_RETURN(SpatialDb<2> db,
                           SpatialDb<2>::CreateInMemory(options));
  SPATIAL_RETURN_IF_ERROR(db.BulkLoadData(data, BulkLoadMethod::kStr));
  return db;
}

ShardSet<2>::Options SetOptions(uint32_t shards, bool file_backed,
                                const std::string& dir) {
  ShardSet<2>::Options options;
  options.num_shards = shards;
  options.file_backed = file_backed;
  options.dir = dir;
  options.page_size = 512;
  options.buffer_pages = 64;
  options.service.num_workers = 2;
  options.service.frames_per_worker = 32;
  return options;
}

void RunEquivalenceSuite(uint32_t shards, bool file_backed,
                         bool stream_bound) {
  SCOPED_TRACE("shards=" + std::to_string(shards) +
               " file=" + std::to_string(file_backed) +
               " stream=" + std::to_string(stream_bound));
  const auto data = MakeData(3000);
  auto reference = MakeReference(data);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  auto set = ShardSet<2>::Build(
      data, SetOptions(shards, file_backed, ::testing::TempDir()));
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardRouter<2>::Options router_options;
  router_options.stream_bound = stream_bound;
  ShardRouter<2> router(set->get(), router_options);

  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};

    for (uint32_t k : {1u, 5u, 17u}) {
      KnnOptions knn;
      knn.k = k;
      auto want = KnnSearch<2>(reference->tree(), q, knn, nullptr);
      ASSERT_TRUE(want.ok());
      QueryResponse<2> got = router.Execute(QueryRequest<2>::Knn(q, k));
      ASSERT_TRUE(got.ok()) << got.status.ToString();
      ExpectByteIdentical(got.neighbors, Normalized(*want));
    }

    // Range window around the query point.
    const Point2 corner{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    const Rect<2> window = Rect<2>::FromCorners(q, corner);
    std::vector<Entry<2>> want_entries;
    ASSERT_TRUE(reference->tree().Search(window, &want_entries).ok());
    QueryResponse<2> got_range = router.Execute(QueryRequest<2>::Range(window));
    ASSERT_TRUE(got_range.ok());
    ExpectEntriesByteIdentical(got_range.entries, want_entries);

    // Incremental top-k.
    std::vector<Neighbor> want_topk;
    IncrementalKnn<2> inc(reference->tree(), q, nullptr);
    for (int j = 0; j < 10; ++j) {
      auto next = inc.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      want_topk.push_back(**next);
    }
    QueryResponse<2> got_topk = router.Execute(QueryRequest<2>::TopK(q, 10));
    ASSERT_TRUE(got_topk.ok());
    ExpectByteIdentical(got_topk.neighbors, Normalized(want_topk));
  }

  // One batch covering several query points at once.
  std::vector<Point2> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back({{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}});
  }
  QueryResponse<2> got_batch =
      router.Execute(QueryRequest<2>::BatchKnn(batch, 5));
  ASSERT_TRUE(got_batch.ok());
  ASSERT_EQ(got_batch.batch_offsets.size(), batch.size() + 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    KnnOptions knn;
    knn.k = 5;
    auto want = KnnSearch<2>(reference->tree(), batch[i], knn, nullptr);
    ASSERT_TRUE(want.ok());
    std::vector<Neighbor> got(
        got_batch.neighbors.begin() + got_batch.batch_offsets[i],
        got_batch.neighbors.begin() + got_batch.batch_offsets[i + 1]);
    ExpectByteIdentical(got, Normalized(*want));
  }
}

TEST(ShardRouterTest, MemoryBackendMatchesSingleTree) {
  for (uint32_t shards : {1u, 2u, 4u, 7u}) {
    RunEquivalenceSuite(shards, /*file_backed=*/false, /*stream_bound=*/true);
  }
}

TEST(ShardRouterTest, FileBackendMatchesSingleTree) {
  for (uint32_t shards : {1u, 4u}) {
    RunEquivalenceSuite(shards, /*file_backed=*/true, /*stream_bound=*/true);
  }
}

TEST(ShardRouterTest, IndependentBoundsMatchSingleTree) {
  RunEquivalenceSuite(4, /*file_backed=*/false, /*stream_bound=*/false);
}

TEST(ShardRouterTest, SharedBoundSavesPagesOnLaggardShards) {
  // With streaming on, the shard holding the answer publishes its k-th
  // distance and the other shards prune against it; total pages visited
  // must not exceed the independent-bounds total.
  const auto data = MakeData(5000);
  auto run = [&](bool stream) {
    auto set = ShardSet<2>::Build(data, SetOptions(4, false, ""));
    EXPECT_TRUE(set.ok());
    ShardRouter<2>::Options options;
    options.stream_bound = stream;
    ShardRouter<2> router(set->get(), options);
    Rng rng(11);
    uint64_t pages = 0;
    for (int i = 0; i < 50; ++i) {
      const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
      QueryResponse<2> r = router.Execute(QueryRequest<2>::Knn(q, 10));
      EXPECT_TRUE(r.ok());
      pages += r.stats.nodes_visited;
    }
    return pages;
  };
  const uint64_t with_bound = run(true);
  const uint64_t without_bound = run(false);
  EXPECT_LE(with_bound, without_bound);
}

TEST(ShardRouterTest, ServingBackendRoutesWrites) {
  const auto data = MakeData(800);
  auto options = SetOptions(4, true, ::testing::TempDir() + "/serve");
  options.serving = true;
  ASSERT_EQ(0, system(("mkdir -p " + options.dir).c_str()));
  auto set = ShardSet<2>::Build(data, options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardRouter<2> router(set->get());

  // Insert lands in exactly one shard and becomes visible to kNN.
  const Point2 p{{0.31, 0.62}};
  QueryResponse<2> ins = router.Execute(
      QueryRequest<2>::Insert(Rect<2>::FromPoint(p), 1'000'000));
  ASSERT_TRUE(ins.ok()) << ins.status.ToString();
  EXPECT_EQ(ins.affected, 1u);

  QueryResponse<2> nn = router.Execute(QueryRequest<2>::Knn(p, 1));
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn.neighbors.size(), 1u);
  EXPECT_EQ(nn.neighbors[0].id, 1'000'000u);
  EXPECT_EQ(nn.neighbors[0].dist_sq, 0.0);

  // Delete broadcasts; exactly the one shard holding the object reports a
  // match.
  QueryResponse<2> del = router.Execute(
      QueryRequest<2>::Delete(Rect<2>::FromPoint(p), 1'000'000));
  ASSERT_TRUE(del.ok()) << del.status.ToString();
  EXPECT_EQ(del.affected, 1u);

  QueryResponse<2> gone = router.Execute(QueryRequest<2>::Knn(p, 1));
  ASSERT_TRUE(gone.ok());
  ASSERT_TRUE(gone.neighbors.empty() || gone.neighbors[0].id != 1'000'000u);

  // Checkpoint broadcasts to every shard.
  QueryResponse<2> ckpt = router.Execute(QueryRequest<2>::Checkpoint());
  EXPECT_TRUE(ckpt.ok()) << ckpt.status.ToString();
}

TEST(ShardRouterTest, MetricsExposePerShardFamilies) {
  const auto data = MakeData(400);
  auto set = ShardSet<2>::Build(data, SetOptions(3, false, ""));
  ASSERT_TRUE(set.ok());
  ShardRouter<2> router(set->get());
  for (int i = 0; i < 5; ++i) {
    router.Execute(QueryRequest<2>::Knn({{0.5, 0.5}}, 3));
  }
  router.Execute(QueryRequest<2>::TopK({{0.5, 0.5}}, 2));
  const std::string scrape = router.ScrapeMetrics();
  // One labeled family, not per-kind metric names: hyphenated kind names
  // survive intact as label values (legal there, unlike in metric names).
  EXPECT_NE(scrape.find("spatial_router_requests_total{kind=\"knn\"} 5"),
            std::string::npos);
  EXPECT_NE(scrape.find("spatial_router_requests_total{kind=\"top-k\"} 1"),
            std::string::npos);
  EXPECT_EQ(scrape.find("spatial_router_requests_total_knn"),
            std::string::npos);
  EXPECT_NE(scrape.find("spatial_router_merge_ns"), std::string::npos);
  EXPECT_NE(scrape.find("spatial_shard_queries_total{shard=\"0\""),
            std::string::npos);
  EXPECT_NE(scrape.find("spatial_shard_queries_total{shard=\"2\""),
            std::string::npos);
  EXPECT_NE(scrape.find("spatial_shard_query_latency_ns"), std::string::npos);
}

}  // namespace
}  // namespace spatial
