// The advanced query classes against ground truth: reverse k-NN and the
// NN skyline must match the brute-force references byte for byte on both
// backends (paged and resident); approximate kNN must honor its
// (1+epsilon) distance contract and its visit budget, and degenerate to
// the exact search when both knobs are off; distance-bounded kNN must
// equal the radius-filtered exact reference. The service layer must
// reject approximation knobs on exact kinds and reverse k-NN on
// non-planar services.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/knn.h"
#include "core/reverse_knn.h"
#include "core/reverse_nn.h"
#include "core/scratch.h"
#include "core/skyline.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "db/spatial_db.h"
#include "rtree/bulk_load.h"
#include "service/query_service.h"
#include "storage/resident_tree.h"
#include "tests/reference.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// An STR-packed tree plus its compiled resident twin, over the same data.
template <int D>
struct DualBackend {
  DiskManager disk{1024};
  BufferPool pool;
  std::optional<RTree<D>> tree;
  std::optional<ResidentTree<D>> resident;
  std::vector<Entry<D>> data;

  explicit DualBackend(std::vector<Entry<D>> entries)
      : pool(&disk, 4096), data(std::move(entries)) {
    auto loaded =
        BulkLoad<D>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    ASSERT_OK(loaded.status());
    tree.emplace(std::move(loaded).value());
    auto compiled = ResidentTree<D>::Compile(&pool, tree->root_page(),
                                             tree->size(), {});
    ASSERT_OK(compiled.status());
    resident.emplace(std::move(compiled).value());
  }

  static void ASSERT_OK(const Status& s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
};

void ExpectNeighborsByteIdentical(const std::vector<Neighbor>& got,
                                  const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Neighbor)));
  }
}

template <int D>
void ExpectEntriesByteIdentical(const std::vector<Entry<D>>& got,
                                const std::vector<Entry<D>>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Entry<D>)));
  }
}

// ---------------------------------------------------------------------------
// Reverse k-NN.

class ReverseKnnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReverseKnnPropertyTest, MatchesBruteForceBothBackends) {
  Rng rng(GetParam());
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(600, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  for (int trial = 0; trial < 12; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    for (uint32_t k : {1u, 2u, 5u}) {
      SCOPED_TRACE("trial=" + std::to_string(trial) +
                   " k=" + std::to_string(k));
      const auto want = RefReverseKnn<2>(index.data, q, k);
      ReverseKnnOptions options;
      options.k = k;
      ASSERT_TRUE(ReverseKnnSearch(*index.tree, q, options, &scratch, &got,
                                   nullptr)
                      .ok());
      ExpectNeighborsByteIdentical(got, want);
      ASSERT_TRUE(ReverseKnnSearch(*index.resident, q, options, &scratch,
                                   &got, nullptr)
                      .ok());
      ExpectNeighborsByteIdentical(got, want);
    }
  }
}

TEST_P(ReverseKnnPropertyTest, MatchesBruteForceClustered) {
  Rng rng(GetParam() ^ 0xbeef);
  DualBackend<2> index(MakePointEntries(
      GenerateClustered<2>(500, UnitBounds<2>(), ClusteredOptions{}, &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  for (int trial = 0; trial < 10; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    for (uint32_t k : {1u, 3u}) {
      SCOPED_TRACE("trial=" + std::to_string(trial) +
                   " k=" + std::to_string(k));
      const auto want = RefReverseKnn<2>(index.data, q, k);
      ReverseKnnOptions options;
      options.k = k;
      ASSERT_TRUE(ReverseKnnSearch(*index.tree, q, options, &scratch, &got,
                                   nullptr)
                      .ok());
      ExpectNeighborsByteIdentical(got, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseKnnPropertyTest,
                         ::testing::Values(5u, 55u, 555u));

TEST(ReverseKnnTest, K1MatchesLegacyReverseNn) {
  Rng rng(17);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(800, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  for (int trial = 0; trial < 20; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto legacy = ReverseNnSearch<2>(*index.tree, q, nullptr);
    ASSERT_TRUE(legacy.ok());
    std::sort(legacy->begin(), legacy->end(), RefNeighborLess);
    ASSERT_TRUE(
        ReverseKnnSearch(*index.tree, q, ReverseKnnOptions{}, &scratch, &got,
                         nullptr)
            .ok());
    ExpectNeighborsByteIdentical(got, *legacy);
  }
}

TEST(ReverseKnnTest, QueryOnDataPointAlwaysQualifiesIt) {
  DualBackend<2> index({{Rect2::FromPoint({{0.5, 0.5}}), 1},
                        {Rect2::FromPoint({{0.9, 0.9}}), 2},
                        {Rect2::FromPoint({{0.1, 0.9}}), 3}});
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  ASSERT_TRUE(ReverseKnnSearch(*index.tree, {{0.5, 0.5}},
                               ReverseKnnOptions{}, &scratch, &got, nullptr)
                  .ok());
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_EQ(got[0].dist_sq, 0.0);
}

TEST(ReverseKnnTest, LargeKReturnsEveryObject) {
  // With k >= n every object trivially counts the query among its k-NN.
  Rng rng(23);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(50, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  ReverseKnnOptions options;
  options.k = 64;
  ASSERT_TRUE(ReverseKnnSearch(*index.tree, {{0.5, 0.5}}, options, &scratch,
                               &got, nullptr)
                  .ok());
  EXPECT_EQ(got.size(), index.data.size());
}

TEST(ReverseKnnTest, RejectsZeroK) {
  DualBackend<2> index(
      {{Rect2::FromPoint({{0.5, 0.5}}), 1}});
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  ReverseKnnOptions options;
  options.k = 0;
  const Status s = ReverseKnnSearch(*index.tree, {{0.5, 0.5}}, options,
                                    &scratch, &got, nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// ---------------------------------------------------------------------------
// NN skyline.

template <int D>
void RunSkylineSuite(uint64_t seed) {
  Rng rng(seed);
  DualBackend<D> index(
      MakePointEntries(GenerateUniform<D>(500, UnitBounds<D>(), &rng)));
  QueryScratch<D> scratch;
  std::vector<Entry<D>> got;
  for (size_t m : {1u, 2u, 3u}) {
    std::vector<Point<D>> sources;
    for (size_t i = 0; i < m; ++i) {
      Point<D> p;
      for (int d = 0; d < D; ++d) p[d] = rng.Uniform(0, 1);
      sources.push_back(p);
    }
    SCOPED_TRACE("m=" + std::to_string(m));
    const auto want = RefSkyline<D>(index.data, sources);
    ASSERT_TRUE(NnSkylineSearch<D>(*index.tree, sources.data(), m, &scratch,
                                   &got, nullptr)
                    .ok());
    ExpectEntriesByteIdentical<D>(got, want);
    ASSERT_TRUE(NnSkylineSearch<D>(*index.resident, sources.data(), m,
                                   &scratch, &got, nullptr)
                    .ok());
    ExpectEntriesByteIdentical<D>(got, want);
  }
}

TEST(NnSkylineTest, MatchesBruteForce2D) { RunSkylineSuite<2>(71); }
TEST(NnSkylineTest, MatchesBruteForce3D) { RunSkylineSuite<3>(72); }
TEST(NnSkylineTest, MatchesBruteForce4D) { RunSkylineSuite<4>(73); }

TEST(NnSkylineTest, SingleSourceDegeneratesToNearestObject) {
  Rng rng(31);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(400, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Entry<2>> got;
  const Point2 q{{0.42, 0.58}};
  ASSERT_TRUE(
      NnSkylineSearch<2>(*index.tree, &q, 1, &scratch, &got, nullptr).ok());
  // Tie-free random data: exactly the single nearest object.
  const auto nn = RefKnn<2>(index.data, q, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, nn[0].id);
}

TEST(NnSkylineTest, RejectsEmptySources) {
  DualBackend<2> index({{Rect2::FromPoint({{0.5, 0.5}}), 1}});
  QueryScratch<2> scratch;
  std::vector<Entry<2>> got;
  const Status s =
      NnSkylineSearch<2>(*index.tree, nullptr, 0, &scratch, &got, nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Approximate kNN.

TEST(ApproxKnnTest, ZeroKnobsAreByteIdenticalToExact) {
  Rng rng(41);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> exact;
  std::vector<Neighbor> approx;
  for (int trial = 0; trial < 25; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    KnnOptions plain;
    plain.k = 10;
    KnnOptions knobs;
    knobs.k = 10;
    knobs.epsilon = 0.0;
    knobs.max_visits = 0;
    ASSERT_TRUE(
        KnnSearchInto<2>(*index.tree, q, plain, &scratch, &exact, nullptr)
            .ok());
    ASSERT_TRUE(
        KnnSearchInto<2>(*index.tree, q, knobs, &scratch, &approx, nullptr)
            .ok());
    ExpectNeighborsByteIdentical(approx, exact);
  }
}

TEST(ApproxKnnTest, EpsilonContractHoldsBothBackends) {
  Rng rng(43);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> approx;
  for (double eps : {0.1, 0.5, 1.0, 3.0}) {
    KnnOptions options;
    options.k = 10;
    options.epsilon = eps;
    const double factor = (1.0 + eps) * (1.0 + eps) * (1.0 + 1e-9);
    for (int trial = 0; trial < 20; ++trial) {
      const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
      const auto exact = RefKnn<2>(index.data, q, options.k);
      SCOPED_TRACE("eps=" + std::to_string(eps) +
                   " trial=" + std::to_string(trial));
      for (int backend = 0; backend < 2; ++backend) {
        const Status s =
            backend == 0 ? KnnSearchInto<2>(*index.tree, q, options, &scratch,
                                            &approx, nullptr)
                         : KnnSearchInto<2>(*index.resident, q, options,
                                            &scratch, &approx, nullptr);
        ASSERT_TRUE(s.ok());
        // Same cardinality, sorted, and every rank within (1+eps) of truth
        // (squared distances compare against (1+eps)^2).
        ASSERT_EQ(approx.size(), exact.size());
        for (size_t i = 0; i < approx.size(); ++i) {
          ASSERT_LE(approx[i].dist_sq, exact[i].dist_sq * factor)
              << "rank " << i << " backend " << backend;
          if (i > 0) {
            ASSERT_LE(approx[i - 1].dist_sq, approx[i].dist_sq);
          }
        }
      }
    }
  }
}

TEST(ApproxKnnTest, VisitBudgetCapsPageAccesses) {
  Rng rng(47);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  const Point2 q{{0.5, 0.5}};
  for (uint64_t budget : {1ull, 2ull, 8ull}) {
    KnnOptions options;
    options.k = 10;
    options.max_visits = budget;
    QueryStats stats;
    ASSERT_TRUE(
        KnnSearchInto<2>(*index.tree, q, options, &scratch, &got, &stats)
            .ok());
    EXPECT_LE(stats.nodes_visited, budget);
    // Whatever comes back must be real objects at true distances, sorted.
    for (size_t i = 0; i < got.size(); ++i) {
      if (i > 0) {
        EXPECT_LE(got[i - 1].dist_sq, got[i].dist_sq);
      }
      bool found = false;
      for (const Entry<2>& e : index.data) {
        if (e.id == got[i].id) {
          EXPECT_EQ(got[i].dist_sq, MinDistSq(q, e.mbr));
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "unknown id " << got[i].id;
    }
  }
  // A budget beyond the tree size changes nothing.
  KnnOptions generous;
  generous.k = 10;
  generous.max_visits = 1u << 20;
  ASSERT_TRUE(
      KnnSearchInto<2>(*index.tree, q, generous, &scratch, &got, nullptr)
          .ok());
  ExpectNeighborsByteIdentical(got, RefKnn<2>(index.data, q, 10));
}

// ---------------------------------------------------------------------------
// Distance-bounded kNN (KnnOptions::max_distance).

TEST(MaxDistanceKnnTest, MatchesFilteredReferenceBothBackends) {
  Rng rng(53);
  DualBackend<2> index(
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng)));
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  for (double radius : {0.0, 0.02, 0.1, 0.5, 2.0}) {
    KnnOptions options;
    options.k = 40;
    options.max_distance = radius;
    for (int trial = 0; trial < 10; ++trial) {
      const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
      SCOPED_TRACE("radius=" + std::to_string(radius) +
                   " trial=" + std::to_string(trial));
      const auto want = RefKnn<2>(index.data, q, options.k, radius);
      ASSERT_TRUE(
          KnnSearchInto<2>(*index.tree, q, options, &scratch, &got, nullptr)
              .ok());
      ExpectNeighborsByteIdentical(got, want);
      ASSERT_TRUE(KnnSearchInto<2>(*index.resident, q, options, &scratch,
                                   &got, nullptr)
                      .ok());
      ExpectNeighborsByteIdentical(got, want);
    }
  }
}

TEST(MaxDistanceKnnTest, BoundaryIsInclusive) {
  DualBackend<2> index({{Rect2::FromPoint({{0.3, 0.0}}), 1},
                        {Rect2::FromPoint({{0.8, 0.0}}), 2}});
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  KnnOptions options;
  options.k = 10;
  options.max_distance = 0.3;  // exactly the distance of object 1
  ASSERT_TRUE(KnnSearchInto<2>(*index.tree, {{0.0, 0.0}}, options, &scratch,
                               &got, nullptr)
                  .ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);
}

TEST(MaxDistanceKnnTest, OptionValidation) {
  DualBackend<2> index({{Rect2::FromPoint({{0.5, 0.5}}), 1}});
  QueryScratch<2> scratch;
  std::vector<Neighbor> got;
  KnnOptions options;
  options.k = 1;
  options.max_distance = -1.0;
  EXPECT_TRUE(KnnSearchInto<2>(*index.tree, {{0, 0}}, options, &scratch,
                               &got, nullptr)
                  .IsInvalidArgument());
  options.max_distance = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(KnnSearchInto<2>(*index.tree, {{0, 0}}, options, &scratch,
                               &got, nullptr)
                  .IsInvalidArgument());
  options.max_distance = 1.0;
  options.epsilon = -0.5;
  EXPECT_TRUE(KnnSearchInto<2>(*index.tree, {{0, 0}}, options, &scratch,
                               &got, nullptr)
                  .IsInvalidArgument());
  options.epsilon = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(KnnSearchInto<2>(*index.tree, {{0, 0}}, options, &scratch,
                               &got, nullptr)
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Service layer.

template <int D>
Result<SpatialDb<D>> MakeServableDb(const std::vector<Entry<D>>& data) {
  typename SpatialDb<D>::Options options;
  options.page_size = 512;
  options.buffer_pages = 64;
  SPATIAL_ASSIGN_OR_RETURN(SpatialDb<D> db,
                           SpatialDb<D>::CreateInMemory(options));
  SPATIAL_RETURN_IF_ERROR(db.BulkLoadData(data, BulkLoadMethod::kStr));
  return db;
}

TEST(AdvancedServiceTest, NewKindsMatchDirectCallsBothTiers) {
  Rng rng(61);
  const auto data =
      MakePointEntries(GenerateUniform<2>(1200, UnitBounds<2>(), &rng));
  auto db = MakeServableDb<2>(data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  for (bool resident : {false, true}) {
    SCOPED_TRACE(resident ? "resident" : "paged");
    QueryService<2>::Options options;
    options.num_workers = 2;
    options.resident_tier = resident;
    auto service = QueryService<2>::Attach(*db, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();

    const Point2 q{{0.37, 0.61}};

    QueryResponse<2> rknn =
        (*service)->Execute(QueryRequest<2>::ReverseKnn(q, 3));
    ASSERT_TRUE(rknn.ok()) << rknn.status.ToString();
    ExpectNeighborsByteIdentical(rknn.neighbors,
                                 RefReverseKnn<2>(data, q, 3));

    std::vector<Point2> sources{{{0.1, 0.2}}, {{0.8, 0.7}}};
    QueryResponse<2> sky =
        (*service)->Execute(QueryRequest<2>::NnSkyline(sources));
    ASSERT_TRUE(sky.ok()) << sky.status.ToString();
    ExpectEntriesByteIdentical<2>(sky.entries, RefSkyline<2>(data, sources));

    QueryResponse<2> approx =
        (*service)->Execute(QueryRequest<2>::ApproxKnn(q, 5, 0.5));
    ASSERT_TRUE(approx.ok()) << approx.status.ToString();
    const auto exact = RefKnn<2>(data, q, 5);
    ASSERT_EQ(approx.neighbors.size(), exact.size());
    const double factor = 1.5 * 1.5 * (1.0 + 1e-9);
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_LE(approx.neighbors[i].dist_sq, exact[i].dist_sq * factor);
    }

    // Candidate-only scatter support returns entries with geometry.
    QueryRequest<2> cand = QueryRequest<2>::ReverseKnn(q, 3);
    cand.rknn_candidates_only = true;
    QueryResponse<2> cands = (*service)->Execute(cand);
    ASSERT_TRUE(cands.ok());
    EXPECT_TRUE(cands.neighbors.empty());
    // Every true reverse k-NN must appear among the candidates.
    for (const Neighbor& want : RefReverseKnn<2>(data, q, 3)) {
      bool present = false;
      for (const Entry<2>& e : cands.entries) present |= e.id == want.id;
      EXPECT_TRUE(present) << "missing candidate " << want.id;
    }
  }
}

TEST(AdvancedServiceTest, ReverseKnnRejectedOnNonPlanarService) {
  Rng rng(67);
  const auto data =
      MakePointEntries(GenerateUniform<3>(200, UnitBounds<3>(), &rng));
  auto db = MakeServableDb<3>(data);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto service = QueryService<3>::Attach(*db, {});
  ASSERT_TRUE(service.ok());
  QueryResponse<3> r =
      (*service)->Execute(QueryRequest<3>::ReverseKnn({{0.5, 0.5, 0.5}}, 2));
  EXPECT_TRUE(r.status.IsInvalidArgument()) << r.status.ToString();
}

TEST(AdvancedServiceTest, ExactKindsRejectApproxKnobs) {
  Rng rng(71);
  const auto data =
      MakePointEntries(GenerateUniform<2>(300, UnitBounds<2>(), &rng));
  auto db = MakeServableDb<2>(data);
  ASSERT_TRUE(db.ok());
  auto service = QueryService<2>::Attach(*db, {});
  ASSERT_TRUE(service.ok());
  const Point2 q{{0.5, 0.5}};

  QueryRequest<2> knn = QueryRequest<2>::Knn(q, 3);
  knn.knn.epsilon = 0.2;
  EXPECT_TRUE((*service)->Execute(knn).status.IsInvalidArgument());

  QueryRequest<2> batch = QueryRequest<2>::BatchKnn({q}, 3);
  batch.knn.max_visits = 5;
  EXPECT_TRUE((*service)->Execute(batch).status.IsInvalidArgument());

  QueryRequest<2> constrained = QueryRequest<2>::ConstrainedKnn(
      q, Rect2::FromCorners({{0, 0}}, {{1, 1}}), 3);
  constrained.knn.max_distance = 0.5;
  EXPECT_TRUE((*service)->Execute(constrained).status.IsInvalidArgument());

  // max_distance IS allowed on plain kNN: distance-bounded exact search.
  QueryRequest<2> bounded = QueryRequest<2>::Knn(q, 40);
  bounded.knn.max_distance = 0.1;
  QueryResponse<2> got = (*service)->Execute(bounded);
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  ExpectNeighborsByteIdentical(got.neighbors, RefKnn<2>(data, q, 40, 0.1));
}

// The kind table invariants beyond what static_assert already proves.
TEST(QueryKindTableTest, NamesAndFlags) {
  EXPECT_STREQ(QueryKindName(QueryKind::kReverseKnn), "reverse-knn");
  EXPECT_STREQ(QueryKindName(QueryKind::kNnSkyline), "nn-skyline");
  EXPECT_STREQ(QueryKindName(QueryKind::kApproxKnn), "approx-knn");
  EXPECT_STREQ(QueryKindName(static_cast<QueryKind>(255)), "unknown");
  EXPECT_FALSE(IsWriteKind(QueryKind::kApproxKnn));
  EXPECT_TRUE(IsWriteKind(QueryKind::kInsert));
  EXPECT_TRUE(IsResidentEligible(QueryKind::kReverseKnn));
  EXPECT_TRUE(IsResidentEligible(QueryKind::kNnSkyline));
  EXPECT_TRUE(IsResidentEligible(QueryKind::kApproxKnn));
  EXPECT_FALSE(IsResidentEligible(QueryKind::kRange));
  EXPECT_FALSE(IsResidentEligible(static_cast<QueryKind>(255)));
}

}  // namespace
}  // namespace spatial
