#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/uniform.h"
#include "core/knn.h"
#include "rtree/bulk_load.h"
#include "rtree/validator.h"
#include "storage/buffer_pool.h"
#include "storage/file_disk_manager.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FileDiskManagerTest, CreateWriteReadRoundTrip) {
  const std::string path = TempPath("fdm_roundtrip.db");
  auto created = FileDiskManager::Create(path, 256);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  FileDiskManager disk = std::move(created).value();
  const PageId id = disk.AllocatePage();
  std::vector<char> out(256, 'x');
  ASSERT_TRUE(disk.WritePage(id, out.data()).ok());
  std::vector<char> in(256, 0);
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 256), 0);
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, FreshPagesAreZeroFilled) {
  const std::string path = TempPath("fdm_zero.db");
  auto created = FileDiskManager::Create(path, 128);
  ASSERT_TRUE(created.ok());
  FileDiskManager disk = std::move(created).value();
  const PageId id = disk.AllocatePage();
  std::vector<char> in(128, 'y');
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, FreeAndReuse) {
  const std::string path = TempPath("fdm_free.db");
  auto created = FileDiskManager::Create(path, 128);
  ASSERT_TRUE(created.ok());
  FileDiskManager disk = std::move(created).value();
  const PageId a = disk.AllocatePage();
  const PageId b = disk.AllocatePage();
  (void)b;
  ASSERT_TRUE(disk.FreePage(a).ok());
  EXPECT_TRUE(disk.FreePage(a).IsInvalidArgument());  // double free
  std::vector<char> buf(128);
  EXPECT_TRUE(disk.ReadPage(a, buf.data()).IsInvalidArgument());
  const PageId again = disk.AllocatePage();
  EXPECT_EQ(again, a);  // recycled
  std::vector<char> in(128, 'q');
  ASSERT_TRUE(disk.ReadPage(again, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 0);  // zeroed on reuse
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, PersistsAcrossOpen) {
  const std::string path = TempPath("fdm_persist.db");
  PageId id;
  {
    auto created = FileDiskManager::Create(path, 256);
    ASSERT_TRUE(created.ok());
    FileDiskManager disk = std::move(created).value();
    id = disk.AllocatePage();
    std::vector<char> out(256, 'p');
    ASSERT_TRUE(disk.WritePage(id, out.data()).ok());
    ASSERT_TRUE(disk.Sync().ok());
  }
  auto opened = FileDiskManager::Open(path, 256);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FileDiskManager disk = std::move(opened).value();
  EXPECT_EQ(disk.live_pages(), 1u);
  std::vector<char> in(256, 0);
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  for (char c : in) EXPECT_EQ(c, 'p');
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, OpenMissingFileFails) {
  EXPECT_TRUE(FileDiskManager::Open("/nonexistent/x.db", 128)
                  .status()
                  .IsNotFound());
}

TEST(FileDiskManagerTest, OpenMisalignedFileFails) {
  const std::string path = TempPath("fdm_misaligned.db");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("short", f);
  std::fclose(f);
  EXPECT_TRUE(
      FileDiskManager::Open(path, 128).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, RejectsTinyPageSize) {
  EXPECT_TRUE(FileDiskManager::Create(TempPath("fdm_tiny.db"), 16)
                  .status()
                  .IsInvalidArgument());
}

TEST(FileDiskManagerTest, WholeTreePersistsAcrossProcessBoundary) {
  // Build a tree on a file-backed disk, "restart" (new manager + pool),
  // reopen and query — the full durability path.
  const std::string path = TempPath("fdm_tree.db");
  std::vector<Entry<2>> data;
  PageId root;
  {
    auto created = FileDiskManager::Create(path, 512);
    ASSERT_TRUE(created.ok());
    FileDiskManager disk = std::move(created).value();
    BufferPool pool(&disk, 64);
    Rng rng(404);
    data = MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
    auto tree =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    ASSERT_TRUE(tree.ok());
    root = tree->root_page();
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(disk.Sync().ok());
  }
  {
    auto opened = FileDiskManager::Open(path, 512);
    ASSERT_TRUE(opened.ok());
    FileDiskManager disk = std::move(opened).value();
    BufferPool pool(&disk, 16);
    auto tree = RTree<2>::Open(&pool, RTreeOptions{}, root);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ(tree->size(), data.size());
    auto report = ValidateTree<2>(*tree, /*check_min_fill=*/false);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto result = KnnSearch<2>(*tree, {{0.5, 0.5}}, KnnOptions{}, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 1, *result);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, StatsCountPhysicalIo) {
  const std::string path = TempPath("fdm_stats.db");
  auto created = FileDiskManager::Create(path, 128);
  ASSERT_TRUE(created.ok());
  FileDiskManager disk = std::move(created).value();
  const PageId id = disk.AllocatePage();
  std::vector<char> buf(128, 'a');
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
  EXPECT_EQ(disk.stats().pages_allocated, 1u);
  EXPECT_EQ(disk.stats().physical_writes, 1u);
  EXPECT_EQ(disk.stats().physical_reads, 1u);
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, ReadPageConcurrentMatchesReadPage) {
  const std::string path = TempPath("fdm_pread.db");
  auto created = FileDiskManager::Create(path, 128);
  ASSERT_TRUE(created.ok());
  FileDiskManager disk = std::move(created).value();
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    const PageId id = disk.AllocatePage();
    std::vector<char> buf(128, static_cast<char>('a' + i));
    ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
    ids.push_back(id);
  }
  for (int i = 0; i < 8; ++i) {
    std::vector<char> via_read(128, 0);
    std::vector<char> via_pread(128, 1);
    ASSERT_TRUE(disk.ReadPage(ids[i], via_read.data()).ok());
    ASSERT_TRUE(disk.ReadPageConcurrent(ids[i], via_pread.data()).ok());
    EXPECT_EQ(std::memcmp(via_read.data(), via_pread.data(), 128), 0);
  }
  // ReadPageConcurrent does not touch stats.
  EXPECT_EQ(disk.stats().physical_reads, 8u);
  EXPECT_FALSE(disk.ReadPageConcurrent(999, nullptr).ok());
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, OpenReadOnlyRejectsMutation) {
  const std::string path = TempPath("fdm_readonly.db");
  {
    auto created = FileDiskManager::Create(path, 128);
    ASSERT_TRUE(created.ok());
    FileDiskManager disk = std::move(created).value();
    const PageId id = disk.AllocatePage();
    std::vector<char> buf(128, 'r');
    ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
    ASSERT_TRUE(disk.Sync().ok());
  }
  auto opened = FileDiskManager::OpenReadOnly(path, 128);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FileDiskManager disk = std::move(opened).value();
  EXPECT_TRUE(disk.read_only());
  EXPECT_EQ(disk.live_pages(), 1u);

  std::vector<char> buf(128, 0);
  ASSERT_TRUE(disk.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 'r');
  ASSERT_TRUE(disk.ReadPageConcurrent(0, buf.data()).ok());

  EXPECT_TRUE(disk.WritePage(0, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(disk.FreePage(0).IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatial
