#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/rtree.h"
#include "rtree/validator.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 512;

struct TestIndex {
  TestIndex(uint32_t page_size, uint32_t buffer_pages, RTreeOptions options)
      : disk(page_size), pool(&disk, buffer_pages) {
    auto created = RTree<2>::Create(&pool, options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    tree.emplace(std::move(created).value());
  }

  DiskManager disk;
  BufferPool pool;
  std::optional<RTree<2>> tree;
};

TEST(RTreeCreateTest, EmptyTreeProperties) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  EXPECT_EQ(index.tree->size(), 0u);
  EXPECT_TRUE(index.tree->empty());
  EXPECT_EQ(index.tree->height(), 1);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->nodes, 1u);
}

TEST(RTreeCreateTest, RejectsNullPool) {
  EXPECT_FALSE(RTree<2>::Create(nullptr, RTreeOptions{}).ok());
}

TEST(RTreeCreateTest, RejectsBadOptions) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 8);
  RTreeOptions options;
  options.min_fill = 0.9;  // > 0.5
  EXPECT_TRUE(
      RTree<2>::Create(&pool, options).status().IsInvalidArgument());
}

TEST(RTreeCreateTest, RejectsTinyPages) {
  DiskManager disk(64);
  BufferPool pool(&disk, 8);
  EXPECT_TRUE(
      RTree<2>::Create(&pool, RTreeOptions{}).status().IsInvalidArgument());
}

TEST(RTreeInsertTest, RejectsInvalidRect) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  Rect2 bad;
  bad.lo = {{2.0, 2.0}};
  bad.hi = {{1.0, 1.0}};
  EXPECT_TRUE(index.tree->Insert(bad, 1).IsInvalidArgument());
  EXPECT_EQ(index.tree->size(), 0u);
}

TEST(RTreeInsertTest, SingleInsertIsFindable) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  const Rect2 r = Rect2::FromPoint({{0.5, 0.5}});
  ASSERT_TRUE(index.tree->Insert(r, 7).ok());
  EXPECT_EQ(index.tree->size(), 1u);
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(Rect2{{{0, 0}}, {{1, 1}}}, &found).ok());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, 7u);
  EXPECT_EQ(found[0].mbr, r);
}

TEST(RTreeInsertTest, DuplicateEntriesAllowed) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  const Rect2 r = Rect2::FromPoint({{0.5, 0.5}});
  ASSERT_TRUE(index.tree->Insert(r, 7).ok());
  ASSERT_TRUE(index.tree->Insert(r, 7).ok());
  EXPECT_EQ(index.tree->size(), 2u);
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(r, &found).ok());
  EXPECT_EQ(found.size(), 2u);
}

TEST(RTreeInsertTest, RootSplitGrowsHeight) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  const uint32_t max = index.tree->max_entries();
  for (uint32_t i = 0; i <= max; ++i) {
    ASSERT_TRUE(index.tree
                    ->Insert(Rect2::FromPoint({{static_cast<double>(i),
                                                 0.0}}),
                             i)
                    .ok());
  }
  EXPECT_EQ(index.tree->height(), 2);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, max + 1);
}

class RTreeInsertParamTest
    : public ::testing::TestWithParam<std::tuple<SplitAlgorithm, uint64_t>> {
};

TEST_P(RTreeInsertParamTest, ThousandsOfInsertsKeepTreeValid) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(kPageSize, 64, options);
  Rng rng(seed);
  auto points = GenerateUniform<2>(3000, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(
        index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  EXPECT_EQ(index.tree->size(), points.size());
  EXPECT_GE(index.tree->height(), 2);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, points.size());
}

TEST_P(RTreeInsertParamTest, EveryInsertedEntryIsFindable) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(kPageSize, 64, options);
  Rng rng(seed ^ 0xf00d);
  auto points = GenerateUniform<2>(500, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(
        index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<Entry<2>> found;
    ASSERT_TRUE(
        index.tree->Search(Rect2::FromPoint(points[i]), &found).ok());
    bool present = false;
    for (const auto& e : found) present |= (e.id == i);
    EXPECT_TRUE(present) << "lost point " << i;
  }
}

TEST_P(RTreeInsertParamTest, ExtendedObjectsSupported) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(kPageSize, 64, options);
  Rng rng(seed ^ 0xbeef);
  std::vector<Rect2> rects;
  for (size_t i = 0; i < 800; ++i) {
    Point2 a{{rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    Point2 b{{a[0] + rng.Uniform(0, 3), a[1] + rng.Uniform(0, 3)}};
    rects.push_back(Rect2::FromCorners(a, b));
    ASSERT_TRUE(index.tree->Insert(rects.back(), i).ok());
  }
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Window query for a specific rect returns it.
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(rects[123], &found).ok());
  bool present = false;
  for (const auto& e : found) present |= (e.id == 123);
  EXPECT_TRUE(present);
}

INSTANTIATE_TEST_SUITE_P(
    AllSplits, RTreeInsertParamTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kLinear,
                                         SplitAlgorithm::kQuadratic,
                                         SplitAlgorithm::kRStar),
                       ::testing::Values(7u, 1234u)));

TEST(RTreeInsertTest, RStarWithoutReinsertionAlsoValid) {
  RTreeOptions options;
  options.split = SplitAlgorithm::kRStar;
  options.rstar_reinsert = false;
  TestIndex index(kPageSize, 64, options);
  Rng rng(4);
  auto points = GenerateUniform<2>(2000, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

TEST(RTreeInsertTest, BoundsCoverAllInsertedData) {
  TestIndex index(kPageSize, 64, RTreeOptions{});
  Rng rng(3);
  auto points = GenerateUniform<2>(300, UnitBounds<2>(), &rng);
  Rect2 expected = Rect2::Empty();
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
    expected.ExpandToInclude(points[i]);
  }
  auto bounds = index.tree->Bounds();
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(*bounds, expected);
}

TEST(RTreeInsertTest, ThreeDimensionalTree) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  auto created = RTree<3>::Create(&pool, RTreeOptions{});
  ASSERT_TRUE(created.ok());
  RTree<3> tree = std::move(created).value();
  Rng rng(11);
  for (size_t i = 0; i < 1000; ++i) {
    Point3 p{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    ASSERT_TRUE(tree.Insert(Rect3::FromPoint(p), i).ok());
  }
  auto report = ValidateTree<3>(tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, 1000u);
}

}  // namespace
}  // namespace spatial
