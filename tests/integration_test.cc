// End-to-end scenarios crossing every module: storage + tree + NN core +
// baselines + generators, including reopen-from-disk and failure injection.

#include <gtest/gtest.h>

#include <vector>

#include "storage/disk_manager.h"
#include "baselines/grid_file.h"
#include "baselines/range_expand.h"
#include "bench_util/experiment.h"
#include "core/best_first.h"
#include "core/knn.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "rtree/validator.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(IntegrationTest, TigerPipelineEndToEnd) {
  // Generate a road network, index the segment MBRs, reopen from disk, and
  // run all three k-NN algorithms — every answer must agree.
  Rng rng(1001);
  auto network =
      GenerateTigerLike(8000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  auto data = SegmentsToEntries(network.segments);

  DiskManager disk(1024);
  PageId root;
  {
    BufferPool pool(&disk, 128);
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    ASSERT_TRUE(loaded.ok());
    root = loaded->root_page();
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  BufferPool pool(&disk, 32);
  auto reopened = RTree<2>::Open(&pool, RTreeOptions{}, root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), data.size());

  auto queries = GenerateQueries<2>(data, 30, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    KnnOptions knn;
    knn.k = 5;
    auto df = KnnSearch<2>(*reopened, q, knn, nullptr);
    auto bf = BestFirstKnn<2>(*reopened, q, 5, nullptr);
    auto re = RangeExpandKnn<2>(*reopened, q, 5, 0.0, nullptr);
    ASSERT_TRUE(df.ok());
    ASSERT_TRUE(bf.ok());
    ASSERT_TRUE(re.ok());
    ExpectKnnMatchesBruteForce(data, q, 5, *df);
    ExpectKnnMatchesBruteForce(data, q, 5, *bf);
    ExpectKnnMatchesBruteForce(data, q, 5, *re);
  }
}

TEST(IntegrationTest, MutateValidateQueryLoop) {
  // Alternating batches of inserts, deletes, structural validation, and NN
  // queries on the same tree.
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/64);
  Rng rng(1002);
  std::vector<Entry<2>> live;
  uint64_t next_id = 0;
  for (int round = 0; round < 10; ++round) {
    // Insert a batch.
    for (int i = 0; i < 300; ++i) {
      const Rect2 r =
          Rect2::FromPoint({{rng.Uniform(0, 1), rng.Uniform(0, 1)}});
      ASSERT_TRUE(index.tree->Insert(r, next_id).ok());
      live.push_back(Entry<2>{r, next_id});
      ++next_id;
    }
    // Delete a sub-batch.
    for (int i = 0; i < 100 && !live.empty(); ++i) {
      const size_t pick = rng.NextBounded(live.size());
      auto removed = index.tree->Delete(live[pick].mbr, live[pick].id);
      ASSERT_TRUE(removed.ok());
      ASSERT_TRUE(*removed);
      live[pick] = live.back();
      live.pop_back();
    }
    auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->leaf_entries, live.size());

    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    KnnOptions knn;
    knn.k = 7;
    auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(live, q, 7, *result);
  }
}

TEST(IntegrationTest, KnnWorksWithSingleFrameBufferPool) {
  // The read path never holds more than one pin, so k-NN must run in a
  // pool with a single frame (pure cold cache: every access is physical).
  DiskManager disk(512);
  PageId root;
  std::vector<Entry<2>> data;
  {
    BufferPool pool(&disk, 64);
    Rng rng(1003);
    data = MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kHilbert);
    ASSERT_TRUE(loaded.ok());
    root = loaded->root_page();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  BufferPool tiny(&disk, 1);
  auto tree = RTree<2>::Open(&tiny, RTreeOptions{}, root);
  ASSERT_TRUE(tree.ok());
  QueryStats stats;
  tiny.ResetStats();
  auto result = KnnSearch<2>(*tree, {{0.4, 0.6}}, KnnOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, {{0.4, 0.6}}, 1, *result);
  // With one frame there can be no reuse across node visits.
  EXPECT_EQ(tiny.stats().misses, stats.nodes_visited);
}

TEST(IntegrationTest, BufferPoolSizeChangesPhysicalNotLogicalIO) {
  // Build once on a large pool, then run the same query batch through a
  // 2-frame pool and a 512-frame pool over the same on-disk tree.
  Rng rng(1004);
  auto data =
      MakePointEntries(GenerateUniform<2>(5000, UnitBounds<2>(), &rng));
  auto queries = GenerateQueries<2>(data, 50, QueryDistribution::kUniform,
                                    0.0, &rng);
  DiskManager disk(512);
  PageId root;
  {
    BufferPool pool(&disk, 512);
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    ASSERT_TRUE(loaded.ok());
    root = loaded->root_page();
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  uint64_t logical_small = 0, logical_big = 0;
  uint64_t physical_small = 0, physical_big = 0;
  for (const uint32_t buffer_pages : {2u, 512u}) {
    BufferPool pool(&disk, buffer_pages);
    auto tree = RTree<2>::Open(&pool, RTreeOptions{}, root);
    ASSERT_TRUE(tree.ok());
    pool.ResetStats();
    disk.ResetStats();
    for (const Point2& q : queries) {
      auto result = KnnSearch<2>(*tree, q, KnnOptions{}, nullptr);
      ASSERT_TRUE(result.ok());
    }
    if (buffer_pages == 2u) {
      logical_small = pool.stats().logical_fetches;
      physical_small = disk.stats().physical_reads;
    } else {
      logical_big = pool.stats().logical_fetches;
      physical_big = disk.stats().physical_reads;
    }
  }
  // Logical page accesses (the paper's metric) are a property of the
  // algorithm, not the cache; physical reads collapse with a big buffer.
  EXPECT_EQ(logical_small, logical_big);
  EXPECT_LT(physical_big, physical_small);
}

TEST(IntegrationTest, CorruptInteriorPageSurfacesAsStatusNotCrash) {
  DiskManager disk(512);
  BufferPool pool(&disk, 8);
  Rng rng(1005);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  auto loaded =
      BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  // Smash a non-root page on disk.
  const PageId victim = loaded->root_page() == 0 ? 1 : 0;
  std::vector<char> junk(512, 0x13);
  ASSERT_TRUE(disk.WritePage(victim, junk.data()).ok());

  // Evict caches so the corruption is observed, then query. Depending on
  // the query point the page may or may not be visited; force full
  // traversal with a giant k so it must be read.
  BufferPool cold(&disk, 1);
  auto reopened = RTree<2>::Open(&cold, RTreeOptions{}, loaded->root_page());
  if (!reopened.ok()) {
    EXPECT_TRUE(reopened.status().IsCorruption());
    return;
  }
  KnnOptions knn;
  knn.k = static_cast<uint32_t>(data.size());
  auto result = KnnSearch<2>(*reopened, {{0.5, 0.5}}, knn, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(IntegrationTest, GridAndTreeAgreeOnSkewedData) {
  Rng rng(1006);
  auto network =
      GenerateTigerLike(6000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  auto data = MakePointEntries(SegmentMidpoints(network.segments));
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/128);
  index.InsertAll(data);
  GridFile<2> grid(data, 48);
  auto queries = GenerateQueries<2>(data, 40, QueryDistribution::kPerturbed,
                                    0.02, &rng);
  for (const Point2& q : queries) {
    auto tree_result = KnnSearch<2>(*index.tree, q, KnnOptions{}, nullptr);
    auto grid_result = grid.Knn(q, 1, nullptr);
    ASSERT_TRUE(tree_result.ok());
    ASSERT_TRUE(grid_result.ok());
    ASSERT_EQ(tree_result->size(), 1u);
    ASSERT_EQ(grid_result->size(), 1u);
    EXPECT_DOUBLE_EQ((*tree_result)[0].dist_sq, (*grid_result)[0].dist_sq);
  }
}

}  // namespace
}  // namespace spatial
