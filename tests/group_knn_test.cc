#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/group_knn.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "geom/metrics.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

double AggregateOf(const std::vector<Point2>& group, const Rect2& mbr,
                   AggregateFn aggregate) {
  double agg = 0.0;
  for (const Point2& q : group) {
    const double d = std::sqrt(MinDistSq(q, mbr));
    agg = aggregate == AggregateFn::kSum ? agg + d : std::max(agg, d);
  }
  return agg;
}

std::vector<GroupNeighbor> BruteGroupKnn(const std::vector<Entry<2>>& data,
                                         const std::vector<Point2>& group,
                                         uint32_t k, AggregateFn aggregate) {
  std::vector<GroupNeighbor> all;
  for (const Entry<2>& e : data) {
    all.push_back(GroupNeighbor{e.id, AggregateOf(group, e.mbr, aggregate)});
  }
  std::sort(all.begin(), all.end(),
            [](const GroupNeighbor& a, const GroupNeighbor& b) {
              return a.aggregate_dist < b.aggregate_dist;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(GroupKnnTest, RejectsBadArguments) {
  TestIndex2D index;
  EXPECT_TRUE(GroupKnnSearch<2>(*index.tree, {{{0.5, 0.5}}}, 0,
                                AggregateFn::kSum, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GroupKnnSearch<2>(*index.tree, {}, 1, AggregateFn::kSum,
                                nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupKnnTest, EmptyTreeReturnsNothing) {
  TestIndex2D index;
  auto result = GroupKnnSearch<2>(*index.tree, {{{0.5, 0.5}}}, 3,
                                  AggregateFn::kSum, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(GroupKnnTest, SingleMemberGroupEqualsPlainNn) {
  TestIndex2D index;
  Rng rng(61);
  auto data =
      MakePointEntries(GenerateUniform<2>(800, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q{{0.42, 0.17}};
  auto group_result = GroupKnnSearch<2>(*index.tree, {q}, 5,
                                        AggregateFn::kSum, nullptr);
  auto plain_result = KnnSearch<2>(*index.tree, q, [] {
    KnnOptions o;
    o.k = 5;
    return o;
  }(), nullptr);
  ASSERT_TRUE(group_result.ok());
  ASSERT_TRUE(plain_result.ok());
  ASSERT_EQ(group_result->size(), plain_result->size());
  for (size_t i = 0; i < plain_result->size(); ++i) {
    EXPECT_NEAR((*group_result)[i].aggregate_dist,
                std::sqrt((*plain_result)[i].dist_sq), 1e-12);
  }
}

TEST(GroupKnnTest, MeetingPointHandCase) {
  // Two group members at (0,0) and (10,0); candidate meeting points at
  // x = 0, 5, 12. Sum aggregate: 10 at both endpoints... the midpoint also
  // sums to 10, but x=12 sums to 14. Max aggregate: midpoint wins (5 vs 10).
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.0, 0.0}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{5.0, 0.0}}), 2).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{12.0, 0.0}}), 3).ok());
  const std::vector<Point2> group{{{0.0, 0.0}}, {{10.0, 0.0}}};
  auto by_max =
      GroupKnnSearch<2>(*index.tree, group, 1, AggregateFn::kMax, nullptr);
  ASSERT_TRUE(by_max.ok());
  ASSERT_EQ(by_max->size(), 1u);
  EXPECT_EQ((*by_max)[0].id, 2u);
  EXPECT_DOUBLE_EQ((*by_max)[0].aggregate_dist, 5.0);

  auto by_sum =
      GroupKnnSearch<2>(*index.tree, group, 3, AggregateFn::kSum, nullptr);
  ASSERT_TRUE(by_sum.ok());
  ASSERT_EQ(by_sum->size(), 3u);
  EXPECT_DOUBLE_EQ((*by_sum)[0].aggregate_dist, 10.0);
  EXPECT_DOUBLE_EQ((*by_sum)[2].aggregate_dist, 14.0);
  EXPECT_EQ((*by_sum)[2].id, 3u);
}

class GroupKnnPropertyTest
    : public ::testing::TestWithParam<std::tuple<AggregateFn, uint64_t>> {};

TEST_P(GroupKnnPropertyTest, MatchesBruteForce) {
  const auto [aggregate, seed] = GetParam();
  TestIndex2D index;
  Rng rng(seed);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t group_size = 1 + rng.NextBounded(6);
    std::vector<Point2> group(group_size);
    for (auto& q : group) {
      q = {{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    }
    for (uint32_t k : {1u, 6u}) {
      auto result =
          GroupKnnSearch<2>(*index.tree, group, k, aggregate, nullptr);
      ASSERT_TRUE(result.ok());
      auto expected = BruteGroupKnn(data, group, k, aggregate);
      ASSERT_EQ(result->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR((*result)[i].aggregate_dist, expected[i].aggregate_dist,
                    1e-9)
            << "rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupKnnPropertyTest,
    ::testing::Combine(::testing::Values(AggregateFn::kSum,
                                         AggregateFn::kMax),
                       ::testing::Values(21u, 42u)));

TEST(GroupKnnTest, PrunesWithLargeTree) {
  TestIndex2D index;
  Rng rng(63);
  auto data =
      MakePointEntries(GenerateUniform<2>(20000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const std::vector<Point2> group{{{0.4, 0.4}}, {{0.6, 0.6}}, {{0.5, 0.3}}};
  QueryStats stats;
  auto result =
      GroupKnnSearch<2>(*index.tree, group, 1, AggregateFn::kSum, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // Far fewer nodes than the ~900 of the tree.
  EXPECT_LT(stats.nodes_visited, 120u);
}

}  // namespace
}  // namespace spatial
