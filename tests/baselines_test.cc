#include <gtest/gtest.h>

#include <vector>

#include "baselines/grid_file.h"
#include "baselines/linear_scan.h"
#include "baselines/range_expand.h"
#include "core/knn.h"
#include "data/clustered.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// --------------------------------------------------------------------------
// Linear scan (itself the ground truth — test basics directly).

TEST(LinearScanTest, EmptyDataset) {
  auto result = LinearScanKnn<2>({}, {{0.0, 0.0}}, 3, nullptr);
  EXPECT_TRUE(result.empty());
}

TEST(LinearScanTest, OrdersByDistance) {
  std::vector<Entry<2>> data{
      Entry<2>{Rect2::FromPoint({{3.0, 0.0}}), 1},
      Entry<2>{Rect2::FromPoint({{1.0, 0.0}}), 2},
      Entry<2>{Rect2::FromPoint({{2.0, 0.0}}), 3},
  };
  auto result = LinearScanKnn<2>(data, {{0.0, 0.0}}, 3, nullptr);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 2u);
  EXPECT_EQ(result[1].id, 3u);
  EXPECT_EQ(result[2].id, 1u);
}

TEST(LinearScanTest, StatsCountEveryObject) {
  std::vector<Entry<2>> data(100,
                             Entry<2>{Rect2::FromPoint({{0.0, 0.0}}), 0});
  QueryStats stats;
  LinearScanKnn<2>(data, {{1.0, 1.0}}, 5, &stats);
  EXPECT_EQ(stats.objects_examined, 100u);
  EXPECT_EQ(stats.distance_computations, 100u);
}

TEST(LinearScanTest, PageCostIsCeilDivision) {
  // 512-byte pages hold 12 Entry<2> records.
  EXPECT_EQ(LinearScanPageCost<2>(0, 512), 0u);
  EXPECT_EQ(LinearScanPageCost<2>(1, 512), 1u);
  EXPECT_EQ(LinearScanPageCost<2>(12, 512), 1u);
  EXPECT_EQ(LinearScanPageCost<2>(13, 512), 2u);
  EXPECT_EQ(LinearScanPageCost<2>(1200, 512), 100u);
}

// --------------------------------------------------------------------------
// Grid file.

class GridFileParamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(GridFileParamTest, MatchesBruteForce) {
  const auto [cells, k] = GetParam();
  Rng rng(900 + cells + k);
  auto data =
      MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
  GridFile<2> grid(data, cells);
  auto queries = GenerateQueries<2>(data, 60, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    auto result = grid.Knn(q, k, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, q, k, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(CellsAndK, GridFileParamTest,
                         ::testing::Combine(::testing::Values(1u, 8u, 64u),
                                            ::testing::Values(1u, 10u)));

TEST(GridFileTest, EmptyDatasetReturnsNothing) {
  GridFile<2> grid({}, 16);
  auto result = grid.Knn({{0.5, 0.5}}, 3, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(GridFileTest, RejectsZeroK) {
  GridFile<2> grid({}, 4);
  EXPECT_TRUE(grid.Knn({{0.0, 0.0}}, 0, nullptr).status().IsInvalidArgument());
}

TEST(GridFileTest, QueryOutsideBoundsStillExact) {
  Rng rng(901);
  auto data =
      MakePointEntries(GenerateUniform<2>(800, UnitBounds<2>(), &rng));
  GridFile<2> grid(data, 32);
  const Point2 q{{7.0, -3.0}};
  auto result = grid.Knn(q, 5, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, q, 5, *result);
}

TEST(GridFileTest, ClusteredDataStillExact) {
  Rng rng(902);
  auto data = MakePointEntries(
      GenerateClustered<2>(1200, UnitBounds<2>(), ClusteredOptions{}, &rng));
  GridFile<2> grid(data, 24);
  auto queries = GenerateQueries<2>(data, 50, QueryDistribution::kPerturbed,
                                    0.05, &rng);
  for (const Point2& q : queries) {
    auto result = grid.Knn(q, 3, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, q, 3, *result);
  }
}

TEST(GridFileTest, ShellExpansionPrunesWork) {
  Rng rng(903);
  auto data =
      MakePointEntries(GenerateUniform<2>(10000, UnitBounds<2>(), &rng));
  GridFile<2> grid(data, 64);
  GridQueryStats stats;
  auto result = grid.Knn({{0.5, 0.5}}, 1, &stats);
  ASSERT_TRUE(result.ok());
  // A central 1-NN query in dense uniform data should touch only a few
  // shells and a tiny fraction of the objects.
  EXPECT_LT(stats.shells_expanded, 6u);
  EXPECT_LT(stats.objects_examined, data.size() / 20);
}

TEST(GridFileTest, SingleCellDegeneratesToScan) {
  Rng rng(904);
  auto data =
      MakePointEntries(GenerateUniform<2>(200, UnitBounds<2>(), &rng));
  GridFile<2> grid(data, 1);
  GridQueryStats stats;
  auto result = grid.Knn({{0.5, 0.5}}, 2, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.objects_examined, 200u);
  ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 2, *result);
}

// --------------------------------------------------------------------------
// Range-expansion k-NN over the R-tree.

class RangeExpandParamTest : public ::testing::TestWithParam<double> {};

TEST_P(RangeExpandParamTest, MatchesBruteForce) {
  const double initial_radius = GetParam();
  TestIndex2D index;
  Rng rng(905);
  auto data =
      MakePointEntries(GenerateUniform<2>(1800, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 40, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (uint32_t k : {1u, 6u}) {
    for (const Point2& q : queries) {
      auto result =
          RangeExpandKnn<2>(*index.tree, q, k, initial_radius, nullptr);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectKnnMatchesBruteForce(data, q, k, *result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RangeExpandParamTest,
                         ::testing::Values(0.0,       // auto guess
                                           1e-6,      // forces expansions
                                           10.0));    // covers everything

TEST(RangeExpandTest, EmptyTree) {
  TestIndex2D index;
  auto result = RangeExpandKnn<2>(*index.tree, {{0.5, 0.5}}, 2, 0.0, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(RangeExpandTest, KBeyondSizeReturnsAll) {
  TestIndex2D index;
  Rng rng(906);
  auto data =
      MakePointEntries(GenerateUniform<2>(20, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto result =
      RangeExpandKnn<2>(*index.tree, {{0.5, 0.5}}, 50, 0.0, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 20u);
}

TEST(RangeExpandTest, CostsMorePagesThanBranchAndBound) {
  TestIndex2D index;
  Rng rng(907);
  auto data =
      MakePointEntries(GenerateUniform<2>(5000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  auto queries = GenerateQueries<2>(data, 50, QueryDistribution::kUniform,
                                    0.0, &rng);
  uint64_t bb_pages = 0, re_pages = 0;
  for (const Point2& q : queries) {
    QueryStats bb, re;
    KnnOptions knn;
    knn.k = 4;
    ASSERT_TRUE(KnnSearch<2>(*index.tree, q, knn, &bb).ok());
    ASSERT_TRUE(RangeExpandKnn<2>(*index.tree, q, 4, 1e-5, &re).ok());
    bb_pages += bb.nodes_visited;
    re_pages += re.nodes_visited;
  }
  // Repeated window expansion re-reads the tree top — strictly more pages.
  EXPECT_GT(re_pages, bb_pages);
}

TEST(RangeExpandTest, RejectsZeroK) {
  TestIndex2D index;
  EXPECT_TRUE(RangeExpandKnn<2>(*index.tree, {{0.0, 0.0}}, 0, 0.0, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace spatial
