// Proves the tentpole claim of the scratch arena: once warm, query
// execution performs ZERO heap allocations — not "few", none. This binary
// links spatial_alloc_tracker, which replaces global operator new/delete
// with counting forwarders, so any allocation on the hot path is caught
// mechanically rather than by inspection.
//
// Discipline inside the measured region: no gtest assertions, no stats
// formatting — counters are sampled before/after and asserted afterwards.

#include <gtest/gtest.h>

#include <vector>

#include "common/alloc_tracker.h"
#include "common/rng.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "rtree/bulk_load.h"
#include "rtree/node.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// The pool covers the whole tree, so after the warm pass every fetch is a
// hit: steady state exercises the full traversal but no eviction path.
struct Fixture {
  Fixture() : disk(1024), pool(&disk, 2048) {
    Rng rng(404);
    data = MakePointEntries(GenerateUniform<2>(8000, UnitBounds<2>(), &rng));
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    tree.emplace(std::move(loaded).value());
    Rng qrng(405);
    queries =
        GenerateQueries<2>(data, 64, QueryDistribution::kUniform, 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<2>> data;
  std::optional<RTree<2>> tree;
  std::vector<Point2> queries;
};

TEST(ZeroAllocTest, TrackerCountsAllocations) {
  const AllocCounts before = ThreadAllocCounts();
  // The volatile sink keeps the allocation observable, so the compiler
  // cannot dead-code-eliminate the new/delete pair.
  static void* volatile sink;
  sink = ::operator new(32);
  ::operator delete(sink);
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_GE(delta.allocations, 1u);
  EXPECT_GE(delta.bytes, 32u);
}

TEST(ZeroAllocTest, KnnSearchIntoIsAllocationFreeWhenWarm) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  QueryStats stats;

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    // Warm pass: arenas grow to their high-water mark, pool faults in the
    // whole tree.
    for (const Point2& q : f.queries) {
      ASSERT_TRUE(
          KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok());
    }

    const AllocCounts before = ThreadAllocCounts();
    bool all_ok = true;
    for (const Point2& q : f.queries) {
      all_ok &=
          KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok();
    }
    const AllocCounts delta = ThreadAllocCounts() - before;
    ASSERT_TRUE(all_ok);
    EXPECT_EQ(delta.allocations, 0u) << "k=" << k << ": " << delta.bytes
                                     << " bytes allocated in steady state";
  }
}

// The SoA staging added for the SIMD kernels must obey the same arena
// discipline: the plane buffer grows once to its high-water mark and is
// then retranspose-in-place per node, never reallocated. Re-staging the
// largest batch the warm queries produced must be free, and the warm
// queries above must have left a non-trivial plane arena behind (i.e. the
// kernels really ran through the SoA path, not a fallback).
TEST(ZeroAllocTest, SoaStagingIsAllocationFreeWhenWarm) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  KnnOptions options;
  options.k = 10;
  for (const Point2& q : f.queries) {
    ASSERT_TRUE(
        KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, nullptr).ok());
  }
  ASSERT_GT(scratch.soa.capacity(), 0u)
      << "warm queries never staged SoA planes";
  // The largest batch any node can produce is the page fan-out (the kNN
  // traversal stages straight from the page image, so no AoS copy records
  // a high-water mark to read back).
  const uint32_t max_entries = NodeView<2>::MaxEntries(f.pool.page_size());
  ASSERT_GT(max_entries, 0u);

  std::vector<Entry<2>> batch(f.data.begin(), f.data.begin() + max_entries);
  // The k=10 warm pass never needs MINMAXDIST, so grow that output buffer
  // to its mark here — first-touch growth is warm-up, not steady state.
  scratch.min_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
  scratch.min_max_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
  const AllocCounts before = ThreadAllocCounts();
  double checksum = 0.0;
  for (int round = 0; round < 64; ++round) {
    const SoaBlock<2> soa = scratch.StageSoa(batch.data(), max_entries);
    double* dist =
        scratch.min_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
    double* dist2 = scratch.min_max_dist.EnsureCapacity(
        QueryScratch<2>::DistSlots(max_entries));
    MinAndMinMaxDistSqBatchSoa<2>(f.queries[round % f.queries.size()], soa,
                                  dist, dist2);
    checksum += dist[0] + dist2[0];
  }
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_GE(checksum, 0.0);  // keep the kernel calls observable
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated re-staging SoA planes";
}

TEST(ZeroAllocTest, BatchKnnSteadyStateIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  BatchKnnResult batch;
  KnnOptions options;
  options.k = 10;

  // Warm: result vectors and scratch reach capacity on the first batch.
  ASSERT_TRUE(KnnSearchBatch<2>(*f.tree, f.queries.data(), f.queries.size(),
                                options, &scratch, &batch)
                  .ok());

  const AllocCounts before = ThreadAllocCounts();
  Status status = KnnSearchBatch<2>(*f.tree, f.queries.data(),
                                    f.queries.size(), options, &scratch,
                                    &batch);
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in steady-state batch";
}

TEST(ZeroAllocTest, IncrementalScanReusesScratchWithoutAllocating) {
  Fixture f;
  QueryScratch<2> scratch;
  QueryStats stats;

  // Warm pass identical to the measured pass, so the shared heap storage
  // reaches the exact high-water mark the measurement will need.
  auto run_scans = [&]() -> size_t {
    size_t produced = 0;
    for (const Point2& q : f.queries) {
      IncrementalKnn<2> scan(*f.tree, q, &scratch, &stats);
      for (int i = 0; i < 16; ++i) {
        auto next = scan.Next();
        if (!next.ok() || !next->has_value()) return produced;
        ++produced;
      }
    }
    return produced;
  };
  ASSERT_EQ(run_scans(), f.queries.size() * 16);

  const AllocCounts before = ThreadAllocCounts();
  const size_t produced = run_scans();
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_EQ(produced, f.queries.size() * 16);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated across incremental scans";
}

}  // namespace
}  // namespace spatial
