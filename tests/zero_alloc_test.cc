// Proves the tentpole claim of the scratch arena: once warm, query
// execution performs ZERO heap allocations — not "few", none. This binary
// links spatial_alloc_tracker, which replaces global operator new/delete
// with counting forwarders, so any allocation on the hot path is caught
// mechanically rather than by inspection.
//
// Discipline inside the measured region: no gtest assertions, no stats
// formatting — counters are sampled before/after and asserted afterwards.

#include <gtest/gtest.h>

#include <vector>

#include "common/alloc_tracker.h"
#include "common/rng.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "core/reverse_knn.h"
#include "core/skyline.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "obs/histogram.h"
#include "obs/query_metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "rtree/bulk_load.h"
#include "rtree/node.h"
#include "storage/resident_tree.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// The pool covers the whole tree, so after the warm pass every fetch is a
// hit: steady state exercises the full traversal but no eviction path.
struct Fixture {
  Fixture() : disk(1024), pool(&disk, 2048) {
    Rng rng(404);
    data = MakePointEntries(GenerateUniform<2>(8000, UnitBounds<2>(), &rng));
    auto loaded =
        BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    tree.emplace(std::move(loaded).value());
    Rng qrng(405);
    queries =
        GenerateQueries<2>(data, 64, QueryDistribution::kUniform, 0.0, &qrng);
  }

  DiskManager disk;
  BufferPool pool;
  std::vector<Entry<2>> data;
  std::optional<RTree<2>> tree;
  std::vector<Point2> queries;
};

TEST(ZeroAllocTest, TrackerCountsAllocations) {
  const AllocCounts before = ThreadAllocCounts();
  // The volatile sink keeps the allocation observable, so the compiler
  // cannot dead-code-eliminate the new/delete pair.
  static void* volatile sink;
  sink = ::operator new(32);
  ::operator delete(sink);
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_GE(delta.allocations, 1u);
  EXPECT_GE(delta.bytes, 32u);
}

TEST(ZeroAllocTest, KnnSearchIntoIsAllocationFreeWhenWarm) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  QueryStats stats;

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    // Warm pass: arenas grow to their high-water mark, pool faults in the
    // whole tree.
    for (const Point2& q : f.queries) {
      ASSERT_TRUE(
          KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok());
    }

    const AllocCounts before = ThreadAllocCounts();
    bool all_ok = true;
    for (const Point2& q : f.queries) {
      all_ok &=
          KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok();
    }
    const AllocCounts delta = ThreadAllocCounts() - before;
    ASSERT_TRUE(all_ok);
    EXPECT_EQ(delta.allocations, 0u) << "k=" << k << ": " << delta.bytes
                                     << " bytes allocated in steady state";
  }
}

// The SoA staging added for the SIMD kernels must obey the same arena
// discipline: the plane buffer grows once to its high-water mark and is
// then retranspose-in-place per node, never reallocated. Re-staging the
// largest batch the warm queries produced must be free, and the warm
// queries above must have left a non-trivial plane arena behind (i.e. the
// kernels really ran through the SoA path, not a fallback).
TEST(ZeroAllocTest, SoaStagingIsAllocationFreeWhenWarm) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  KnnOptions options;
  options.k = 10;
  for (const Point2& q : f.queries) {
    ASSERT_TRUE(
        KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, nullptr).ok());
  }
  ASSERT_GT(scratch.soa.capacity(), 0u)
      << "warm queries never staged SoA planes";
  // The largest batch any node can produce is the page fan-out (the kNN
  // traversal stages straight from the page image, so no AoS copy records
  // a high-water mark to read back).
  const uint32_t max_entries = NodeView<2>::MaxEntries(f.pool.page_size());
  ASSERT_GT(max_entries, 0u);

  std::vector<Entry<2>> batch(f.data.begin(), f.data.begin() + max_entries);
  // The k=10 warm pass never needs MINMAXDIST, so grow that output buffer
  // to its mark here — first-touch growth is warm-up, not steady state.
  scratch.min_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
  scratch.min_max_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
  const AllocCounts before = ThreadAllocCounts();
  double checksum = 0.0;
  for (int round = 0; round < 64; ++round) {
    const SoaBlock<2> soa = scratch.StageSoa(batch.data(), max_entries);
    double* dist =
        scratch.min_dist.EnsureCapacity(QueryScratch<2>::DistSlots(max_entries));
    double* dist2 = scratch.min_max_dist.EnsureCapacity(
        QueryScratch<2>::DistSlots(max_entries));
    MinAndMinMaxDistSqBatchSoa<2>(f.queries[round % f.queries.size()], soa,
                                  dist, dist2);
    checksum += dist[0] + dist2[0];
  }
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_GE(checksum, 0.0);  // keep the kernel calls observable
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated re-staging SoA planes";
}

TEST(ZeroAllocTest, BatchKnnSteadyStateIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  BatchKnnResult batch;
  KnnOptions options;
  options.k = 10;

  // Warm: result vectors and scratch reach capacity on the first batch.
  ASSERT_TRUE(KnnSearchBatch<2>(*f.tree, f.queries.data(), f.queries.size(),
                                options, &scratch, &batch)
                  .ok());

  const AllocCounts before = ThreadAllocCounts();
  Status status = KnnSearchBatch<2>(*f.tree, f.queries.data(),
                                    f.queries.size(), options, &scratch,
                                    &batch);
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in steady-state batch";
}

// The advanced query classes ride the same scratch arena: the geometric
// browse heap, candidate staging, and verification buffers all grow to
// their high-water mark during the warm pass and are then reused.
TEST(ZeroAllocTest, ReverseKnnSteadyStateIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  ReverseKnnOptions options;
  options.k = 3;

  for (const Point2& q : f.queries) {
    ASSERT_TRUE(
        ReverseKnnSearch(*f.tree, q, options, &scratch, &out, nullptr).ok());
  }

  const AllocCounts before = ThreadAllocCounts();
  bool all_ok = true;
  for (const Point2& q : f.queries) {
    all_ok &=
        ReverseKnnSearch(*f.tree, q, options, &scratch, &out, nullptr).ok();
  }
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(all_ok);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in steady-state reverse k-NN";
}

TEST(ZeroAllocTest, NnSkylineSteadyStateIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Entry<2>> out;
  // Two-source skylines over sliding query pairs.
  std::vector<Point2> sources(2);

  const auto run_all = [&](bool* ok) {
    for (size_t i = 0; i + 1 < f.queries.size(); i += 2) {
      sources[0] = f.queries[i];
      sources[1] = f.queries[i + 1];
      const Status s =
          NnSkylineSearch<2>(*f.tree, sources.data(), 2, &scratch, &out,
                             nullptr);
      if (ok != nullptr) *ok &= s.ok();
    }
  };
  run_all(nullptr);  // warm

  const AllocCounts before = ThreadAllocCounts();
  bool all_ok = true;
  run_all(&all_ok);
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(all_ok);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in steady-state skyline";
}

TEST(ZeroAllocTest, ApproxAndBoundedKnnSteadyStateIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  QueryStats stats;
  KnnOptions options;
  options.k = 10;
  options.epsilon = 0.5;
  options.max_visits = 64;
  options.max_distance = 0.25;

  for (const Point2& q : f.queries) {
    ASSERT_TRUE(
        KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok());
  }

  const AllocCounts before = ThreadAllocCounts();
  bool all_ok = true;
  for (const Point2& q : f.queries) {
    all_ok &=
        KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok();
  }
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(all_ok);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in steady-state approx kNN";
}

// The observability layer must not repeal the zero-alloc contract: this
// replays the QueryService worker loop's per-query instrumentation —
// histogram records, the sampling draw, per-kind stat mirror, trace
// arming, and slow-log capture — around the same warm KnnSearchInto and
// KnnSearchBatch paths, at 0% sampling (the steady default), 1% (mostly
// the sampled-out path), and 100% (every query traced and logged).
TEST(ZeroAllocTest, InstrumentedQueryPathIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  QueryStats stats;
  KnnOptions options;
  options.k = 10;

  obs::AtomicQueryStats kind_stats;
  obs::StatCounter kind_count;
  LatencyHistogram latency;
  LatencyHistogram queue_wait;
  obs::TraceContext trace_ctx;
  obs::SlowQueryLog::Options log_options;
  log_options.slow_capacity = 8;
  log_options.sampled_capacity = 8;
  // Everything below the threshold: slow capture exercised via sampling.
  log_options.slow_threshold_ns = ~0ull;
  obs::SlowQueryLog log(log_options);
  uint64_t rng = 0x9E3779B97F4A7C15ULL;

  auto run_instrumented = [&](uint32_t sample_per_million) -> bool {
    bool all_ok = true;
    for (const Point2& q : f.queries) {
      queue_wait.Record(100);
      const bool sampled = obs::SampleDraw(&rng, sample_per_million);
      if (sampled) {
        trace_ctx.Reset();
        trace_ctx.SetSpan(obs::SpanKind::kQueueWait, 100);
        scratch.trace = &trace_ctx;
      }
      stats.Reset();
      all_ok &=
          KnnSearchInto<2>(*f.tree, q, options, &scratch, &out, &stats).ok();
      ++kind_count;
      kind_stats.Add(stats);
      latency.Record(5000);
      if (sampled) {
        trace_ctx.SetSpan(obs::SpanKind::kExecute, 5000);
        scratch.trace = nullptr;
        obs::QueryTraceRecord rec;
        rec.worker = 0;
        rec.k = options.k;
        rec.SetKindName("knn");
        rec.latency_ns = 5000;
        rec.queue_wait_ns = 100;
        rec.traced = true;
        rec.stats = stats;
        for (int l = 0; l < obs::kTraceMaxLevels; ++l) {
          rec.nodes_per_level[l] = trace_ctx.nodes_per_level[l];
        }
        log.Record(rec);
      }
    }
    return all_ok;
  };

  // Warm pass (100% sampling fills the log's preallocated storage too).
  ASSERT_TRUE(run_instrumented(1'000'000));

  for (uint32_t per_million : {0u, 10'000u, 1'000'000u}) {
    const AllocCounts before = ThreadAllocCounts();
    const bool all_ok = run_instrumented(per_million);
    const AllocCounts delta = ThreadAllocCounts() - before;
    ASSERT_TRUE(all_ok);
    EXPECT_EQ(delta.allocations, 0u)
        << "sampling " << per_million << "/1e6: " << delta.bytes
        << " bytes allocated in instrumented steady state";
  }
  EXPECT_GT(log.total_recorded(), 0u);
  EXPECT_GT(kind_stats.Snapshot().nodes_visited, 0u);
}

// Batch path under 100% sampling: the whole batch is one "query" from the
// service's perspective, so the trace context is armed across it.
TEST(ZeroAllocTest, InstrumentedBatchKnnIsAllocationFree) {
  Fixture f;
  QueryScratch<2> scratch;
  BatchKnnResult batch;
  KnnOptions options;
  options.k = 10;
  obs::TraceContext trace_ctx;

  scratch.trace = &trace_ctx;
  trace_ctx.Reset();
  ASSERT_TRUE(KnnSearchBatch<2>(*f.tree, f.queries.data(), f.queries.size(),
                                options, &scratch, &batch)
                  .ok());

  const AllocCounts before = ThreadAllocCounts();
  trace_ctx.Reset();
  Status status = KnnSearchBatch<2>(*f.tree, f.queries.data(),
                                    f.queries.size(), options, &scratch,
                                    &batch);
  const AllocCounts delta = ThreadAllocCounts() - before;
  scratch.trace = nullptr;
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in traced steady-state batch";
  uint64_t traced_nodes = 0;
  for (int l = 0; l < obs::kTraceMaxLevels; ++l) {
    traced_nodes += trace_ctx.nodes_per_level[l];
  }
  EXPECT_GT(traced_nodes, 0u);
}

// The resident tier's headline contract: a query over the compiled arena
// performs zero steady-state allocations — same discipline as the paged
// path, minus even the buffer-pool bookkeeping. One compile, then every
// traversal is pointer-chasing through preallocated planes.
TEST(ZeroAllocTest, ResidentKnnSearchIntoIsAllocationFreeWhenWarm) {
  Fixture f;
  auto resident =
      ResidentTree<2>::Compile(&f.pool, f.tree->root_page(), f.tree->size(),
                               {});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  QueryStats stats;

  for (uint32_t k : {1u, 10u}) {
    KnnOptions options;
    options.k = k;
    for (const Point2& q : f.queries) {
      ASSERT_TRUE(
          KnnSearchInto<2>(*resident, q, options, &scratch, &out, &stats)
              .ok());
    }

    const AllocCounts before = ThreadAllocCounts();
    bool all_ok = true;
    for (const Point2& q : f.queries) {
      all_ok &=
          KnnSearchInto<2>(*resident, q, options, &scratch, &out, &stats).ok();
    }
    const AllocCounts delta = ThreadAllocCounts() - before;
    ASSERT_TRUE(all_ok);
    EXPECT_EQ(delta.allocations, 0u)
        << "resident k=" << k << ": " << delta.bytes
        << " bytes allocated in steady state";
  }
}

TEST(ZeroAllocTest, ResidentBatchKnnSteadyStateIsAllocationFree) {
  Fixture f;
  auto resident =
      ResidentTree<2>::Compile(&f.pool, f.tree->root_page(), f.tree->size(),
                               {});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  QueryScratch<2> scratch;
  BatchKnnResult batch;
  KnnOptions options;
  options.k = 10;

  ASSERT_TRUE(KnnSearchBatch<2>(*resident, f.queries.data(), f.queries.size(),
                                options, &scratch, &batch)
                  .ok());

  const AllocCounts before = ThreadAllocCounts();
  Status status = KnnSearchBatch<2>(*resident, f.queries.data(),
                                    f.queries.size(), options, &scratch,
                                    &batch);
  const AllocCounts delta = ThreadAllocCounts() - before;
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated in resident steady-state batch";
}

TEST(ZeroAllocTest, ResidentIncrementalScanIsAllocationFreeWhenWarm) {
  Fixture f;
  auto resident =
      ResidentTree<2>::Compile(&f.pool, f.tree->root_page(), f.tree->size(),
                               {});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  QueryScratch<2> scratch;
  QueryStats stats;

  auto run_scans = [&]() -> size_t {
    size_t produced = 0;
    for (const Point2& q : f.queries) {
      IncrementalKnn<2> scan(*resident, q, &scratch, &stats);
      for (int i = 0; i < 16; ++i) {
        auto next = scan.Next();
        if (!next.ok() || !next->has_value()) return produced;
        ++produced;
      }
    }
    return produced;
  };
  ASSERT_EQ(run_scans(), f.queries.size() * 16);

  const AllocCounts before = ThreadAllocCounts();
  const size_t produced = run_scans();
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_EQ(produced, f.queries.size() * 16);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated across resident incremental scans";
}

TEST(ZeroAllocTest, IncrementalScanReusesScratchWithoutAllocating) {
  Fixture f;
  QueryScratch<2> scratch;
  QueryStats stats;

  // Warm pass identical to the measured pass, so the shared heap storage
  // reaches the exact high-water mark the measurement will need.
  auto run_scans = [&]() -> size_t {
    size_t produced = 0;
    for (const Point2& q : f.queries) {
      IncrementalKnn<2> scan(*f.tree, q, &scratch, &stats);
      for (int i = 0; i < 16; ++i) {
        auto next = scan.Next();
        if (!next.ok() || !next->has_value()) return produced;
        ++produced;
      }
    }
    return produced;
  };
  ASSERT_EQ(run_scans(), f.queries.size() * 16);

  const AllocCounts before = ThreadAllocCounts();
  const size_t produced = run_scans();
  const AllocCounts delta = ThreadAllocCounts() - before;
  EXPECT_EQ(produced, f.queries.size() * 16);
  EXPECT_EQ(delta.allocations, 0u)
      << delta.bytes << " bytes allocated across incremental scans";
}

}  // namespace
}  // namespace spatial
