#include <gtest/gtest.h>

#include <vector>

#include "core/knn.h"
#include "data/uniform.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(KnnOptionsTest, ValidateRejectsZeroK) {
  KnnOptions options;
  options.k = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  TestIndex2D index;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, options, nullptr);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(KnnTest, EmptyTreeReturnsNothing) {
  TestIndex2D index;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(KnnTest, SingleObjectTree) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.3, 0.4}}), 77).ok());
  auto result = KnnSearch<2>(*index.tree, {{0.0, 0.0}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 77u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 0.25);
}

TEST(KnnTest, KLargerThanTreeReturnsAllSorted) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.1, 0.0}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.3, 0.0}}), 2).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.2, 0.0}}), 3).ok());
  KnnOptions options;
  options.k = 10;
  auto result = KnnSearch<2>(*index.tree, {{0.0, 0.0}}, options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].id, 1u);
  EXPECT_EQ((*result)[1].id, 3u);
  EXPECT_EQ((*result)[2].id, 2u);
}

TEST(KnnTest, ExactNearestOnSmallGrid) {
  TestIndex2D index;
  // 10x10 integer grid, id = 10*x + y.
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      ASSERT_TRUE(index.tree
                      ->Insert(Rect2::FromPoint({{static_cast<double>(x),
                                                   static_cast<double>(y)}}),
                               static_cast<uint64_t>(10 * x + y))
                      .ok());
    }
  }
  auto result =
      KnnSearch<2>(*index.tree, {{3.2, 6.9}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 37u);  // (3, 7)
}

TEST(KnnTest, QueryOnDataPointHasZeroDistance) {
  TestIndex2D index;
  Rng rng(7);
  auto data =
      MakePointEntries(GenerateUniform<2>(500, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q = data[123].mbr.Center();
  auto result = KnnSearch<2>(*index.tree, q, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 0.0);
}

TEST(KnnTest, StatsAreRecorded) {
  TestIndex2D index;
  Rng rng(8);
  auto data =
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  QueryStats stats;
  auto result =
      KnnSearch<2>(*index.tree, {{0.5, 0.5}}, KnnOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(stats.nodes_visited, static_cast<uint64_t>(index.tree->height()));
  EXPECT_EQ(stats.nodes_visited,
            stats.leaf_nodes_visited + stats.internal_nodes_visited);
  EXPECT_GT(stats.objects_examined, 0u);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GT(stats.pruned_s3, 0u);  // with 3000 points pruning must occur
  EXPECT_GT(stats.abl_entries_generated, 0u);
}

TEST(KnnTest, PageAccessesMatchBufferPoolFetches) {
  TestIndex2D index;
  Rng rng(9);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  index.pool.ResetStats();
  QueryStats stats;
  auto result =
      KnnSearch<2>(*index.tree, {{0.25, 0.75}}, KnnOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  // The paper's metric: every node visit is exactly one logical page fetch.
  EXPECT_EQ(stats.nodes_visited, index.pool.stats().logical_fetches);
}

TEST(KnnTest, S1S2InactiveForKGreaterOne) {
  TestIndex2D index;
  Rng rng(10);
  auto data =
      MakePointEntries(GenerateUniform<2>(2000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  KnnOptions options;
  options.k = 4;
  options.use_s1 = true;
  options.use_s2 = true;
  QueryStats stats;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.pruned_s1, 0u);
  EXPECT_EQ(stats.estimate_updates_s2, 0u);
  ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 4, *result);
}

TEST(KnnTest, S1CountsPrunesForK1) {
  TestIndex2D index;
  Rng rng(11);
  auto data =
      MakePointEntries(GenerateUniform<2>(5000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  KnnOptions options;
  options.use_s1 = true;
  options.use_s2 = true;
  QueryStats stats;
  auto result = KnnSearch<2>(*index.tree, {{0.5, 0.5}}, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.pruned_s1 + stats.estimate_updates_s2, 0u);
  ExpectKnnMatchesBruteForce(data, {{0.5, 0.5}}, 1, *result);
}

TEST(KnnTest, QueryFarOutsideDataBounds) {
  TestIndex2D index;
  Rng rng(12);
  auto data =
      MakePointEntries(GenerateUniform<2>(1000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q{{50.0, -30.0}};
  KnnOptions options;
  options.k = 3;
  auto result = KnnSearch<2>(*index.tree, q, options, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, q, 3, *result);
}

TEST(KnnTest, ExtendedObjectsUseMbrDistance) {
  TestIndex2D index;
  // Two rectangles: a large one whose edge is very close to the query, and
  // a small one slightly farther. MBR distance must rank the large first.
  const Rect2 large{{{1.0, -5.0}}, {{2.0, 5.0}}};
  const Rect2 small = Rect2::FromPoint({{1.5, 0.0}});
  ASSERT_TRUE(index.tree->Insert(large, 1).ok());
  ASSERT_TRUE(index.tree->Insert(small, 2).ok());
  auto result = KnnSearch<2>(*index.tree, {{0.0, 0.0}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 1u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 1.0);
}

TEST(KnnTest, QueryInsideObjectMbrHasZeroDistance) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2{{{0, 0}}, {{10, 10}}}, 5).ok());
  auto result = KnnSearch<2>(*index.tree, {{3.0, 3.0}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 0.0);
}

}  // namespace
}  // namespace spatial
