#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "db/meta_page.h"
#include "db/spatial_db.h"
#include "rtree/validator.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --------------------------------------------------------------------------
// Meta page codec.

TEST(MetaPageTest, RoundTrip) {
  MetaRecord meta;
  meta.page_size = 1024;
  meta.dimension = 2;
  meta.root_page = 17;
  meta.size = 123456;
  meta.root_level = 3;
  meta.split = SplitAlgorithm::kRStar;
  meta.min_fill = 0.35;
  meta.rstar_reinsert = false;
  meta.reinsert_fraction = 0.25;
  char page[1024];
  EncodeMetaPage(meta, page, sizeof(page));
  MetaRecord decoded;
  ASSERT_TRUE(DecodeMetaPage(page, sizeof(page), &decoded).ok());
  EXPECT_EQ(decoded.page_size, meta.page_size);
  EXPECT_EQ(decoded.dimension, meta.dimension);
  EXPECT_EQ(decoded.root_page, meta.root_page);
  EXPECT_EQ(decoded.size, meta.size);
  EXPECT_EQ(decoded.root_level, meta.root_level);
  EXPECT_EQ(decoded.split, meta.split);
  EXPECT_EQ(decoded.min_fill, meta.min_fill);
  EXPECT_EQ(decoded.rstar_reinsert, meta.rstar_reinsert);
  EXPECT_EQ(decoded.reinsert_fraction, meta.reinsert_fraction);
}

TEST(MetaPageTest, RejectsGarbage) {
  char page[1024] = {};
  MetaRecord meta;
  EXPECT_TRUE(DecodeMetaPage(page, sizeof(page), &meta).IsCorruption());
}

TEST(MetaPageTest, RejectsPageSizeMismatch) {
  MetaRecord meta;
  meta.page_size = 512;
  char page[1024];
  EncodeMetaPage(meta, page, sizeof(page));
  MetaRecord decoded;
  EXPECT_TRUE(
      DecodeMetaPage(page, sizeof(page), &decoded).IsInvalidArgument());
}

// --------------------------------------------------------------------------
// SpatialDb lifecycle.

TEST(SpatialDbTest, InMemoryInsertAndQuery) {
  auto db = SpatialDb<2>::CreateInMemory({});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->tree().Insert(Rect2::FromPoint({{0.25, 0.5}}), 9).ok());
  auto result = KnnSearch<2>(db->tree(), {{0.2, 0.5}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 9u);
}

TEST(SpatialDbTest, FileLifecycleInsertFlushReopen) {
  const std::string path = TempPath("sdb_lifecycle.sdb");
  std::vector<Entry<2>> data;
  {
    SpatialDb<2>::Options options;
    options.tree.split = SplitAlgorithm::kRStar;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Rng rng(71);
    data = MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
    for (const auto& e : data) {
      ASSERT_TRUE(db->tree().Insert(e.mbr, e.id).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  auto reopened = SpatialDb<2>::OpenFromFile(path, 1024, 128);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->tree().size(), data.size());
  // Tree options came back from the superblock.
  EXPECT_EQ(reopened->tree().options().split, SplitAlgorithm::kRStar);
  auto report = ValidateTree<2>(reopened->tree(), /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto result =
      KnnSearch<2>(reopened->tree(), {{0.3, 0.7}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, {{0.3, 0.7}}, 1, *result);
  std::remove(path.c_str());
}

TEST(SpatialDbTest, DestructorFlushesWithoutExplicitFlush) {
  const std::string path = TempPath("sdb_dtor.sdb");
  {
    auto db = SpatialDb<2>::CreateOnFile(path, {});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->tree().Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
    // No Flush(): the destructor's best-effort flush must cover this.
  }
  auto reopened = SpatialDb<2>::OpenFromFile(path, 1024, 64);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->tree().size(), 1u);
  std::remove(path.c_str());
}

TEST(SpatialDbTest, BulkLoadIntoFreshDb) {
  const std::string path = TempPath("sdb_bulk.sdb");
  std::vector<Entry<2>> data;
  {
    auto db = SpatialDb<2>::CreateOnFile(path, {});
    ASSERT_TRUE(db.ok());
    Rng rng(72);
    data = MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
    ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
    EXPECT_EQ(db->tree().size(), data.size());
    // Second bulk load must be rejected.
    EXPECT_TRUE(
        db->BulkLoadData(data, BulkLoadMethod::kStr).IsAlreadyExists());
  }
  auto reopened = SpatialDb<2>::OpenFromFile(path, 1024, 64);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->tree().size(), data.size());
  auto result =
      KnnSearch<2>(reopened->tree(), {{0.8, 0.2}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(data, {{0.8, 0.2}}, 1, *result);
  std::remove(path.c_str());
}

TEST(SpatialDbTest, OpenWithWrongDimensionFails) {
  const std::string path = TempPath("sdb_dim.sdb");
  {
    auto db = SpatialDb<2>::CreateOnFile(path, {});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto as_3d = SpatialDb<3>::OpenFromFile(path, 1024, 64);
  EXPECT_FALSE(as_3d.ok());
  EXPECT_TRUE(as_3d.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SpatialDbTest, OpenWithWrongPageSizeFails) {
  const std::string path = TempPath("sdb_psize.sdb");
  {
    SpatialDb<2>::Options options;
    options.page_size = 1024;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // 512 divides the file size, so the failure comes from the superblock.
  auto wrong = SpatialDb<2>::OpenFromFile(path, 512, 64);
  EXPECT_FALSE(wrong.ok());
  std::remove(path.c_str());
}

TEST(SpatialDbTest, OpenMissingFileFails) {
  EXPECT_TRUE(SpatialDb<2>::OpenFromFile("/nonexistent/db.sdb", 1024, 64)
                  .status()
                  .IsNotFound());
}

TEST(SpatialDbTest, MutationsAcrossReopenCycles) {
  const std::string path = TempPath("sdb_cycles.sdb");
  std::vector<Entry<2>> live;
  Rng rng(73);
  {
    auto db = SpatialDb<2>::CreateOnFile(path, {});
    ASSERT_TRUE(db.ok());
  }
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto db = SpatialDb<2>::OpenFromFile(path, 1024, 64);
    ASSERT_TRUE(db.ok()) << "cycle " << cycle << ": "
                         << db.status().ToString();
    ASSERT_EQ(db->tree().size(), live.size());
    // Insert 200, delete 50 of the live set.
    for (int i = 0; i < 200; ++i) {
      const Rect2 r =
          Rect2::FromPoint({{rng.Uniform(0, 1), rng.Uniform(0, 1)}});
      const uint64_t id = live.size() * 1000 + static_cast<uint64_t>(i);
      ASSERT_TRUE(db->tree().Insert(r, id).ok());
      live.push_back(Entry<2>{r, id});
    }
    for (int i = 0; i < 50 && !live.empty(); ++i) {
      const size_t pick = rng.NextBounded(live.size());
      auto removed = db->tree().Delete(live[pick].mbr, live[pick].id);
      ASSERT_TRUE(removed.ok());
      ASSERT_TRUE(*removed);
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  auto db = SpatialDb<2>::OpenFromFile(path, 1024, 64);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->tree().size(), live.size());
  auto result = KnnSearch<2>(db->tree(), {{0.5, 0.5}}, KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectKnnMatchesBruteForce(live, {{0.5, 0.5}}, 1, *result);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatial
