#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "data/clustered.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"

namespace spatial {
namespace {

TEST(UniformDataTest, GeneratesRequestedCountInsideBounds) {
  Rng rng(1);
  const Rect2 bounds{{{-2, 3}}, {{5, 9}}};
  auto points = GenerateUniform<2>(5000, bounds, &rng);
  ASSERT_EQ(points.size(), 5000u);
  for (const auto& p : points) {
    ASSERT_TRUE(bounds.Contains(p));
  }
}

TEST(UniformDataTest, DeterministicPerSeed) {
  Rng a(9), b(9), c(10);
  auto pa = GenerateUniform<2>(100, UnitBounds<2>(), &a);
  auto pb = GenerateUniform<2>(100, UnitBounds<2>(), &b);
  auto pc = GenerateUniform<2>(100, UnitBounds<2>(), &c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

TEST(UniformDataTest, RoughlyUniformQuadrantCounts) {
  Rng rng(2);
  auto points = GenerateUniform<2>(40000, UnitBounds<2>(), &rng);
  int counts[4] = {0, 0, 0, 0};
  for (const auto& p : points) {
    const int quadrant = (p[0] < 0.5 ? 0 : 1) + (p[1] < 0.5 ? 0 : 2);
    ++counts[quadrant];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 40000.0, 0.25, 0.02);
  }
}

TEST(ClusteredDataTest, PointsStayInBounds) {
  Rng rng(3);
  ClusteredOptions options;
  options.num_clusters = 5;
  auto points = GenerateClustered<2>(3000, UnitBounds<2>(), options, &rng);
  ASSERT_EQ(points.size(), 3000u);
  for (const auto& p : points) {
    ASSERT_TRUE(UnitBounds<2>().Contains(p));
  }
}

TEST(ClusteredDataTest, IsMoreSkewedThanUniform) {
  // Chi-square style check: clustered data concentrates in few grid cells.
  Rng rng(4);
  auto clustered = GenerateClustered<2>(20000, UnitBounds<2>(),
                                        ClusteredOptions{}, &rng);
  auto uniform = GenerateUniform<2>(20000, UnitBounds<2>(), &rng);
  auto max_cell_share = [](const std::vector<Point2>& pts) {
    int grid[10][10] = {};
    for (const auto& p : pts) {
      int gx = std::min(9, static_cast<int>(p[0] * 10));
      int gy = std::min(9, static_cast<int>(p[1] * 10));
      ++grid[gx][gy];
    }
    int max_count = 0;
    for (auto& row : grid) {
      for (int c : row) max_count = std::max(max_count, c);
    }
    return static_cast<double>(max_count) / static_cast<double>(pts.size());
  };
  EXPECT_GT(max_cell_share(clustered), 2.0 * max_cell_share(uniform));
}

TEST(TigerLikeTest, ProducesApproximatelyTargetSegments) {
  Rng rng(5);
  auto network =
      GenerateTigerLike(10000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  EXPECT_GE(network.segments.size(), 10000u);
  EXPECT_LE(network.segments.size(), 11000u);  // may slightly overshoot
  EXPECT_EQ(network.core_centers.size(), TigerLikeOptions{}.num_urban_cores);
}

TEST(TigerLikeTest, SegmentsWithinBounds) {
  Rng rng(6);
  auto network =
      GenerateTigerLike(5000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  for (const auto& s : network.segments) {
    ASSERT_TRUE(UnitBounds<2>().Contains(s.a));
    ASSERT_TRUE(UnitBounds<2>().Contains(s.b));
  }
}

TEST(TigerLikeTest, DeterministicPerSeed) {
  Rng a(7), b(7);
  auto na = GenerateTigerLike(1000, UnitBounds<2>(), TigerLikeOptions{}, &a);
  auto nb = GenerateTigerLike(1000, UnitBounds<2>(), TigerLikeOptions{}, &b);
  ASSERT_EQ(na.segments.size(), nb.segments.size());
  for (size_t i = 0; i < na.segments.size(); ++i) {
    ASSERT_EQ(na.segments[i].a, nb.segments[i].a);
    ASSERT_EQ(na.segments[i].b, nb.segments[i].b);
  }
}

TEST(TigerLikeTest, MidpointsAreSkewedLikeRealStreetData) {
  // The whole point of the substitute: midpoints must be substantially more
  // concentrated than uniform (see DESIGN.md substitution table).
  Rng rng(8);
  auto network =
      GenerateTigerLike(20000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  auto midpoints = SegmentMidpoints(network.segments);
  int grid[10][10] = {};
  for (const auto& p : midpoints) {
    int gx = std::clamp(static_cast<int>(p[0] * 10), 0, 9);
    int gy = std::clamp(static_cast<int>(p[1] * 10), 0, 9);
    ++grid[gx][gy];
  }
  int max_count = 0;
  for (auto& row : grid) {
    for (int c : row) max_count = std::max(max_count, c);
  }
  const double max_share =
      static_cast<double>(max_count) / static_cast<double>(midpoints.size());
  EXPECT_GT(max_share, 0.02);  // uniform would give ~0.01 per cell
}

TEST(TigerLikeTest, SegmentsAreShortRelativeToDomain) {
  Rng rng(9);
  auto network =
      GenerateTigerLike(5000, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  double total_length = 0.0;
  for (const auto& s : network.segments) total_length += s.Length();
  const double mean_length =
      total_length / static_cast<double>(network.segments.size());
  EXPECT_LT(mean_length, 0.1);  // street blocks, not cross-country lines
  EXPECT_GT(mean_length, 0.0005);
}

TEST(TigerLikeTest, ZeroTargetYieldsEmptyNetwork) {
  Rng rng(10);
  auto network =
      GenerateTigerLike(0, UnitBounds<2>(), TigerLikeOptions{}, &rng);
  EXPECT_TRUE(network.segments.empty());
}

TEST(DatasetTest, MakePointEntriesAssignsSequentialIds) {
  std::vector<Point2> points{{{1, 2}}, {{3, 4}}};
  auto entries = MakePointEntries(points, 100);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 100u);
  EXPECT_EQ(entries[1].id, 101u);
  EXPECT_EQ(entries[0].mbr, Rect2::FromPoint({{1, 2}}));
}

TEST(DatasetTest, BoundsOfComputesTightBox) {
  std::vector<Entry<2>> entries{
      Entry<2>{Rect2::FromPoint({{1, 5}}), 0},
      Entry<2>{Rect2::FromPoint({{-2, 3}}), 1},
  };
  const Rect2 bounds = BoundsOf(entries);
  EXPECT_EQ(bounds.lo[0], -2.0);
  EXPECT_EQ(bounds.hi[0], 1.0);
  EXPECT_EQ(bounds.lo[1], 3.0);
  EXPECT_EQ(bounds.hi[1], 5.0);
  EXPECT_TRUE(BoundsOf<2>({}).IsEmpty());
}

TEST(DatasetTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/points_roundtrip.csv";
  std::vector<Point2> points{{{0.125, -3.5}}, {{1e-9, 7.25}}};
  ASSERT_TRUE(WritePointsCsv(path, points).ok());
  auto loaded = ReadPointsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0], points[0]);
  EXPECT_EQ((*loaded)[1], points[1]);
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvReadMissingFileFails) {
  EXPECT_TRUE(ReadPointsCsv("/nonexistent/nope.csv").status().IsNotFound());
}

TEST(DatasetTest, CsvReadMalformedFails) {
  const std::string path = ::testing::TempDir() + "/points_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.0,2.0\nnot-a-number\n", f);
  std::fclose(f);
  EXPECT_TRUE(ReadPointsCsv(path).status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatial
