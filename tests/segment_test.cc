#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/metrics.h"
#include "geom/segment.h"

namespace spatial {
namespace {

TEST(SegmentTest, MbrCoversEndpoints) {
  Segment2 s{{{3.0, 1.0}}, {{0.0, 2.0}}};
  Rect2 mbr = s.Mbr();
  EXPECT_EQ(mbr.lo[0], 0.0);
  EXPECT_EQ(mbr.hi[0], 3.0);
  EXPECT_EQ(mbr.lo[1], 1.0);
  EXPECT_EQ(mbr.hi[1], 2.0);
}

TEST(SegmentTest, MidpointAndLength) {
  Segment2 s{{{0.0, 0.0}}, {{4.0, 3.0}}};
  EXPECT_EQ(s.Midpoint(), (Point2{{2.0, 1.5}}));
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_DOUBLE_EQ(s.LengthSq(), 25.0);
}

TEST(SegmentTest, Interpolate) {
  Segment2 s{{{1.0, 1.0}}, {{3.0, 5.0}}};
  EXPECT_EQ(s.Interpolate(0.0), s.a);
  EXPECT_EQ(s.Interpolate(1.0), s.b);
  EXPECT_EQ(s.Interpolate(0.5), s.Midpoint());
}

TEST(SegmentTest, PointSegmentDistancePerpendicular) {
  Segment2 s{{{0.0, 0.0}}, {{10.0, 0.0}}};
  EXPECT_DOUBLE_EQ(PointSegmentDistSq(Point2{{5.0, 3.0}}, s), 9.0);
}

TEST(SegmentTest, PointSegmentDistanceClampsToEndpoints) {
  Segment2 s{{{0.0, 0.0}}, {{10.0, 0.0}}};
  EXPECT_DOUBLE_EQ(PointSegmentDistSq(Point2{{-3.0, 4.0}}, s), 25.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistSq(Point2{{13.0, 4.0}}, s), 25.0);
}

TEST(SegmentTest, ZeroLengthSegmentActsAsPoint) {
  Segment2 s{{{2.0, 2.0}}, {{2.0, 2.0}}};
  EXPECT_DOUBLE_EQ(PointSegmentDistSq(Point2{{5.0, 6.0}}, s), 25.0);
}

TEST(SegmentTest, SegmentDistanceAtLeastMbrMinDist) {
  // MINDIST to the segment's MBR lower-bounds the true segment distance —
  // the geometric fact that justifies indexing segments by their MBRs.
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    Segment2 s{{{rng.Uniform(-5, 5), rng.Uniform(-5, 5)}},
               {{rng.Uniform(-5, 5), rng.Uniform(-5, 5)}}};
    Point2 p{{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}};
    EXPECT_LE(MinDistSq(p, s.Mbr()), PointSegmentDistSq(p, s) + 1e-9);
  }
}

}  // namespace
}  // namespace spatial
