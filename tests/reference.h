#ifndef SPATIAL_TESTS_REFERENCE_H_
#define SPATIAL_TESTS_REFERENCE_H_

// Shared brute-force references for the query classes, used as ground
// truth by the advanced-query, shard, and property suites. Every function
// scans the raw entry vector with the same canonical scalar distance
// expressions the engine uses (geom/metrics.h, core/skyline.h), so on
// tie-free random data the engine's answers must match byte for byte.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/neighbor_buffer.h"
#include "core/skyline.h"
#include "geom/metrics.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

inline bool RefNeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
  return a.id < b.id;
}

// Exact k-NN, optionally distance-bounded: the k nearest objects with
// distance <= max_distance (inclusive, matching KnnOptions::max_distance),
// sorted by (dist_sq, id).
template <int D>
std::vector<Neighbor> RefKnn(
    const std::vector<Entry<D>>& data, const Point<D>& q, uint32_t k,
    double max_distance = std::numeric_limits<double>::infinity()) {
  const double max_sq = max_distance * max_distance;
  std::vector<Neighbor> all;
  for (const Entry<D>& e : data) {
    const double d = MinDistSq(q, e.mbr);
    if (d <= max_sq) all.push_back(Neighbor{e.id, d});
  }
  std::sort(all.begin(), all.end(), RefNeighborLess);
  if (all.size() > k) all.resize(k);
  return all;
}

// Exact reverse k-NN (ties included): object o qualifies iff fewer than k
// *other* objects are strictly closer to o than the query is. Sorted by
// (dist_sq, id). Dimension-generic even though the engine serves D = 2
// only — the rule itself is not planar.
template <int D>
std::vector<Neighbor> RefReverseKnn(const std::vector<Entry<D>>& data,
                                    const Point<D>& q, uint32_t k) {
  std::vector<Neighbor> result;
  for (size_t i = 0; i < data.size(); ++i) {
    const double to_query = MinDistSq(q, data[i].mbr);
    uint32_t closer = 0;
    for (size_t j = 0; j < data.size() && closer < k; ++j) {
      if (j == i) continue;
      const Point<D> o = data[i].mbr.Center();
      if (MinDistSq(o, data[j].mbr) < to_query) ++closer;
    }
    if (closer < k) result.push_back(Neighbor{data[i].id, to_query});
  }
  std::sort(result.begin(), result.end(), RefNeighborLess);
  return result;
}

// Exact NN skyline: o survives iff no other object dominates its
// per-source distance vector. Sorted by ascending (distance-sum, id) —
// the engine's output order.
template <int D>
std::vector<Entry<D>> RefSkyline(const std::vector<Entry<D>>& data,
                                 const std::vector<Point<D>>& sources) {
  const size_t m = sources.size();
  std::vector<double> dists(data.size() * m);
  for (size_t i = 0; i < data.size(); ++i) {
    SkylineDistVector<D>(sources.data(), m, data[i].mbr, &dists[i * m]);
  }
  std::vector<size_t> kept;
  for (size_t i = 0; i < data.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < data.size() && !dominated; ++j) {
      if (j == i) continue;
      dominated = SkylineDominates(&dists[j * m], &dists[i * m], m);
    }
    if (!dominated) kept.push_back(i);
  }
  std::vector<Entry<D>> result;
  result.reserve(kept.size());
  for (size_t i : kept) result.push_back(data[i]);
  std::sort(result.begin(), result.end(),
            [&](const Entry<D>& a, const Entry<D>& b) {
              const double sa = SkylineDistSum<D>(sources.data(), m, a.mbr);
              const double sb = SkylineDistSum<D>(sources.data(), m, b.mbr);
              if (sa != sb) return sa < sb;
              return a.id < b.id;
            });
  return result;
}

// Exact range query: every entry whose MBR intersects the window, sorted
// by ascending object id (the router's normalized order).
template <int D>
std::vector<Entry<D>> RefRange(const std::vector<Entry<D>>& data,
                               const Rect<D>& window) {
  std::vector<Entry<D>> result;
  for (const Entry<D>& e : data) {
    if (window.Intersects(e.mbr)) result.push_back(e);
  }
  std::sort(result.begin(), result.end(),
            [](const Entry<D>& a, const Entry<D>& b) { return a.id < b.id; });
  return result;
}

}  // namespace spatial

#endif  // SPATIAL_TESTS_REFERENCE_H_
