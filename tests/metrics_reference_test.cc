// Reference-implementation cross-checks for the paper's metrics: the
// optimized closed-form implementations in geom/metrics.h are compared
// against direct, literal transcriptions of the definitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "geom/metrics.h"

namespace spatial {
namespace {

// Literal MINMAXDIST: for every dimension k, take the *nearer* hyperplane
// along k and the *farther* hyperplane along every other dimension; the
// answer is the minimum over k. O(D^2) but unmistakably the definition.
template <int D>
double ReferenceMinMaxDistSq(const Point<D>& p, const Rect<D>& r) {
  double best = std::numeric_limits<double>::infinity();
  for (int k = 0; k < D; ++k) {
    const double mid_k = 0.5 * (r.lo[k] + r.hi[k]);
    const double rm_k = p[k] <= mid_k ? r.lo[k] : r.hi[k];
    double candidate = (p[k] - rm_k) * (p[k] - rm_k);
    for (int i = 0; i < D; ++i) {
      if (i == k) continue;
      const double mid_i = 0.5 * (r.lo[i] + r.hi[i]);
      const double rM_i = p[i] >= mid_i ? r.lo[i] : r.hi[i];
      candidate += (p[i] - rM_i) * (p[i] - rM_i);
    }
    best = std::min(best, candidate);
  }
  return best;
}

// Literal MINDIST via dense sampling of the box (upper-bounds the true
// minimum; the closed form must never exceed any sample).
template <int D>
double SampledBoxDistanceSq(const Point<D>& p, const Rect<D>& r, Rng* rng,
                            int samples) {
  double best = std::numeric_limits<double>::infinity();
  for (int s = 0; s < samples; ++s) {
    Point<D> inside;
    for (int i = 0; i < D; ++i) inside[i] = rng->Uniform(r.lo[i], r.hi[i]);
    best = std::min(best, SquaredDistance(p, inside));
  }
  return best;
}

template <int D>
Rect<D> RandomRect(Rng* rng) {
  Point<D> a, b;
  for (int i = 0; i < D; ++i) {
    a[i] = rng->Uniform(-10, 10);
    b[i] = rng->Uniform(-10, 10);
  }
  return Rect<D>::FromCorners(a, b);
}

template <int D>
Point<D> RandomPoint(Rng* rng) {
  Point<D> p;
  for (int i = 0; i < D; ++i) p[i] = rng->Uniform(-15, 15);
  return p;
}

template <int D>
void CheckDimension(uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 3000; ++trial) {
    const Rect<D> r = RandomRect<D>(&rng);
    const Point<D> p = RandomPoint<D>(&rng);
    ASSERT_NEAR(MinMaxDistSq(p, r), ReferenceMinMaxDistSq(p, r), 1e-9)
        << "dimension " << D << " trial " << trial;
    ASSERT_LE(MinDistSq(p, r),
              SampledBoxDistanceSq(p, r, &rng, 16) + 1e-9);
  }
}

class MetricsReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsReferenceTest, MinMaxDistMatchesLiteralDefinition2D) {
  CheckDimension<2>(GetParam());
}

TEST_P(MetricsReferenceTest, MinMaxDistMatchesLiteralDefinition3D) {
  CheckDimension<3>(GetParam() ^ 0x3);
}

TEST_P(MetricsReferenceTest, MinMaxDistMatchesLiteralDefinition4D) {
  CheckDimension<4>(GetParam() ^ 0x4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsReferenceTest,
                         ::testing::Values(17u, 1717u, 171717u));

TEST(MetricsReferenceTest, RectRectMinDistSymmetricAndConsistent) {
  Rng rng(18);
  for (int trial = 0; trial < 3000; ++trial) {
    const Rect2 a = RandomRect<2>(&rng);
    const Rect2 b = RandomRect<2>(&rng);
    const double ab = MinDistSq(a, b);
    const double ba = MinDistSq(b, a);
    ASSERT_DOUBLE_EQ(ab, ba);
    if (a.Intersects(b)) {
      ASSERT_DOUBLE_EQ(ab, 0.0);
    } else {
      ASSERT_GT(ab, 0.0);
    }
    // Point-in-box sampling upper-bounds the rect-rect distance.
    Point2 pa{{rng.Uniform(a.lo[0], a.hi[0]), rng.Uniform(a.lo[1], a.hi[1])}};
    Point2 pb{{rng.Uniform(b.lo[0], b.hi[0]), rng.Uniform(b.lo[1], b.hi[1])}};
    ASSERT_LE(ab, SquaredDistance(pa, pb) + 1e-9);
    // Degenerate rect reduces rect-rect to point-box distance.
    ASSERT_NEAR(MinDistSq(Rect2::FromPoint(pa), b), MinDistSq(pa, b), 1e-12);
  }
}

}  // namespace
}  // namespace spatial
