// Concurrency stress for the scatter-gather path, built for TSan
// (tools/tsan_check.sh): many threads drive one ShardRouter — kNN with the
// shared prune bound streaming, ranges, batches — while another thread
// scrapes the merged metrics document continuously. Every answer is
// checked byte-identical against a single-tree reference, so a data race
// that corrupts a bound or a merge shows up even without TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "db/spatial_db.h"
#include "shard/shard_router.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n) {
  Rng rng(4242);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

TEST(ShardStressTest, ConcurrentScatterGatherWithLiveScraping) {
  const auto data = MakeData(4000);

  // One private reference tree per client thread: the core library (and
  // a SpatialDb's single BufferPool) is single-threaded by design, so
  // the reference lookups must not share one pool across threads.
  constexpr int kThreads = 4;
  std::vector<std::unique_ptr<SpatialDb<2>>> references;
  for (int t = 0; t < kThreads; ++t) {
    SpatialDb<2>::Options db_options;
    db_options.page_size = 512;
    db_options.buffer_pages = 128;
    auto reference = SpatialDb<2>::CreateInMemory(db_options);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(reference->BulkLoadData(data, BulkLoadMethod::kStr).ok());
    references.push_back(
        std::make_unique<SpatialDb<2>>(std::move(*reference)));
  }

  ShardSet<2>::Options options;
  options.num_shards = 4;
  options.page_size = 512;
  options.buffer_pages = 64;
  options.service.num_workers = 2;
  options.service.frames_per_worker = 32;
  auto set = ShardSet<2>::Build(data, options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardRouter<2> router(set->get());

  constexpr int kQueriesPerThread = 150;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};

  // A scraper hammering the merged exposition (router counters, per-shard
  // collector walking live worker state, RPC families absent) while
  // queries run — the TSan target for the metrics path.
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string text = router.ScrapeMetrics();
      if (text.find("spatial_router_merge_ns") == std::string::npos) {
        mismatches.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SpatialDb<2>& reference = *references[t];
      Rng rng(1000 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        const uint32_t k = 1 + static_cast<uint32_t>(i % 16);
        QueryResponse<2> got = router.Execute(QueryRequest<2>::Knn(q, k));
        if (!got.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        KnnOptions knn;
        knn.k = k;
        auto want = KnnSearch<2>(reference.tree(), q, knn, nullptr);
        if (!want.ok() || want->size() != got.neighbors.size() ||
            (!got.neighbors.empty() &&
             std::memcmp(got.neighbors.data(), want->data(),
                         got.neighbors.size() * sizeof(Neighbor)) != 0)) {
          mismatches.fetch_add(1);
        }
        if (i % 10 == 0) {
          const Rect<2> window = Rect<2>::FromCorners(
              q, {{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}});
          QueryResponse<2> range =
              router.Execute(QueryRequest<2>::Range(window));
          if (!range.ok()) mismatches.fetch_add(1);
        }
        if (i % 25 == 0) {
          QueryResponse<2> batch = router.Execute(
              QueryRequest<2>::BatchKnn({q, {{0.5, 0.5}}}, 4));
          if (!batch.ok() || batch.batch_offsets.size() != 3) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  done.store(true);
  scraper.join();

  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace spatial
