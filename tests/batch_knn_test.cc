// The batched kNN API and the scratch arena are execution strategies, not
// algorithms: everything here asserts they reproduce the one-at-a-time
// KnnSearch answers exactly — same ids, bit-identical distances, identical
// per-query counters — on both the memory and the file backend, and that
// one scratch survives hundreds of sequential queries. Also covers the
// visit-order equivalence of the lazy-heap ABL path against full sorting.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/knn.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "db/spatial_db.h"
#include "rtree/bulk_load.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> UniformData(size_t n, uint64_t seed) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

std::vector<Point2> UniformQueries(const std::vector<Entry<2>>& data,
                                   size_t n, uint64_t seed) {
  Rng rng(seed);
  return GenerateQueries<2>(data, n, QueryDistribution::kUniform, 0.0, &rng);
}

void ExpectStatsEqual(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.leaf_nodes_visited, b.leaf_nodes_visited);
  EXPECT_EQ(a.internal_nodes_visited, b.internal_nodes_visited);
  EXPECT_EQ(a.objects_examined, b.objects_examined);
  EXPECT_EQ(a.abl_entries_generated, b.abl_entries_generated);
  EXPECT_EQ(a.pruned_s1, b.pruned_s1);
  EXPECT_EQ(a.pruned_s3, b.pruned_s3);
  EXPECT_EQ(a.pruned_leaf, b.pruned_leaf);
  EXPECT_EQ(a.distance_computations, b.distance_computations);
}

// Bitwise comparison: the batch is required to be *byte*-identical to the
// sequential answers, not merely tie-equivalent.
void ExpectNeighborsIdentical(const Neighbor* a, const Neighbor* b,
                              size_t n) {
  if (n == 0) return;
  EXPECT_EQ(std::memcmp(a, b, n * sizeof(Neighbor)), 0);
}

// Runs every query twice — sequentially via KnnSearch and as one batch via
// KnnSearchBatch through `scratch` — and asserts identical answers + stats.
void CheckBatchMatchesSequential(const RTree<2>& tree,
                                 const std::vector<Point2>& queries,
                                 const KnnOptions& options,
                                 QueryScratch<2>* scratch) {
  BatchKnnResult batch;
  ASSERT_TRUE(KnnSearchBatch<2>(tree, queries.data(), queries.size(), options,
                                scratch, &batch)
                  .ok());
  ASSERT_EQ(batch.num_queries(), queries.size());
  ASSERT_EQ(batch.stats.size(), queries.size());
  ASSERT_EQ(batch.offsets.front(), 0u);
  ASSERT_EQ(batch.offsets.back(), batch.neighbors.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats seq_stats;
    auto seq = KnnSearch<2>(tree, queries[i], options, &seq_stats);
    ASSERT_TRUE(seq.ok());
    const auto [ptr, count] = batch.Query(i);
    ASSERT_EQ(count, seq->size()) << "query " << i;
    ExpectNeighborsIdentical(ptr, seq->data(), count);
    ExpectStatsEqual(batch.stats[i], seq_stats);
  }
}

TEST(BatchKnnTest, MatchesSequentialOnMemoryBackend) {
  auto data = UniformData(3000, /*seed=*/42);
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/256);
  index.InsertAll(data);
  auto queries = UniformQueries(data, 60, /*seed=*/7);

  QueryScratch<2> scratch;
  for (uint32_t k : {1u, 4u, 16u}) {
    KnnOptions options;
    options.k = k;
    CheckBatchMatchesSequential(*index.tree, queries, options, &scratch);
  }
}

TEST(BatchKnnTest, MatchesSequentialOnBulkLoadedTree) {
  auto data = UniformData(5000, /*seed=*/1337);
  DiskManager disk(1024);
  BufferPool pool(&disk, 512);
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
  ASSERT_TRUE(loaded.ok());
  auto queries = UniformQueries(data, 50, /*seed=*/9);

  QueryScratch<2> scratch;
  for (uint32_t k : {1u, 4u, 16u}) {
    KnnOptions options;
    options.k = k;
    CheckBatchMatchesSequential(*loaded, queries, options, &scratch);
  }
}

TEST(BatchKnnTest, MatchesSequentialOnFileBackend) {
  const std::string path = ::testing::TempDir() + "batch_knn_test.sdb";
  auto data = UniformData(4000, /*seed=*/5);
  {
    SpatialDb<2>::Options options;
    options.page_size = 1024;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto reopened = SpatialDb<2>::OpenFromFileReadOnly(path, 1024, 256);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto queries = UniformQueries(data, 40, /*seed=*/11);

  QueryScratch<2> scratch;
  for (uint32_t k : {1u, 4u, 16u}) {
    KnnOptions options;
    options.k = k;
    CheckBatchMatchesSequential(reopened->tree(), queries, options, &scratch);
  }
  std::remove(path.c_str());
}

// One scratch must survive arbitrarily many sequential queries: 150 queries
// and three interleaved k values through the same arena, each answer checked
// against brute force.
TEST(BatchKnnTest, ScratchReuseAcrossManyQueries) {
  auto data = UniformData(2500, /*seed=*/77);
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/256);
  index.InsertAll(data);
  auto queries = UniformQueries(data, 150, /*seed=*/3);

  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  for (size_t i = 0; i < queries.size(); ++i) {
    KnnOptions options;
    options.k = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 5 : 16;
    ASSERT_TRUE(KnnSearchInto<2>(*index.tree, queries[i], options, &scratch,
                                 &out, nullptr)
                    .ok());
    ExpectKnnMatchesBruteForce(data, queries[i], options.k, out);
  }
}

TEST(BatchKnnTest, EmptyTreeAndOversizedK) {
  TestIndex2D index;
  QueryScratch<2> scratch;
  std::vector<Neighbor> out{{1, 1.0}};  // stale content must be cleared
  KnnOptions options;
  options.k = 8;
  ASSERT_TRUE(KnnSearchInto<2>(*index.tree, Point2{{0.5, 0.5}}, options,
                               &scratch, &out, nullptr)
                  .ok());
  EXPECT_TRUE(out.empty());

  BatchKnnResult batch;
  const std::vector<Point2> queries = {Point2{{0.1, 0.2}}, Point2{{0.9, 0.9}}};
  ASSERT_TRUE(KnnSearchBatch<2>(*index.tree, queries.data(), queries.size(),
                                options, &scratch, &batch)
                  .ok());
  EXPECT_EQ(batch.num_queries(), 2u);
  EXPECT_TRUE(batch.neighbors.empty());

  // k larger than the tree returns every object, still batch == sequential.
  auto data = UniformData(10, /*seed=*/2);
  index.InsertAll(data);
  CheckBatchMatchesSequential(*index.tree, queries, options, &scratch);
}

TEST(BatchKnnTest, ZeroQueriesIsANoOp) {
  TestIndex2D index;
  index.InsertAll(UniformData(100, /*seed=*/4));
  QueryScratch<2> scratch;
  BatchKnnResult batch;
  ASSERT_TRUE(
      KnnSearchBatch<2>(*index.tree, nullptr, 0, KnnOptions{}, &scratch,
                        &batch)
          .ok());
  EXPECT_EQ(batch.num_queries(), 0u);
}

// MINDIST ordering takes the lazy-heap ABL path; `force_full_sort`
// switches back to full sorting. Both must visit the exact same node
// sequence — the heap is an evaluation-order optimization, not a
// traversal change — for k = 1 (where S1 compacts the ABL first) and for
// larger k (pure S3 pruning) alike.
TEST(BatchKnnTest, LazyHeapVisitsIdenticalNodeOrder) {
  auto data = UniformData(4000, /*seed=*/21);
  DiskManager disk(512);
  BufferPool pool(&disk, 512);
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
  ASSERT_TRUE(loaded.ok());
  auto queries = UniformQueries(data, 80, /*seed=*/13);

  QueryScratch<2> scratch;
  std::vector<Neighbor> heap_out, sort_out;
  for (uint32_t k : {1u, 10u}) {
    for (const Point2& q : queries) {
      std::vector<uint64_t> heap_trace, sort_trace;
      KnnOptions options;  // default kMinDist ordering: lazy-heap eligible
      options.k = k;
      options.visit_trace = &heap_trace;
      QueryStats heap_stats;
      ASSERT_TRUE(KnnSearchInto<2>(*loaded, q, options, &scratch, &heap_out,
                                   &heap_stats)
                      .ok());

      options.force_full_sort = true;
      options.visit_trace = &sort_trace;
      QueryStats sort_stats;
      ASSERT_TRUE(KnnSearchInto<2>(*loaded, q, options, &scratch, &sort_out,
                                   &sort_stats)
                      .ok());

      ASSERT_FALSE(heap_trace.empty());
      EXPECT_EQ(heap_trace, sort_trace);
      ASSERT_EQ(heap_out.size(), sort_out.size());
      ExpectNeighborsIdentical(heap_out.data(), sort_out.data(),
                               heap_out.size());
      ExpectStatsEqual(heap_stats, sort_stats);
    }
  }
}

// End-to-end through the service: one kBatchKnn request == the same queries
// submitted individually as kKnn.
TEST(BatchKnnTest, ServiceBatchMatchesIndividualRequests) {
  auto data = UniformData(3000, /*seed=*/99);
  auto db = SpatialDb<2>::CreateInMemory({});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
  ASSERT_TRUE(db->Flush().ok());

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto queries = UniformQueries(data, 30, /*seed=*/17);
  const uint32_t k = 4;

  QueryResponse<2> batch =
      (*service)->Execute(QueryRequest<2>::BatchKnn(queries, k));
  ASSERT_TRUE(batch.ok()) << batch.status.ToString();
  ASSERT_EQ(batch.batch_offsets.size(), queries.size() + 1);
  ASSERT_EQ(batch.batch_offsets.back(), batch.neighbors.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResponse<2> single =
        (*service)->Execute(QueryRequest<2>::Knn(queries[i], k));
    ASSERT_TRUE(single.ok()) << single.status.ToString();
    const size_t begin = batch.batch_offsets[i];
    const size_t count = batch.batch_offsets[i + 1] - begin;
    ASSERT_EQ(count, single.neighbors.size()) << "query " << i;
    ExpectNeighborsIdentical(batch.neighbors.data() + begin,
                             single.neighbors.data(), count);
  }
}

}  // namespace
}  // namespace spatial
