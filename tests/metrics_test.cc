#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "geom/metrics.h"

namespace spatial {
namespace {

// --------------------------------------------------------------------------
// MINDIST examples (hand-computed).

TEST(MinDistTest, ZeroInside) {
  Rect2 r{{{0, 0}}, {{2, 2}}};
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{1.0, 1.0}}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{0.0, 2.0}}, r), 0.0);  // boundary
}

TEST(MinDistTest, FaceProjection) {
  Rect2 r{{{0, 0}}, {{2, 2}}};
  // Left of the box: distance to the x = 0 face.
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{-3.0, 1.0}}, r), 9.0);
  // Above: distance to the y = 2 face.
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{1.0, 5.0}}, r), 9.0);
}

TEST(MinDistTest, CornerDistance) {
  Rect2 r{{{0, 0}}, {{2, 2}}};
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{-3.0, -4.0}}, r), 25.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{5.0, 6.0}}, r), 9.0 + 16.0);
}

TEST(MinDistTest, DegenerateRectEqualsPointDistance) {
  Rect2 r = Rect2::FromPoint({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(MinDistSq(Point2{{4.0, 5.0}}, r), 25.0);
}

// --------------------------------------------------------------------------
// MINMAXDIST examples.

TEST(MinMaxDistTest, DegenerateRectEqualsPointDistance) {
  Rect2 r = Rect2::FromPoint({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(MinMaxDistSq(Point2{{4.0, 5.0}}, r), 25.0);
}

TEST(MinMaxDistTest, HandComputedSquare) {
  // Unit square, query at the origin corner. For each dimension k the
  // candidate is |p_k - nearer plane|^2 + |p_other - farther plane|^2 =
  // 0 + 1 = 1 for both axes.
  Rect2 r{{{0, 0}}, {{1, 1}}};
  EXPECT_DOUBLE_EQ(MinMaxDistSq(Point2{{0.0, 0.0}}, r), 1.0);
}

TEST(MinMaxDistTest, HandComputedOffsetQuery) {
  // Box [0,2]x[0,2], query (-1, 1) (midpoint in y).
  // k = x: nearer x-plane 0 -> 1; farther y-plane (y=0 or 2, both |dy|=1)
  //   candidate = 1 + 1 = 2.
  // k = y: nearer y-plane (1 <= mid) -> lo=0: |1-0|^2 = 1; farther x-plane
  //   x=2 -> |(-1)-2|^2 = 9; candidate = 10.
  // MINMAXDIST^2 = 2.
  Rect2 r{{{0, 0}}, {{2, 2}}};
  EXPECT_DOUBLE_EQ(MinMaxDistSq(Point2{{-1.0, 1.0}}, r), 2.0);
}

TEST(MaxDistTest, FarthestCorner) {
  Rect2 r{{{0, 0}}, {{2, 2}}};
  EXPECT_DOUBLE_EQ(MaxDistSq(Point2{{-1.0, -1.0}}, r), 9.0 + 9.0);
  EXPECT_DOUBLE_EQ(MaxDistSq(Point2{{1.0, 1.0}}, r), 2.0);  // center
}

TEST(MetricsTest, NonSquaredWrappersAreSqrt) {
  Rect2 r{{{0, 0}}, {{2, 2}}};
  Point2 p{{-3.0, 1.0}};
  EXPECT_DOUBLE_EQ(MinDist(p, r), 3.0);
  EXPECT_DOUBLE_EQ(MaxDist(p, r), std::sqrt(MaxDistSq(p, r)));
  EXPECT_DOUBLE_EQ(MinMaxDist(p, r), std::sqrt(MinMaxDistSq(p, r)));
}

// --------------------------------------------------------------------------
// Property sweep: the paper's theorems on random rectangles.
//
// For random boxes and random points, with objects placed on the box faces
// (as the MBR face property guarantees), verify:
//   T1: MINDIST <= distance to any enclosed object.
//   T2: some face-touching object lies within MINMAXDIST.
//   Ordering: MINDIST <= MINMAXDIST <= MAXDIST.

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, TheoremsHoldOnRandomBoxes2D) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    Rect2 r = Rect2::FromCorners(
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}},
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}});
    Point2 p{{rng.Uniform(-20, 20), rng.Uniform(-20, 20)}};

    const double min_d = MinDistSq(p, r);
    const double minmax_d = MinMaxDistSq(p, r);
    const double max_d = MaxDistSq(p, r);

    EXPECT_LE(min_d, minmax_d + 1e-12);
    EXPECT_LE(minmax_d, max_d + 1e-12);

    // T1: any point inside the box is at least MINDIST away.
    for (int j = 0; j < 8; ++j) {
      Point2 obj{{rng.Uniform(r.lo[0], r.hi[0]),
                  rng.Uniform(r.lo[1], r.hi[1])}};
      EXPECT_GE(SquaredDistance(p, obj), min_d - 1e-9);
      EXPECT_LE(SquaredDistance(p, obj), max_d + 1e-9);
    }

    // T2: place one object on every face (the minimality guarantee of an
    // MBR); the nearest of them must be within MINMAXDIST.
    std::vector<Point2> face_objects;
    for (int dim = 0; dim < 2; ++dim) {
      for (double coord : {r.lo[dim], r.hi[dim]}) {
        Point2 obj;
        obj[dim] = coord;
        const int other = 1 - dim;
        obj[other] = rng.Uniform(r.lo[other], r.hi[other]);
        face_objects.push_back(obj);
      }
    }
    double nearest = std::numeric_limits<double>::infinity();
    for (const Point2& obj : face_objects) {
      nearest = std::min(nearest, SquaredDistance(p, obj));
    }
    EXPECT_LE(nearest, minmax_d + 1e-9)
        << "face-touching object beyond MINMAXDIST";
  }
}

TEST_P(MetricsPropertyTest, TheoremsHoldOnRandomBoxes3D) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 1000; ++iter) {
    Point3 a{{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5)}};
    Point3 b{{rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5)}};
    Rect3 r = Rect3::FromCorners(a, b);
    Point3 p{{rng.Uniform(-10, 10), rng.Uniform(-10, 10),
              rng.Uniform(-10, 10)}};

    const double min_d = MinDistSq(p, r);
    const double minmax_d = MinMaxDistSq(p, r);
    const double max_d = MaxDistSq(p, r);
    EXPECT_LE(min_d, minmax_d + 1e-12);
    EXPECT_LE(minmax_d, max_d + 1e-12);

    // One object per face; nearest must be within MINMAXDIST.
    double nearest = std::numeric_limits<double>::infinity();
    for (int dim = 0; dim < 3; ++dim) {
      for (double coord : {r.lo[dim], r.hi[dim]}) {
        Point3 obj;
        for (int o = 0; o < 3; ++o) obj[o] = rng.Uniform(r.lo[o], r.hi[o]);
        obj[dim] = coord;
        nearest = std::min(nearest, SquaredDistance(p, obj));
      }
    }
    EXPECT_LE(nearest, minmax_d + 1e-9);
  }
}

TEST_P(MetricsPropertyTest, MinDistIsExactDistanceToClosestBoxPoint) {
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 2000; ++iter) {
    Rect2 r = Rect2::FromCorners(
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}},
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)}});
    Point2 p{{rng.Uniform(-20, 20), rng.Uniform(-20, 20)}};
    // Closest point of the box by clamping.
    Point2 clamped{{std::clamp(p[0], r.lo[0], r.hi[0]),
                    std::clamp(p[1], r.lo[1], r.hi[1])}};
    EXPECT_NEAR(MinDistSq(p, r), SquaredDistance(p, clamped), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(1, 42, 2026, 777, 31337));

}  // namespace
}  // namespace spatial
