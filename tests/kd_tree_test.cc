#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "baselines/kd_tree.h"
#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "data/workload.h"

namespace spatial {
namespace {

TEST(KdTreeTest, EmptyTree) {
  KdTree<2> tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  auto result = tree.Knn({{0.5, 0.5}}, 3, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(KdTreeTest, RejectsZeroK) {
  KdTree<2> tree({});
  EXPECT_TRUE(tree.Knn({{0.0, 0.0}}, 0, nullptr).status().IsInvalidArgument());
}

TEST(KdTreeTest, SingleElement) {
  KdTree<2> tree({Entry<2>{Rect2::FromPoint({{1.0, 2.0}}), 42}});
  auto result = tree.Knn({{4.0, 6.0}}, 1, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 42u);
  EXPECT_DOUBLE_EQ((*result)[0].dist_sq, 25.0);
}

TEST(KdTreeTest, BalancedHeight) {
  Rng rng(1);
  auto data =
      MakePointEntries(GenerateUniform<2>(4096, UnitBounds<2>(), &rng));
  KdTree<2> tree(data);
  EXPECT_EQ(tree.size(), 4096u);
  // Median splits give height <= ceil(log2(n)) + 1.
  EXPECT_LE(tree.height(), 14);
}

class KdTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(KdTreePropertyTest, MatchesBruteForceUniform) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  auto data =
      MakePointEntries(GenerateUniform<2>(2500, UnitBounds<2>(), &rng));
  KdTree<2> tree(data);
  auto queries = GenerateQueries<2>(data, 60, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    auto result = tree.Knn(q, k, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = LinearScanKnn<2>(data, q, k, nullptr);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq);
    }
  }
}

TEST_P(KdTreePropertyTest, MatchesBruteForceClustered) {
  const auto [seed, k] = GetParam();
  Rng rng(seed ^ 0xabc);
  auto data = MakePointEntries(
      GenerateClustered<2>(2000, UnitBounds<2>(), ClusteredOptions{}, &rng));
  KdTree<2> tree(data);
  auto queries = GenerateQueries<2>(data, 40, QueryDistribution::kPerturbed,
                                    0.03, &rng);
  for (const Point2& q : queries) {
    auto result = tree.Knn(q, k, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = LinearScanKnn<2>(data, q, k, nullptr);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndK, KdTreePropertyTest,
                         ::testing::Combine(::testing::Values(3u, 33u, 333u),
                                            ::testing::Values(1u, 9u)));

TEST(KdTreeTest, ThreeDimensional) {
  Rng rng(5);
  std::vector<Entry<3>> data;
  for (uint64_t i = 0; i < 1000; ++i) {
    Point3 p{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    data.push_back(Entry<3>{Rect3::FromPoint(p), i});
  }
  KdTree<3> tree(data);
  for (int i = 0; i < 25; ++i) {
    Point3 q{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto result = tree.Knn(q, 4, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = LinearScanKnn<3>(data, q, 4, nullptr);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_DOUBLE_EQ((*result)[r].dist_sq, expected[r].dist_sq);
    }
  }
}

TEST(KdTreeTest, SearchPrunesMostNodes) {
  Rng rng(6);
  auto data =
      MakePointEntries(GenerateUniform<2>(20000, UnitBounds<2>(), &rng));
  KdTree<2> tree(data);
  KdQueryStats stats;
  auto result = tree.Knn({{0.5, 0.5}}, 1, &stats);
  ASSERT_TRUE(result.ok());
  // The FBF bound makes 1-NN logarithmic-ish; far below a full scan.
  EXPECT_LT(stats.nodes_visited, 600u);
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  std::vector<Entry<2>> data(50, Entry<2>{Rect2::FromPoint({{0.5, 0.5}}), 0});
  for (size_t i = 0; i < data.size(); ++i) data[i].id = i;
  KdTree<2> tree(data);
  auto result = tree.Knn({{0.5, 0.5}}, 10, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (const Neighbor& n : *result) {
    EXPECT_DOUBLE_EQ(n.dist_sq, 0.0);
  }
}

}  // namespace
}  // namespace spatial
