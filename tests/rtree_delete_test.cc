#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "data/uniform.h"
#include "rtree/rtree.h"
#include "rtree/validator.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 512;

struct TestIndex {
  explicit TestIndex(RTreeOptions options, uint32_t buffer_pages = 64)
      : disk(kPageSize), pool(&disk, buffer_pages) {
    auto created = RTree<2>::Create(&pool, options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    tree.emplace(std::move(created).value());
  }

  DiskManager disk;
  BufferPool pool;
  std::optional<RTree<2>> tree;
};

TEST(RTreeDeleteTest, DeleteFromEmptyTreeReturnsFalse) {
  TestIndex index(RTreeOptions{});
  auto removed = index.tree->Delete(Rect2::FromPoint({{0.5, 0.5}}), 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(*removed);
}

TEST(RTreeDeleteTest, DeleteRejectsInvalidRect) {
  TestIndex index(RTreeOptions{});
  Rect2 bad;
  bad.lo = {{2.0, 2.0}};
  bad.hi = {{1.0, 1.0}};
  EXPECT_TRUE(index.tree->Delete(bad, 1).status().IsInvalidArgument());
}

TEST(RTreeDeleteTest, InsertThenDeleteSingle) {
  TestIndex index(RTreeOptions{});
  const Rect2 r = Rect2::FromPoint({{0.5, 0.5}});
  ASSERT_TRUE(index.tree->Insert(r, 42).ok());
  auto removed = index.tree->Delete(r, 42);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  EXPECT_EQ(index.tree->size(), 0u);
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(r, &found).ok());
  EXPECT_TRUE(found.empty());
}

TEST(RTreeDeleteTest, DeleteRequiresExactIdMatch) {
  TestIndex index(RTreeOptions{});
  const Rect2 r = Rect2::FromPoint({{0.5, 0.5}});
  ASSERT_TRUE(index.tree->Insert(r, 1).ok());
  auto wrong_id = index.tree->Delete(r, 2);
  ASSERT_TRUE(wrong_id.ok());
  EXPECT_FALSE(*wrong_id);
  EXPECT_EQ(index.tree->size(), 1u);
}

TEST(RTreeDeleteTest, DeleteRequiresExactMbrMatch) {
  TestIndex index(RTreeOptions{});
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  auto wrong_rect = index.tree->Delete(Rect2::FromPoint({{0.5, 0.6}}), 1);
  ASSERT_TRUE(wrong_rect.ok());
  EXPECT_FALSE(*wrong_rect);
}

TEST(RTreeDeleteTest, DeleteOneOfDuplicates) {
  TestIndex index(RTreeOptions{});
  const Rect2 r = Rect2::FromPoint({{0.5, 0.5}});
  ASSERT_TRUE(index.tree->Insert(r, 7).ok());
  ASSERT_TRUE(index.tree->Insert(r, 7).ok());
  auto removed = index.tree->Delete(r, 7);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(*removed);
  EXPECT_EQ(index.tree->size(), 1u);  // only one copy removed
}

class RTreeDeleteParamTest
    : public ::testing::TestWithParam<std::tuple<SplitAlgorithm, uint64_t>> {
};

TEST_P(RTreeDeleteParamTest, DeleteHalfKeepsTreeValidAndExact) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(options);
  Rng rng(seed);
  auto points = GenerateUniform<2>(2000, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  // Delete every even id.
  for (size_t i = 0; i < points.size(); i += 2) {
    auto removed = index.tree->Delete(Rect2::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok()) << removed.status().ToString();
    ASSERT_TRUE(*removed) << "id " << i;
  }
  EXPECT_EQ(index.tree->size(), points.size() / 2);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Exactly the odd ids remain findable.
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<Entry<2>> found;
    ASSERT_TRUE(
        index.tree->Search(Rect2::FromPoint(points[i]), &found).ok());
    bool present = false;
    for (const auto& e : found) present |= (e.id == i);
    EXPECT_EQ(present, i % 2 == 1) << "id " << i;
  }
}

TEST_P(RTreeDeleteParamTest, DeleteEverythingShrinksToEmptyRoot) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(options);
  Rng rng(seed ^ 0xdead);
  auto points = GenerateUniform<2>(600, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  Rng order_rng(seed);
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  order_rng.Shuffle(&order);
  for (size_t i : order) {
    auto removed = index.tree->Delete(Rect2::FromPoint(points[i]), i);
    ASSERT_TRUE(removed.ok()) << removed.status().ToString();
    ASSERT_TRUE(*removed);
  }
  EXPECT_EQ(index.tree->size(), 0u);
  EXPECT_EQ(index.tree->height(), 1);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->nodes, 1u);
  // The storage must not leak pages: a single empty root remains.
  EXPECT_EQ(index.disk.live_pages(), 1u);
}

TEST_P(RTreeDeleteParamTest, InterleavedInsertDeleteChurn) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex index(options);
  Rng rng(seed ^ 0xc0ffee);
  std::vector<std::pair<Rect2, uint64_t>> live;
  uint64_t next_id = 0;
  for (int round = 0; round < 3000; ++round) {
    const bool do_insert = live.empty() || rng.NextBool(0.6);
    if (do_insert) {
      Rect2 r =
          Rect2::FromPoint({{rng.Uniform(0, 1), rng.Uniform(0, 1)}});
      ASSERT_TRUE(index.tree->Insert(r, next_id).ok());
      live.push_back({r, next_id});
      ++next_id;
    } else {
      const size_t pick = rng.NextBounded(live.size());
      auto removed =
          index.tree->Delete(live[pick].first, live[pick].second);
      ASSERT_TRUE(removed.ok());
      ASSERT_TRUE(*removed);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(index.tree->size(), live.size());
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllSplits, RTreeDeleteParamTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kLinear,
                                         SplitAlgorithm::kQuadratic,
                                         SplitAlgorithm::kRStar),
                       ::testing::Values(21u, 4711u)));

}  // namespace
}  // namespace spatial
