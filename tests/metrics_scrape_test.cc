// Scrapes /metrics concurrently with a mixed read/write serving workload
// and checks the exposition is *consistent*, not just present:
//
//   * a scraper thread pulls the full text exposition in a loop while
//     readers run kNN queries and a writer lands inserts/deletes and
//     checkpoints — every scrape must parse, contain the required series,
//     and contain no NaN sample;
//   * chosen counters must be monotone across scrapes;
//   * after quiescing, the scraped page-access counters must equal the
//     summed per-query QueryStats (the read workload is kNN-only, the one
//     kind whose traversal fills QueryStats completely), and the WAL fsync
//     histogram must be non-empty (writes really group-committed).
//
// Runs under tools/tsan_check.sh: the scrape path crosses every worker's
// live counters while they are being written. `--smoke` shortens the run
// for tier-1 ctest.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/query_service.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

bool g_smoke = false;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 256; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

// Value of series `name{labels}` (labels == raw label body, "" for none);
// -1 when absent.
double SeriesValue(const std::string& text, const std::string& name,
                   const std::string& labels = "") {
  std::string needle = name;
  if (!labels.empty()) {
    needle += '{';
    needle += labels;
    needle += '}';
  }
  needle += ' ';
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Must be at line start and, for the label-less form, not actually a
    // labelled series (name + ' ' can't false-match, but name at line
    // start could be a prefix of a longer name — require exact match).
    if (pos != 0 && text[pos - 1] != '\n') {
      pos += 1;
      continue;
    }
    const char* value = text.c_str() + pos + needle.size();
    return std::strtod(value, nullptr);
  }
  return -1.0;
}

TEST(MetricsScrapeTest, ConcurrentScrapeIsConsistent) {
  const std::string path = TempPath("metrics_scrape.sdb");
  CleanupDb(path);

  const int kWrites = g_smoke ? 200 : 2000;
  const int kQueriesPerThread = g_smoke ? 300 : 3000;
  const int kQueryThreads = 3;
  const int kCheckpointEvery = 64;

  QueryService<2>::Options options;
  options.num_workers = kQueryThreads;
  options.frames_per_worker = 32;
  options.trace_sample_per_million = 20'000;  // 2%: slow-log sees traffic
  options.slow_query_threshold_ns = 1;        // everything is "slow"
  ServingOptions serving;
  auto service = QueryService<2>::OpenServing(path, serving, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scrape_failures{0};

  std::thread scraper([&] {
    double last_queries = -1.0;
    double last_nodes = -1.0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string text = (*service)->ScrapeMetrics();
      ++scrapes;
      bool ok = true;
      // Required series, read path. (-1 == absent.)
      for (const char* series : {"spatial_workers", "spatial_uptime_seconds",
                                 "spatial_buffer_logical_fetches_total",
                                 "spatial_buffer_hit_rate",
                                 "spatial_io_physical_reads_total",
                                 "spatial_query_latency_ns_count",
                                 "spatial_queue_wait_ns_count",
                                 "spatial_slow_queries_recorded_total"}) {
        if (SeriesValue(text, series) < 0.0) ok = false;
      }
      // Required series, serving mode.
      for (const char* series :
           {"spatial_snapshot_epoch", "spatial_last_lsn",
            "spatial_retired_pages", "spatial_wal_fsync_ns_count",
            "spatial_checkpoints_total"}) {
        if (SeriesValue(text, series) < 0.0) ok = false;
      }
      if (SeriesValue(text, "spatial_queries_total", "outcome=\"ok\"") < 0.0) {
        ok = false;
      }
      if (SeriesValue(text, "spatial_queries_by_kind_total",
                      "kind=\"knn\"") < 0.0) {
        ok = false;
      }
      if (text.find("NaN") != std::string::npos) ok = false;
      // Monotone counters across scrapes.
      const double queries =
          SeriesValue(text, "spatial_queries_total", "outcome=\"ok\"");
      const double nodes = SeriesValue(
          text, "spatial_query_nodes_visited_total", "kind=\"knn\"");
      if (queries < last_queries || nodes < last_nodes) ok = false;
      last_queries = queries;
      last_nodes = nodes;
      if (!ok) ++scrape_failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::thread writer([&] {
    Rng rng(99);
    std::vector<std::future<QueryResponse<2>>> pending;
    uint64_t next_id = 1;
    for (int i = 0; i < kWrites; ++i) {
      Rect<2> r;
      r.lo[0] = rng.Uniform(0.0, 1.0);
      r.lo[1] = rng.Uniform(0.0, 1.0);
      r.hi[0] = r.lo[0] + 0.004;
      r.hi[1] = r.lo[1] + 0.004;
      pending.push_back(
          (*service)->Submit(QueryRequest<2>::Insert(r, next_id++)));
      if (i % kCheckpointEvery == kCheckpointEvery - 1) {
        pending.push_back((*service)->Submit(QueryRequest<2>::Checkpoint()));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    for (auto& f : pending) {
      const QueryResponse<2> resp = f.get();
      EXPECT_TRUE(resp.ok()) << resp.status.ToString();
    }
  });

  // kNN-only readers: the one read kind whose traversal fills QueryStats,
  // so the final counter cross-check below is exact.
  std::vector<std::thread> readers;
  std::atomic<uint64_t> queries_ok{0};
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(7 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Point<2> q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        const QueryResponse<2> resp =
            (*service)->Execute(QueryRequest<2>::Knn(q, 4));
        if (resp.ok()) ++queries_ok;
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(scrape_failures.load(), 0u)
      << scrape_failures.load() << " of " << scrapes.load()
      << " concurrent scrapes were missing series, non-monotone, or NaN";
  EXPECT_EQ(queries_ok.load(),
            static_cast<uint64_t>(kQueryThreads) * kQueriesPerThread);

  // Quiesced cross-checks: exposition vs the stats API it is built from.
  const std::string text = (*service)->ScrapeMetrics();
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(SeriesValue(text, "spatial_query_nodes_visited_total",
                        "kind=\"knn\""),
            static_cast<double>(stats.query.nodes_visited));
  EXPECT_EQ(SeriesValue(text, "spatial_buffer_logical_fetches_total"),
            static_cast<double>(stats.buffer.logical_fetches));
  EXPECT_EQ(SeriesValue(text, "spatial_queries_total", "outcome=\"ok\""),
            static_cast<double>(stats.queries_ok));
  EXPECT_EQ(SeriesValue(text, "spatial_query_latency_ns_count"),
            static_cast<double>(stats.latency.total_count));
  // All reads were kNN, and only read kinds flow through the worker pool
  // (writes ride the writer thread): per-kind count == queries_ok.
  EXPECT_EQ(SeriesValue(text, "spatial_queries_by_kind_total",
                        "kind=\"knn\""),
            static_cast<double>(stats.queries_ok));
  // Writes really flowed through the WAL group-commit path.
  EXPECT_GT(SeriesValue(text, "spatial_wal_fsync_ns_count"), 0.0);
  EXPECT_GT(SeriesValue(text, "spatial_checkpoints_total"), 0.0);
  // The slow-query log saw traffic (threshold 1 ns catches everything).
  EXPECT_GT(SeriesValue(text, "spatial_slow_queries_recorded_total"), 0.0);
  const std::string json = (*service)->slow_query_log().DumpJson();
  EXPECT_NE(json.find("\"kind\":\"knn\""), std::string::npos);

  (*service)->Shutdown();
  CleanupDb(path);
}

}  // namespace
}  // namespace spatial

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") spatial::g_smoke = true;
  }
  return RUN_ALL_TESTS();
}
