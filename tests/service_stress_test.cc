// Concurrency stress: N worker threads × M random kNN queries through the
// service must be byte-identical to the single-threaded KnnSearch answers
// on the same tree. Runs over both backends (in-memory shared disk and a
// real file read via pread) and with client-side submission concurrency.
// tools/tsan_check.sh runs this binary under ThreadSanitizer.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/knn.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "db/spatial_db.h"
#include "service/query_service.h"

namespace spatial {
namespace {

constexpr uint32_t kWorkers = 8;
constexpr uint32_t kClientThreads = 4;
constexpr size_t kQueriesPerClient = 150;
constexpr uint32_t kK = 10;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

struct QueryCase {
  Point2 query;
  std::vector<Neighbor> expected;
};

std::vector<Entry<2>> MakeData(size_t n) {
  Rng rng(20250806);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

// Golden answers from the plain single-threaded path on the same tree.
std::vector<QueryCase> MakeGolden(const SpatialDb<2>& db, size_t count) {
  Rng rng(1234);
  std::vector<QueryCase> cases(count);
  for (auto& c : cases) {
    c.query = Point2{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    KnnOptions knn;
    knn.k = kK;
    auto expected = KnnSearch<2>(db.tree(), c.query, knn, nullptr);
    EXPECT_TRUE(expected.ok());
    c.expected = std::move(expected).value();
  }
  return cases;
}

// Every neighbor must match bit-for-bit: same id, same squared distance.
void ExpectByteIdentical(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  if (!got.empty()) {
    ASSERT_EQ(std::memcmp(got.data(), expected.data(),
                          got.size() * sizeof(Neighbor)),
              0);
  }
}

// Hammers `service` from kClientThreads submitters, each drawing query
// indices round-robin from the shared golden set, and checks every answer.
void RunStress(QueryService<2>& service,
               const std::vector<QueryCase>& golden) {
  std::vector<std::thread> clients;
  std::vector<int> failures(kClientThreads, 0);
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<QueryResponse<2>>> futures;
      std::vector<size_t> indices;
      futures.reserve(kQueriesPerClient);
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const size_t idx = (t + i * kClientThreads) % golden.size();
        indices.push_back(idx);
        futures.push_back(
            service.Submit(QueryRequest<2>::Knn(golden[idx].query, kK)));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        QueryResponse<2> response = futures[i].get();
        const QueryCase& c = golden[indices[i]];
        if (!response.ok() ||
            response.neighbors.size() != c.expected.size() ||
            (!c.expected.empty() &&
             std::memcmp(response.neighbors.data(), c.expected.data(),
                         c.expected.size() * sizeof(Neighbor)) != 0)) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "client " << t << " saw wrong answers";
  }
}

// Call only once all traffic has drained (counters are exact when idle).
void CheckStats(QueryService<2>& service, uint64_t expected_min_queries) {
  const ServiceStats stats = service.Stats();
  EXPECT_GE(stats.queries_ok, expected_min_queries);
  EXPECT_EQ(stats.queries_failed, 0u);
  // Every query either ran resident (no buffer-pool traffic at all) or
  // fetched at least the root page on the paged path.
  EXPECT_GE(stats.resident_hits + stats.buffer.logical_fetches,
            stats.queries_ok);
  EXPECT_EQ(stats.latency.total_count, stats.TotalQueries());
}

TEST(ServiceStressTest, InMemoryBackendManyThreads) {
  const auto data = MakeData(4000);
  SpatialDb<2>::Options db_options;
  db_options.page_size = 512;
  db_options.buffer_pages = 64;
  auto db = SpatialDb<2>::CreateInMemory(db_options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());

  const auto golden = MakeGolden(*db, 100);

  QueryService<2>::Options options;
  options.num_workers = kWorkers;
  options.frames_per_worker = 8;  // tiny pools force constant eviction
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RunStress(**service, golden);
  CheckStats(**service,
             static_cast<uint64_t>(kClientThreads) * kQueriesPerClient);
}

TEST(ServiceStressTest, FileBackendManyThreadsViaPread) {
  const std::string path = TempPath("service_stress.sdb");
  const auto data = MakeData(4000);
  {
    SpatialDb<2>::Options db_options;
    db_options.page_size = 512;
    auto db = SpatialDb<2>::CreateOnFile(path, db_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());
    ASSERT_TRUE(db->Flush().ok());
  }

  QueryService<2>::Options options;
  options.num_workers = kWorkers;
  options.frames_per_worker = 8;
  auto service = QueryService<2>::Open(path, 512, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const auto golden = MakeGolden((*service)->db(), 100);
  RunStress(**service, golden);
  CheckStats(**service,
             static_cast<uint64_t>(kClientThreads) * kQueriesPerClient);
  std::remove(path.c_str());
}

// Mixed read traffic (all four kinds at once) must not interfere: repeat
// kNN answers stay byte-identical while range/top-k queries run alongside.
TEST(ServiceStressTest, MixedQueryKindsUnderLoad) {
  const auto data = MakeData(2000);
  SpatialDb<2>::Options db_options;
  db_options.page_size = 512;
  auto db = SpatialDb<2>::CreateInMemory(db_options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->BulkLoadData(data, BulkLoadMethod::kStr).ok());

  const auto golden = MakeGolden(*db, 60);

  QueryService<2>::Options options;
  options.num_workers = 4;
  options.frames_per_worker = 8;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok());

  std::thread noise([&] {
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const double lo_x = rng.Uniform(0.0, 0.8);
      const double lo_y = rng.Uniform(0.0, 0.8);
      const Rect2 window =
          Rect2::FromCorners({{lo_x, lo_y}}, {{lo_x + 0.2, lo_y + 0.2}});
      if (i % 2 == 0) {
        (*service)->Execute(QueryRequest<2>::Range(window));
      } else {
        (*service)->Execute(QueryRequest<2>::TopK(
            {{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}}, 5));
      }
    }
  });
  RunStress(**service, golden);
  noise.join();
  CheckStats(**service,
             static_cast<uint64_t>(kClientThreads) * kQueriesPerClient + 200);
}

}  // namespace
}  // namespace spatial
