#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "rtree/validator.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 512;

struct TestIndex {
  explicit TestIndex(uint32_t buffer_pages = 64)
      : disk(kPageSize), pool(&disk, buffer_pages) {
    auto created = RTree<2>::Create(&pool, RTreeOptions{});
    EXPECT_TRUE(created.ok());
    tree.emplace(std::move(created).value());
  }

  void Fill(size_t n, uint64_t seed) {
    Rng rng(seed);
    auto points = GenerateUniform<2>(n, UnitBounds<2>(), &rng);
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(tree->Insert(Rect2::FromPoint(points[i]), i).ok());
    }
  }

  // Directly corrupts the raw bytes of a page, simulating storage damage.
  void CorruptPage(PageId id, size_t offset, char value) {
    ASSERT_TRUE(pool.FlushAll().ok());
    std::vector<char> raw(kPageSize);
    ASSERT_TRUE(disk.ReadPage(id, raw.data()).ok());
    raw[offset] = value;
    ASSERT_TRUE(disk.WritePage(id, raw.data()).ok());
    DropCache();
  }

  // Evicts every cached frame so subsequent fetches re-read the (possibly
  // corrupted) bytes from disk. Cycles the pool through fresh pages.
  void DropCache() {
    ASSERT_TRUE(pool.FlushAll().ok());
    std::vector<PageId> scratch;
    for (uint32_t i = 0; i < pool.capacity(); ++i) {
      auto page = pool.NewPage();
      ASSERT_TRUE(page.ok());
      scratch.push_back(page->id());
      page->Release();
    }
    for (PageId id : scratch) ASSERT_TRUE(pool.FreePage(id).ok());
  }

  DiskManager disk;
  BufferPool pool;
  std::optional<RTree<2>> tree;
};

TEST(ValidatorTest, ReportsAccurateShapeStatistics) {
  TestIndex index;
  index.Fill(3000, 71);
  auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaf_entries, 3000u);
  EXPECT_EQ(report->height, index.tree->height());
  EXPECT_EQ(report->nodes_per_level.size(),
            static_cast<size_t>(index.tree->height()));
  // Level sizes strictly decrease toward the root, which has one node.
  EXPECT_EQ(report->nodes_per_level.back(), 1u);
  for (size_t i = 1; i < report->nodes_per_level.size(); ++i) {
    EXPECT_LT(report->nodes_per_level[i], report->nodes_per_level[i - 1]);
  }
  uint64_t total = 0;
  for (uint64_t n : report->nodes_per_level) total += n;
  EXPECT_EQ(total, report->nodes);
  EXPECT_GT(report->avg_leaf_fill, 0.3);
  EXPECT_LE(report->avg_leaf_fill, 1.0);
}

TEST(ValidatorTest, DetectsBadMagic) {
  TestIndex index;
  index.Fill(400, 72);
  // Corrupt the root's magic byte.
  index.CorruptPage(index.tree->root_page(), 0, 0x00);
  auto report = ValidateTree<2>(*index.tree, true);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption());
}

TEST(ValidatorTest, DetectsCorruptedEntryRect) {
  TestIndex index;
  index.Fill(400, 73);
  // Flip the sign bit of the first double of entry 0 in the root: lo > hi.
  const size_t offset = sizeof(NodeHeader) + 7;  // high byte of lo[0]
  index.CorruptPage(index.tree->root_page(), offset,
                    static_cast<char>(0xFF));
  auto report = ValidateTree<2>(*index.tree, true);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption());
}

TEST(ValidatorTest, DetectsParentMbrMismatch) {
  TestIndex index;
  index.Fill(2000, 74);
  ASSERT_GE(index.tree->height(), 2);
  // Nudge the first entry rectangle of the (internal) root so it no longer
  // equals its child's tight MBR.
  ASSERT_TRUE(index.pool.FlushAll().ok());
  std::vector<char> raw(kPageSize);
  ASSERT_TRUE(index.disk.ReadPage(index.tree->root_page(), raw.data()).ok());
  NodeView<2> view(raw.data(), kPageSize);
  Entry<2> e = view.entry(0);
  e.mbr.hi[0] += 0.25;  // still a valid rect, but not tight
  view.set_entry(0, e);
  ASSERT_TRUE(
      index.disk.WritePage(index.tree->root_page(), raw.data()).ok());
  index.DropCache();

  auto report = ValidateTree<2>(*index.tree, true);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption());
  EXPECT_NE(report.status().message().find("tight"), std::string::npos);
}

TEST(ValidatorTest, DetectsSizeMismatch) {
  TestIndex index;
  index.Fill(100, 75);
  // Remove an entry behind the tree's back (leaf = root here? ensure not).
  // Use a leaf page found via the root.
  ASSERT_TRUE(index.pool.FlushAll().ok());
  std::vector<char> raw(kPageSize);
  ASSERT_TRUE(index.disk.ReadPage(index.tree->root_page(), raw.data()).ok());
  NodeView<2> root_view(raw.data(), kPageSize);
  if (root_view.is_leaf()) {
    root_view.RemoveAt(0);
    ASSERT_TRUE(
        index.disk.WritePage(index.tree->root_page(), raw.data()).ok());
  } else {
    const PageId leaf = static_cast<PageId>(root_view.entry(0).id);
    // Deleting from a deeper node also breaks the parent-MBR invariant,
    // so only the count check may fire first — both are corruption.
    std::vector<char> leaf_raw(kPageSize);
    ASSERT_TRUE(index.disk.ReadPage(leaf, leaf_raw.data()).ok());
    NodeView<2> leaf_view(leaf_raw.data(), kPageSize);
    leaf_view.RemoveAt(0);
    ASSERT_TRUE(index.disk.WritePage(leaf, leaf_raw.data()).ok());
  }
  index.DropCache();
  auto report = ValidateTree<2>(*index.tree, true);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption());
}

TEST(ValidatorTest, MinFillCheckCanBeDisabled) {
  TestIndex index;
  index.Fill(2000, 76);
  ASSERT_GE(index.tree->height(), 2);
  // Underfill a leaf by rewriting it with a single entry and fixing the
  // parent MBR chain is hard by hand; instead simply verify that the same
  // healthy tree passes with and without the flag, and that a tree built
  // by hand with an underfull node fails only when the flag is on.
  auto strict = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
  auto lax = ValidateTree<2>(*index.tree, /*check_min_fill=*/false);
  EXPECT_TRUE(strict.ok());
  EXPECT_TRUE(lax.ok());
}

TEST(ValidatorTest, EmptyTreePasses) {
  TestIndex index;
  auto report = ValidateTree<2>(*index.tree, true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->leaf_entries, 0u);
  EXPECT_EQ(report->nodes, 1u);
  EXPECT_EQ(report->avg_leaf_fill, 0.0);
}

}  // namespace
}  // namespace spatial
