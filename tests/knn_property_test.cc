// Property suite: for every tree variant, dataset family, k, and ABL
// configuration, the branch-and-bound search must return exactly the
// brute-force k-NN distances. This is the core correctness argument of the
// reproduction.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "storage/disk_manager.h"
#include "core/knn.h"
#include "data/clustered.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

enum class DataFamily { kUniform, kClustered, kTigerLike };

std::vector<Entry<2>> MakeData(DataFamily family, size_t n, Rng* rng) {
  switch (family) {
    case DataFamily::kUniform:
      return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), rng));
    case DataFamily::kClustered:
      return MakePointEntries(
          GenerateClustered<2>(n, UnitBounds<2>(), ClusteredOptions{}, rng));
    case DataFamily::kTigerLike: {
      auto network = GenerateTigerLike(n, UnitBounds<2>(),
                                       TigerLikeOptions{}, rng);
      return MakePointEntries(SegmentMidpoints(network.segments));
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Sweep 1: dynamic trees (every split algorithm) x data families x k.

class KnnVsBruteForceTest
    : public ::testing::TestWithParam<
          std::tuple<SplitAlgorithm, DataFamily, uint32_t>> {};

TEST_P(KnnVsBruteForceTest, MatchesOnHundredQueries) {
  const auto [split, family, k] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/64, options);
  Rng rng(static_cast<uint64_t>(split) * 1000 +
          static_cast<uint64_t>(family) * 100 + k);
  auto data = MakeData(family, 2000, &rng);
  index.InsertAll(data);

  auto queries = GenerateQueries<2>(data, 100, QueryDistribution::kUniform,
                                    0.0, &rng);
  KnnOptions knn;
  knn.k = k;
  for (const Point2& q : queries) {
    auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectKnnMatchesBruteForce(data, q, k, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnVsBruteForceTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kLinear,
                                         SplitAlgorithm::kQuadratic,
                                         SplitAlgorithm::kRStar),
                       ::testing::Values(DataFamily::kUniform,
                                         DataFamily::kClustered,
                                         DataFamily::kTigerLike),
                       ::testing::Values(1u, 5u, 32u)));

// ---------------------------------------------------------------------------
// Sweep 2: packed trees x k.

class KnnOnPackedTreeTest
    : public ::testing::TestWithParam<std::tuple<BulkLoadMethod, uint32_t>> {
};

TEST_P(KnnOnPackedTreeTest, MatchesBruteForce) {
  const auto [method, k] = GetParam();
  DiskManager disk(512);
  BufferPool pool(&disk, 64);
  Rng rng(777 + k);
  auto data =
      MakePointEntries(GenerateUniform<2>(3000, UnitBounds<2>(), &rng));
  auto loaded = BulkLoad<2>(&pool, RTreeOptions{}, data, method);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto queries = GenerateQueries<2>(data, 60, QueryDistribution::kUniform,
                                    0.0, &rng);
  KnnOptions knn;
  knn.k = k;
  for (const Point2& q : queries) {
    auto result = KnnSearch<2>(*loaded, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, q, k, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnOnPackedTreeTest,
    ::testing::Combine(::testing::Values(BulkLoadMethod::kStr,
                                         BulkLoadMethod::kHilbert,
                                         BulkLoadMethod::kMorton),
                       ::testing::Values(1u, 8u)));

// ---------------------------------------------------------------------------
// Sweep 3: every combination of orderings and pruning strategies is exact
// (pruning may only change cost, never the answer).

class KnnConfigurationTest
    : public ::testing::TestWithParam<
          std::tuple<AblOrdering, bool, bool, bool>> {};

TEST_P(KnnConfigurationTest, AnyConfigurationIsExact) {
  const auto [ordering, s1, s2, s3] = GetParam();
  TestIndex2D index(/*page_size=*/512);
  Rng rng(4242);
  auto data =
      MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
  index.InsertAll(data);

  KnnOptions knn;
  knn.ordering = ordering;
  knn.use_s1 = s1;
  knn.use_s2 = s2;
  knn.use_s3 = s3;
  auto queries = GenerateQueries<2>(data, 40, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (uint32_t k : {1u, 7u}) {
    knn.k = k;
    for (const Point2& q : queries) {
      auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
      ASSERT_TRUE(result.ok());
      ExpectKnnMatchesBruteForce(data, q, k, *result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnConfigurationTest,
    ::testing::Combine(::testing::Values(AblOrdering::kMinDist,
                                         AblOrdering::kMinMaxDist,
                                         AblOrdering::kNone),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Sweep 4: rectangle (extended) objects.

class KnnRectObjectsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnnRectObjectsTest, MatchesBruteForceOnRectangles) {
  TestIndex2D index(/*page_size=*/512);
  Rng rng(GetParam());
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 1200; ++i) {
    Point2 a{{rng.Uniform(0, 50), rng.Uniform(0, 50)}};
    Point2 b{{a[0] + rng.Uniform(0, 2), a[1] + rng.Uniform(0, 2)}};
    data.push_back(Entry<2>{Rect2::FromCorners(a, b), i});
  }
  index.InsertAll(data);
  KnnOptions knn;
  knn.k = 6;
  for (int i = 0; i < 40; ++i) {
    Point2 q{{rng.Uniform(-5, 55), rng.Uniform(-5, 55)}};
    auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectKnnMatchesBruteForce(data, q, 6, *result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnRectObjectsTest,
                         ::testing::Values(5u, 55u, 555u));

// ---------------------------------------------------------------------------
// Sweep 5: higher dimensions (3-D and 4-D trees).

TEST(KnnHigherDimTest, ThreeDimensionalMatchesBruteForce) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  auto created = RTree<3>::Create(&pool, RTreeOptions{});
  ASSERT_TRUE(created.ok());
  RTree<3> tree = std::move(created).value();
  Rng rng(31337);
  std::vector<Entry<3>> data;
  for (uint64_t i = 0; i < 1500; ++i) {
    Point3 p{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    data.push_back(Entry<3>{Rect3::FromPoint(p), i});
    ASSERT_TRUE(tree.Insert(data.back().mbr, i).ok());
  }
  KnnOptions knn;
  knn.k = 5;
  for (int i = 0; i < 30; ++i) {
    Point3 q{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    auto result = KnnSearch<3>(tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = LinearScanKnn<3>(data, q, 5, nullptr);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_DOUBLE_EQ((*result)[r].dist_sq, expected[r].dist_sq);
    }
  }
}

TEST(KnnHigherDimTest, FourDimensionalMatchesBruteForce) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 64);
  auto created = RTree<4>::Create(&pool, RTreeOptions{});
  ASSERT_TRUE(created.ok());
  RTree<4> tree = std::move(created).value();
  Rng rng(271828);
  std::vector<Entry<4>> data;
  for (uint64_t i = 0; i < 1000; ++i) {
    Point<4> p{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1),
                rng.Uniform(0, 1)}};
    data.push_back(Entry<4>{Rect<4>::FromPoint(p), i});
    ASSERT_TRUE(tree.Insert(data.back().mbr, i).ok());
  }
  KnnOptions knn;
  knn.k = 3;
  for (int i = 0; i < 25; ++i) {
    Point<4> q{{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1),
                rng.Uniform(0, 1)}};
    auto result = KnnSearch<4>(tree, q, knn, nullptr);
    ASSERT_TRUE(result.ok());
    auto expected = LinearScanKnn<4>(data, q, 3, nullptr);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_DOUBLE_EQ((*result)[r].dist_sq, expected[r].dist_sq);
    }
  }
}

}  // namespace
}  // namespace spatial
