#include <gtest/gtest.h>

#include <vector>

#include "core/incremental.h"
#include "data/uniform.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

TEST(IncrementalTest, EmptyTreeExhaustsImmediately) {
  TestIndex2D index;
  IncrementalKnn<2> iter(*index.tree, {{0.5, 0.5}}, nullptr);
  auto next = iter.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // Repeated calls stay exhausted.
  next = iter.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(IncrementalTest, EmitsAllObjectsInDistanceOrder) {
  TestIndex2D index;
  Rng rng(81);
  auto data =
      MakePointEntries(GenerateUniform<2>(700, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q{{0.3, 0.6}};
  IncrementalKnn<2> iter(*index.tree, q, nullptr);
  std::vector<Neighbor> emitted;
  for (;;) {
    auto next = iter.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    emitted.push_back(**next);
  }
  ASSERT_EQ(emitted.size(), data.size());
  for (size_t i = 1; i < emitted.size(); ++i) {
    EXPECT_LE(emitted[i - 1].dist_sq, emitted[i].dist_sq);
  }
  // The full emission IS the brute-force ranking.
  ExpectKnnMatchesBruteForce(data, q, static_cast<uint32_t>(data.size()),
                             emitted);
}

TEST(IncrementalTest, PrefixProperty) {
  // The first k results of the iterator equal a direct k-NN query — the
  // defining property of distance browsing.
  TestIndex2D index;
  Rng rng(82);
  auto data =
      MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q{{0.9, 0.1}};
  IncrementalKnn<2> iter(*index.tree, q, nullptr);
  std::vector<Neighbor> prefix;
  for (int i = 0; i < 25; ++i) {
    auto next = iter.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    prefix.push_back(**next);
  }
  ExpectKnnMatchesBruteForce(data, q, 25, prefix);
}

TEST(IncrementalTest, LazyExpansion) {
  // Asking for only the first neighbor must touch far fewer pages than
  // draining the whole iterator.
  TestIndex2D index;
  Rng rng(83);
  auto data =
      MakePointEntries(GenerateUniform<2>(5000, UnitBounds<2>(), &rng));
  index.InsertAll(data);

  QueryStats first_only;
  {
    IncrementalKnn<2> iter(*index.tree, {{0.5, 0.5}}, &first_only);
    auto next = iter.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
  }
  QueryStats drain_all;
  {
    IncrementalKnn<2> iter(*index.tree, {{0.5, 0.5}}, &drain_all);
    for (;;) {
      auto next = iter.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
    }
  }
  EXPECT_LT(first_only.nodes_visited * 10, drain_all.nodes_visited);
}

TEST(IncrementalTest, ObjectsWinDistanceTiesOverNodes) {
  // A query placed exactly on a stored point: the object must be emitted
  // even though sibling subtrees have MINDIST 0 as well.
  TestIndex2D index;
  Rng rng(84);
  auto data =
      MakePointEntries(GenerateUniform<2>(300, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  const Point2 q = data[42].mbr.Center();
  IncrementalKnn<2> iter(*index.tree, q, nullptr);
  auto next = iter.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_DOUBLE_EQ((*next)->dist_sq, 0.0);
}

}  // namespace
}  // namespace spatial
