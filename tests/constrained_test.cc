#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/constrained.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "geom/metrics.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// Reference: scan, filter by region, take k nearest.
std::vector<Neighbor> BruteConstrained(const std::vector<Entry<2>>& data,
                                       const Point2& q, const Rect2& region,
                                       uint32_t k) {
  std::vector<Neighbor> all;
  for (const Entry<2>& e : data) {
    if (!e.mbr.Intersects(region)) continue;
    all.push_back(Neighbor{e.id, ObjectDistSq(q, e.mbr)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(ConstrainedKnnTest, EmptyRegionReturnsNothing) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  auto result = ConstrainedKnnSearch<2>(*index.tree, {{0.5, 0.5}},
                                        Rect2::Empty(), KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ConstrainedKnnTest, RegionExcludesCloserObjects) {
  TestIndex2D index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.1, 0.1}}), 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.9, 0.9}}), 2).ok());
  // Query near object 1 but restrict to the far quadrant.
  const Rect2 region{{{0.5, 0.5}}, {{1.0, 1.0}}};
  auto result = ConstrainedKnnSearch<2>(*index.tree, {{0.0, 0.0}}, region,
                                        KnnOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 2u);
}

class ConstrainedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstrainedPropertyTest, MatchesFilteredBruteForce) {
  TestIndex2D index;
  Rng rng(GetParam());
  auto data =
      MakePointEntries(GenerateUniform<2>(2500, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  for (int trial = 0; trial < 40; ++trial) {
    const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.5), a[1] + rng.Uniform(0, 0.5)}};
    const Rect2 region = Rect2::FromCorners(a, b);
    for (uint32_t k : {1u, 5u}) {
      KnnOptions options;
      options.k = k;
      auto result =
          ConstrainedKnnSearch<2>(*index.tree, q, region, options, nullptr);
      ASSERT_TRUE(result.ok());
      auto expected = BruteConstrained(data, q, region, k);
      ASSERT_EQ(result->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_DOUBLE_EQ((*result)[i].dist_sq, expected[i].dist_sq);
      }
      // Every reported object is actually inside the region.
      for (const Neighbor& n : *result) {
        EXPECT_TRUE(region.Contains(data[n.id].mbr.Center()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedPropertyTest,
                         ::testing::Values(7u, 77u, 777u));

TEST(ConstrainedKnnTest, WholeDomainRegionEqualsPlainKnn) {
  TestIndex2D index;
  Rng rng(88);
  auto data =
      MakePointEntries(GenerateUniform<2>(1500, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  KnnOptions options;
  options.k = 6;
  auto queries = GenerateQueries<2>(data, 30, QueryDistribution::kUniform,
                                    0.0, &rng);
  for (const Point2& q : queries) {
    auto constrained = ConstrainedKnnSearch<2>(*index.tree, q,
                                               UnitBounds<2>(), options,
                                               nullptr);
    auto plain = KnnSearch<2>(*index.tree, q, options, nullptr);
    ASSERT_TRUE(constrained.ok());
    ASSERT_TRUE(plain.ok());
    ASSERT_EQ(constrained->size(), plain->size());
    for (size_t i = 0; i < plain->size(); ++i) {
      ASSERT_DOUBLE_EQ((*constrained)[i].dist_sq, (*plain)[i].dist_sq);
    }
  }
}

TEST(ConstrainedKnnTest, TinyRegionPrunesMostPages) {
  TestIndex2D index;
  Rng rng(89);
  auto data =
      MakePointEntries(GenerateUniform<2>(20000, UnitBounds<2>(), &rng));
  index.InsertAll(data);
  QueryStats window_stats, full_stats;
  const Rect2 tiny{{{0.70, 0.70}}, {{0.72, 0.72}}};
  KnnOptions options;
  options.k = 3;
  ASSERT_TRUE(ConstrainedKnnSearch<2>(*index.tree, {{0.1, 0.1}}, tiny,
                                      options, &window_stats)
                  .ok());
  ASSERT_TRUE(ConstrainedKnnSearch<2>(*index.tree, {{0.1, 0.1}},
                                      UnitBounds<2>(), options, &full_stats)
                  .ok());
  EXPECT_LT(window_stats.nodes_visited, full_stats.nodes_visited);
}

TEST(ConstrainedKnnTest, RejectsBadOptions) {
  TestIndex2D index;
  KnnOptions options;
  options.k = 0;
  EXPECT_TRUE(ConstrainedKnnSearch<2>(*index.tree, {{0, 0}}, UnitBounds<2>(),
                                      options, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace spatial
