#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "storage/disk_manager.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace spatial {
namespace {

constexpr uint32_t kPageSize = 512;

struct TestIndex {
  explicit TestIndex(RTreeOptions options = RTreeOptions{},
                     uint32_t buffer_pages = 64)
      : disk(kPageSize), pool(&disk, buffer_pages) {
    auto created = RTree<2>::Create(&pool, options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    tree.emplace(std::move(created).value());
  }

  DiskManager disk;
  BufferPool pool;
  std::optional<RTree<2>> tree;
};

std::set<uint64_t> BruteForceWindow(const std::vector<Entry<2>>& data,
                                    const Rect2& window) {
  std::set<uint64_t> ids;
  for (const auto& e : data) {
    if (e.mbr.Intersects(window)) ids.insert(e.id);
  }
  return ids;
}

std::set<uint64_t> IdsOf(const std::vector<Entry<2>>& found) {
  std::set<uint64_t> ids;
  for (const auto& e : found) ids.insert(e.id);
  return ids;
}

TEST(RTreeSearchTest, EmptyTreeFindsNothing) {
  TestIndex index;
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(Rect2{{{0, 0}}, {{1, 1}}}, &found).ok());
  EXPECT_TRUE(found.empty());
}

TEST(RTreeSearchTest, EmptyWindowFindsNothing) {
  TestIndex index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 1).ok());
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(Rect2::Empty(), &found).ok());
  EXPECT_TRUE(found.empty());
}

TEST(RTreeSearchTest, WindowMatchesBruteForceOnUniformData) {
  TestIndex index;
  Rng rng(31);
  auto points = GenerateUniform<2>(3000, UnitBounds<2>(), &rng);
  auto data = MakePointEntries(points);
  for (const auto& e : data) {
    ASSERT_TRUE(index.tree->Insert(e.mbr, e.id).ok());
  }
  for (int q = 0; q < 50; ++q) {
    Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.3), a[1] + rng.Uniform(0, 0.3)}};
    const Rect2 window = Rect2::FromCorners(a, b);
    std::vector<Entry<2>> found;
    ASSERT_TRUE(index.tree->Search(window, &found).ok());
    EXPECT_EQ(IdsOf(found), BruteForceWindow(data, window));
  }
}

TEST(RTreeSearchTest, WindowMatchesBruteForceOnRectObjects) {
  TestIndex index;
  Rng rng(32);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 1500; ++i) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.5), a[1] + rng.Uniform(0, 0.5)}};
    data.push_back(Entry<2>{Rect2::FromCorners(a, b), i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  for (int q = 0; q < 50; ++q) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 2), a[1] + rng.Uniform(0, 2)}};
    const Rect2 window = Rect2::FromCorners(a, b);
    std::vector<Entry<2>> found;
    ASSERT_TRUE(index.tree->Search(window, &found).ok());
    EXPECT_EQ(IdsOf(found), BruteForceWindow(data, window));
  }
}

TEST(RTreeSearchTest, FullWindowReturnsEverything) {
  TestIndex index;
  Rng rng(33);
  auto points = GenerateUniform<2>(500, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->Search(UnitBounds<2>(), &found).ok());
  EXPECT_EQ(found.size(), points.size());
}

TEST(RTreeSearchTest, SearchAppendsToExistingVector) {
  TestIndex index;
  ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint({{0.5, 0.5}}), 9).ok());
  std::vector<Entry<2>> found;
  found.push_back(Entry<2>{Rect2::FromPoint({{0, 0}}), 1});
  ASSERT_TRUE(index.tree->Search(UnitBounds<2>(), &found).ok());
  EXPECT_EQ(found.size(), 2u);  // appended, not replaced
}

TEST(RTreeSearchTest, QueriesWorkWithSingleFrameBufferPool) {
  // Read paths copy entries out and release pages before descending, so a
  // capacity-1 pool must suffice for queries (not for inserts).
  DiskManager disk(kPageSize);
  BufferPool build_pool(&disk, 64);
  auto created = RTree<2>::Create(&build_pool, RTreeOptions{});
  ASSERT_TRUE(created.ok());
  RTree<2> tree = std::move(created).value();
  Rng rng(34);
  auto points = GenerateUniform<2>(2000, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  ASSERT_TRUE(build_pool.FlushAll().ok());

  BufferPool query_pool(&disk, 1);
  auto reopened =
      RTree<2>::Open(&query_pool, RTreeOptions{}, tree.root_page());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<Entry<2>> found;
  ASSERT_TRUE(
      reopened->Search(Rect2{{{0.2, 0.2}}, {{0.4, 0.4}}}, &found).ok());
  EXPECT_FALSE(found.empty());
}

TEST(RTreeOpenTest, ReopenRecoversSizeAndAnswersQueries) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 64);
  PageId root;
  std::vector<Entry<2>> data;
  {
    auto created = RTree<2>::Create(&pool, RTreeOptions{});
    ASSERT_TRUE(created.ok());
    RTree<2> tree = std::move(created).value();
    Rng rng(35);
    auto points = GenerateUniform<2>(1200, UnitBounds<2>(), &rng);
    data = MakePointEntries(points);
    for (const auto& e : data) ASSERT_TRUE(tree.Insert(e.mbr, e.id).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
    root = tree.root_page();
  }
  auto reopened = RTree<2>::Open(&pool, RTreeOptions{}, root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), data.size());
  const Rect2 window{{{0.4, 0.4}}, {{0.6, 0.6}}};
  std::vector<Entry<2>> found;
  ASSERT_TRUE(reopened->Search(window, &found).ok());
  EXPECT_EQ(IdsOf(found), BruteForceWindow(data, window));
}

TEST(RTreeOpenTest, OpenRejectsGarbageRoot) {
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, 8);
  // Allocate a raw page that was never formatted as a node.
  const PageId garbage = disk.AllocatePage();
  std::vector<char> junk(kPageSize, 0x5a);
  ASSERT_TRUE(disk.WritePage(garbage, junk.data()).ok());
  auto opened = RTree<2>::Open(&pool, RTreeOptions{}, garbage);
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST(RTreeSearchTest, SearchCountsLogicalPageFetches) {
  TestIndex index;
  Rng rng(36);
  auto points = GenerateUniform<2>(3000, UnitBounds<2>(), &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(index.tree->Insert(Rect2::FromPoint(points[i]), i).ok());
  }
  index.pool.ResetStats();
  std::vector<Entry<2>> found;
  ASSERT_TRUE(
      index.tree->Search(Rect2{{{0.1, 0.1}}, {{0.15, 0.15}}}, &found).ok());
  const uint64_t small_window = index.pool.stats().logical_fetches;
  EXPECT_GE(small_window, 1u);

  index.pool.ResetStats();
  found.clear();
  ASSERT_TRUE(index.tree->Search(UnitBounds<2>(), &found).ok());
  const uint64_t full_window = index.pool.stats().logical_fetches;
  // A full scan touches far more pages than a tiny window.
  EXPECT_GT(full_window, small_window * 5);
}

std::set<uint64_t> BruteContained(const std::vector<Entry<2>>& data,
                                  const Rect2& window) {
  std::set<uint64_t> ids;
  for (const auto& e : data) {
    if (window.Contains(e.mbr)) ids.insert(e.id);
  }
  return ids;
}

TEST(RTreeSearchTest, ContainedMatchesBruteForceOnRectObjects) {
  TestIndex index;
  Rng rng(41);
  std::vector<Entry<2>> data;
  for (uint64_t i = 0; i < 1500; ++i) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.5), a[1] + rng.Uniform(0, 0.5)}};
    data.push_back(Entry<2>{Rect2::FromCorners(a, b), i});
    ASSERT_TRUE(index.tree->Insert(data.back().mbr, i).ok());
  }
  for (int q = 0; q < 40; ++q) {
    Point2 a{{rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Point2 b{{a[0] + rng.Uniform(0, 2), a[1] + rng.Uniform(0, 2)}};
    const Rect2 window = Rect2::FromCorners(a, b);
    std::vector<Entry<2>> found;
    ASSERT_TRUE(index.tree->SearchContained(window, &found).ok());
    EXPECT_EQ(IdsOf(found), BruteContained(data, window));
    // Containment results are a subset of intersection results.
    std::vector<Entry<2>> intersecting;
    ASSERT_TRUE(index.tree->Search(window, &intersecting).ok());
    EXPECT_LE(found.size(), intersecting.size());
  }
}

TEST(RTreeSearchTest, ContainedExcludesStraddlingObjects) {
  TestIndex index;
  ASSERT_TRUE(index.tree->Insert(Rect2{{{0, 0}}, {{2, 2}}}, 1).ok());
  ASSERT_TRUE(index.tree->Insert(Rect2{{{0.4, 0.4}}, {{0.6, 0.6}}}, 2).ok());
  const Rect2 window{{{0.25, 0.25}}, {{1.0, 1.0}}};
  std::vector<Entry<2>> found;
  ASSERT_TRUE(index.tree->SearchContained(window, &found).ok());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, 2u);  // 1 intersects but is not contained
}

TEST(RTreeSearchTest, CountMatchesSearchSize) {
  TestIndex index;
  Rng rng(42);
  auto points = GenerateUniform<2>(2500, UnitBounds<2>(), &rng);
  auto data = MakePointEntries(points);
  for (const auto& e : data) {
    ASSERT_TRUE(index.tree->Insert(e.mbr, e.id).ok());
  }
  for (int q = 0; q < 40; ++q) {
    Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
    Point2 b{{a[0] + rng.Uniform(0, 0.4), a[1] + rng.Uniform(0, 0.4)}};
    const Rect2 window = Rect2::FromCorners(a, b);
    std::vector<Entry<2>> found;
    ASSERT_TRUE(index.tree->Search(window, &found).ok());
    auto count = index.tree->CountIntersecting(window);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, found.size());
  }
  // Empty window and full window.
  auto empty = index.tree->CountIntersecting(Rect2::Empty());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
  auto all = index.tree->CountIntersecting(UnitBounds<2>());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data.size());
}

}  // namespace
}  // namespace spatial
