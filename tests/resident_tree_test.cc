// The resident tier's bit-identity gate: every answer, every visited node
// (in order), and every traversal counter produced over a compiled
// ResidentTree must match the paged path exactly — memcmp on the neighbor
// bytes, vector equality on the visit trace — across dimensions, k, both
// ABL execution paths (lazy heap and full sort), and both tree origins
// (in-memory and file-backed). Plus the serving lifecycle: a write
// invalidates the arena, queries fall back to the paged path, and
// RecompileResidentTier restores the fast path; the concurrent variant is
// a ThreadSanitizer target (tools/tsan_check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/best_first.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "data/uniform.h"
#include "data/workload.h"
#include "db/serving_db.h"
#include "db/spatial_db.h"
#include "rtree/bulk_load.h"
#include "service/query_service.h"
#include "storage/resident_tree.h"
#include "test_util.h"
#include "wal/wal_writer.h"

namespace spatial {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void CleanupDb(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t s = 1; s <= 64; ++s) {
    std::remove(WalWriter::SegmentPath(path, s).c_str());
  }
}

void ExpectStatsEqual(const QueryStats& paged, const QueryStats& resident) {
  EXPECT_EQ(paged.nodes_visited, resident.nodes_visited);
  EXPECT_EQ(paged.leaf_nodes_visited, resident.leaf_nodes_visited);
  EXPECT_EQ(paged.internal_nodes_visited, resident.internal_nodes_visited);
  EXPECT_EQ(paged.abl_entries_generated, resident.abl_entries_generated);
  EXPECT_EQ(paged.pruned_s1, resident.pruned_s1);
  EXPECT_EQ(paged.estimate_updates_s2, resident.estimate_updates_s2);
  EXPECT_EQ(paged.pruned_s3, resident.pruned_s3);
  EXPECT_EQ(paged.pruned_leaf, resident.pruned_leaf);
  EXPECT_EQ(paged.objects_examined, resident.objects_examined);
  EXPECT_EQ(paged.distance_computations, resident.distance_computations);
  EXPECT_EQ(paged.heap_pushes, resident.heap_pushes);
  EXPECT_EQ(paged.heap_pops, resident.heap_pops);
}

// A D-dimensional STR-packed tree on a simulated disk plus its query set.
template <int D>
struct Workload {
  DiskManager disk{1024};
  BufferPool pool;
  std::optional<RTree<D>> tree;
  std::vector<Entry<D>> data;
  std::vector<Point<D>> queries;

  Workload(size_t n, size_t num_queries) : pool(&disk, 4096) {
    Rng rng(19950523);
    data = MakePointEntries(GenerateUniform<D>(n, UnitBounds<D>(), &rng));
    auto loaded =
        BulkLoad<D>(&pool, RTreeOptions{}, data, BulkLoadMethod::kStr);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    tree.emplace(std::move(loaded).value());
    Rng qrng(777);
    queries = GenerateQueries<D>(data, num_queries,
                                 QueryDistribution::kUniform, 0.0, &qrng);
  }

  Result<ResidentTree<D>> Compile(
      typename ResidentTree<D>::Options options = {}) {
    return ResidentTree<D>::Compile(&pool, tree->root_page(), tree->size(),
                                    options);
  }
};

// The core gate: answers memcmp-identical, visit order identical, all
// traversal counters identical — for k in {1, 10} (k=1 activates the
// S1/S2 pruning paths) and both ABL execution strategies.
template <int D>
void CheckPagedResidentIdentity(const RTree<D>& tree,
                                const ResidentTree<D>& resident,
                                const std::vector<Point<D>>& queries) {
  QueryScratch<D> scratch_paged;
  QueryScratch<D> scratch_resident;
  std::vector<Neighbor> paged;
  std::vector<Neighbor> res;
  std::vector<uint64_t> trace_paged;
  std::vector<uint64_t> trace_resident;
  for (uint32_t k : {1u, 10u}) {
    for (bool full_sort : {false, true}) {
      KnnOptions options;
      options.k = k;
      options.force_full_sort = full_sort;
      for (const Point<D>& q : queries) {
        QueryStats stats_paged;
        QueryStats stats_resident;
        trace_paged.clear();
        trace_resident.clear();
        options.visit_trace = &trace_paged;
        ASSERT_TRUE(KnnSearchInto<D>(tree, q, options, &scratch_paged,
                                     &paged, &stats_paged)
                        .ok());
        options.visit_trace = &trace_resident;
        ASSERT_TRUE(KnnSearchInto<D>(resident, q, options, &scratch_resident,
                                     &res, &stats_resident)
                        .ok());
        options.visit_trace = nullptr;
        ASSERT_EQ(paged.size(), res.size()) << "D=" << D << " k=" << k;
        if (!paged.empty()) {
          ASSERT_EQ(std::memcmp(paged.data(), res.data(),
                                paged.size() * sizeof(Neighbor)),
                    0)
              << "answers diverge at D=" << D << " k=" << k
              << " full_sort=" << full_sort;
        }
        ASSERT_EQ(trace_paged, trace_resident)
            << "visit order diverges at D=" << D << " k=" << k
            << " full_sort=" << full_sort;
        ExpectStatsEqual(stats_paged, stats_resident);
      }
    }
  }
}

template <int D>
void RunBitIdentity() {
  Workload<D> w(3000, 48);
  auto resident = w.Compile();
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  EXPECT_GT(resident->node_count(), 0u);
  EXPECT_GT(resident->arena_bytes(), 0u);
  EXPECT_EQ(resident->size(), w.tree->size());
  EXPECT_EQ(resident->root_page(), w.tree->root_page());
  CheckPagedResidentIdentity<D>(*w.tree, *resident, w.queries);
}

TEST(ResidentTreeTest, BitIdenticalToPagedPath2D) { RunBitIdentity<2>(); }
TEST(ResidentTreeTest, BitIdenticalToPagedPath3D) { RunBitIdentity<3>(); }
TEST(ResidentTreeTest, BitIdenticalToPagedPath4D) { RunBitIdentity<4>(); }

TEST(ResidentTreeTest, FileBackedOriginIsBitIdentical) {
  const std::string path = TempPath("resident_origin.sdb");
  std::remove(path.c_str());
  Workload<2> reference(2000, 32);
  {
    SpatialDb<2>::Options options;
    options.page_size = 1024;
    auto db = SpatialDb<2>::CreateOnFile(path, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->BulkLoadData(reference.data, BulkLoadMethod::kStr).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto db = SpatialDb<2>::OpenFromFileReadOnly(path, 1024, 256);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto resident = ResidentTree<2>::Compile(
      db->tree().pool(), db->tree().root_page(), db->tree().size(), {});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  CheckPagedResidentIdentity<2>(db->tree(), *resident, reference.queries);
  std::remove(path.c_str());
}

TEST(ResidentTreeTest, IncrementalAndBestFirstMatchPagedPath) {
  Workload<2> w(2000, 16);
  auto resident = w.Compile();
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();

  QueryScratch<2> scratch_paged;
  QueryScratch<2> scratch_resident;
  for (const Point2& q : w.queries) {
    QueryStats stats_paged;
    QueryStats stats_resident;
    IncrementalKnn<2> paged(*w.tree, q, &scratch_paged, &stats_paged);
    IncrementalKnn<2> res(*resident, q, &scratch_resident, &stats_resident);
    for (int i = 0; i < 32; ++i) {
      auto a = paged.Next();
      auto b = res.Next();
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->has_value(), b->has_value());
      if (!a->has_value()) break;
      EXPECT_EQ((*a)->id, (*b)->id);
      EXPECT_EQ((*a)->dist_sq, (*b)->dist_sq);
    }
    ExpectStatsEqual(stats_paged, stats_resident);

    auto bf_paged = BestFirstKnn<2>(*w.tree, q, 10, nullptr);
    auto bf_res = BestFirstKnn<2>(*resident, q, 10, nullptr);
    ASSERT_TRUE(bf_paged.ok() && bf_res.ok());
    ASSERT_EQ(bf_paged->size(), bf_res->size());
    ASSERT_EQ(std::memcmp(bf_paged->data(), bf_res->data(),
                          bf_paged->size() * sizeof(Neighbor)),
              0);
  }
}

TEST(ResidentTreeTest, EmptyTreeCompilesToEmptyResidentTree) {
  DiskManager disk(1024);
  BufferPool pool(&disk, 16);
  auto tree = RTree<2>::Create(&pool, RTreeOptions{});
  ASSERT_TRUE(tree.ok());
  auto resident =
      ResidentTree<2>::Compile(&pool, tree->root_page(), tree->size(), {});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  EXPECT_TRUE(resident->empty());
  EXPECT_EQ(resident->node_count(), 0u);
  EXPECT_EQ(resident->arena_bytes(), 0u);

  QueryScratch<2> scratch;
  std::vector<Neighbor> out;
  KnnOptions options;
  options.k = 3;
  ASSERT_TRUE(
      KnnSearchInto<2>(*resident, Point2{{0.5, 0.5}}, options, &scratch,
                       &out, nullptr)
          .ok());
  EXPECT_TRUE(out.empty());
}

TEST(ResidentTreeTest, ArenaCapReturnsResourceExhausted) {
  Workload<2> w(2000, 1);
  typename ResidentTree<2>::Options options;
  options.max_arena_bytes = 64;  // far below any real arena
  options.source_epoch = 42;
  auto capped = w.Compile(options);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted())
      << capped.status().ToString();

  options.max_arena_bytes = 0;  // no cap
  auto resident = w.Compile(options);
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(resident->source_epoch(), 42u);
}

// Read-only service: the tier compiles at startup and serves every
// eligible query; answers match the paged tree and nothing falls back.
TEST(ResidentTreeTest, ReadOnlyServiceServesFromResidentTier) {
  Workload<2> w(2000, 0);
  SpatialDb<2>::Options db_options;
  db_options.page_size = 1024;
  auto db = SpatialDb<2>::CreateInMemory(db_options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->BulkLoadData(w.data, BulkLoadMethod::kStr).ok());

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::Attach(*db, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_NE((*service)->resident_tree(), nullptr);

  QueryScratch<2> scratch;
  std::vector<Neighbor> expected;
  Rng rng(31337);
  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
    QueryResponse<2> got = (*service)->Execute(QueryRequest<2>::Knn(q, 5));
    ASSERT_TRUE(got.ok());
    KnnOptions knn;
    knn.k = 5;
    ASSERT_TRUE(
        KnnSearchInto<2>(db->tree(), q, knn, &scratch, &expected, nullptr)
            .ok());
    ASSERT_EQ(got.neighbors.size(), expected.size());
    ASSERT_EQ(std::memcmp(got.neighbors.data(), expected.data(),
                          expected.size() * sizeof(Neighbor)),
              0);
  }
  // Range queries are not resident-eligible and must not be counted.
  Rect<2> window = Rect<2>::FromCorners({{0.4, 0.4}}, {{0.6, 0.6}});
  ASSERT_TRUE((*service)->Execute(QueryRequest<2>::Range(window)).ok());

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.resident_hits, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.resident_fallbacks, 0u);
  EXPECT_EQ(stats.resident_compiles, 1u);
  EXPECT_GT(stats.resident_arena_bytes, 0u);
  const std::string scrape = (*service)->ScrapeMetrics();
  EXPECT_NE(scrape.find("spatial_resident_arena_bytes"), std::string::npos);
  EXPECT_NE(scrape.find("tier=\"resident\""), std::string::npos);
}

// Serving mode: a write publishes a new tree version, which must drop the
// arena and push queries onto the paged path; RecompileResidentTier brings
// the fast path back with answers that match a brute-force reference.
TEST(ResidentTreeTest, ServingWriteInvalidatesAndRecompileRestores) {
  const std::string path = TempPath("resident_serving.sdb");
  CleanupDb(path);

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::OpenServing(path, ServingOptions{}, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Load via the write path: every batch publish invalidates the arena.
  Rng rng(555);
  std::vector<Entry<2>> live;
  std::vector<std::future<QueryResponse<2>>> pending;
  for (uint64_t id = 1; id <= 300; ++id) {
    Rect<2> r;
    r.lo[0] = rng.Uniform(0.0, 1.0);
    r.lo[1] = rng.Uniform(0.0, 1.0);
    r.hi[0] = r.lo[0];
    r.hi[1] = r.lo[1];
    pending.push_back((*service)->Submit(QueryRequest<2>::Insert(r, id)));
    live.push_back(Entry<2>{r, id});
  }
  for (auto& f : pending) ASSERT_TRUE(f.get().ok());

  // The startup arena (compiled from the empty tree) is now stale: these
  // queries must fall back, not serve stale answers.
  constexpr int kQueries = 20;
  Rng qrng(556);
  std::vector<Point2> queries;
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back({{qrng.Uniform(0.0, 1.0), qrng.Uniform(0.0, 1.0)}});
    QueryResponse<2> got =
        (*service)->Execute(QueryRequest<2>::Knn(queries.back(), 5));
    ASSERT_TRUE(got.ok());
    ExpectKnnMatchesBruteForce(live, queries.back(), 5, got.neighbors);
  }
  ServiceStats stats = (*service)->Stats();
  EXPECT_GE(stats.resident_fallbacks, static_cast<uint64_t>(kQueries));
  EXPECT_GE(stats.resident_invalidations, 1u);
  const uint64_t hits_before = stats.resident_hits;

  ASSERT_TRUE((*service)->RecompileResidentTier().ok());
  for (const Point2& q : queries) {
    QueryResponse<2> got = (*service)->Execute(QueryRequest<2>::Knn(q, 5));
    ASSERT_TRUE(got.ok());
    ExpectKnnMatchesBruteForce(live, q, 5, got.neighbors);
  }
  stats = (*service)->Stats();
  EXPECT_EQ(stats.resident_hits, hits_before + kQueries);
  EXPECT_GE(stats.resident_compiles, 2u);
  EXPECT_GT(stats.resident_arena_bytes, 0u);

  (*service)->Shutdown();
  CleanupDb(path);
}

// ThreadSanitizer target: queries, writes, checkpoints, and recompiles all
// running concurrently. Correctness here is "every query succeeds and the
// service stays consistent" — per-query answers are validated against a
// pinned snapshot by the serving stress suite; this test crosses the
// resident tier's publish/invalidate/fallback synchronization points.
TEST(ResidentTreeTest, ConcurrentRecompileUnderWriteLoad) {
  const std::string path = TempPath("resident_concurrent.sdb");
  CleanupDb(path);

  QueryService<2>::Options options;
  options.num_workers = 2;
  auto service = QueryService<2>::OpenServing(path, ServingOptions{}, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_failures{0};

  std::thread writer([&] {
    Rng rng(91);
    std::vector<std::future<QueryResponse<2>>> pending;
    for (uint64_t id = 1; id <= 200; ++id) {
      Rect<2> r;
      r.lo[0] = rng.Uniform(0.0, 1.0);
      r.lo[1] = rng.Uniform(0.0, 1.0);
      r.hi[0] = r.lo[0];
      r.hi[1] = r.lo[1];
      pending.push_back((*service)->Submit(QueryRequest<2>::Insert(r, id)));
      if (id % 50 == 0) {
        pending.push_back((*service)->Submit(QueryRequest<2>::Checkpoint()));
      }
    }
    for (auto& f : pending) {
      if (!f.get().ok()) ++query_failures;
    }
    stop.store(true);
  });

  std::thread recompiler([&] {
    while (!stop.load()) {
      // May legitimately race a concurrent publish; the result is either a
      // fresh arena or a benign stale one that no query will trust.
      (void)(*service)->RecompileResidentTier();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(7000 + t);
      while (!stop.load()) {
        const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        if (!(*service)->Execute(QueryRequest<2>::Knn(q, 3)).ok()) {
          ++query_failures;
        }
      }
    });
  }

  writer.join();
  recompiler.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(query_failures.load(), 0u);

  (*service)->Shutdown();
  CleanupDb(path);
}

}  // namespace
}  // namespace spatial
