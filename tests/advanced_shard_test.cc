// Scatter-gather correctness for the advanced query classes: across shard
// counts {1, 2, 4} and both backends, the router's reverse k-NN and NN
// skyline answers must be byte-identical to the brute-force references
// (and hence to a single whole-dataset tree), and approximate kNN must
// keep its (1+epsilon) contract after the cross-shard merge.

#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/uniform.h"
#include "tests/reference.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

std::vector<Entry<2>> MakeData(size_t n, uint64_t seed = 404) {
  Rng rng(seed);
  return MakePointEntries(GenerateUniform<2>(n, UnitBounds<2>(), &rng));
}

ShardSet<2>::Options SetOptions(uint32_t shards, bool file_backed,
                                const std::string& dir) {
  ShardSet<2>::Options options;
  options.num_shards = shards;
  options.file_backed = file_backed;
  options.dir = dir;
  options.page_size = 512;
  options.buffer_pages = 64;
  options.service.num_workers = 2;
  options.service.frames_per_worker = 32;
  return options;
}

void ExpectNeighborsByteIdentical(const std::vector<Neighbor>& got,
                                  const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Neighbor)));
  }
}

void ExpectEntriesByteIdentical(const std::vector<Entry<2>>& got,
                                const std::vector<Entry<2>>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(Entry<2>)));
  }
}

void RunAdvancedEquivalenceSuite(uint32_t shards, bool file_backed,
                                 bool resident) {
  SCOPED_TRACE("shards=" + std::to_string(shards) +
               " file=" + std::to_string(file_backed) +
               " resident=" + std::to_string(resident));
  const auto data = MakeData(1200);
  auto options = SetOptions(shards, file_backed, ::testing::TempDir());
  options.service.resident_tier = resident;
  auto set = ShardSet<2>::Build(data, options);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardRouter<2> router(set->get());

  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};

    // Reverse k-NN: byte-identical to brute force.
    for (uint32_t k : {1u, 3u}) {
      SCOPED_TRACE("trial=" + std::to_string(trial) +
                   " k=" + std::to_string(k));
      QueryResponse<2> got =
          router.Execute(QueryRequest<2>::ReverseKnn(q, k));
      ASSERT_TRUE(got.ok()) << got.status.ToString();
      ExpectNeighborsByteIdentical(got.neighbors,
                                   RefReverseKnn<2>(data, q, k));
    }

    // NN skyline over 1..3 sources: byte-identical to brute force.
    std::vector<Point2> sources{q};
    for (size_t extra = 0; extra < 2; ++extra) {
      QueryResponse<2> got =
          router.Execute(QueryRequest<2>::NnSkyline(sources));
      ASSERT_TRUE(got.ok()) << got.status.ToString();
      ExpectEntriesByteIdentical(got.entries, RefSkyline<2>(data, sources));
      sources.push_back({{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}});
    }

    // Approximate kNN: same count, sorted, every rank within (1+eps).
    for (double eps : {0.0, 0.5}) {
      QueryResponse<2> got =
          router.Execute(QueryRequest<2>::ApproxKnn(q, 10, eps));
      ASSERT_TRUE(got.ok()) << got.status.ToString();
      const auto exact = RefKnn<2>(data, q, 10);
      ASSERT_EQ(got.neighbors.size(), exact.size());
      const double factor = (1.0 + eps) * (1.0 + eps) * (1.0 + 1e-9);
      for (size_t i = 0; i < exact.size(); ++i) {
        ASSERT_LE(got.neighbors[i].dist_sq, exact[i].dist_sq * factor)
            << "rank " << i << " eps " << eps;
        if (i > 0) {
          ASSERT_LE(got.neighbors[i - 1].dist_sq, got.neighbors[i].dist_sq);
        }
      }
      // eps = 0 through the approx path stays exact end to end.
      if (eps == 0.0) {
        ExpectNeighborsByteIdentical(got.neighbors, exact);
      }
    }
  }
}

TEST(AdvancedShardTest, MemoryBackendMatchesReference) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    RunAdvancedEquivalenceSuite(shards, /*file_backed=*/false,
                                /*resident=*/true);
  }
}

TEST(AdvancedShardTest, PagedTierMatchesReference) {
  for (uint32_t shards : {1u, 4u}) {
    RunAdvancedEquivalenceSuite(shards, /*file_backed=*/false,
                                /*resident=*/false);
  }
}

TEST(AdvancedShardTest, FileBackendMatchesReference) {
  for (uint32_t shards : {2u, 4u}) {
    RunAdvancedEquivalenceSuite(shards, /*file_backed=*/true,
                                /*resident=*/true);
  }
}

TEST(AdvancedShardTest, CandidatesOnlySurfacesGlobalSelection) {
  const auto data = MakeData(900);
  auto set = ShardSet<2>::Build(data, SetOptions(3, false, ""));
  ASSERT_TRUE(set.ok());
  ShardRouter<2> router(set->get());
  const Point2 q{{0.5, 0.5}};
  QueryRequest<2> request = QueryRequest<2>::ReverseKnn(q, 2);
  request.rknn_candidates_only = true;
  QueryResponse<2> got = router.Execute(request);
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  EXPECT_TRUE(got.neighbors.empty());
  // Every true reverse k-NN appears among the globally selected candidates.
  for (const Neighbor& want : RefReverseKnn<2>(data, q, 2)) {
    bool present = false;
    for (const Entry<2>& e : got.entries) present |= e.id == want.id;
    EXPECT_TRUE(present) << "missing candidate " << want.id;
  }
}

TEST(AdvancedShardTest, RouterExposesPerKindAndRknnMetrics) {
  const auto data = MakeData(600);
  auto set = ShardSet<2>::Build(data, SetOptions(2, false, ""));
  ASSERT_TRUE(set.ok());
  ShardRouter<2> router(set->get());
  router.Execute(QueryRequest<2>::ReverseKnn({{0.4, 0.4}}, 2));
  router.Execute(QueryRequest<2>::NnSkyline({{{0.2, 0.2}}, {{0.7, 0.7}}}));
  router.Execute(QueryRequest<2>::ApproxKnn({{0.5, 0.5}}, 5, 0.5));
  const std::string scrape = router.ScrapeMetrics();
  EXPECT_NE(
      scrape.find("spatial_router_requests_total{kind=\"reverse-knn\"} 1"),
      std::string::npos);
  EXPECT_NE(
      scrape.find("spatial_router_requests_total{kind=\"nn-skyline\"} 1"),
      std::string::npos);
  EXPECT_NE(
      scrape.find("spatial_router_requests_total{kind=\"approx-knn\"} 1"),
      std::string::npos);
  EXPECT_NE(scrape.find("spatial_router_rknn_candidates_total"),
            std::string::npos);
  EXPECT_NE(scrape.find("spatial_router_rknn_verify_rounds_total"),
            std::string::npos);
}

}  // namespace
}  // namespace spatial
