// Model-based randomized testing: long random operation sequences executed
// against both the real component and a trivial in-memory reference model,
// with full-state comparison at checkpoints. Complements the example-based
// suites with coverage of operation *interleavings*.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "baselines/linear_scan.h"
#include "common/rng.h"
#include "core/knn.h"
#include "rtree/validator.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace spatial {
namespace {

// --------------------------------------------------------------------------
// Buffer pool vs a map<PageId, bytes> model.

class BufferPoolModelTest
    : public ::testing::TestWithParam<std::tuple<EvictionPolicy, uint64_t>> {
};

TEST_P(BufferPoolModelTest, RandomOpsAgreeWithModel) {
  const auto [policy, seed] = GetParam();
  constexpr uint32_t kPageSize = 128;
  DiskManager disk(kPageSize);
  BufferPool pool(&disk, /*capacity=*/4, policy);
  std::map<PageId, std::vector<char>> model;
  Rng rng(seed);

  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.30 || model.empty()) {
      // Allocate a page and write a random fill byte.
      auto page = pool.NewPage();
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      const char fill = static_cast<char>(rng.NextBounded(256));
      std::memset(page->data(), fill, kPageSize);
      page->MarkDirty();
      model[page->id()] = std::vector<char>(kPageSize, fill);
    } else if (dice < 0.70) {
      // Fetch a random live page and verify its contents byte-for-byte.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      auto page = pool.Fetch(it->first);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      ASSERT_EQ(std::memcmp(page->data(), it->second.data(), kPageSize), 0)
          << "page " << it->first << " diverged at op " << op;
    } else if (dice < 0.90) {
      // Overwrite a random live page.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      auto page = pool.Fetch(it->first);
      ASSERT_TRUE(page.ok());
      const char fill = static_cast<char>(rng.NextBounded(256));
      std::memset(page->data(), fill, kPageSize);
      page->MarkDirty();
      it->second.assign(kPageSize, fill);
    } else {
      // Free a random live page.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(pool.FreePage(it->first).ok());
      model.erase(it);
    }
  }
  // Final sweep: every live page readable and correct after FlushAll.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (const auto& [id, bytes] : model) {
    std::vector<char> raw(kPageSize);
    ASSERT_TRUE(disk.ReadPage(id, raw.data()).ok());
    ASSERT_EQ(std::memcmp(raw.data(), bytes.data(), kPageSize), 0);
  }
  EXPECT_EQ(disk.live_pages(), model.size());
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAndSeeds, BufferPoolModelTest,
    ::testing::Combine(::testing::Values(EvictionPolicy::kLru,
                                         EvictionPolicy::kClock),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// --------------------------------------------------------------------------
// R-tree vs a flat vector model, with window- and kNN-oracles.

class RTreeModelTest
    : public ::testing::TestWithParam<std::tuple<SplitAlgorithm, uint64_t>> {
};

TEST_P(RTreeModelTest, RandomMutationsWithOracles) {
  const auto [split, seed] = GetParam();
  RTreeOptions options;
  options.split = split;
  TestIndex2D index(/*page_size=*/512, /*buffer_pages=*/64, options);
  std::vector<Entry<2>> model;
  Rng rng(seed);
  uint64_t next_id = 0;

  for (int op = 0; op < 4000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || model.empty()) {
      Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
      Rect2 mbr = Rect2::FromPoint(a);
      if (rng.NextBool(0.3)) {  // extended object
        Point2 b{{a[0] + rng.Uniform(0, 0.05), a[1] + rng.Uniform(0, 0.05)}};
        mbr = Rect2::FromCorners(a, b);
      }
      ASSERT_TRUE(index.tree->Insert(mbr, next_id).ok());
      model.push_back(Entry<2>{mbr, next_id});
      ++next_id;
    } else if (dice < 0.85) {
      const size_t pick = rng.NextBounded(model.size());
      auto removed = index.tree->Delete(model[pick].mbr, model[pick].id);
      ASSERT_TRUE(removed.ok());
      ASSERT_TRUE(*removed);
      model[pick] = model.back();
      model.pop_back();
    } else if (dice < 0.95) {
      // Window oracle.
      Point2 a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
      Point2 b{{a[0] + rng.Uniform(0, 0.2), a[1] + rng.Uniform(0, 0.2)}};
      const Rect2 window = Rect2::FromCorners(a, b);
      std::vector<Entry<2>> found;
      ASSERT_TRUE(index.tree->Search(window, &found).ok());
      std::multiset<uint64_t> got, want;
      for (const auto& e : found) got.insert(e.id);
      for (const auto& e : model) {
        if (e.mbr.Intersects(window)) want.insert(e.id);
      }
      ASSERT_EQ(got, want) << "window oracle diverged at op " << op;
    } else {
      // kNN oracle.
      const Point2 q{{rng.Uniform(0, 1), rng.Uniform(0, 1)}};
      KnnOptions knn;
      knn.k = 1 + static_cast<uint32_t>(rng.NextBounded(8));
      auto result = KnnSearch<2>(*index.tree, q, knn, nullptr);
      ASSERT_TRUE(result.ok());
      ExpectKnnMatchesBruteForce(model, q, knn.k, *result);
    }
    if (op % 500 == 499) {
      auto report = ValidateTree<2>(*index.tree, /*check_min_fill=*/true);
      ASSERT_TRUE(report.ok())
          << "op " << op << ": " << report.status().ToString();
      ASSERT_EQ(report->leaf_entries, model.size());
    }
  }
  EXPECT_EQ(index.tree->size(), model.size());
  EXPECT_EQ(index.pool.pinned_frames(), 0u);  // no leaked pins anywhere
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeModelTest,
    ::testing::Combine(::testing::Values(SplitAlgorithm::kLinear,
                                         SplitAlgorithm::kQuadratic,
                                         SplitAlgorithm::kRStar),
                       ::testing::Values(101u, 202u)));

}  // namespace
}  // namespace spatial
