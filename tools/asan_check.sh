#!/usr/bin/env bash
# Builds the repo with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DSPATIAL_SANITIZE=address+undefined) into a dedicated build directory
# and runs the memory-sensitive tests. The SIMD kernel suite runs once per
# SPATIAL_FORCE_KERNEL tier, so out-of-bounds plane loads, misaligned
# vector stores, and padding-lane overruns in any tier's kernels are caught
# mechanically rather than by inspection; zero_alloc_test rides along
# because it stresses the same staging arenas the kernels write into, and
# the metrics/knn/join tests cover the traversals that drive them.
#
# Usage: tools/asan_check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

TESTS=(metrics_test metrics_reference_test simd_kernel_test knn_test
       knn_property_test spatial_join_test zero_alloc_test
       resident_tree_test advanced_query_test)

cmake -B "$BUILD_DIR" -S . -DSPATIAL_SANITIZE=address+undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

for tier in scalar sse2 avx2; do
  echo "=== ASan+UBSan: simd_kernel_test (SPATIAL_FORCE_KERNEL=$tier) ==="
  SPATIAL_FORCE_KERNEL="$tier" "$BUILD_DIR/tests/simd_kernel_test"
done
for t in "${TESTS[@]}"; do
  [[ "$t" == simd_kernel_test ]] && continue
  echo "=== ASan+UBSan: $t ==="
  "$BUILD_DIR/tests/$t"
done
echo "=== ASan+UBSan: all memory-sensitive tests clean ==="
