#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer (-DSPATIAL_SANITIZE=thread) into a
# dedicated build directory and runs the concurrency-sensitive tests: the
# query-service unit tests, the read-only stress test that checks
# byte-identical results against single-threaded KnnSearch, the
# serving-mode stress test (concurrent writes + snapshot-pinned readers),
# the sharded scatter-gather stress test (concurrent router calls with
# shared prune-bound streaming + live metrics scraping), the advanced
# query kinds' cross-shard merge paths (reverse-kNN verification rounds,
# skyline re-merge, approx contract merge), the resident tier's
# publish/invalidate/recompile-under-write-load race coverage, and the
# distributed-trace test (sampled scatter-gather over RPC with concurrent
# remote admin scrapes against the live trace log).
#
# Usage: tools/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSPATIAL_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target query_service_test service_stress_test serving_stress_test \
  io_stats_test obs_metrics_test metrics_scrape_test shard_stress_test \
  resident_tree_test advanced_shard_test distributed_trace_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
for t in io_stats_test obs_metrics_test query_service_test \
         service_stress_test shard_stress_test resident_tree_test \
         advanced_shard_test distributed_trace_test; do
  echo "=== TSan: $t ==="
  "$BUILD_DIR/tests/$t"
done
for t in serving_stress_test metrics_scrape_test; do
  echo "=== TSan: $t --smoke ==="
  "$BUILD_DIR/tests/$t" --smoke
done
echo "=== TSan: all concurrency tests clean ==="
