#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on performance regressions.

The experiment binaries (currently E15) emit a flat ``{"metric": value}``
JSON dictionary. This script diffs an old and a new run:

    tools/bench_compare.py BENCH_E15.old.json BENCH_E15.json

and exits non-zero when any metric regressed by more than ``--max-regress``
(default 10%). Whether higher or lower is better is inferred from the
metric-name prefix:

    higher is better:  qps_*, speedup_*, hit_*
    lower  is better:  allocs_*, pages_*, latency_*, p50_*, p95_*, p99_*

Metrics with an unrecognized prefix, or present in only one file, are
reported but never fail the comparison. ``--self-test`` runs the built-in
check that ctest wires in (see bench/CMakeLists.txt).

The experiment binaries also maintain ``BENCH_MANIFEST.json`` — a registry
of every benchmark JSON a full run has produced. ``--manifest`` audits it:

    tools/bench_compare.py --manifest BENCH_MANIFEST.json

exits non-zero, naming each offender, if any listed file is missing or
unparsable — so CI notices a silently-skipped experiment instead of
"comparing" against a stale artifact.
"""

import argparse
import json
import os
import sys

HIGHER_IS_BETTER = ("qps", "speedup", "hit")
LOWER_IS_BETTER = ("allocs", "pages", "latency", "p50", "p95", "p99")


def direction(metric):
    """Returns +1 (higher better), -1 (lower better), or 0 (informational)."""
    if metric.startswith(HIGHER_IS_BETTER):
        return 1
    if metric.startswith(LOWER_IS_BETTER):
        return -1
    return 0


def regression(metric, old, new):
    """Fractional regression of `new` vs `old`; positive means worse."""
    sense = direction(metric)
    if sense == 0:
        return None
    if old == 0:
        # A zero baseline (e.g. allocs_per_query == 0) cannot shrink; any
        # increase of a lower-is-better metric from zero is a regression of
        # its absolute size.
        if sense == -1 and new > 0:
            return float("inf")
        return 0.0
    change = (new - old) / abs(old)
    return -change if sense == 1 else change


def compare(old, new, max_regress, out=sys.stdout):
    """Prints a per-metric report; returns the list of failing metrics."""
    failures = []
    width = max((len(k) for k in sorted(set(old) | set(new))), default=6)
    for metric in sorted(set(old) | set(new)):
        if metric not in old or metric not in new:
            where = "old" if metric in old else "new"
            print(f"  {metric:<{width}}  only in {where} (ignored)", file=out)
            continue
        reg = regression(metric, old[metric], new[metric])
        if reg is None:
            print(f"  {metric:<{width}}  {old[metric]:>12.4f} -> "
                  f"{new[metric]:>12.4f}  (informational)", file=out)
            continue
        verdict = "ok"
        if reg > max_regress:
            verdict = "REGRESSION"
            failures.append(metric)
        elif reg < -max_regress:
            verdict = "improved"
        print(f"  {metric:<{width}}  {old[metric]:>12.4f} -> "
              f"{new[metric]:>12.4f}  {reg:+8.1%}  {verdict}", file=out)
    return failures


def load_json(path, what):
    """Loads a JSON file, exiting with a clean one-line error if it cannot
    be read or parsed (a stack trace here would bury the actual problem —
    a missing or truncated benchmark artifact — in noise)."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {what} {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {what} {path!r} is not valid JSON: {e}")


def audit_manifest(manifest_path, out=sys.stdout):
    """Verifies every file the manifest lists exists next to it and parses
    as JSON. Returns the list of problems (empty when the manifest is
    healthy)."""
    manifest = load_json(manifest_path, "manifest")
    files = manifest.get("files")
    if not isinstance(files, list) or not files:
        return [f"{manifest_path}: manifest has no 'files' list"]
    base = os.path.dirname(os.path.abspath(manifest_path))
    problems = []
    for name in files:
        path = os.path.join(base, name)
        if not os.path.exists(path):
            problems.append(f"{name}: listed in manifest but missing "
                            f"(expected at {path})")
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            problems.append(f"{name}: unreadable or invalid JSON ({e})")
            continue
        print(f"  {name:<24} ok ({len(data)} metrics)", file=out)
    return problems


def self_test():
    old = {
        "qps_scratch_k1": 1000.0,
        "allocs_per_query_scratch_k1": 0.0,
        "pages_per_query_scratch_k1": 10.0,
        "speedup_scratch_k1": 2.0,
        "note_metric": 5.0,
        "only_old": 1.0,
    }
    # qps -12% and allocs 0 -> 3 must both fail; pages -5% must pass;
    # unknown prefixes and one-sided metrics must never fail.
    new = {
        "qps_scratch_k1": 880.0,
        "allocs_per_query_scratch_k1": 3.0,
        "pages_per_query_scratch_k1": 10.5,
        "speedup_scratch_k1": 2.1,
        "note_metric": 500.0,
        "only_new": 1.0,
    }
    failures = compare(old, new, 0.10)
    expected = ["allocs_per_query_scratch_k1", "qps_scratch_k1"]
    if sorted(failures) != expected:
        print(f"self-test FAILED: got {sorted(failures)}, want {expected}")
        return 1
    if regression("qps_x", 1000.0, 1100.0) != -0.1:
        print("self-test FAILED: improvement sign")
        return 1
    if regression("latency_x", 100.0, 109.0) >= 0.10:
        print("self-test FAILED: sub-threshold regression flagged")
        return 1

    # Manifest audit: a healthy manifest passes, a missing listed file and
    # a corrupt listed file are both reported by name.
    import io
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "BENCH_GOOD.json")
        with open(good, "w") as f:
            json.dump({"qps_x": 1.0}, f)
        corrupt = os.path.join(tmp, "BENCH_BAD.json")
        with open(corrupt, "w") as f:
            f.write("{ not json")
        manifest = os.path.join(tmp, "BENCH_MANIFEST.json")
        with open(manifest, "w") as f:
            json.dump({"files": ["BENCH_GOOD.json"]}, f)
        if audit_manifest(manifest, out=io.StringIO()):
            print("self-test FAILED: healthy manifest reported problems")
            return 1
        with open(manifest, "w") as f:
            json.dump({"files": ["BENCH_GOOD.json", "BENCH_GONE.json",
                                 "BENCH_BAD.json"]}, f)
        problems = audit_manifest(manifest, out=io.StringIO())
        if (len(problems) != 2
                or "BENCH_GONE.json" not in problems[0]
                or "BENCH_BAD.json" not in problems[1]):
            print(f"self-test FAILED: manifest audit got {problems}")
            return 1
        with open(manifest, "w") as f:
            json.dump({}, f)
        if not audit_manifest(manifest, out=io.StringIO()):
            print("self-test FAILED: empty manifest accepted")
            return 1

    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="diff two benchmark JSON files, fail on regressions")
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--max-regress", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in consistency check and exit")
    parser.add_argument("--manifest", metavar="MANIFEST",
                        help="audit a BENCH_MANIFEST.json instead of "
                             "comparing: fail if any listed file is missing "
                             "or unparsable")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.manifest:
        print(f"auditing {args.manifest}")
        problems = audit_manifest(args.manifest)
        if problems:
            for p in problems:
                print(f"  MISSING  {p}")
            print(f"\nmanifest audit failed: {len(problems)} problem(s)")
            return 1
        print("\nmanifest complete")
        return 0
    if args.old is None or args.new is None:
        parser.error("old and new JSON files are required")

    old = load_json(args.old, "baseline")
    new = load_json(args.new, "candidate")
    print(f"comparing {args.old} -> {args.new} "
          f"(max regression {args.max_regress:.0%})")
    failures = compare(old, new, args.max_regress)
    if failures:
        print(f"\n{len(failures)} metric(s) regressed beyond "
              f"{args.max_regress:.0%}: {', '.join(failures)}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
