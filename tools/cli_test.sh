#!/usr/bin/env bash
# End-to-end test of the spatial_cli tool: generate -> build -> stats ->
# knn -> range, checking outputs and exit codes. Run by ctest with the
# binary path as $1.
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# generate
"$CLI" generate uniform 2000 "$WORK/pts.csv" 9 | grep -q "wrote 2000"
test "$(wc -l < "$WORK/pts.csv")" -eq 2000

# build (bulk + insert paths)
"$CLI" build "$WORK/pts.csv" "$WORK/bulk.sdb" str | grep -q "indexed 2000"
"$CLI" build "$WORK/pts.csv" "$WORK/dyn.sdb" insert | grep -q "indexed 2000"

# stats validates structure
"$CLI" stats "$WORK/bulk.sdb" | grep -q "structure:      OK"
"$CLI" stats "$WORK/dyn.sdb" | grep -q "entries:        2000"

# tree-quality: the full report is golden — the dataset is seed-pinned and
# STR packing is deterministic, so every number is reproducible
"$CLI" tree-quality "$WORK/bulk.sdb" > "$WORK/quality.out"
diff "$WORK/quality.out" - <<'GOLDEN'
tree-quality: 2000 entries, height 3, 85 nodes, fan-out 25
level     nodes     fill      overlap         area       margin
0            80    1.000     0.000000     0.000000     0.000000
1             4    0.800     0.842372     2.395514    24.630828
2             1    0.160     1.442316     2.165764     6.151260
total sibling overlap: 2.284689
structure: OK
GOLDEN

# knn: both indexes must report identical nearest distances
"$CLI" knn "$WORK/bulk.sdb" 0.5 0.5 3 | grep "^id=" | cut -d= -f3 > "$WORK/a"
"$CLI" knn "$WORK/dyn.sdb" 0.5 0.5 3 | grep "^id=" | cut -d= -f3 > "$WORK/b"
diff "$WORK/a" "$WORK/b"

# farthest + rnn commands run and report
"$CLI" farthest "$WORK/bulk.sdb" 0.5 0.5 2 | grep -c "^id=" | grep -q 2
"$CLI" rnn "$WORK/bulk.sdb" 0.5 0.5 | grep -q "reverse nearest neighbors"

# rknn generalizes rnn: k=1 must reproduce the rnn id set exactly.
# (0.2, 0.8) is used because its RNN set is non-empty under seed 9 —
# the centroid (0.5, 0.5) has no reverse nearest neighbor at all.
"$CLI" rnn "$WORK/bulk.sdb" 0.2 0.8 | grep "^id=" | sort > "$WORK/rnn.ids"
test -s "$WORK/rnn.ids"
"$CLI" rknn "$WORK/bulk.sdb" 0.2 0.8 1 | grep "^id=" | sort > "$WORK/rknn.ids"
diff "$WORK/rnn.ids" "$WORK/rknn.ids"
"$CLI" rknn "$WORK/bulk.sdb" 0.2 0.8 3 | grep -q "reverse k-nearest neighbors"

# skyline: a single source degenerates to its nearest neighbor
"$CLI" skyline "$WORK/bulk.sdb" 0.5 0.5 | grep -q "(1 skyline objects)"
"$CLI" knn "$WORK/bulk.sdb" 0.5 0.5 1 | grep "^id=" | cut -d= -f2 \
  | cut -d' ' -f1 > "$WORK/nn1.id"
"$CLI" skyline "$WORK/bulk.sdb" 0.5 0.5 | grep "^id=" | cut -d= -f2 \
  | cut -d' ' -f1 > "$WORK/sky1.id"
diff "$WORK/nn1.id" "$WORK/sky1.id"
"$CLI" skyline "$WORK/bulk.sdb" 0.1 0.1 0.9 0.9 | tail -1 \
  | grep -q "skyline objects"

# approx-knn: epsilon=0 with no budget is the exact answer, bit for bit;
# a relaxed epsilon still returns k results
"$CLI" knn "$WORK/bulk.sdb" 0.5 0.5 5 | grep "^id=" > "$WORK/exact5"
"$CLI" approx-knn "$WORK/bulk.sdb" 0.5 0.5 5 0 | grep "^id=" > "$WORK/approx0"
diff "$WORK/exact5" "$WORK/approx0"
"$CLI" approx-knn "$WORK/bulk.sdb" 0.5 0.5 5 0.5 | grep -c "^id=" | grep -q 5
"$CLI" approx-knn "$WORK/bulk.sdb" 0.5 0.5 5 0.5 64 | grep -q "pages read"

# range query returns a result count line
"$CLI" range "$WORK/bulk.sdb" 0.4 0.4 0.6 0.6 | tail -1 | grep -q "results"

# serve-bench on both backends: the resident tier must actually serve
# every query (no fallbacks on a read-only tree), and --backend=paged must
# keep the tier off entirely
"$CLI" serve-bench "$WORK/bulk.sdb" 2 40 5 --backend=resident \
  > "$WORK/resident.log"
grep -q "backend: resident" "$WORK/resident.log"
grep -q "40 resident / 0 paged" "$WORK/resident.log"
"$CLI" serve-bench "$WORK/bulk.sdb" 2 40 5 --backend=paged \
  | grep -q "backend: paged"

# sharded serving over RPC: launch shard-serve in the background with a
# request budget, poll its log for the bound port, drive it with
# shard-bench (single thread so the request budget drains serially and the
# final reply flushes before the server stops), and wait for a clean exit.
# Router tracing samples everything so the remote slow-log dump below has
# assembled distributed traces to show.
"$CLI" shard-serve "$WORK/pts.csv" 3 0 2 --max-requests=60 \
  --trace-sample=1000000 --backend=resident > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
test -n "$PORT"

# remote admin plane: scrape the live deployment before driving load (admin
# frames must not consume the 60-request budget) — the exposition document
# carries the labeled router family and the per-shard families
"$CLI" metrics --connect "127.0.0.1:$PORT" > "$WORK/remote_metrics.log"
grep -q 'spatial_router_requests_total{kind="knn"}' "$WORK/remote_metrics.log"
grep -q 'spatial_shard_queries_total{shard="0"' "$WORK/remote_metrics.log"
grep -q 'spatial_rpc_deadline_shed_total' "$WORK/remote_metrics.log"

"$CLI" shard-bench 127.0.0.1 "$PORT" 59 5 1 | tee "$WORK/bench.log" \
  | grep -q "ok=59 shed=0 failed=0"
grep -q "throughput" "$WORK/bench.log"

# remote slow-log dump: every query was trace-sampled, so the router's
# distributed-trace log must hold assembled traces with per-shard spans
"$CLI" metrics --connect "127.0.0.1:$PORT" --slow-log \
  > "$WORK/remote_slowlog.log"
grep -q '"trace_id"' "$WORK/remote_slowlog.log"
grep -q '"shards":\[' "$WORK/remote_slowlog.log"

# drain the final budgeted request so the server exits cleanly
"$CLI" shard-bench 127.0.0.1 "$PORT" 1 5 1 | grep -q "ok=1 shed=0 failed=0"
wait "$SERVE_PID"
grep -q "resident backend" "$WORK/serve.log"
grep -q "served 60 requests (0 shed)" "$WORK/serve.log"

# error handling: bad arguments exit non-zero
if "$CLI" knn "$WORK/missing.sdb" 0 0 1 2>/dev/null; then
  echo "expected failure for missing db" >&2
  exit 1
fi
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected usage error" >&2
  exit 1
fi

echo "cli_test OK"
