// spatial_cli — command-line front end for the library: generate datasets,
// build persistent indexes, inspect them, and run queries.
//
//   spatial_cli generate <uniform|clustered|tiger> <n> <out.csv> [seed]
//   spatial_cli build <points.csv> <out.sdb> [method] [page_size]
//                      method: insert|str|hilbert|morton   (default str)
//   spatial_cli stats <db.sdb> [page_size]
//   spatial_cli tree-quality <db.sdb> [page_size]
//   spatial_cli knn <db.sdb> <x> <y> <k> [page_size]
//   spatial_cli approx-knn <db.sdb> <x> <y> <k> <epsilon> [max_visits]
//                          [page_size]
//   spatial_cli farthest <db.sdb> <x> <y> <k> [page_size]
//   spatial_cli rnn <db.sdb> <x> <y> [page_size]
//   spatial_cli rknn <db.sdb> <x> <y> <k> [page_size]
//   spatial_cli skyline <db.sdb> <x1> <y1> [<x2> <y2> ...] [page_size]
//   spatial_cli range <db.sdb> <lox> <loy> <hix> <hiy> [page_size]
//   spatial_cli serve-bench <db.sdb> <workers> <queries> [k] [page_size]
//                           [frames_per_worker] [latency_us]
//                           [--metrics-dump] [--trace-sample=<per_million>]
//                           [--backend=paged|resident]
//   spatial_cli metrics <db.sdb> [queries] [k] [page_size] [--slow-log]
//   spatial_cli metrics --connect <host:port> [--slow-log]
//   spatial_cli shard-serve <points.csv> <shards> [port] [workers]
//                           [--max-requests=N] [--max-pending=N]
//                           [--trace-sample=<per_million>]
//                           [--backend=paged|resident]
//   spatial_cli shard-bench <host> <port> <queries> [k] [threads]
//
// tree-quality prints the validator's per-level quality diagnostics (node
// fill, summed sibling overlap, entry area and margin) in a stable format
// checked golden by tools/cli_test.sh.
//
// --backend selects the serving tier (docs/PERF.md "Resident tier"):
// `resident` (the default) compiles the tree into a pinned SoA arena and
// serves kNN/top-k/batch from it; `paged` forces every query through the
// per-worker buffer pools.
//
// shard-serve partitions the CSV across <shards> in-memory shards and
// serves them over the binary RPC protocol (docs/SHARDING.md); it prints
// "listening on 127.0.0.1:<port>" once ready. shard-bench connects one
// RpcClient per thread and fires random kNN queries, reporting throughput,
// latency percentiles, and how many requests the server shed.
//
// serve-bench --metrics-dump prints the full Prometheus text exposition
// (and the slow-query log as JSON) after the run; `metrics` drives a short
// query burst with 100% trace sampling and prints the exposition — or,
// with --slow-log, the captured per-query traces (docs/OBSERVABILITY.md).
// With --connect host:port, `metrics` instead scrapes a live shard-serve
// deployment over the wire's admin frames: the full exposition document,
// or with --slow-log the router's assembled distributed traces as JSON.
//
// Exit status 0 on success; errors print a Status string to stderr.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/farthest.h"
#include "core/knn.h"
#include "core/reverse_knn.h"
#include "core/reverse_nn.h"
#include "core/scratch.h"
#include "core/skyline.h"
#include "data/clustered.h"
#include "data/dataset.h"
#include "data/tiger_like.h"
#include "data/uniform.h"
#include "db/spatial_db.h"
#include "net/client.h"
#include "net/server.h"
#include "rtree/validator.h"
#include "service/query_service.h"
#include "shard/shard_router.h"
#include "shard/shard_set.h"

namespace spatial {
namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  spatial_cli generate <uniform|clustered|tiger> <n> <out.csv> "
      "[seed]\n"
      "  spatial_cli build <points.csv> <out.sdb> [insert|str|hilbert|"
      "morton] [page_size]\n"
      "  spatial_cli stats <db.sdb> [page_size]\n"
      "  spatial_cli tree-quality <db.sdb> [page_size]\n"
      "  spatial_cli knn <db.sdb> <x> <y> <k> [page_size]\n"
      "  spatial_cli approx-knn <db.sdb> <x> <y> <k> <epsilon> "
      "[max_visits] [page_size]\n"
      "  spatial_cli farthest <db.sdb> <x> <y> <k> [page_size]\n"
      "  spatial_cli rnn <db.sdb> <x> <y> [page_size]\n"
      "  spatial_cli rknn <db.sdb> <x> <y> <k> [page_size]\n"
      "  spatial_cli skyline <db.sdb> <x1> <y1> [<x2> <y2> ...] "
      "[page_size]\n"
      "  spatial_cli range <db.sdb> <lox> <loy> <hix> <hiy> [page_size]\n"
      "  spatial_cli serve-bench <db.sdb> <workers> <queries> [k] "
      "[page_size] [frames_per_worker] [latency_us] [--metrics-dump] "
      "[--trace-sample=<per_million>] [--backend=paged|resident]\n"
      "  spatial_cli metrics <db.sdb> [queries] [k] [page_size] "
      "[--slow-log]\n"
      "  spatial_cli metrics --connect <host:port> [--slow-log]\n"
      "  spatial_cli shard-serve <points.csv> <shards> [port] [workers] "
      "[--max-requests=N] [--max-pending=N] "
      "[--trace-sample=<per_million>] [--backend=paged|resident]\n"
      "  spatial_cli shard-bench <host> <port> <queries> [k] [threads]\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string family = argv[0];
  const size_t n = static_cast<size_t>(std::atoll(argv[1]));
  const std::string out = argv[2];
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  Rng rng(seed);
  std::vector<Point2> points;
  if (family == "uniform") {
    points = GenerateUniform<2>(n, UnitBounds<2>(), &rng);
  } else if (family == "clustered") {
    points = GenerateClustered<2>(n, UnitBounds<2>(), ClusteredOptions{},
                                  &rng);
  } else if (family == "tiger") {
    auto network =
        GenerateTigerLike(n, UnitBounds<2>(), TigerLikeOptions{}, &rng);
    points = SegmentMidpoints(network.segments);
    points.resize(n);
  } else {
    return Usage();
  }
  if (Status s = WritePointsCsv(out, points); !s.ok()) {
    return Fail(s, "write csv");
  }
  std::printf("wrote %zu %s points to %s (seed %llu)\n", points.size(),
              family.c_str(), out.c_str(),
              static_cast<unsigned long long>(seed));
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string csv = argv[0];
  const std::string out = argv[1];
  const std::string method = argc > 2 ? argv[2] : "str";
  const uint32_t page_size =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 1024;

  auto points = ReadPointsCsv(csv);
  if (!points.ok()) return Fail(points.status(), "read csv");
  auto data = MakePointEntries(*points);

  SpatialDb<2>::Options options;
  options.page_size = page_size;
  auto db = SpatialDb<2>::CreateOnFile(out, options);
  if (!db.ok()) return Fail(db.status(), "create db");

  if (method == "insert") {
    for (const auto& e : data) {
      if (Status s = db->tree().Insert(e.mbr, e.id); !s.ok()) {
        return Fail(s, "insert");
      }
    }
  } else {
    BulkLoadMethod bulk;
    if (method == "str") {
      bulk = BulkLoadMethod::kStr;
    } else if (method == "hilbert") {
      bulk = BulkLoadMethod::kHilbert;
    } else if (method == "morton") {
      bulk = BulkLoadMethod::kMorton;
    } else {
      return Usage();
    }
    if (Status s = db->BulkLoadData(data, bulk); !s.ok()) {
      return Fail(s, "bulk load");
    }
  }
  if (Status s = db->Flush(); !s.ok()) return Fail(s, "flush");
  std::printf("indexed %llu points into %s (height %d, %llu pages)\n",
              static_cast<unsigned long long>(db->tree().size()),
              out.c_str(), db->tree().height(),
              static_cast<unsigned long long>(db->disk().live_pages()));
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 1) return Usage();
  const uint32_t page_size =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  auto report = ValidateTree<2>(db->tree(), /*check_min_fill=*/false);
  if (!report.ok()) return Fail(report.status(), "validate");
  std::printf("entries:        %llu\n",
              static_cast<unsigned long long>(db->tree().size()));
  std::printf("height:         %d\n", report->height);
  std::printf("nodes:          %llu\n",
              static_cast<unsigned long long>(report->nodes));
  std::printf("avg leaf fill:  %.3f\n", report->avg_leaf_fill);
  std::printf("fan-out (max):  %u\n", db->tree().max_entries());
  std::printf("nodes/level:   ");
  for (uint64_t n : report->nodes_per_level) {
    std::printf(" %llu", static_cast<unsigned long long>(n));
  }
  std::printf("  (leaves first)\n");
  std::printf("structure:      OK\n");
  return 0;
}

// Prints the validator's quality diagnostics in a stable, golden-testable
// layout: one row per level (leaves first) with node count, mean fill,
// summed sibling overlap, and summed entry area/margin.
int CmdTreeQuality(int argc, char** argv) {
  if (argc < 1) return Usage();
  const uint32_t page_size =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  auto report = ValidateTree<2>(db->tree(), /*check_min_fill=*/false);
  if (!report.ok()) return Fail(report.status(), "validate");
  std::printf("tree-quality: %llu entries, height %d, %llu nodes, "
              "fan-out %u\n",
              static_cast<unsigned long long>(db->tree().size()),
              report->height,
              static_cast<unsigned long long>(report->nodes),
              db->tree().max_entries());
  std::printf("%-6s %8s %8s %12s %12s %12s\n", "level", "nodes", "fill",
              "overlap", "area", "margin");
  for (size_t level = 0; level < report->nodes_per_level.size(); ++level) {
    std::printf("%-6zu %8llu %8.3f %12.6f %12.6f %12.6f\n", level,
                static_cast<unsigned long long>(
                    report->nodes_per_level[level]),
                report->avg_fill_per_level[level],
                report->sibling_overlap_per_level[level],
                report->entry_area_per_level[level],
                report->entry_margin_per_level[level]);
  }
  std::printf("total sibling overlap: %.6f\n",
              report->total_sibling_overlap());
  std::printf("structure: OK\n");
  return 0;
}

int CmdKnn(int argc, char** argv) {
  if (argc < 4) return Usage();
  const uint32_t page_size =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Point2 q{{std::atof(argv[1]), std::atof(argv[2])}};
  KnnOptions options;
  options.k = static_cast<uint32_t>(std::atoi(argv[3]));
  QueryStats stats;
  auto result = KnnSearch<2>(db->tree(), q, options, &stats);
  if (!result.ok()) return Fail(result.status(), "knn");
  for (const Neighbor& n : *result) {
    std::printf("id=%llu distance=%.9f\n",
                static_cast<unsigned long long>(n.id), std::sqrt(n.dist_sq));
  }
  std::printf("(%llu pages read)\n",
              static_cast<unsigned long long>(stats.nodes_visited));
  return 0;
}

int CmdFarthest(int argc, char** argv) {
  if (argc < 4) return Usage();
  const uint32_t page_size =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Point2 q{{std::atof(argv[1]), std::atof(argv[2])}};
  auto result = FarthestSearch<2>(
      db->tree(), q, static_cast<uint32_t>(std::atoi(argv[3])), nullptr);
  if (!result.ok()) return Fail(result.status(), "farthest");
  for (const Neighbor& n : *result) {
    std::printf("id=%llu distance=%.9f\n",
                static_cast<unsigned long long>(n.id), std::sqrt(n.dist_sq));
  }
  return 0;
}

int CmdRnn(int argc, char** argv) {
  if (argc < 3) return Usage();
  const uint32_t page_size =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Point2 q{{std::atof(argv[1]), std::atof(argv[2])}};
  auto result = ReverseNnSearch<2>(db->tree(), q, nullptr);
  if (!result.ok()) return Fail(result.status(), "rnn");
  for (const Neighbor& n : *result) {
    std::printf("id=%llu distance=%.9f\n",
                static_cast<unsigned long long>(n.id), std::sqrt(n.dist_sq));
  }
  std::printf("(%zu reverse nearest neighbors)\n", result->size());
  return 0;
}

int CmdRknn(int argc, char** argv) {
  if (argc < 4) return Usage();
  const uint32_t page_size =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Point2 q{{std::atof(argv[1]), std::atof(argv[2])}};
  ReverseKnnOptions options;
  options.k = static_cast<uint32_t>(std::atoi(argv[3]));
  QueryScratch<2> scratch;
  std::vector<Neighbor> found;
  QueryStats stats;
  if (Status s = ReverseKnnSearch(db->tree(), q, options, &scratch, &found,
                                  &stats);
      !s.ok()) {
    return Fail(s, "rknn");
  }
  for (const Neighbor& n : found) {
    std::printf("id=%llu distance=%.9f\n",
                static_cast<unsigned long long>(n.id), std::sqrt(n.dist_sq));
  }
  std::printf("(%zu reverse k-nearest neighbors)\n", found.size());
  return 0;
}

int CmdSkyline(int argc, char** argv) {
  if (argc < 3) return Usage();
  // Everything after the db path is coordinate pairs; an odd trailing
  // argument is the page size.
  uint32_t page_size = 1024;
  int coord_args = argc - 1;
  if (coord_args % 2 == 1) {
    page_size = static_cast<uint32_t>(std::atoi(argv[argc - 1]));
    --coord_args;
  }
  if (coord_args < 2) return Usage();
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  std::vector<Point2> sources;
  for (int i = 0; i < coord_args; i += 2) {
    sources.push_back(
        Point2{{std::atof(argv[1 + i]), std::atof(argv[2 + i])}});
  }
  QueryScratch<2> scratch;
  std::vector<Entry<2>> found;
  QueryStats stats;
  if (Status s = NnSkylineSearch<2>(db->tree(), sources.data(),
                                    sources.size(), &scratch, &found, &stats);
      !s.ok()) {
    return Fail(s, "skyline");
  }
  for (const Entry<2>& e : found) {
    const Point2 c = e.mbr.Center();
    std::printf("id=%llu center=(%.6f, %.6f) distance_sum=%.9f\n",
                static_cast<unsigned long long>(e.id), c[0], c[1],
                SkylineDistSum<2>(sources.data(), sources.size(), e.mbr));
  }
  std::printf("(%zu skyline objects)\n", found.size());
  return 0;
}

int CmdApproxKnn(int argc, char** argv) {
  if (argc < 5) return Usage();
  const uint32_t page_size =
      argc > 6 ? static_cast<uint32_t>(std::atoi(argv[6])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Point2 q{{std::atof(argv[1]), std::atof(argv[2])}};
  KnnOptions options;
  options.k = static_cast<uint32_t>(std::atoi(argv[3]));
  options.epsilon = std::atof(argv[4]);
  options.max_visits =
      argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 0;
  QueryStats stats;
  auto result = KnnSearch<2>(db->tree(), q, options, &stats);
  if (!result.ok()) return Fail(result.status(), "approx-knn");
  for (const Neighbor& n : *result) {
    std::printf("id=%llu distance=%.9f\n",
                static_cast<unsigned long long>(n.id), std::sqrt(n.dist_sq));
  }
  std::printf("(%llu pages read)\n",
              static_cast<unsigned long long>(stats.nodes_visited));
  return 0;
}

int CmdRange(int argc, char** argv) {
  if (argc < 5) return Usage();
  const uint32_t page_size =
      argc > 5 ? static_cast<uint32_t>(std::atoi(argv[5])) : 1024;
  auto db = SpatialDb<2>::OpenFromFile(argv[0], page_size, 1024);
  if (!db.ok()) return Fail(db.status(), "open db");
  const Rect2 window = Rect2::FromCorners(
      {{std::atof(argv[1]), std::atof(argv[2])}},
      {{std::atof(argv[3]), std::atof(argv[4])}});
  std::vector<Entry<2>> found;
  if (Status s = db->tree().Search(window, &found); !s.ok()) {
    return Fail(s, "range");
  }
  for (const Entry<2>& e : found) {
    const Point2 c = e.mbr.Center();
    std::printf("id=%llu center=(%.6f, %.6f)\n",
                static_cast<unsigned long long>(e.id), c[0], c[1]);
  }
  std::printf("(%zu results)\n", found.size());
  return 0;
}

// Opens the database read-only behind a worker pool, fires uniformly
// random kNN queries at it from two submitter threads, and reports
// throughput, latency percentiles, and the aggregated page-access stats.
int CmdServeBench(int argc, char** argv) {
  // Flags may appear anywhere; positionals keep their historical order.
  bool metrics_dump = false;
  bool resident = true;
  uint32_t trace_sample_per_million = 0;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      trace_sample_per_million =
          static_cast<uint32_t>(std::atoi(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--backend=paged") == 0) {
      resident = false;
    } else if (std::strcmp(argv[i], "--backend=resident") == 0) {
      resident = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();
  if (argc < 3) return Usage();
  const std::string path = argv[0];
  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(argv[1]));
  const size_t num_queries = static_cast<size_t>(std::atoll(argv[2]));
  const uint32_t k =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 10;
  const uint32_t page_size =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 1024;

  QueryService<2>::Options options;
  options.num_workers = workers;
  options.trace_sample_per_million = trace_sample_per_million;
  options.resident_tier = resident;
  if (argc > 5) {
    options.frames_per_worker = static_cast<uint32_t>(std::atoi(argv[5]));
  }
  if (argc > 6) {
    options.simulated_read_latency_us =
        static_cast<uint32_t>(std::atoi(argv[6]));
  }

  auto service = QueryService<2>::Open(path, page_size, options);
  if (!service.ok()) return Fail(service.status(), "open service");

  auto bounds = (*service)->db().tree().Bounds();
  if (!bounds.ok()) return Fail(bounds.status(), "bounds");

  Rng rng(12345);
  std::vector<Point2> queries(512);
  for (auto& q : queries) {
    for (int d = 0; d < 2; ++d) {
      q[d] = rng.Uniform(bounds->lo[d], bounds->hi[d]);
    }
  }

  constexpr uint32_t kSubmitters = 2;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> failed{0};
  for (uint32_t t = 0; t < kSubmitters; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<QueryResponse<2>>> futures;
      for (size_t i = t; i < num_queries; i += kSubmitters) {
        futures.push_back((*service)->Submit(
            QueryRequest<2>::Knn(queries[i % queries.size()], k)));
      }
      for (auto& f : futures) {
        if (!f.get().ok()) failed.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();

  const ServiceStats stats = (*service)->Stats();
  std::printf("served %llu queries (%llu failed) on %u workers in %.3f s\n",
              static_cast<unsigned long long>(stats.TotalQueries()),
              static_cast<unsigned long long>(failed.load()), workers,
              stats.elapsed_seconds);
  std::printf("throughput:      %.0f queries/s\n", stats.QueriesPerSecond());
  std::printf("latency p50/p95/p99: %.3f / %.3f / %.3f ms (max %.3f)\n",
              static_cast<double>(stats.latency.PercentileNs(0.50)) / 1e6,
              static_cast<double>(stats.latency.PercentileNs(0.95)) / 1e6,
              static_cast<double>(stats.latency.PercentileNs(0.99)) / 1e6,
              static_cast<double>(stats.latency.max) / 1e6);
  std::printf("page accesses/query: %.2f logical, %.2f physical "
              "(hit rate %.3f)\n",
              stats.PageAccessesPerQuery(), stats.PhysicalReadsPerQuery(),
              stats.buffer.HitRate());
  if (resident) {
    std::printf("backend: resident (arena %llu bytes, %u nodes; "
                "%llu resident / %llu paged)\n",
                static_cast<unsigned long long>(stats.resident_arena_bytes),
                stats.resident_nodes,
                static_cast<unsigned long long>(stats.resident_hits),
                static_cast<unsigned long long>(stats.resident_fallbacks));
  } else {
    std::printf("backend: paged\n");
  }
  if (metrics_dump) {
    std::printf("--- metrics ---\n%s",
                (*service)->ScrapeMetrics().c_str());
    std::printf("--- slow-query log ---\n%s\n",
                (*service)->slow_query_log().DumpJson().c_str());
  }
  return failed.load() == 0 ? 0 : 1;
}

// Drives a short fully-traced query burst and prints the Prometheus text
// exposition (or, with --slow-log, the captured traces as JSON): a quick
// way to see every metric family a served database exports.
int CmdMetrics(int argc, char** argv) {
  bool slow_log = false;
  const char* connect = nullptr;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slow-log") == 0) {
      slow_log = true;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect = argv[i] + 10;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();

  // Remote mode: scrape a live shard-serve deployment over the wire's
  // admin frames (no local database involved).
  if (connect != nullptr) {
    const std::string hostport = connect;
    const size_t colon = hostport.rfind(':');
    if (colon == std::string::npos || colon + 1 >= hostport.size()) {
      std::fprintf(stderr, "metrics: --connect expects host:port\n");
      return Usage();
    }
    const std::string host = hostport.substr(0, colon);
    const uint16_t port =
        static_cast<uint16_t>(std::atoi(hostport.c_str() + colon + 1));
    auto client = RpcClient<2>::Connect(host, port);
    if (!client.ok()) return Fail(client.status(), "connect");
    auto text = (*client)->Admin(slow_log ? AdminKind::kDumpSlowLog
                                          : AdminKind::kScrapeMetrics);
    if (!text.ok()) return Fail(text.status(), "admin");
    std::printf("%s", text->c_str());
    if (text->empty() || text->back() != '\n') std::printf("\n");
    return 0;
  }

  if (argc < 1) return Usage();
  const std::string path = argv[0];
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 256;
  const uint32_t k =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 10;
  const uint32_t page_size =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 1024;

  QueryService<2>::Options options;
  options.num_workers = 2;
  options.trace_sample_per_million = 1'000'000;  // trace everything
  auto service = QueryService<2>::Open(path, page_size, options);
  if (!service.ok()) return Fail(service.status(), "open service");

  auto bounds = (*service)->db().tree().Bounds();
  if (!bounds.ok()) return Fail(bounds.status(), "bounds");
  Rng rng(12345);
  std::vector<std::future<QueryResponse<2>>> futures;
  for (size_t i = 0; i < num_queries; ++i) {
    Point2 q;
    for (int d = 0; d < 2; ++d) {
      q[d] = rng.Uniform(bounds->lo[d], bounds->hi[d]);
    }
    futures.push_back((*service)->Submit(QueryRequest<2>::Knn(q, k)));
  }
  uint64_t failed = 0;
  for (auto& f : futures) {
    if (!f.get().ok()) ++failed;
  }
  if (slow_log) {
    std::printf("%s\n", (*service)->slow_query_log().DumpJson().c_str());
  } else {
    std::printf("%s", (*service)->ScrapeMetrics().c_str());
  }
  return failed == 0 ? 0 : 1;
}

// Partitions a CSV of points across in-memory shards and serves them over
// the binary RPC protocol until max_requests completes (or forever when 0).
// The "listening on" line is flushed immediately so scripted drivers
// (tools/cli_test.sh) can poll for the bound port.
int CmdShardServe(int argc, char** argv) {
  uint64_t max_requests = 0;
  uint32_t max_pending = 128;
  uint32_t trace_sample = 0;
  bool resident = true;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-requests=", 15) == 0) {
      max_requests = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--max-pending=", 14) == 0) {
      max_pending = static_cast<uint32_t>(std::atoi(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      trace_sample = static_cast<uint32_t>(std::atoi(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--backend=paged") == 0) {
      resident = false;
    } else if (std::strcmp(argv[i], "--backend=resident") == 0) {
      resident = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size());
  argv = positional.data();
  if (argc < 2) return Usage();
  const std::string csv = argv[0];
  const uint32_t shards = static_cast<uint32_t>(std::atoi(argv[1]));
  const uint16_t port =
      argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0;
  const uint32_t workers =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 2;

  auto points = ReadPointsCsv(csv);
  if (!points.ok()) return Fail(points.status(), "read csv");

  ShardSet<2>::Options set_options;
  set_options.num_shards = shards;
  set_options.service.num_workers = workers;
  set_options.service.resident_tier = resident;
  auto set = ShardSet<2>::Build(MakePointEntries(*points), set_options);
  if (!set.ok()) return Fail(set.status(), "build shards");
  ShardRouter<2>::Options router_options;
  router_options.trace_sample_per_million = trace_sample;
  ShardRouter<2> router(set->get(), router_options);

  typename RpcServer<2>::Options server_options;
  server_options.port = port;
  server_options.max_pending = max_pending;
  server_options.max_requests = max_requests;
  auto server = RpcServer<2>::Start(&router, server_options);
  if (!server.ok()) return Fail(server.status(), "start server");

  std::printf("listening on 127.0.0.1:%u (%u shards, %u workers/shard, "
              "%s backend)\n",
              (*server)->port(), (*set)->num_shards(), workers,
              resident ? "resident" : "paged");
  std::fflush(stdout);

  (*server)->WaitUntilStopped();
  std::printf("served %llu requests (%llu shed)\n",
              static_cast<unsigned long long>((*server)->requests_served()),
              static_cast<unsigned long long>((*server)->requests_shed()));
  return 0;
}

// Fires uniformly random kNN queries at a shard-serve endpoint, one
// RpcClient per thread (the client is not thread-safe), and reports
// aggregate throughput, latency percentiles over accepted requests, and
// the ok/shed/failed split. Sheds are expected under deliberate overload
// and do not fail the run; transport errors do.
int CmdShardBench(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string host = argv[0];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  const size_t num_queries = static_cast<size_t>(std::atoll(argv[2]));
  const uint32_t k =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 10;
  const uint32_t num_threads =
      argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 2;
  if (num_threads < 1) return Usage();

  std::atomic<uint64_t> ok{0}, shed{0}, failed{0};
  std::vector<std::vector<uint64_t>> latencies(num_threads);
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t] {
      auto client = RpcClient<2>::Connect(host, port);
      if (!client.ok()) {
        std::fprintf(stderr, "connect: %s\n",
                     client.status().ToString().c_str());
        failed.fetch_add(1);
        return;
      }
      Rng rng(777 + t);
      for (size_t i = t; i < num_queries; i += num_threads) {
        const Point2 q{{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)}};
        const auto t0 = std::chrono::steady_clock::now();
        auto r = (*client)->Call(QueryRequest<2>::Knn(q, k));
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "call: %s\n", r.status().ToString().c_str());
          failed.fetch_add(1);
          return;  // connection is dead after a transport error
        }
        if (r->status.ok()) {
          ok.fetch_add(1);
          latencies[t].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        } else if (r->status.IsOverloaded()) {
          shed.fetch_add(1);
        } else {
          std::fprintf(stderr, "query: %s\n", r->status.ToString().c_str());
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    if (all.empty()) return 0.0;
    const size_t i = std::min(all.size() - 1,
                              static_cast<size_t>(p * (all.size() - 1)));
    return static_cast<double>(all[i]) / 1e6;
  };

  std::printf("ran %zu queries (k=%u) on %u threads in %.3f s\n", num_queries,
              k, num_threads, elapsed);
  std::printf("throughput: %.0f queries/s\n",
              elapsed > 0 ? static_cast<double>(ok.load()) / elapsed : 0.0);
  std::printf("accepted latency p50/p99: %.3f / %.3f ms\n", pct(0.50),
              pct(0.99));
  std::printf("ok=%llu shed=%llu failed=%llu\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(shed.load()),
              static_cast<unsigned long long>(failed.load()));
  return failed.load() == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc - 2, argv + 2);
  if (command == "build") return CmdBuild(argc - 2, argv + 2);
  if (command == "stats") return CmdStats(argc - 2, argv + 2);
  if (command == "tree-quality") return CmdTreeQuality(argc - 2, argv + 2);
  if (command == "knn") return CmdKnn(argc - 2, argv + 2);
  if (command == "approx-knn") return CmdApproxKnn(argc - 2, argv + 2);
  if (command == "farthest") return CmdFarthest(argc - 2, argv + 2);
  if (command == "rnn") return CmdRnn(argc - 2, argv + 2);
  if (command == "rknn") return CmdRknn(argc - 2, argv + 2);
  if (command == "skyline") return CmdSkyline(argc - 2, argv + 2);
  if (command == "range") return CmdRange(argc - 2, argv + 2);
  if (command == "serve-bench") return CmdServeBench(argc - 2, argv + 2);
  if (command == "metrics") return CmdMetrics(argc - 2, argv + 2);
  if (command == "shard-serve") return CmdShardServe(argc - 2, argv + 2);
  if (command == "shard-bench") return CmdShardBench(argc - 2, argv + 2);
  return Usage();
}

}  // namespace
}  // namespace spatial

int main(int argc, char** argv) { return spatial::Main(argc, argv); }
