// AVX2 tier of the SoA distance kernels: four entries per 256-bit vector.
//
// This TU is compiled with -mavx2 (see src/CMakeLists.txt) and is the ONLY
// TU in the tree built above the portable baseline. It therefore includes
// nothing that defines inline functions shared with other TUs — the linker
// could otherwise pick an AVX-encoded copy for the whole program and crash
// pre-AVX2 hosts. Runtime dispatch (metrics_simd.cc) guarantees these
// kernels only execute after __builtin_cpu_supports("avx2") succeeded.
//
// Bit-identity contract (see metrics_simd.cc): one entry per lane, the
// scalar expression tree per lane, dimensions accumulated in order, mul
// and add kept separate (no FMA — fusing would change the rounding and
// break bit-identity with the scalar reference), std::min emulated with
// compare+blend so NaN candidates from empty boxes resolve as the scalar
// ternary does, not as vminpd does.

#include <immintrin.h>

#include "geom/metrics_simd_kernels.h"

namespace spatial {
namespace {

constexpr double kInf = __builtin_huge_val();

template <int D>
void MinDistAvx2(const double* q, const double* planes, size_t stride,
                 uint32_t n, double* out) {
  const __m256d zero = _mm256_setzero_pd();
  for (uint32_t j = 0; j < n; j += 4) {
    __m256d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m256d lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d p = _mm256_set1_pd(q[d]);
      const __m256d g = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(lo, p), _mm256_sub_pd(p, hi)), zero);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(g, g));
    }
    _mm256_store_pd(out + j, sum);
  }
}

template <int D>
void MinMaxDistAvx2(const double* q, const double* planes, size_t stride,
                    uint32_t n, double* out) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d inf = _mm256_set1_pd(kInf);
  for (uint32_t j = 0; j < n; j += 4) {
    __m256d far_sum = _mm256_setzero_pd();
    __m256d far_term[D];
    __m256d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m256d lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d p = _mm256_set1_pd(q[d]);
      const __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(lo, hi));
      // blendv picks the *second* operand where the mask is set:
      // p <= mid -> lo, else (including NaN mid) hi — the scalar ternary.
      const __m256d near_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_LE_OQ));
      const __m256d far_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_GE_OQ));
      const __m256d dn = _mm256_sub_pd(p, near_plane);
      const __m256d df = _mm256_sub_pd(p, far_plane);
      near_term[d] = _mm256_mul_pd(dn, dn);
      far_term[d] = _mm256_mul_pd(df, df);
      far_sum = _mm256_add_pd(far_sum, far_term[d]);
    }
    __m256d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m256d candidate =
          _mm256_add_pd(_mm256_sub_pd(far_sum, far_term[k]), near_term[k]);
      best = _mm256_blendv_pd(
          best, candidate, _mm256_cmp_pd(candidate, best, _CMP_LT_OQ));
    }
    _mm256_store_pd(out + j, best);
  }
}

template <int D>
void MinAndMinMaxAvx2(const double* q, const double* planes, size_t stride,
                      uint32_t n, double* out_min, double* out_minmax) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d inf = _mm256_set1_pd(kInf);
  for (uint32_t j = 0; j < n; j += 4) {
    __m256d min_sum = zero;
    __m256d far_sum = zero;
    __m256d far_term[D];
    __m256d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m256d lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d p = _mm256_set1_pd(q[d]);
      const __m256d g = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(lo, p), _mm256_sub_pd(p, hi)), zero);
      min_sum = _mm256_add_pd(min_sum, _mm256_mul_pd(g, g));
      const __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(lo, hi));
      const __m256d near_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_LE_OQ));
      const __m256d far_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_GE_OQ));
      const __m256d dn = _mm256_sub_pd(p, near_plane);
      const __m256d df = _mm256_sub_pd(p, far_plane);
      near_term[d] = _mm256_mul_pd(dn, dn);
      far_term[d] = _mm256_mul_pd(df, df);
      far_sum = _mm256_add_pd(far_sum, far_term[d]);
    }
    __m256d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m256d candidate =
          _mm256_add_pd(_mm256_sub_pd(far_sum, far_term[k]), near_term[k]);
      best = _mm256_blendv_pd(
          best, candidate, _mm256_cmp_pd(candidate, best, _CMP_LT_OQ));
    }
    _mm256_store_pd(out_min + j, min_sum);
    _mm256_store_pd(out_minmax + j, best);
  }
}

template <int D>
void RectMinDistAvx2(const double* q, const double* planes, size_t stride,
                     uint32_t n, double* out) {
  const __m256d zero = _mm256_setzero_pd();
  for (uint32_t j = 0; j < n; j += 4) {
    __m256d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m256d b_lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d b_hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d a_lo = _mm256_set1_pd(q[d]);
      const __m256d a_hi = _mm256_set1_pd(q[D + d]);
      const __m256d gap = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(b_lo, a_hi), _mm256_sub_pd(a_lo, b_hi)),
          zero);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(gap, gap));
    }
    _mm256_store_pd(out + j, sum);
  }
}

constexpr int PlaneOf(int dims, int c) {
  return c < dims ? 2 * c : 2 * (c - dims) + 1;
}

// Four elements per round. Full source-column quads go through the
// classic 4x4 double transpose (unpacklo/hi + permute2f128); a trailing
// column pair (odd D: 2*D = 4m + 2) is transposed from 128-bit halves.
// Sources are only 8-byte aligned (page images), hence loadu; plane
// stores stay aligned (64-byte planes, stride multiple of kSoaLane).
template <int D>
void TransposeAvx2(const void* elems, size_t elem_bytes, uint32_t n,
                   double* planes, size_t stride) {
  const char* base = static_cast<const char*>(elems);
  uint32_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const double* e0 = reinterpret_cast<const double*>(base + j * elem_bytes);
    const double* e1 =
        reinterpret_cast<const double*>(base + (j + 1) * elem_bytes);
    const double* e2 =
        reinterpret_cast<const double*>(base + (j + 2) * elem_bytes);
    const double* e3 =
        reinterpret_cast<const double*>(base + (j + 3) * elem_bytes);
    int c = 0;
    for (; c + 4 <= 2 * D; c += 4) {
      const __m256d r0 = _mm256_loadu_pd(e0 + c);
      const __m256d r1 = _mm256_loadu_pd(e1 + c);
      const __m256d r2 = _mm256_loadu_pd(e2 + c);
      const __m256d r3 = _mm256_loadu_pd(e3 + c);
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
      _mm256_store_pd(planes + PlaneOf(D, c) * stride + j,
                      _mm256_permute2f128_pd(t0, t2, 0x20));
      _mm256_store_pd(planes + PlaneOf(D, c + 1) * stride + j,
                      _mm256_permute2f128_pd(t1, t3, 0x20));
      _mm256_store_pd(planes + PlaneOf(D, c + 2) * stride + j,
                      _mm256_permute2f128_pd(t0, t2, 0x31));
      _mm256_store_pd(planes + PlaneOf(D, c + 3) * stride + j,
                      _mm256_permute2f128_pd(t1, t3, 0x31));
    }
    if (c < 2 * D) {  // trailing column pair
      const __m128d u0 = _mm_loadu_pd(e0 + c);
      const __m128d u1 = _mm_loadu_pd(e1 + c);
      const __m128d u2 = _mm_loadu_pd(e2 + c);
      const __m128d u3 = _mm_loadu_pd(e3 + c);
      _mm256_store_pd(planes + PlaneOf(D, c) * stride + j,
                      _mm256_set_m128d(_mm_unpacklo_pd(u2, u3),
                                       _mm_unpacklo_pd(u0, u1)));
      _mm256_store_pd(planes + PlaneOf(D, c + 1) * stride + j,
                      _mm256_set_m128d(_mm_unpackhi_pd(u2, u3),
                                       _mm_unpackhi_pd(u0, u1)));
    }
  }
  for (; j < n; ++j) {
    const double* e = reinterpret_cast<const double*>(base + j * elem_bytes);
    for (int c = 0; c < 2 * D; ++c) {
      planes[PlaneOf(D, c) * stride + j] = e[c];
    }
  }
  for (int c = 0; c < 2 * D; ++c) {
    double* plane = planes + PlaneOf(D, c) * stride;
    const double pad = n > 0 ? plane[n - 1] : 0.0;
    for (size_t t = n; t < stride; ++t) plane[t] = pad;
  }
}

uint32_t FilterAvx2(const double* dist, uint32_t n, double bound,
                    uint32_t* idx_out) {
  const __m256d b = _mm256_set1_pd(bound);
  uint32_t kept = 0;
  uint32_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // NGT_UQ: !(dist > bound), NaN -> true — the scalar prune complement.
    int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_load_pd(dist + j), b, _CMP_NGT_UQ));
    while (m != 0) {
      idx_out[kept++] = j + static_cast<uint32_t>(__builtin_ctz(m));
      m &= m - 1;
    }
  }
  for (; j < n; ++j) {
    if (!(dist[j] > bound)) idx_out[kept++] = j;
  }
  return kept;
}

// Fused MINDIST + filter: whole vector groups, then the scalar expression
// for the trailing entries (lane == scalar bit for bit, so the out[] array
// matches MinDistAvx2 exactly and the kept set matches FilterAvx2 over it).
template <int D>
uint32_t MinDistFilterAvx2(const double* q, const double* planes,
                           size_t stride, uint32_t n, double bound,
                           double* out, uint32_t* idx_out) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d b = _mm256_set1_pd(bound);
  uint32_t kept = 0;
  uint32_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m256d lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d p = _mm256_set1_pd(q[d]);
      const __m256d g = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(lo, p), _mm256_sub_pd(p, hi)), zero);
      sum = _mm256_add_pd(sum, _mm256_mul_pd(g, g));
    }
    _mm256_store_pd(out + j, sum);
    int m = _mm256_movemask_pd(_mm256_cmp_pd(sum, b, _CMP_NGT_UQ));
    while (m != 0) {
      idx_out[kept++] = j + static_cast<uint32_t>(__builtin_ctz(m));
      m &= m - 1;
    }
  }
  for (; j < n; ++j) {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double lo_gap = planes[(2 * d) * stride + j] - q[d];
      const double hi_gap = q[d] - planes[(2 * d + 1) * stride + j];
      // std::max spelled out (this TU includes no shared inline headers):
      // (a < b) ? b : a, twice — identical selects to the scalar reference.
      const double gap = lo_gap < hi_gap ? hi_gap : lo_gap;
      const double g = gap < 0.0 ? 0.0 : gap;
      sum += g * g;
    }
    out[j] = sum;
    if (!(sum > bound)) idx_out[kept++] = j;
  }
  return kept;
}

// Fused MINDIST + MINMAXDIST reduction. The running minimum uses the same
// compare+blend as the per-dimension min (candidate < best takes the
// candidate, NaN keeps the old value). The tail past n is covered by the
// padding contract: plane slots [n, stride) replicate entry n - 1, so the
// padded lanes of the last group reproduce that entry's MINMAXDIST and
// cannot perturb the minimum.
template <int D>
double MinDistMinMinMaxAvx2(const double* q, const double* planes,
                            size_t stride, uint32_t n, double* out_min) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d inf = _mm256_set1_pd(kInf);
  __m256d reduced = inf;
  for (uint32_t j = 0; j < n; j += 4) {
    __m256d min_sum = zero;
    __m256d far_sum = zero;
    __m256d far_term[D];
    __m256d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m256d lo = _mm256_load_pd(planes + (2 * d) * stride + j);
      const __m256d hi = _mm256_load_pd(planes + (2 * d + 1) * stride + j);
      const __m256d p = _mm256_set1_pd(q[d]);
      const __m256d g = _mm256_max_pd(
          _mm256_max_pd(_mm256_sub_pd(lo, p), _mm256_sub_pd(p, hi)), zero);
      min_sum = _mm256_add_pd(min_sum, _mm256_mul_pd(g, g));
      const __m256d mid = _mm256_mul_pd(half, _mm256_add_pd(lo, hi));
      const __m256d near_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_LE_OQ));
      const __m256d far_plane =
          _mm256_blendv_pd(hi, lo, _mm256_cmp_pd(p, mid, _CMP_GE_OQ));
      const __m256d dn = _mm256_sub_pd(p, near_plane);
      const __m256d df = _mm256_sub_pd(p, far_plane);
      near_term[d] = _mm256_mul_pd(dn, dn);
      far_term[d] = _mm256_mul_pd(df, df);
      far_sum = _mm256_add_pd(far_sum, far_term[d]);
    }
    __m256d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m256d candidate =
          _mm256_add_pd(_mm256_sub_pd(far_sum, far_term[k]), near_term[k]);
      best = _mm256_blendv_pd(
          best, candidate, _mm256_cmp_pd(candidate, best, _CMP_LT_OQ));
    }
    _mm256_store_pd(out_min + j, min_sum);
    reduced = _mm256_blendv_pd(
        reduced, best, _mm256_cmp_pd(best, reduced, _CMP_LT_OQ));
  }
  const __m128d lo_half = _mm256_castpd256_pd128(reduced);
  const __m128d hi_half = _mm256_extractf128_pd(reduced, 1);
  const __m128d pair = _mm_blendv_pd(
      lo_half, hi_half, _mm_cmp_pd(hi_half, lo_half, _CMP_LT_OQ));
  const __m128d upper = _mm_unpackhi_pd(pair, pair);
  const __m128d folded =
      _mm_blendv_pd(pair, upper, _mm_cmp_pd(upper, pair, _CMP_LT_OQ));
  return _mm_cvtsd_f64(folded);
}

template <int D>
constexpr SoaKernelSet Avx2Set() {
  return SoaKernelSet{&MinDistAvx2<D>,       &MinMaxDistAvx2<D>,
                      &MinDistAvx2<D>,       &RectMinDistAvx2<D>,
                      &MinAndMinMaxAvx2<D>,  &TransposeAvx2<D>,
                      &FilterAvx2,           &MinDistFilterAvx2<D>,
                      &MinDistMinMinMaxAvx2<D>, KernelIsa::kAvx2};
}

constexpr SoaKernelSet kAvx2Sets[] = {
    Avx2Set<2>(), Avx2Set<3>(), Avx2Set<4>(), Avx2Set<5>(),
    Avx2Set<6>(), Avx2Set<7>(), Avx2Set<8>()};

}  // namespace

namespace simd_internal {

const SoaKernelSet* Avx2KernelSetFor(int dims) {
  if (dims < kSoaMinDims || dims > kSoaMaxDims) return nullptr;
  return &kAvx2Sets[dims - kSoaMinDims];
}

}  // namespace simd_internal
}  // namespace spatial
