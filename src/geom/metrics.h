#ifndef SPATIAL_GEOM_METRICS_H_
#define SPATIAL_GEOM_METRICS_H_

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {

// The two distance metrics introduced by "Nearest Neighbor Queries"
// (SIGMOD 1995), plus MAXDIST. All functions return *squared* distances;
// the paper compares squared values throughout to avoid square roots.
//
// For a query point p and an MBR R:
//
//   MINDIST(p, R)    — distance from p to the nearest point of R
//                      (0 if p lies inside R). Lower bound on the distance
//                      from p to *any* object enclosed by R. (Theorem 1)
//
//   MINMAXDIST(p, R) — the minimum over all faces of R of the maximum
//                      distance from p to that face's farthest point, taking
//                      in each dimension the closer of the two hyperplanes.
//                      Because every face of a *minimum* bounding rectangle
//                      touches at least one enclosed object (the MBR face
//                      property), MINMAXDIST is an upper bound on the
//                      distance from p to the *nearest* object in R.
//                      (Theorem 2)
//
//   MAXDIST(p, R)    — distance from p to the farthest corner of R; an upper
//                      bound on the distance from p to any object in R.
//
// Together:  MINDIST(p,R) <= d(p, nearest object in R) <= MINMAXDIST(p,R)
//                                                      <= MAXDIST(p,R).

// MINDIST^2(p, R). R must be non-empty.
template <int D>
inline double MinDistSq(const Point<D>& p, const Rect<D>& r) {
  SPATIAL_DCHECK(!r.IsEmpty());
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double d = 0.0;
    if (p[i] < r.lo[i]) {
      d = r.lo[i] - p[i];
    } else if (p[i] > r.hi[i]) {
      d = p[i] - r.hi[i];
    }
    sum += d * d;
  }
  return sum;
}

// MINMAXDIST^2(p, R). R must be non-empty.
//
// Following the construction in the paper: for each dimension k let
//   rm_k = lo_k if p_k <= (lo_k + hi_k)/2, else hi_k      (nearer hyperplane)
//   rM_i = lo_i if p_i >= (lo_i + hi_i)/2, else hi_i      (farther hyperplane)
// then
//   MINMAXDIST^2 = min over k of (|p_k - rm_k|^2 + sum_{i != k} |p_i - rM_i|^2).
template <int D>
inline double MinMaxDistSq(const Point<D>& p, const Rect<D>& r) {
  SPATIAL_DCHECK(!r.IsEmpty());
  // Precompute S = sum_i |p_i - rM_i|^2, then for each k swap the farther
  // term for the nearer one. O(D) instead of O(D^2).
  double far_sum = 0.0;
  double far_term[D];
  double near_term[D];
  for (int i = 0; i < D; ++i) {
    const double mid = 0.5 * (r.lo[i] + r.hi[i]);
    const double near_plane = (p[i] <= mid) ? r.lo[i] : r.hi[i];
    const double far_plane = (p[i] >= mid) ? r.lo[i] : r.hi[i];
    const double dn = p[i] - near_plane;
    const double df = p[i] - far_plane;
    near_term[i] = dn * dn;
    far_term[i] = df * df;
    far_sum += far_term[i];
  }
  double best = std::numeric_limits<double>::infinity();
  for (int k = 0; k < D; ++k) {
    const double candidate = far_sum - far_term[k] + near_term[k];
    best = std::min(best, candidate);
  }
  return best;
}

// MAXDIST^2(p, R): squared distance to the farthest corner. R non-empty.
template <int D>
inline double MaxDistSq(const Point<D>& p, const Rect<D>& r) {
  SPATIAL_DCHECK(!r.IsEmpty());
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    const double d = std::max(std::abs(p[i] - r.lo[i]),
                              std::abs(p[i] - r.hi[i]));
    sum += d * d;
  }
  return sum;
}

// Convenience non-squared wrappers (cold paths / reporting only).
template <int D>
inline double MinDist(const Point<D>& p, const Rect<D>& r) {
  return std::sqrt(MinDistSq(p, r));
}
template <int D>
inline double MinMaxDist(const Point<D>& p, const Rect<D>& r) {
  return std::sqrt(MinMaxDistSq(p, r));
}
template <int D>
inline double MaxDist(const Point<D>& p, const Rect<D>& r) {
  return std::sqrt(MaxDistSq(p, r));
}

// MINDIST^2 between two rectangles: the squared gap between the closest
// pair of points of the two boxes (0 when they intersect). Used by the
// closest-pairs distance join. Both rectangles must be non-empty.
template <int D>
inline double MinDistSq(const Rect<D>& a, const Rect<D>& b) {
  SPATIAL_DCHECK(!a.IsEmpty() && !b.IsEmpty());
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    double gap = 0.0;
    if (a.hi[i] < b.lo[i]) {
      gap = b.lo[i] - a.hi[i];
    } else if (b.hi[i] < a.lo[i]) {
      gap = a.lo[i] - b.hi[i];
    }
    sum += gap * gap;
  }
  return sum;
}

// Distance from a query point to a stored *object*. Objects are stored as
// (possibly degenerate) rectangles; for point objects this is the exact
// point distance, for extended objects it is the distance to the object's
// MBR, matching the convention of libspatialindex-style engines.
template <int D>
inline double ObjectDistSq(const Point<D>& p, const Rect<D>& object_mbr) {
  return MinDistSq(p, object_mbr);
}

// ---------------------------------------------------------------------------
// Batch kernels.
//
// Evaluate one metric for a query point against a *contiguous span* of
// elements — anything exposing an `mbr` member, in practice Entry<D> staged
// by NodeView::CopyEntries into a QueryScratch — writing one distance per
// element. The element loop is branch-free straight-line arithmetic over a
// fixed stride, which compilers auto-vectorize; the results are
// bit-identical to calling the scalar functions element by element (the
// max-based MINDIST form selects exactly the same operand as the scalar
// branches, so every product and the summation order coincide).

// out[j] = MINDIST^2(p, elems[j].mbr) for j in [0, n).
template <int D, typename E>
inline void MinDistSqBatch(const Point<D>& p, const E* elems, uint32_t n,
                           double* out) {
  for (uint32_t j = 0; j < n; ++j) {
    const Rect<D>& r = elems[j].mbr;
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double lo_gap = r.lo[i] - p[i];
      const double hi_gap = p[i] - r.hi[i];
      const double d = std::max(std::max(lo_gap, hi_gap), 0.0);
      sum += d * d;
    }
    out[j] = sum;
  }
}

// out[j] = MINMAXDIST^2(p, elems[j].mbr) for j in [0, n). Same construction
// as the scalar MinMaxDistSq: precompute the all-far sum, then swap in the
// near term per dimension.
template <int D, typename E>
inline void MinMaxDistSqBatch(const Point<D>& p, const E* elems, uint32_t n,
                              double* out) {
  for (uint32_t j = 0; j < n; ++j) {
    const Rect<D>& r = elems[j].mbr;
    double far_sum = 0.0;
    double far_term[D];
    double near_term[D];
    for (int i = 0; i < D; ++i) {
      const double mid = 0.5 * (r.lo[i] + r.hi[i]);
      const double near_plane = (p[i] <= mid) ? r.lo[i] : r.hi[i];
      const double far_plane = (p[i] >= mid) ? r.lo[i] : r.hi[i];
      const double dn = p[i] - near_plane;
      const double df = p[i] - far_plane;
      near_term[i] = dn * dn;
      far_term[i] = df * df;
      far_sum += far_term[i];
    }
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < D; ++k) {
      const double candidate = far_sum - far_term[k] + near_term[k];
      best = std::min(best, candidate);
    }
    out[j] = best;
  }
}

// out[j] = ObjectDistSq(p, elems[j].mbr): object distance is MBR MINDIST.
template <int D, typename E>
inline void ObjectDistSqBatch(const Point<D>& p, const E* elems, uint32_t n,
                              double* out) {
  MinDistSqBatch<D>(p, elems, n, out);
}

// out[j] = MINDIST^2(a, elems[j].mbr): the rect-rect gap metric, in the
// same branch-free max form as the point kernel. Selects the same operand
// as the branching scalar MinDistSq(Rect, Rect) in every case, so the
// results coincide bit for bit.
template <int D, typename E>
inline void MinDistSqBatch(const Rect<D>& a, const E* elems, uint32_t n,
                           double* out) {
  for (uint32_t j = 0; j < n; ++j) {
    const Rect<D>& b = elems[j].mbr;
    double sum = 0.0;
    for (int i = 0; i < D; ++i) {
      const double lo_gap = b.lo[i] - a.hi[i];
      const double hi_gap = a.lo[i] - b.hi[i];
      const double gap = std::max(std::max(lo_gap, hi_gap), 0.0);
      sum += gap * gap;
    }
    out[j] = sum;
  }
}

}  // namespace spatial

#endif  // SPATIAL_GEOM_METRICS_H_
