#include "geom/metrics_simd.h"

#include <algorithm>
#include <cstring>
#include <limits>

#if defined(__x86_64__)
#include <emmintrin.h>  // SSE2
#endif

// The portable kernel tiers. Every implementation — scalar here, SSE2
// here, AVX2 in metrics_simd_avx2.cc — evaluates the *same expression
// tree in the same order* as the scalar batch kernels of geom/metrics.h:
// per entry, per dimension in ascending order, gap = max(max(lo_gap,
// hi_gap), 0), sum accumulated dimension by dimension. Vector tiers put
// one entry per lane, so each lane is exactly the scalar computation and
// the results are bit-identical (simd_kernel_test proves it exhaustively).
//
// Two places need care to preserve bit-identity on degenerate input
// (empty boxes stage +-infinity and make MINMAXDIST's mid NaN):
//  * plane selection must be `p <= mid ? lo : hi` with an *ordered*
//    compare (NaN -> false -> hi), matching the scalar ternary;
//  * the final min over dimensions must keep the old value when the
//    candidate is NaN, as std::min does — hardware minpd instead returns
//    the NaN. The vector tiers therefore emulate std::min with a
//    compare+select rather than using min instructions.

namespace spatial {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: the reference the vector tiers are tested against. Also the
// only tier on non-x86 builds.

template <int D>
void MinDistScalar(const double* q, const double* planes, size_t stride,
                   uint32_t n, double* out) {
  for (uint32_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double lo_gap = planes[(2 * d) * stride + j] - q[d];
      const double hi_gap = q[d] - planes[(2 * d + 1) * stride + j];
      const double g = std::max(std::max(lo_gap, hi_gap), 0.0);
      sum += g * g;
    }
    out[j] = sum;
  }
}

template <int D>
void MinMaxDistScalar(const double* q, const double* planes, size_t stride,
                      uint32_t n, double* out) {
  for (uint32_t j = 0; j < n; ++j) {
    double far_sum = 0.0;
    double far_term[D];
    double near_term[D];
    for (int d = 0; d < D; ++d) {
      const double lo = planes[(2 * d) * stride + j];
      const double hi = planes[(2 * d + 1) * stride + j];
      const double mid = 0.5 * (lo + hi);
      const double near_plane = (q[d] <= mid) ? lo : hi;
      const double far_plane = (q[d] >= mid) ? lo : hi;
      const double dn = q[d] - near_plane;
      const double df = q[d] - far_plane;
      near_term[d] = dn * dn;
      far_term[d] = df * df;
      far_sum += far_term[d];
    }
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < D; ++k) {
      const double candidate = far_sum - far_term[k] + near_term[k];
      best = std::min(best, candidate);
    }
    out[j] = best;
  }
}

template <int D>
void MinAndMinMaxScalar(const double* q, const double* planes, size_t stride,
                        uint32_t n, double* out_min, double* out_minmax) {
  for (uint32_t j = 0; j < n; ++j) {
    double min_sum = 0.0;
    double far_sum = 0.0;
    double far_term[D];
    double near_term[D];
    for (int d = 0; d < D; ++d) {
      const double lo = planes[(2 * d) * stride + j];
      const double hi = planes[(2 * d + 1) * stride + j];
      const double lo_gap = lo - q[d];
      const double hi_gap = q[d] - hi;
      const double g = std::max(std::max(lo_gap, hi_gap), 0.0);
      min_sum += g * g;
      const double mid = 0.5 * (lo + hi);
      const double near_plane = (q[d] <= mid) ? lo : hi;
      const double far_plane = (q[d] >= mid) ? lo : hi;
      const double dn = q[d] - near_plane;
      const double df = q[d] - far_plane;
      near_term[d] = dn * dn;
      far_term[d] = df * df;
      far_sum += far_term[d];
    }
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < D; ++k) {
      const double candidate = far_sum - far_term[k] + near_term[k];
      best = std::min(best, candidate);
    }
    out_min[j] = min_sum;
    out_minmax[j] = best;
  }
}

template <int D>
void RectMinDistScalar(const double* q, const double* planes, size_t stride,
                       uint32_t n, double* out) {
  // q holds the query rect as 2*D packed doubles: lo[0..D), hi[0..D).
  // The branch-free form selects exactly the value the branching scalar
  // MinDistSq(Rect, Rect) computes: when the boxes overlap in a dimension
  // both differences are <= 0 and the max is +0.0 (or -0.0, squared away).
  for (uint32_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double b_lo = planes[(2 * d) * stride + j];
      const double b_hi = planes[(2 * d + 1) * stride + j];
      const double gap =
          std::max(std::max(b_lo - q[D + d], q[d] - b_hi), 0.0);
      sum += gap * gap;
    }
    out[j] = sum;
  }
}

// Source double index c of an element (lo[0..D) then hi[0..D), the Rect
// layout) maps to plane index: lo_d lives at plane 2d, hi_d at 2d+1.
constexpr int PlaneOf(int dims, int c) {
  return c < dims ? 2 * c : 2 * (c - dims) + 1;
}

template <int D>
void TransposeScalarKernel(const void* elems, size_t elem_bytes, uint32_t n,
                           double* planes, size_t stride) {
  const char* base = static_cast<const char*>(elems);
  for (int c = 0; c < 2 * D; ++c) {
    double* plane = planes + PlaneOf(D, c) * stride;
    for (uint32_t j = 0; j < n; ++j) {
      double v;
      std::memcpy(&v, base + j * elem_bytes + c * sizeof(double), sizeof(v));
      plane[j] = v;
    }
    const double pad = n > 0 ? plane[n - 1] : 0.0;
    for (size_t j = n; j < stride; ++j) plane[j] = pad;
  }
}

uint32_t FilterScalarKernel(const double* dist, uint32_t n, double bound,
                            uint32_t* idx_out) {
  uint32_t kept = 0;
  for (uint32_t j = 0; j < n; ++j) {
    if (!(dist[j] > bound)) idx_out[kept++] = j;
  }
  return kept;
}

template <int D>
uint32_t MinDistFilterScalar(const double* q, const double* planes,
                             size_t stride, uint32_t n, double bound,
                             double* out, uint32_t* idx_out) {
  uint32_t kept = 0;
  for (uint32_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double lo_gap = planes[(2 * d) * stride + j] - q[d];
      const double hi_gap = q[d] - planes[(2 * d + 1) * stride + j];
      const double g = std::max(std::max(lo_gap, hi_gap), 0.0);
      sum += g * g;
    }
    out[j] = sum;
    if (!(sum > bound)) idx_out[kept++] = j;
  }
  return kept;
}

template <int D>
double MinDistMinMinMaxScalar(const double* q, const double* planes,
                              size_t stride, uint32_t n, double* out_min) {
  double reduced = std::numeric_limits<double>::infinity();
  for (uint32_t j = 0; j < n; ++j) {
    double min_sum = 0.0;
    double far_sum = 0.0;
    double far_term[D];
    double near_term[D];
    for (int d = 0; d < D; ++d) {
      const double lo = planes[(2 * d) * stride + j];
      const double hi = planes[(2 * d + 1) * stride + j];
      const double lo_gap = lo - q[d];
      const double hi_gap = q[d] - hi;
      const double g = std::max(std::max(lo_gap, hi_gap), 0.0);
      min_sum += g * g;
      const double mid = 0.5 * (lo + hi);
      const double near_plane = (q[d] <= mid) ? lo : hi;
      const double far_plane = (q[d] >= mid) ? lo : hi;
      const double dn = q[d] - near_plane;
      const double df = q[d] - far_plane;
      near_term[d] = dn * dn;
      far_term[d] = df * df;
      far_sum += far_term[d];
    }
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < D; ++k) {
      const double candidate = far_sum - far_term[k] + near_term[k];
      best = std::min(best, candidate);
    }
    out_min[j] = min_sum;
    reduced = std::min(reduced, best);
  }
  return reduced;
}

// ---------------------------------------------------------------------------
// SSE2 tier: two entries per 128-bit lane pair. Baseline on x86-64, so no
// special compile flags are needed for this TU.

#if defined(__x86_64__)

template <int D>
void MinDistSse2(const double* q, const double* planes, size_t stride,
                 uint32_t n, double* out) {
  const __m128d zero = _mm_setzero_pd();
  for (uint32_t j = 0; j < n; j += 2) {
    __m128d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m128d lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d p = _mm_set1_pd(q[d]);
      const __m128d g = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(lo, p), _mm_sub_pd(p, hi)), zero);
      sum = _mm_add_pd(sum, _mm_mul_pd(g, g));
    }
    _mm_store_pd(out + j, sum);
  }
}

// mask ? a : b, bitwise (SSE2 has no blendv).
static inline __m128d Select128(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

template <int D>
void MinMaxDistSse2(const double* q, const double* planes, size_t stride,
                    uint32_t n, double* out) {
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  for (uint32_t j = 0; j < n; j += 2) {
    __m128d far_sum = _mm_setzero_pd();
    __m128d far_term[D];
    __m128d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m128d lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d p = _mm_set1_pd(q[d]);
      const __m128d mid = _mm_mul_pd(half, _mm_add_pd(lo, hi));
      const __m128d near_plane = Select128(_mm_cmple_pd(p, mid), lo, hi);
      const __m128d far_plane = Select128(_mm_cmpge_pd(p, mid), lo, hi);
      const __m128d dn = _mm_sub_pd(p, near_plane);
      const __m128d df = _mm_sub_pd(p, far_plane);
      near_term[d] = _mm_mul_pd(dn, dn);
      far_term[d] = _mm_mul_pd(df, df);
      far_sum = _mm_add_pd(far_sum, far_term[d]);
    }
    __m128d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m128d candidate =
          _mm_add_pd(_mm_sub_pd(far_sum, far_term[k]), near_term[k]);
      // std::min semantics: take candidate only when candidate < best.
      best = Select128(_mm_cmplt_pd(candidate, best), candidate, best);
    }
    _mm_store_pd(out + j, best);
  }
}

template <int D>
void MinAndMinMaxSse2(const double* q, const double* planes, size_t stride,
                      uint32_t n, double* out_min, double* out_minmax) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  for (uint32_t j = 0; j < n; j += 2) {
    __m128d min_sum = zero;
    __m128d far_sum = zero;
    __m128d far_term[D];
    __m128d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m128d lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d p = _mm_set1_pd(q[d]);
      const __m128d g = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(lo, p), _mm_sub_pd(p, hi)), zero);
      min_sum = _mm_add_pd(min_sum, _mm_mul_pd(g, g));
      const __m128d mid = _mm_mul_pd(half, _mm_add_pd(lo, hi));
      const __m128d near_plane = Select128(_mm_cmple_pd(p, mid), lo, hi);
      const __m128d far_plane = Select128(_mm_cmpge_pd(p, mid), lo, hi);
      const __m128d dn = _mm_sub_pd(p, near_plane);
      const __m128d df = _mm_sub_pd(p, far_plane);
      near_term[d] = _mm_mul_pd(dn, dn);
      far_term[d] = _mm_mul_pd(df, df);
      far_sum = _mm_add_pd(far_sum, far_term[d]);
    }
    __m128d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m128d candidate =
          _mm_add_pd(_mm_sub_pd(far_sum, far_term[k]), near_term[k]);
      best = Select128(_mm_cmplt_pd(candidate, best), candidate, best);
    }
    _mm_store_pd(out_min + j, min_sum);
    _mm_store_pd(out_minmax + j, best);
  }
}

template <int D>
void RectMinDistSse2(const double* q, const double* planes, size_t stride,
                     uint32_t n, double* out) {
  const __m128d zero = _mm_setzero_pd();
  for (uint32_t j = 0; j < n; j += 2) {
    __m128d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m128d b_lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d b_hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d a_lo = _mm_set1_pd(q[d]);
      const __m128d a_hi = _mm_set1_pd(q[D + d]);
      const __m128d gap = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(b_lo, a_hi), _mm_sub_pd(a_lo, b_hi)), zero);
      sum = _mm_add_pd(sum, _mm_mul_pd(gap, gap));
    }
    _mm_store_pd(out + j, sum);
  }
}

// Two elements per round, two source columns per step: unpacklo/hi of the
// two rows' column pair IS the 2x2 transpose. Entry data is only 8-byte
// aligned (page images start entries at offset 8), so sources use loadu;
// plane stores are aligned (planes are 64-byte aligned, stride is a
// multiple of kSoaLane, j advances by 2).
template <int D>
void TransposeSse2Kernel(const void* elems, size_t elem_bytes, uint32_t n,
                         double* planes, size_t stride) {
  const char* base = static_cast<const char*>(elems);
  uint32_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const double* e0 = reinterpret_cast<const double*>(base + j * elem_bytes);
    const double* e1 =
        reinterpret_cast<const double*>(base + (j + 1) * elem_bytes);
    for (int c = 0; c < 2 * D; c += 2) {
      const __m128d a = _mm_loadu_pd(e0 + c);
      const __m128d b = _mm_loadu_pd(e1 + c);
      _mm_store_pd(planes + PlaneOf(D, c) * stride + j,
                   _mm_unpacklo_pd(a, b));
      _mm_store_pd(planes + PlaneOf(D, c + 1) * stride + j,
                   _mm_unpackhi_pd(a, b));
    }
  }
  for (; j < n; ++j) {
    for (int c = 0; c < 2 * D; ++c) {
      double v;
      std::memcpy(&v, base + j * elem_bytes + c * sizeof(double), sizeof(v));
      planes[PlaneOf(D, c) * stride + j] = v;
    }
  }
  for (int c = 0; c < 2 * D; ++c) {
    double* plane = planes + PlaneOf(D, c) * stride;
    const double pad = n > 0 ? plane[n - 1] : 0.0;
    for (size_t t = n; t < stride; ++t) plane[t] = pad;
  }
}

uint32_t FilterSse2Kernel(const double* dist, uint32_t n, double bound,
                          uint32_t* idx_out) {
  const __m128d b = _mm_set1_pd(bound);
  uint32_t kept = 0;
  uint32_t j = 0;
  for (; j + 2 <= n; j += 2) {
    // cmpngt: !(dist > bound), NaN -> true — the scalar prune complement.
    const int m = _mm_movemask_pd(_mm_cmpngt_pd(_mm_load_pd(dist + j), b));
    if (m & 1) idx_out[kept++] = j;
    if (m & 2) idx_out[kept++] = j + 1;
  }
  for (; j < n; ++j) {
    if (!(dist[j] > bound)) idx_out[kept++] = j;
  }
  return kept;
}

// Fused MINDIST + filter: whole lane pairs, then the scalar expression for
// a trailing odd entry (lane == scalar bit for bit, so the out[] array
// matches MinDistSse2 exactly).
template <int D>
uint32_t MinDistFilterSse2(const double* q, const double* planes,
                           size_t stride, uint32_t n, double bound,
                           double* out, uint32_t* idx_out) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d b = _mm_set1_pd(bound);
  uint32_t kept = 0;
  uint32_t j = 0;
  for (; j + 2 <= n; j += 2) {
    __m128d sum = zero;
    for (int d = 0; d < D; ++d) {
      const __m128d lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d p = _mm_set1_pd(q[d]);
      const __m128d g = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(lo, p), _mm_sub_pd(p, hi)), zero);
      sum = _mm_add_pd(sum, _mm_mul_pd(g, g));
    }
    _mm_store_pd(out + j, sum);
    const int m = _mm_movemask_pd(_mm_cmpngt_pd(sum, b));
    if (m & 1) idx_out[kept++] = j;
    if (m & 2) idx_out[kept++] = j + 1;
  }
  for (; j < n; ++j) {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double lo_gap = planes[(2 * d) * stride + j] - q[d];
      const double hi_gap = q[d] - planes[(2 * d + 1) * stride + j];
      const double g = std::max(std::max(lo_gap, hi_gap), 0.0);
      sum += g * g;
    }
    out[j] = sum;
    if (!(sum > bound)) idx_out[kept++] = j;
  }
  return kept;
}

// Fused MINDIST + MINMAXDIST reduction. The running minimum uses the same
// compare+select as the per-dimension min (candidate < best takes the
// candidate, NaN keeps the old value), and the tail past n is covered by
// the padding contract: plane slots [n, stride) replicate entry n - 1, so
// the padded lanes of the last pair reproduce that entry's MINMAXDIST and
// cannot perturb the minimum.
template <int D>
double MinDistMinMinMaxSse2(const double* q, const double* planes,
                            size_t stride, uint32_t n, double* out_min) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  __m128d reduced = inf;
  for (uint32_t j = 0; j < n; j += 2) {
    __m128d min_sum = zero;
    __m128d far_sum = zero;
    __m128d far_term[D];
    __m128d near_term[D];
    for (int d = 0; d < D; ++d) {
      const __m128d lo = _mm_load_pd(planes + (2 * d) * stride + j);
      const __m128d hi = _mm_load_pd(planes + (2 * d + 1) * stride + j);
      const __m128d p = _mm_set1_pd(q[d]);
      const __m128d g = _mm_max_pd(
          _mm_max_pd(_mm_sub_pd(lo, p), _mm_sub_pd(p, hi)), zero);
      min_sum = _mm_add_pd(min_sum, _mm_mul_pd(g, g));
      const __m128d mid = _mm_mul_pd(half, _mm_add_pd(lo, hi));
      const __m128d near_plane = Select128(_mm_cmple_pd(p, mid), lo, hi);
      const __m128d far_plane = Select128(_mm_cmpge_pd(p, mid), lo, hi);
      const __m128d dn = _mm_sub_pd(p, near_plane);
      const __m128d df = _mm_sub_pd(p, far_plane);
      near_term[d] = _mm_mul_pd(dn, dn);
      far_term[d] = _mm_mul_pd(df, df);
      far_sum = _mm_add_pd(far_sum, far_term[d]);
    }
    __m128d best = inf;
    for (int k = 0; k < D; ++k) {
      const __m128d candidate =
          _mm_add_pd(_mm_sub_pd(far_sum, far_term[k]), near_term[k]);
      best = Select128(_mm_cmplt_pd(candidate, best), candidate, best);
    }
    _mm_store_pd(out_min + j, min_sum);
    reduced = Select128(_mm_cmplt_pd(best, reduced), best, reduced);
  }
  const __m128d hi_lane = _mm_unpackhi_pd(reduced, reduced);
  const __m128d folded =
      Select128(_mm_cmplt_pd(hi_lane, reduced), hi_lane, reduced);
  return _mm_cvtsd_f64(folded);
}

#endif  // defined(__x86_64__)

// ---------------------------------------------------------------------------
// Registries.

template <int D>
constexpr SoaKernelSet ScalarSet() {
  return SoaKernelSet{&MinDistScalar<D>,       &MinMaxDistScalar<D>,
                      &MinDistScalar<D>,       &RectMinDistScalar<D>,
                      &MinAndMinMaxScalar<D>,  &TransposeScalarKernel<D>,
                      &FilterScalarKernel,     &MinDistFilterScalar<D>,
                      &MinDistMinMinMaxScalar<D>, KernelIsa::kScalar};
}

constexpr SoaKernelSet kScalarSets[] = {
    ScalarSet<2>(), ScalarSet<3>(), ScalarSet<4>(), ScalarSet<5>(),
    ScalarSet<6>(), ScalarSet<7>(), ScalarSet<8>()};

#if defined(__x86_64__)
template <int D>
constexpr SoaKernelSet Sse2Set() {
  return SoaKernelSet{&MinDistSse2<D>,       &MinMaxDistSse2<D>,
                      &MinDistSse2<D>,       &RectMinDistSse2<D>,
                      &MinAndMinMaxSse2<D>,  &TransposeSse2Kernel<D>,
                      &FilterSse2Kernel,     &MinDistFilterSse2<D>,
                      &MinDistMinMinMaxSse2<D>, KernelIsa::kSse2};
}

constexpr SoaKernelSet kSse2Sets[] = {
    Sse2Set<2>(), Sse2Set<3>(), Sse2Set<4>(), Sse2Set<5>(),
    Sse2Set<6>(), Sse2Set<7>(), Sse2Set<8>()};
#endif

bool DimsInRange(int dims) {
  return dims >= kSoaMinDims && dims <= kSoaMaxDims;
}

}  // namespace

namespace simd_internal {

const SoaKernelSet* ScalarKernelSetFor(int dims) {
  return DimsInRange(dims) ? &kScalarSets[dims - kSoaMinDims] : nullptr;
}

const SoaKernelSet* Sse2KernelSetFor(int dims) {
#if defined(__x86_64__)
  return DimsInRange(dims) ? &kSse2Sets[dims - kSoaMinDims] : nullptr;
#else
  (void)dims;
  return nullptr;
#endif
}

#ifndef SPATIAL_HAVE_AVX2_KERNELS
// The AVX2 TU is absent from this build (non-x86-64 target or a compiler
// without -mavx2); resolve its registry to "not available".
const SoaKernelSet* Avx2KernelSetFor(int dims) {
  (void)dims;
  return nullptr;
}
#endif

}  // namespace simd_internal

bool SoaKernelBuildSupports(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kSse2:
      return simd_internal::Sse2KernelSetFor(kSoaMinDims) != nullptr;
    case KernelIsa::kAvx2:
      return simd_internal::Avx2KernelSetFor(kSoaMinDims) != nullptr;
  }
  return false;
}

const SoaKernelSet* SoaKernelSetFor(int dims, KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return simd_internal::ScalarKernelSetFor(dims);
    case KernelIsa::kSse2:
      return simd_internal::Sse2KernelSetFor(dims);
    case KernelIsa::kAvx2:
      return simd_internal::Avx2KernelSetFor(dims);
  }
  return nullptr;
}

KernelIsa ActiveKernelIsa() {
  static const KernelIsa active = [] {
    KernelIsa best = BestCpuKernelIsa();
    while (!SoaKernelBuildSupports(best)) {
      best = static_cast<KernelIsa>(static_cast<int>(best) - 1);
    }
    const std::optional<KernelIsa> forced = ForcedKernelIsa();
    if (forced.has_value() &&
        static_cast<int>(*forced) < static_cast<int>(best)) {
      return *forced;
    }
    return best;
  }();
  return active;
}

}  // namespace spatial
