#ifndef SPATIAL_GEOM_METRICS_SIMD_H_
#define SPATIAL_GEOM_METRICS_SIMD_H_

// Runtime-dispatched SIMD distance kernels over structure-of-arrays entry
// staging (docs/PERF.md, "SIMD kernels").
//
// The scalar batch kernels in geom/metrics.h stream a node's entries in
// array-of-structs order: entry j's coordinates are interleaved with its
// id, so a vector unit would need strided gathers to put four MINDIST
// evaluations in one register. Staging the node as planes — all lo_0, then
// all hi_0, then all lo_1, ... — turns the same computation into unit-
// stride vector loads with one *entry per lane*: each lane executes
// exactly the scalar expression tree, in the same operation order, so the
// results are bit-identical to the scalar reference (enforced by
// tests/simd_kernel_test.cc, not hoped for).
//
// Kernel selection happens once per process: the highest tier supported by
// the CPU (common/cpu_features.h), the build, and the optional
// SPATIAL_FORCE_KERNEL=scalar|sse2|avx2 override (clamped to what can
// actually run, so forcing a bigger ISA than the host has degrades to the
// best available instead of faulting).

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"
#include "common/macros.h"
#include "geom/metrics_simd_kernels.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {

// Doubles per SoA plane for an n-entry node: n rounded up to a full cache
// line so every plane (and every full-vector tail read) stays 64-byte
// aligned.
constexpr size_t SoaStride(uint32_t n) {
  return (static_cast<size_t>(n) + (kSoaLane - 1)) & ~(kSoaLane - 1);
}

// Total doubles needed to stage n entries of dimension `dims`.
constexpr size_t SoaDoubles(int dims, uint32_t n) {
  return static_cast<size_t>(2 * dims) * SoaStride(n);
}

// Non-owning view of one staged node. Produced by QueryScratch::StageSoa /
// NodeView::CopyEntriesSoa; consumed by the *BatchSoa wrappers below.
template <int D>
struct SoaBlock {
  const double* planes = nullptr;  // 2*D planes of `stride` doubles
  size_t stride = 0;               // multiple of kSoaLane
  uint32_t n = 0;

  const double* lo(int d) const { return planes + (2 * d) * stride; }
  const double* hi(int d) const { return planes + (2 * d + 1) * stride; }
};

// Transposes `n` AoS elements (anything with an `mbr`, in practice
// Entry<D>) into SoA planes at `planes`/`stride`. The tail [n, stride) of
// every plane is padded by replicating the last entry so vector kernels
// can read whole vectors past n without touching uninitialized memory —
// padding lanes compute deterministic garbage that callers never read.
//
// This is the portable reference; hot paths use TransposeToSoaDispatched
// below, which routes through the per-ISA staging kernel (bit-identical
// output, enforced by simd_kernel_test).
template <int D, typename E>
inline void TransposeToSoa(const E* elems, uint32_t n, double* planes,
                           size_t stride) {
  SPATIAL_DCHECK(stride >= n && stride % kSoaLane == 0);
  for (int d = 0; d < D; ++d) {
    double* lo_plane = planes + (2 * d) * stride;
    double* hi_plane = planes + (2 * d + 1) * stride;
    for (uint32_t j = 0; j < n; ++j) {
      lo_plane[j] = elems[j].mbr.lo[d];
      hi_plane[j] = elems[j].mbr.hi[d];
    }
    const double lo_pad = n > 0 ? lo_plane[n - 1] : 0.0;
    const double hi_pad = n > 0 ? hi_plane[n - 1] : 0.0;
    for (size_t j = n; j < stride; ++j) {
      lo_plane[j] = lo_pad;
      hi_plane[j] = hi_pad;
    }
  }
}

// The tier the process-wide dispatch table resolved to:
//   min(SPATIAL_FORCE_KERNEL or CPU best, CPU best, build best).
// Computed once on first use and pinned for the process lifetime.
KernelIsa ActiveKernelIsa();

// True iff this binary contains kernels for `isa` (the AVX2 TU is only
// built on x86-64 with a capable compiler; SSE2 only on x86-64).
bool SoaKernelBuildSupports(KernelIsa isa);

// Kernel set for `dims` at exactly `isa` — no fallback; nullptr when the
// build lacks that tier or dims is outside [kSoaMinDims, kSoaMaxDims].
// Bench and tests use this to pin a tier regardless of the environment;
// callers must still check CpuSupportsKernelIsa before executing.
const SoaKernelSet* SoaKernelSetFor(int dims, KernelIsa isa);

// The dispatched set for dimension D (resolved once, at ActiveKernelIsa).
template <int D>
inline const SoaKernelSet& SoaKernels() {
  static_assert(D >= kSoaMinDims && D <= kSoaMaxDims,
                "no SoA kernels instantiated for this dimension");
  static const SoaKernelSet* const set = SoaKernelSetFor(D, ActiveKernelIsa());
  return *set;
}

// ---------------------------------------------------------------------------
// Dispatched batch kernels — the SoA counterparts of the scalar batch
// kernels in geom/metrics.h, bit-identical to them entry for entry. `out`
// (and `out_minmax`) must hold SoaStride(soa.n) doubles, 64-byte aligned:
// vector kernels store whole vectors, so up to kSoaLane - 1 padding slots
// past n are clobbered.

// out[j] = MINDIST^2(p, box_j).
template <int D>
inline void MinDistSqBatchSoa(const Point<D>& p, const SoaBlock<D>& soa,
                              double* out) {
  SoaKernels<D>().min_dist(p.coord.data(), soa.planes, soa.stride, soa.n,
                           out);
}

// out[j] = MINMAXDIST^2(p, box_j).
template <int D>
inline void MinMaxDistSqBatchSoa(const Point<D>& p, const SoaBlock<D>& soa,
                                 double* out) {
  SoaKernels<D>().min_max_dist(p.coord.data(), soa.planes, soa.stride, soa.n,
                               out);
}

// out_min[j] = MINDIST^2(p, box_j) and out_minmax[j] = MINMAXDIST^2(p,
// box_j) in one pass over the planes.
template <int D>
inline void MinAndMinMaxDistSqBatchSoa(const Point<D>& p,
                                       const SoaBlock<D>& soa, double* out_min,
                                       double* out_minmax) {
  SoaKernels<D>().min_and_min_max(p.coord.data(), soa.planes, soa.stride,
                                  soa.n, out_min, out_minmax);
}

// out[j] = ObjectDistSq(p, box_j): object distance is MBR MINDIST.
template <int D>
inline void ObjectDistSqBatchSoa(const Point<D>& p, const SoaBlock<D>& soa,
                                 double* out) {
  SoaKernels<D>().object_dist(p.coord.data(), soa.planes, soa.stride, soa.n,
                              out);
}

// Dispatched AoS -> SoA staging: the vectorized counterpart of
// TransposeToSoa. Requires E to lead with its Rect<D> (lo then hi, 2*D
// packed doubles) — true for Entry<D>, whose id trails the rect.
template <int D, typename E>
inline void TransposeToSoaDispatched(const E* elems, uint32_t n,
                                     double* planes, size_t stride) {
  static_assert(offsetof(E, mbr) == 0 &&
                    sizeof(elems->mbr) == 2 * D * sizeof(double),
                "staging kernels read elements as a leading Rect<D>");
  SoaKernels<D>().transpose(elems, sizeof(E), n, planes, stride);
}

// Writes to idx_out the indices j in [0, n), ascending, with
// !(dist[j] > bound) — the survivors of the traversal's `dist > bound`
// prune — and returns how many. `dist` must be 64-byte-aligned scratch
// (the kernels' output arrays are).
template <int D>
inline uint32_t FilterNotAboveSoa(const double* dist, uint32_t n, double bound,
                                  uint32_t* idx_out) {
  return SoaKernels<D>().filter_not_above(dist, n, bound, idx_out);
}

// Fused MINDIST + bound filter: out[j] = MINDIST^2(p, box_j) for all j
// (bit-identical to MinDistSqBatchSoa) and idx_out receives the ascending
// indices with !(out[j] > bound), exactly FilterNotAboveSoa's survivor set
// over the finished array — one plane pass instead of compute-then-rescan.
// Returns the survivor count. Output arrays as above: `out` needs
// SoaStride(soa.n) 64-byte-aligned slots, `idx_out` n slots.
template <int D>
inline uint32_t MinDistFilterSoa(const Point<D>& p, const SoaBlock<D>& soa,
                                 double bound, double* out,
                                 uint32_t* idx_out) {
  return SoaKernels<D>().min_dist_filter(p.coord.data(), soa.planes,
                                         soa.stride, soa.n, bound, out,
                                         idx_out);
}

// Fused MINDIST + MINMAXDIST reduction: out_min[j] = MINDIST^2(p, box_j)
// (bit-identical to MinDistSqBatchSoa) and the return value is
// min_j MINMAXDIST^2(p, box_j) — bit-identical to reducing
// MinMaxDistSqBatchSoa's array with std::min — without materializing that
// array. +infinity when soa.n == 0.
template <int D>
inline double MinDistAndMinMinMaxSoa(const Point<D>& p,
                                     const SoaBlock<D>& soa,
                                     double* out_min) {
  return SoaKernels<D>().min_dist_min_minmax(p.coord.data(), soa.planes,
                                             soa.stride, soa.n, out_min);
}

// out[j] = MINDIST^2(a, box_j), the rect-rect gap metric of the distance
// join. Relies on Rect<D> being two contiguous Point<D>s, i.e. 2*D packed
// doubles (static_asserted in rtree/entry.h for the on-page layout).
template <int D>
inline void MinDistSqBatchSoa(const Rect<D>& a, const SoaBlock<D>& soa,
                              double* out) {
  static_assert(sizeof(Rect<D>) == 2 * D * sizeof(double),
                "rect kernels read the query as 2*D packed doubles");
  SoaKernels<D>().rect_min_dist(a.lo.coord.data(), soa.planes, soa.stride,
                                soa.n, out);
}

}  // namespace spatial

#endif  // SPATIAL_GEOM_METRICS_SIMD_H_
