#ifndef SPATIAL_GEOM_SEGMENT_H_
#define SPATIAL_GEOM_SEGMENT_H_

#include <algorithm>
#include <cmath>

#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {

// A line segment between two endpoints. Used by the TIGER-like road-network
// generator: the cartographic datasets of the SIGMOD'95 evaluation are
// street-segment files, indexed by their MBRs.
template <int D>
struct Segment {
  Point<D> a;
  Point<D> b;

  Rect<D> Mbr() const { return Rect<D>::FromCorners(a, b); }

  Point<D> Midpoint() const {
    Point<D> m;
    for (int i = 0; i < D; ++i) m[i] = 0.5 * (a[i] + b[i]);
    return m;
  }

  double LengthSq() const { return SquaredDistance(a, b); }
  double Length() const { return std::sqrt(LengthSq()); }

  // Point interpolated at parameter t in [0, 1] along the segment.
  Point<D> Interpolate(double t) const {
    Point<D> p;
    for (int i = 0; i < D; ++i) p[i] = a[i] + t * (b[i] - a[i]);
    return p;
  }
};

// Squared distance from point p to the closest point of the segment.
template <int D>
inline double PointSegmentDistSq(const Point<D>& p, const Segment<D>& s) {
  double len_sq = 0.0;
  double dot = 0.0;
  for (int i = 0; i < D; ++i) {
    const double e = s.b[i] - s.a[i];
    len_sq += e * e;
    dot += (p[i] - s.a[i]) * e;
  }
  double t = 0.0;
  if (len_sq > 0.0) t = std::clamp(dot / len_sq, 0.0, 1.0);
  const Point<D> proj = s.Interpolate(t);
  return SquaredDistance(p, proj);
}

using Segment2 = Segment<2>;

}  // namespace spatial

#endif  // SPATIAL_GEOM_SEGMENT_H_
