#ifndef SPATIAL_GEOM_POINT_H_
#define SPATIAL_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <string>

#include "common/macros.h"

namespace spatial {

// A point in D-dimensional Euclidean space. D is a compile-time constant;
// the SIGMOD'95 experiments are two-dimensional, but the whole library (and
// the paper's metrics) generalize verbatim to any D.
template <int D>
struct Point {
  static_assert(D >= 1, "dimension must be positive");

  std::array<double, D> coord{};

  double& operator[](int i) {
    SPATIAL_DCHECK(i >= 0 && i < D);
    return coord[static_cast<size_t>(i)];
  }
  double operator[](int i) const {
    SPATIAL_DCHECK(i >= 0 && i < D);
    return coord[static_cast<size_t>(i)];
  }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coord == b.coord;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  std::string ToString() const {
    std::string out = "(";
    for (int i = 0; i < D; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(coord[static_cast<size_t>(i)]);
    }
    out += ")";
    return out;
  }
};

// Squared Euclidean distance. The paper (and this library) compares squared
// distances throughout to avoid square roots on the hot path.
template <int D>
inline double SquaredDistance(const Point<D>& a, const Point<D>& b) {
  double sum = 0.0;
  for (int i = 0; i < D; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

template <int D>
inline double Distance(const Point<D>& a, const Point<D>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

using Point2 = Point<2>;
using Point3 = Point<3>;

}  // namespace spatial

#endif  // SPATIAL_GEOM_POINT_H_
