#ifndef SPATIAL_GEOM_RECT_H_
#define SPATIAL_GEOM_RECT_H_

#include <algorithm>
#include <limits>
#include <string>

#include "common/macros.h"
#include "geom/point.h"

namespace spatial {

// An axis-aligned (hyper-)rectangle: the MBR (minimum bounding rectangle)
// of the R-tree literature. Represented by its lower-left and upper-right
// corners. An "empty" rectangle has lo > hi in every dimension and acts as
// the identity for Union / ExpandToInclude.
template <int D>
struct Rect {
  Point<D> lo;
  Point<D> hi;

  // The empty rectangle (identity element for unions).
  static Rect Empty() {
    Rect r;
    for (int i = 0; i < D; ++i) {
      r.lo[i] = std::numeric_limits<double>::infinity();
      r.hi[i] = -std::numeric_limits<double>::infinity();
    }
    return r;
  }

  // Degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point<D>& p) { return Rect{p, p}; }

  static Rect FromCorners(const Point<D>& a, const Point<D>& b) {
    Rect r;
    for (int i = 0; i < D; ++i) {
      r.lo[i] = std::min(a[i], b[i]);
      r.hi[i] = std::max(a[i], b[i]);
    }
    return r;
  }

  bool IsEmpty() const {
    for (int i = 0; i < D; ++i) {
      if (lo[i] > hi[i]) return true;
    }
    return false;
  }

  // True iff lo <= hi in every dimension (degenerate boxes are valid).
  bool IsValid() const { return !IsEmpty(); }

  bool Contains(const Point<D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  bool Contains(const Rect& other) const {
    for (int i = 0; i < D; ++i) {
      if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
    }
    return true;
  }

  bool Intersects(const Rect& other) const {
    for (int i = 0; i < D; ++i) {
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    }
    return true;
  }

  void ExpandToInclude(const Point<D>& p) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }

  void ExpandToInclude(const Rect& other) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], other.lo[i]);
      hi[i] = std::max(hi[i], other.hi[i]);
    }
  }

  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.ExpandToInclude(b);
    return r;
  }

  // Intersection; may be empty.
  static Rect Intersection(const Rect& a, const Rect& b) {
    Rect r;
    for (int i = 0; i < D; ++i) {
      r.lo[i] = std::max(a.lo[i], b.lo[i]);
      r.hi[i] = std::min(a.hi[i], b.hi[i]);
    }
    return r;
  }

  // D-dimensional volume ("area" in the 2-D literature). 0 for empty boxes.
  double Area() const {
    if (IsEmpty()) return 0.0;
    double area = 1.0;
    for (int i = 0; i < D; ++i) area *= hi[i] - lo[i];
    return area;
  }

  // Sum of edge lengths (the R*-tree "margin"). 0 for empty boxes.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    double margin = 0.0;
    for (int i = 0; i < D; ++i) margin += hi[i] - lo[i];
    return margin;
  }

  double OverlapArea(const Rect& other) const {
    double area = 1.0;
    for (int i = 0; i < D; ++i) {
      const double w =
          std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]);
      if (w <= 0.0) return 0.0;
      area *= w;
    }
    return area;
  }

  // Increase in area if this rectangle were enlarged to include `other`.
  double Enlargement(const Rect& other) const {
    return Union(*this, other).Area() - Area();
  }

  Point<D> Center() const {
    Point<D> c;
    for (int i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }

  std::string ToString() const {
    return "[" + lo.ToString() + " - " + hi.ToString() + "]";
  }
};

using Rect2 = Rect<2>;
using Rect3 = Rect<3>;

}  // namespace spatial

#endif  // SPATIAL_GEOM_RECT_H_
