#ifndef SPATIAL_GEOM_METRICS_SIMD_KERNELS_H_
#define SPATIAL_GEOM_METRICS_SIMD_KERNELS_H_

// Internal ABI between the dispatching front end (metrics_simd.h/.cc) and
// the per-ISA kernel translation units. Deliberately minimal: the AVX2 TU
// is compiled with -mavx2, and any inline code it instantiates from a
// shared header could be emitted with AVX encodings and then chosen by the
// linker for every TU — a crash on pre-AVX2 hosts. Keeping this header
// free of inline functions and project types removes that hazard.

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"

namespace spatial {

// The SoA planes a kernel consumes: 2*D planes of `stride` doubles each,
// ordered lo0, hi0, lo1, hi1, ..., all 64-byte aligned (stride is a
// multiple of kSoaLane and the base comes from an AlignedArray). Entry j's
// box is { lo_d = planes[2*d*stride + j], hi_d = planes[(2*d+1)*stride + j] }.
inline constexpr size_t kSoaLane = 8;  // doubles per 64-byte cache line

// Dimensions the kernel registry is instantiated for. The engine uses
// D = 2..4; the equivalence fuzz tests sweep the full range.
inline constexpr int kSoaMinDims = 2;
inline constexpr int kSoaMaxDims = 8;

// Point-query kernel: q holds D query coordinates; writes out[j] for
// j in [0, n). Vector kernels may additionally write the padding lanes
// out[n, RoundUpToVector(n)) — callers size `out` to SoaStride(n) slots
// and ignore the tail. `planes`/`out` must be 64-byte aligned and `stride`
// a multiple of kSoaLane; n == 0 is a no-op.
using SoaKernelFn = void (*)(const double* q, const double* planes,
                             size_t stride, uint32_t n, double* out);

// Fused point-query kernel: one pass over the planes producing both
// MINDIST^2 and MINMAXDIST^2 (bit-identical to running the two single
// kernels). The depth-first search needs both metrics for every internal
// node when S1/S2 or MINMAXDIST ordering is active; fusing halves the
// plane traffic of that (hottest) case.
using SoaKernelFusedFn = void (*)(const double* q, const double* planes,
                                  size_t stride, uint32_t n, double* out_min,
                                  double* out_minmax);

// AoS -> SoA staging kernel. `elems` points at `n` elements of
// `elem_bytes` each whose first 2*D doubles are lo[0..D), hi[0..D) (the
// Rect<D> layout; Entry<D> has its id after the rect). Writes the 2*D
// planes at `planes`/`stride` in plane order lo0, hi0, lo1, hi1, ... and
// pads [n, stride) of every plane by replicating the last element, exactly
// like the scalar TransposeToSoa in metrics_simd.h (the reference it is
// tested against). `elems` may be unaligned (page images stage from offset
// 8); `planes` must be 64-byte aligned.
using SoaTransposeFn = void (*)(const void* elems, size_t elem_bytes,
                                uint32_t n, double* planes, size_t stride);

// Bound-filter kernel: writes the indices j in [0, n), ascending, for
// which `!(dist[j] > bound)` — the exact complement of the traversal's
// `dist > bound` prune test (NaN never compares greater, so a NaN distance
// is kept, matching the scalar branch). Returns the survivor count.
// `dist` must be 64-byte aligned; `idx_out` needs n slots.
using SoaFilterFn = uint32_t (*)(const double* dist, uint32_t n, double bound,
                                 uint32_t* idx_out);

// Fused MINDIST + bound filter: out[j] = MINDIST^2(p, box_j) for all j
// (bit-identical to the min_dist kernel) and idx_out collects the indices
// with `!(out[j] > bound)` exactly as filter_not_above would over the
// finished array — one pass over the planes instead of compute-then-
// re-scan. Returns the survivor count. The traversal's leaf pipeline and
// the S3 child prefilter are built on this.
using SoaDistFilterFn = uint32_t (*)(const double* q, const double* planes,
                                     size_t stride, uint32_t n, double bound,
                                     double* out, uint32_t* idx_out);

// Fused MINDIST + MINMAXDIST reduction: out_min[j] = MINDIST^2(p, box_j)
// (bit-identical to min_dist) and the return value is
// min_j MINMAXDIST^2(p, box_j) over j in [0, n) — the only MINMAXDIST
// consumer on the S1/S2 path under MINDIST ordering — without
// materializing the per-entry MINMAXDIST array or a second reduce pass.
// NaN candidates are skipped exactly as std::min's `b < a` select does;
// +inf for n == 0. Per-entry MINMAXDIST values match the min_max_dist
// kernel lane for lane, so the reduced min equals the scalar
// reduce-after-kernel result bit for bit (min over an identical value set
// is order-independent).
using SoaMinDistReduceFn = double (*)(const double* q, const double* planes,
                                      size_t stride, uint32_t n,
                                      double* out_min);

// One ISA's kernel complement for one dimensionality.
struct SoaKernelSet {
  SoaKernelFn min_dist = nullptr;      // MINDIST^2(point, box)
  SoaKernelFn min_max_dist = nullptr;  // MINMAXDIST^2(point, box)
  SoaKernelFn object_dist = nullptr;   // ObjectDistSq == MBR MINDIST
  SoaKernelFn rect_min_dist = nullptr;  // MINDIST^2(rect, box); q = 2*D dbls
  SoaKernelFusedFn min_and_min_max = nullptr;
  SoaTransposeFn transpose = nullptr;   // AoS elements -> SoA planes
  SoaFilterFn filter_not_above = nullptr;  // indices with !(dist > bound)
  SoaDistFilterFn min_dist_filter = nullptr;      // MINDIST + bound filter
  SoaMinDistReduceFn min_dist_min_minmax = nullptr;  // MINDIST + min MINMAX
  KernelIsa isa = KernelIsa::kScalar;
};

namespace simd_internal {

// Per-ISA registries, defined in their respective TUs. Return nullptr when
// `dims` is out of [kSoaMinDims, kSoaMaxDims]. Avx2KernelSetFor exists
// only when the build compiled the AVX2 TU (x86-64 with -mavx2 support);
// metrics_simd.cc references it behind SPATIAL_HAVE_AVX2_KERNELS.
const SoaKernelSet* ScalarKernelSetFor(int dims);
const SoaKernelSet* Sse2KernelSetFor(int dims);  // nullptr off x86-64
const SoaKernelSet* Avx2KernelSetFor(int dims);

}  // namespace simd_internal
}  // namespace spatial

#endif  // SPATIAL_GEOM_METRICS_SIMD_KERNELS_H_
