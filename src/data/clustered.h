#ifndef SPATIAL_DATA_CLUSTERED_H_
#define SPATIAL_DATA_CLUSTERED_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {

struct ClusteredOptions {
  // Number of Gaussian clusters.
  uint32_t num_clusters = 16;
  // Cluster standard deviation as a fraction of the domain width.
  double sigma_fraction = 0.02;
};

// Gaussian-mixture point clouds: cluster centers uniform in `bounds`,
// points normal around a random center (clipped to bounds). Models the
// skewed distributions that separate "real" from "uniform" behaviour in
// the paper's figures.
template <int D>
std::vector<Point<D>> GenerateClustered(size_t n, const Rect<D>& bounds,
                                        const ClusteredOptions& options,
                                        Rng* rng);

extern template std::vector<Point<2>> GenerateClustered<2>(
    size_t, const Rect<2>&, const ClusteredOptions&, Rng*);
extern template std::vector<Point<3>> GenerateClustered<3>(
    size_t, const Rect<3>&, const ClusteredOptions&, Rng*);
extern template std::vector<Point<4>> GenerateClustered<4>(
    size_t, const Rect<4>&, const ClusteredOptions&, Rng*);

}  // namespace spatial

#endif  // SPATIAL_DATA_CLUSTERED_H_
