#ifndef SPATIAL_DATA_UNIFORM_H_
#define SPATIAL_DATA_UNIFORM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace spatial {

// Uniformly distributed points inside `bounds` — the synthetic family of
// the SIGMOD'95 evaluation.
template <int D>
std::vector<Point<D>> GenerateUniform(size_t n, const Rect<D>& bounds,
                                      Rng* rng);

extern template std::vector<Point<2>> GenerateUniform<2>(size_t,
                                                         const Rect<2>&,
                                                         Rng*);
extern template std::vector<Point<3>> GenerateUniform<3>(size_t,
                                                         const Rect<3>&,
                                                         Rng*);
extern template std::vector<Point<4>> GenerateUniform<4>(size_t,
                                                         const Rect<4>&,
                                                         Rng*);

// The unit square/cube used as the default experiment domain.
template <int D>
Rect<D> UnitBounds() {
  Rect<D> r;
  for (int i = 0; i < D; ++i) {
    r.lo[i] = 0.0;
    r.hi[i] = 1.0;
  }
  return r;
}

}  // namespace spatial

#endif  // SPATIAL_DATA_UNIFORM_H_
