#ifndef SPATIAL_DATA_DATASET_H_
#define SPATIAL_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

// Datasets are plain vectors of leaf entries (Entry<D>): an MBR plus an
// object id. Point datasets use degenerate rectangles.

// Wraps points as entries with ids first_id, first_id+1, ...
template <int D>
std::vector<Entry<D>> MakePointEntries(const std::vector<Point<D>>& points,
                                       uint64_t first_id = 0) {
  std::vector<Entry<D>> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back(Entry<D>{Rect<D>::FromPoint(points[i]),
                               first_id + static_cast<uint64_t>(i)});
  }
  return entries;
}

// Tight bounds of a dataset (Empty() for an empty dataset).
template <int D>
Rect<D> BoundsOf(const std::vector<Entry<D>>& entries) {
  Rect<D> bounds = Rect<D>::Empty();
  for (const Entry<D>& e : entries) bounds.ExpandToInclude(e.mbr);
  return bounds;
}

// CSV persistence for 2-D point datasets ("x,y" per line). Used by the
// examples so generated datasets can be inspected and re-used.
Status WritePointsCsv(const std::string& path,
                      const std::vector<Point<2>>& points);
Result<std::vector<Point<2>>> ReadPointsCsv(const std::string& path);

}  // namespace spatial

#endif  // SPATIAL_DATA_DATASET_H_
