#include "data/tiger_like.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace spatial {
namespace {

// Relative population weight at p under the Gaussian-mixture core model,
// normalized to (0, 1].
double DensityAt(const Point<2>& p, const std::vector<Point<2>>& cores,
                 const std::vector<double>& weights, double sigma) {
  double density = 0.0;
  double total_weight = 0.0;
  for (size_t i = 0; i < cores.size(); ++i) {
    const double dist_sq = SquaredDistance(p, cores[i]);
    density += weights[i] * std::exp(-dist_sq / (2.0 * sigma * sigma));
    total_weight += weights[i];
  }
  return total_weight > 0.0 ? density / total_weight : 0.0;
}

Point<2> ClampToBounds(const Point<2>& p, const Rect<2>& bounds) {
  Point<2> q;
  for (int i = 0; i < 2; ++i) {
    q[i] = std::clamp(p[i], bounds.lo[i], bounds.hi[i]);
  }
  return q;
}

// Draws a start point from the mixture density (rejection sampling with a
// uniform proposal; accepts quickly because density is normalized).
Point<2> SampleByDensity(const Rect<2>& bounds,
                         const std::vector<Point<2>>& cores,
                         const std::vector<double>& weights, double sigma,
                         Rng* rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    Point<2> p{{rng->Uniform(bounds.lo[0], bounds.hi[0]),
                rng->Uniform(bounds.lo[1], bounds.hi[1])}};
    // Mix in a uniform floor so the outskirts are sparse but not empty,
    // as in real county data.
    const double d = 0.1 + 0.9 * DensityAt(p, cores, weights, sigma);
    if (rng->NextDouble() < d) return p;
  }
  return Point<2>{{0.5 * (bounds.lo[0] + bounds.hi[0]),
                   0.5 * (bounds.lo[1] + bounds.hi[1])}};
}

}  // namespace

RoadNetwork GenerateTigerLike(size_t target_segments, const Rect<2>& bounds,
                              const TigerLikeOptions& options, Rng* rng) {
  SPATIAL_CHECK(rng != nullptr);
  SPATIAL_CHECK(bounds.IsValid());
  SPATIAL_CHECK(options.num_urban_cores >= 1);
  SPATIAL_CHECK(options.max_walk_steps >= options.min_walk_steps);
  SPATIAL_CHECK(options.min_walk_steps >= 1);

  RoadNetwork network;
  if (target_segments == 0) return network;
  network.segments.reserve(target_segments);

  const double width = bounds.hi[0] - bounds.lo[0];
  const double sigma = options.core_sigma_fraction * width;
  const double base_block = options.block_length_fraction * width;

  // Urban cores with Zipf-ish weights: one dominant city, smaller towns.
  std::vector<double> weights;
  network.core_centers.reserve(options.num_urban_cores);
  for (uint32_t i = 0; i < options.num_urban_cores; ++i) {
    network.core_centers.push_back(
        Point<2>{{rng->Uniform(bounds.lo[0], bounds.hi[0]),
                  rng->Uniform(bounds.lo[1], bounds.hi[1])}});
    weights.push_back(1.0 / static_cast<double>(i + 1));
  }

  // Arterials: segmented near-straight roads between random core pairs.
  const size_t arterial_target = static_cast<size_t>(
      options.arterial_fraction * static_cast<double>(target_segments));
  while (network.segments.size() < arterial_target &&
         network.core_centers.size() >= 2) {
    const size_t a = rng->NextBounded(network.core_centers.size());
    size_t b = rng->NextBounded(network.core_centers.size());
    if (a == b) continue;
    const Point<2> from = network.core_centers[a];
    const Point<2> to = network.core_centers[b];
    const double dist = Distance(from, to);
    const size_t pieces =
        std::max<size_t>(2, static_cast<size_t>(dist / (4.0 * base_block)));
    Point<2> prev = from;
    for (size_t i = 1; i <= pieces; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(pieces);
      Point<2> next{{from[0] + t * (to[0] - from[0]),
                     from[1] + t * (to[1] - from[1])}};
      // Slight curvature jitter, except at the endpoints.
      if (i < pieces) {
        next[0] += 0.5 * base_block * rng->NextGaussian();
        next[1] += 0.5 * base_block * rng->NextGaussian();
      }
      next = ClampToBounds(next, bounds);
      network.segments.push_back(Segment<2>{prev, next});
      prev = next;
      if (network.segments.size() >= arterial_target) break;
    }
  }

  // Local streets: Manhattan-biased random walks seeded by density, with
  // block length shrinking where density is high.
  while (network.segments.size() < target_segments) {
    Point<2> pos = SampleByDensity(bounds, network.core_centers, weights,
                                   sigma, rng);
    const uint32_t steps = static_cast<uint32_t>(rng->UniformInt(
        options.min_walk_steps, options.max_walk_steps));
    // Streets in a neighborhood share an orientation: pick a grid rotation
    // per walk, mostly axis-aligned.
    const bool axis_aligned = rng->NextDouble() < 0.85;
    const double grid_angle =
        axis_aligned ? 0.0 : rng->Uniform(0.0, 1.5707963267948966);
    int heading = static_cast<int>(rng->NextBounded(4));  // quadrant steps
    for (uint32_t s = 0; s < steps; ++s) {
      const double density =
          DensityAt(pos, network.core_centers, weights, sigma);
      const double block = base_block / (0.35 + 3.0 * density);
      // Mostly straight; occasionally turn left/right by 90 degrees.
      const double turn = rng->NextDouble();
      if (turn < 0.2) {
        heading = (heading + 1) & 3;
      } else if (turn < 0.4) {
        heading = (heading + 3) & 3;
      }
      const double angle =
          grid_angle + 1.5707963267948966 * static_cast<double>(heading);
      Point<2> next{{pos[0] + block * std::cos(angle),
                     pos[1] + block * std::sin(angle)}};
      next = ClampToBounds(next, bounds);
      if (next == pos) break;  // stuck on the boundary
      network.segments.push_back(Segment<2>{pos, next});
      pos = next;
      if (network.segments.size() >= target_segments) break;
    }
  }
  return network;
}

std::vector<Entry<2>> SegmentsToEntries(const std::vector<Segment<2>>& segs,
                                        uint64_t first_id) {
  std::vector<Entry<2>> entries;
  entries.reserve(segs.size());
  for (size_t i = 0; i < segs.size(); ++i) {
    entries.push_back(
        Entry<2>{segs[i].Mbr(), first_id + static_cast<uint64_t>(i)});
  }
  return entries;
}

std::vector<Point<2>> SegmentMidpoints(const std::vector<Segment<2>>& segs) {
  std::vector<Point<2>> points;
  points.reserve(segs.size());
  for (const Segment<2>& s : segs) points.push_back(s.Midpoint());
  return points;
}

}  // namespace spatial
