#ifndef SPATIAL_DATA_WORKLOAD_H_
#define SPATIAL_DATA_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

// Where query points come from, relative to the dataset.
enum class QueryDistribution {
  kUniform,     // uniform over the dataset bounds (the paper's workload)
  kDataDrawn,   // centers of randomly chosen data objects
  kPerturbed,   // data-drawn plus small Gaussian displacement
};

const char* QueryDistributionName(QueryDistribution distribution);

// Generates `n` query points for a dataset. `perturb_fraction` (used by
// kPerturbed) is the displacement std. dev. as a fraction of the domain
// width.
template <int D>
std::vector<Point<D>> GenerateQueries(const std::vector<Entry<D>>& dataset,
                                      size_t n,
                                      QueryDistribution distribution,
                                      double perturb_fraction, Rng* rng);

extern template std::vector<Point<2>> GenerateQueries<2>(
    const std::vector<Entry<2>>&, size_t, QueryDistribution, double, Rng*);
extern template std::vector<Point<3>> GenerateQueries<3>(
    const std::vector<Entry<3>>&, size_t, QueryDistribution, double, Rng*);
extern template std::vector<Point<4>> GenerateQueries<4>(
    const std::vector<Entry<4>>&, size_t, QueryDistribution, double, Rng*);

}  // namespace spatial

#endif  // SPATIAL_DATA_WORKLOAD_H_
