#include "data/workload.h"

#include "common/macros.h"
#include "data/dataset.h"

namespace spatial {

const char* QueryDistributionName(QueryDistribution distribution) {
  switch (distribution) {
    case QueryDistribution::kUniform:
      return "uniform";
    case QueryDistribution::kDataDrawn:
      return "data-drawn";
    case QueryDistribution::kPerturbed:
      return "perturbed";
  }
  return "unknown";
}

template <int D>
std::vector<Point<D>> GenerateQueries(const std::vector<Entry<D>>& dataset,
                                      size_t n,
                                      QueryDistribution distribution,
                                      double perturb_fraction, Rng* rng) {
  SPATIAL_CHECK(rng != nullptr);
  Rect<D> bounds = BoundsOf(dataset);
  if (bounds.IsEmpty()) {
    for (int i = 0; i < D; ++i) {
      bounds.lo[i] = 0.0;
      bounds.hi[i] = 1.0;
    }
  }
  std::vector<Point<D>> queries(n);
  for (Point<D>& q : queries) {
    switch (distribution) {
      case QueryDistribution::kUniform:
        for (int i = 0; i < D; ++i) {
          q[i] = rng->Uniform(bounds.lo[i], bounds.hi[i]);
        }
        break;
      case QueryDistribution::kDataDrawn:
      case QueryDistribution::kPerturbed: {
        SPATIAL_CHECK(!dataset.empty());
        const Entry<D>& e = dataset[rng->NextBounded(dataset.size())];
        q = e.mbr.Center();
        if (distribution == QueryDistribution::kPerturbed) {
          for (int i = 0; i < D; ++i) {
            const double sigma =
                perturb_fraction * (bounds.hi[i] - bounds.lo[i]);
            q[i] += sigma * rng->NextGaussian();
          }
        }
        break;
      }
    }
  }
  return queries;
}

template std::vector<Point<2>> GenerateQueries<2>(const std::vector<Entry<2>>&,
                                                  size_t, QueryDistribution,
                                                  double, Rng*);
template std::vector<Point<3>> GenerateQueries<3>(const std::vector<Entry<3>>&,
                                                  size_t, QueryDistribution,
                                                  double, Rng*);
template std::vector<Point<4>> GenerateQueries<4>(const std::vector<Entry<4>>&,
                                                  size_t, QueryDistribution,
                                                  double, Rng*);

}  // namespace spatial
