#ifndef SPATIAL_DATA_TIGER_LIKE_H_
#define SPATIAL_DATA_TIGER_LIKE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"
#include "rtree/entry.h"

namespace spatial {

// Synthetic substitute for the TIGER/Line street-segment files used by the
// SIGMOD'95 evaluation (Long Beach County CA, Montgomery County MD), which
// are not available here. See DESIGN.md "Substitutions".
//
// The generator reproduces the statistical properties that make
// cartographic data different from uniform data in the paper's figures:
//   * strong density skew (dense urban cores, sparse outskirts) via a
//     weighted Gaussian-mixture population model;
//   * line-segment objects arranged in connected polylines;
//   * Manhattan-style local street grids (axis-aligned bias) plus a small
//     number of long arterials connecting the cores;
//   * shorter blocks where density is high, as in real street networks.
struct TigerLikeOptions {
  uint32_t num_urban_cores = 6;
  // Core radius (std. dev.) as a fraction of the domain width.
  double core_sigma_fraction = 0.08;
  // Fraction of segments belonging to long arterial roads.
  double arterial_fraction = 0.05;
  // Mean local-street block length as a fraction of the domain width,
  // at average density (shrinks in dense areas).
  double block_length_fraction = 0.01;
  // Steps per local street random walk.
  uint32_t min_walk_steps = 3;
  uint32_t max_walk_steps = 12;
};

struct RoadNetwork {
  std::vector<Segment<2>> segments;
  std::vector<Point<2>> core_centers;
};

// Generates approximately `target_segments` street segments inside `bounds`.
RoadNetwork GenerateTigerLike(size_t target_segments, const Rect<2>& bounds,
                              const TigerLikeOptions& options, Rng* rng);

// Leaf entries for indexing a network: one entry per segment MBR.
std::vector<Entry<2>> SegmentsToEntries(const std::vector<Segment<2>>& segs,
                                        uint64_t first_id = 0);

// Point dataset derived from the network (segment midpoints) — the form
// used by the nearest-neighbor experiments.
std::vector<Point<2>> SegmentMidpoints(const std::vector<Segment<2>>& segs);

}  // namespace spatial

#endif  // SPATIAL_DATA_TIGER_LIKE_H_
