#include "data/dataset.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace spatial {

Status WritePointsCsv(const std::string& path,
                      const std::vector<Point<2>>& points) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out.precision(17);
  for (const Point<2>& p : points) {
    out << p[0] << ',' << p[1] << '\n';
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Point<2>>> ReadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::vector<Point<2>> points;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    Point<2> p;
    char comma = 0;
    if (!(ss >> p.coord[0] >> comma >> p.coord[1]) || comma != ',') {
      return Status::Corruption("bad CSV at " + path + ":" +
                                std::to_string(line_no));
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace spatial
