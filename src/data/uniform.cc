#include "data/uniform.h"

#include "common/macros.h"

namespace spatial {

template <int D>
std::vector<Point<D>> GenerateUniform(size_t n, const Rect<D>& bounds,
                                      Rng* rng) {
  SPATIAL_CHECK(rng != nullptr);
  SPATIAL_CHECK(bounds.IsValid());
  std::vector<Point<D>> points(n);
  for (Point<D>& p : points) {
    for (int i = 0; i < D; ++i) {
      p[i] = rng->Uniform(bounds.lo[i], bounds.hi[i]);
    }
  }
  return points;
}

template std::vector<Point<2>> GenerateUniform<2>(size_t, const Rect<2>&,
                                                  Rng*);
template std::vector<Point<3>> GenerateUniform<3>(size_t, const Rect<3>&,
                                                  Rng*);
template std::vector<Point<4>> GenerateUniform<4>(size_t, const Rect<4>&,
                                                  Rng*);

}  // namespace spatial
