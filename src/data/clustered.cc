#include "data/clustered.h"

#include <algorithm>

#include "common/macros.h"

namespace spatial {

template <int D>
std::vector<Point<D>> GenerateClustered(size_t n, const Rect<D>& bounds,
                                        const ClusteredOptions& options,
                                        Rng* rng) {
  SPATIAL_CHECK(rng != nullptr);
  SPATIAL_CHECK(bounds.IsValid());
  SPATIAL_CHECK(options.num_clusters >= 1);

  std::vector<Point<D>> centers(options.num_clusters);
  for (Point<D>& c : centers) {
    for (int i = 0; i < D; ++i) {
      c[i] = rng->Uniform(bounds.lo[i], bounds.hi[i]);
    }
  }

  std::vector<Point<D>> points(n);
  for (Point<D>& p : points) {
    const Point<D>& center =
        centers[rng->NextBounded(options.num_clusters)];
    for (int i = 0; i < D; ++i) {
      const double sigma =
          options.sigma_fraction * (bounds.hi[i] - bounds.lo[i]);
      const double v = center[i] + sigma * rng->NextGaussian();
      p[i] = std::clamp(v, bounds.lo[i], bounds.hi[i]);
    }
  }
  return points;
}

template std::vector<Point<2>> GenerateClustered<2>(size_t, const Rect<2>&,
                                                    const ClusteredOptions&,
                                                    Rng*);
template std::vector<Point<3>> GenerateClustered<3>(size_t, const Rect<3>&,
                                                    const ClusteredOptions&,
                                                    Rng*);
template std::vector<Point<4>> GenerateClustered<4>(size_t, const Rect<4>&,
                                                    const ClusteredOptions&,
                                                    Rng*);

}  // namespace spatial
