#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spatial {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Bounds-checked sequential reader. After any failed read `ok()` is false
// and every later read returns 0 — callers check once at the end (plus
// wherever a count gates an allocation).
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : p_(data), end_(data + len) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return *p_++;
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }

  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Whether `count` items of `item_bytes` each could still fit in the
  // remaining payload — the allocation guard for length-prefixed arrays.
  bool CanHold(uint64_t count, size_t item_bytes) const {
    return ok_ && count * item_bytes <= Remaining();
  }

  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && p_ == end_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || Remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

template <int D>
void PutPoint(std::string* out, const Point<D>& p) {
  for (int i = 0; i < D; ++i) PutF64(out, p[i]);
}

template <int D>
Point<D> GetPoint(Reader& r) {
  Point<D> p;
  for (int i = 0; i < D; ++i) p[i] = r.F64();
  return p;
}

template <int D>
void PutRect(std::string* out, const Rect<D>& rect) {
  PutPoint<D>(out, rect.lo);
  PutPoint<D>(out, rect.hi);
}

template <int D>
Rect<D> GetRect(Reader& r) {
  Rect<D> rect;
  rect.lo = GetPoint<D>(r);
  rect.hi = GetPoint<D>(r);
  return rect;
}

Status MakeStatus(uint8_t code, const std::string& msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kCorruption:
      return Status::Corruption(msg);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(msg);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(msg);
    case Status::Code::kInternal:
      return Status::Internal(msg);
    case Status::Code::kOverloaded:
      return Status::Overloaded(msg);
  }
  return Status::Corruption("wire: unknown status code");
}

Status Truncated() { return Status::Corruption("wire: truncated frame"); }

void PutQueryStats(std::string* out, const QueryStats& s) {
  PutU64(out, s.nodes_visited);
  PutU64(out, s.leaf_nodes_visited);
  PutU64(out, s.internal_nodes_visited);
  PutU64(out, s.abl_entries_generated);
  PutU64(out, s.pruned_s1);
  PutU64(out, s.estimate_updates_s2);
  PutU64(out, s.pruned_s3);
  PutU64(out, s.pruned_leaf);
  PutU64(out, s.objects_examined);
  PutU64(out, s.distance_computations);
  PutU64(out, s.heap_pushes);
  PutU64(out, s.heap_pops);
}

void GetQueryStats(Reader& r, QueryStats* s) {
  s->nodes_visited = r.U64();
  s->leaf_nodes_visited = r.U64();
  s->internal_nodes_visited = r.U64();
  s->abl_entries_generated = r.U64();
  s->pruned_s1 = r.U64();
  s->estimate_updates_s2 = r.U64();
  s->pruned_s3 = r.U64();
  s->pruned_leaf = r.U64();
  s->objects_examined = r.U64();
  s->distance_computations = r.U64();
  s->heap_pushes = r.U64();
  s->heap_pops = r.U64();
}

// The embedded per-shard trace record (wire v3): encoded only when the
// response's has_trace flag byte is 1.
void PutTraceRecord(std::string* out, const obs::QueryTraceRecord& t) {
  PutU32(out, t.worker);
  PutU32(out, t.k);
  for (size_t i = 0; i < sizeof(t.kind_name); ++i) {
    PutU8(out, static_cast<uint8_t>(t.kind_name[i]));
  }
  PutU64(out, t.latency_ns);
  PutU64(out, t.queue_wait_ns);
  PutU8(out, t.traced ? 1 : 0);
  PutQueryStats(out, t.stats);
  for (uint32_t n : t.nodes_per_level) PutU32(out, n);
}

Status GetTraceRecord(Reader& r, obs::QueryTraceRecord* t) {
  t->worker = static_cast<uint16_t>(r.U32());
  t->k = r.U32();
  for (size_t i = 0; i < sizeof(t->kind_name); ++i) {
    t->kind_name[i] = static_cast<char>(r.U8());
  }
  // Never trust the peer to terminate the name.
  t->kind_name[sizeof(t->kind_name) - 1] = '\0';
  t->latency_ns = r.U64();
  t->queue_wait_ns = r.U64();
  const uint8_t traced = r.U8();
  if (r.ok() && traced > 1) {
    return Status::Corruption("wire: bad trace record flag");
  }
  t->traced = traced != 0;
  GetQueryStats(r, &t->stats);
  for (uint32_t& n : t->nodes_per_level) n = r.U32();
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Request codec. Every kind shares one fixed layout (unused fields are
// zeros) plus the variable batch-point tail.

template <int D>
void EncodeRequest(const QueryRequest<D>& request, std::string* out) {
  PutU8(out, static_cast<uint8_t>(request.kind));
  PutPoint<D>(out, request.query);
  PutRect<D>(out, request.window);
  PutU32(out, request.knn.k);
  PutU8(out, static_cast<uint8_t>(request.knn.ordering));
  PutU8(out, static_cast<uint8_t>((request.knn.use_s1 ? 1 : 0) |
                                  (request.knn.use_s2 ? 2 : 0) |
                                  (request.knn.use_s3 ? 4 : 0)));
  PutU32(out, request.top_k);
  PutU64(out, request.object_id);
  // Wire version 2 additions (distance-bounded / approximate kNN and the
  // reverse-kNN scatter flag), ahead of the variable tail so the fixed
  // layout stays contiguous.
  PutF64(out, request.knn.max_distance);
  PutF64(out, request.knn.epsilon);
  PutU64(out, request.knn.max_visits);
  PutU8(out, request.rknn_candidates_only ? 1 : 0);
  // Wire version 3 additions: the propagated trace context and the
  // deadline hint, again ahead of the variable tail.
  PutU64(out, request.trace_id);
  PutU64(out, request.parent_span_id);
  PutU8(out, request.trace_sampled ? 1 : 0);
  PutU64(out, request.deadline_budget_ns);
  PutU32(out, static_cast<uint32_t>(request.batch_queries.size()));
  for (const Point<D>& p : request.batch_queries) PutPoint<D>(out, p);
}

template <int D>
Result<QueryRequest<D>> DecodeRequest(const uint8_t* data, size_t len) {
  Reader r(data, len);
  QueryRequest<D> request;
  const uint8_t kind = r.U8();
  if (kind >= static_cast<uint8_t>(kNumQueryKinds)) {
    return Status::Corruption("wire: unknown request kind");
  }
  request.kind = static_cast<QueryKind>(kind);
  request.query = GetPoint<D>(r);
  request.window = GetRect<D>(r);
  request.knn.k = r.U32();
  const uint8_t ordering = r.U8();
  if (ordering > static_cast<uint8_t>(AblOrdering::kNone)) {
    return Status::Corruption("wire: unknown ABL ordering");
  }
  request.knn.ordering = static_cast<AblOrdering>(ordering);
  const uint8_t flags = r.U8();
  request.knn.use_s1 = (flags & 1) != 0;
  request.knn.use_s2 = (flags & 2) != 0;
  request.knn.use_s3 = (flags & 4) != 0;
  request.top_k = r.U32();
  request.object_id = r.U64();
  request.knn.max_distance = r.F64();
  request.knn.epsilon = r.F64();
  request.knn.max_visits = r.U64();
  const uint8_t candidates_only = r.U8();
  if (candidates_only > 1) {
    return Status::Corruption("wire: bad rknn_candidates_only flag");
  }
  request.rknn_candidates_only = candidates_only != 0;
  request.trace_id = r.U64();
  request.parent_span_id = r.U64();
  const uint8_t sampled = r.U8();
  if (sampled > 1) {
    return Status::Corruption("wire: bad trace_sampled flag");
  }
  request.trace_sampled = sampled != 0;
  request.deadline_budget_ns = r.U64();
  const uint32_t num_batch = r.U32();
  if (!r.CanHold(num_batch, D * sizeof(double))) return Truncated();
  request.batch_queries.reserve(num_batch);
  for (uint32_t i = 0; i < num_batch; ++i) {
    request.batch_queries.push_back(GetPoint<D>(r));
  }
  if (!r.AtEnd()) return Truncated();
  return request;
}

// ---------------------------------------------------------------------------
// Response codec.

template <int D>
void EncodeResponse(const QueryResponse<D>& response, std::string* out) {
  PutU8(out, static_cast<uint8_t>(response.status.code()));
  const std::string& msg = response.status.message();
  PutU32(out, static_cast<uint32_t>(msg.size()));
  out->append(msg);
  PutU32(out, static_cast<uint32_t>(response.neighbors.size()));
  for (const Neighbor& n : response.neighbors) {
    PutU64(out, n.id);
    PutF64(out, n.dist_sq);
  }
  PutU32(out, static_cast<uint32_t>(response.entries.size()));
  for (const Entry<D>& e : response.entries) {
    PutRect<D>(out, e.mbr);
    PutU64(out, e.id);
  }
  PutU32(out, static_cast<uint32_t>(response.batch_offsets.size()));
  for (uint32_t off : response.batch_offsets) PutU32(out, off);
  PutQueryStats(out, response.stats);
  PutU64(out, response.latency_ns);
  PutU32(out, response.worker_id);
  PutU64(out, response.lsn);
  PutU64(out, response.affected);
  // Wire version 3: the shard's trace record rides the response when the
  // request was sampled (a flag byte, then the fixed-size record).
  PutU8(out, response.has_trace ? 1 : 0);
  if (response.has_trace) PutTraceRecord(out, response.trace);
}

template <int D>
Result<QueryResponse<D>> DecodeResponse(const uint8_t* data, size_t len) {
  Reader r(data, len);
  QueryResponse<D> response;
  const uint8_t code = r.U8();
  if (code > static_cast<uint8_t>(Status::Code::kOverloaded)) {
    return Status::Corruption("wire: unknown status code");
  }
  const uint32_t msg_len = r.U32();
  if (!r.CanHold(msg_len, 1)) return Truncated();
  std::string msg;
  msg.reserve(msg_len);
  for (uint32_t i = 0; i < msg_len; ++i) msg.push_back(static_cast<char>(r.U8()));
  response.status = MakeStatus(code, msg);
  const uint32_t num_neighbors = r.U32();
  if (!r.CanHold(num_neighbors, 16)) return Truncated();
  response.neighbors.reserve(num_neighbors);
  for (uint32_t i = 0; i < num_neighbors; ++i) {
    Neighbor n;
    n.id = r.U64();
    n.dist_sq = r.F64();
    response.neighbors.push_back(n);
  }
  const uint32_t num_entries = r.U32();
  if (!r.CanHold(num_entries, 2 * D * sizeof(double) + 8)) return Truncated();
  response.entries.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    Entry<D> e;
    e.mbr = GetRect<D>(r);
    e.id = r.U64();
    response.entries.push_back(e);
  }
  const uint32_t num_offsets = r.U32();
  if (!r.CanHold(num_offsets, 4)) return Truncated();
  response.batch_offsets.reserve(num_offsets);
  for (uint32_t i = 0; i < num_offsets; ++i) {
    response.batch_offsets.push_back(r.U32());
  }
  GetQueryStats(r, &response.stats);
  response.latency_ns = r.U64();
  response.worker_id = r.U32();
  response.lsn = r.U64();
  response.affected = r.U64();
  const uint8_t has_trace = r.U8();
  if (r.ok() && has_trace > 1) {
    return Status::Corruption("wire: bad has_trace flag");
  }
  response.has_trace = has_trace != 0;
  if (response.has_trace) {
    SPATIAL_RETURN_IF_ERROR(GetTraceRecord(r, &response.trace));
  }
  if (!r.AtEnd()) return Truncated();
  return response;
}

// ---------------------------------------------------------------------------
// Admin frame codecs. A one-byte request (the AdminKind tag, from the
// reserved 0xF0+ range so it can never collide with a QueryKind) and a
// status + text response.

bool IsAdminRequest(const uint8_t* data, size_t len) {
  return len >= 1 && data[0] >= static_cast<uint8_t>(AdminKind::kScrapeMetrics);
}

void EncodeAdminRequest(AdminKind kind, std::string* out) {
  PutU8(out, static_cast<uint8_t>(kind));
}

Result<AdminKind> DecodeAdminRequest(const uint8_t* data, size_t len) {
  Reader r(data, len);
  const uint8_t tag = r.U8();
  if (!r.ok()) return Truncated();
  if (tag != static_cast<uint8_t>(AdminKind::kScrapeMetrics) &&
      tag != static_cast<uint8_t>(AdminKind::kDumpSlowLog)) {
    return Status::Corruption("wire: unknown admin request kind");
  }
  if (!r.AtEnd()) return Truncated();
  return static_cast<AdminKind>(tag);
}

void EncodeAdminResponse(const Status& status, const std::string& text,
                         std::string* out) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  const std::string& msg = status.message();
  PutU32(out, static_cast<uint32_t>(msg.size()));
  out->append(msg);
  PutU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

Result<std::string> DecodeAdminResponse(const uint8_t* data, size_t len) {
  Reader r(data, len);
  const uint8_t code = r.U8();
  if (code > static_cast<uint8_t>(Status::Code::kOverloaded)) {
    return Status::Corruption("wire: unknown status code");
  }
  const uint32_t msg_len = r.U32();
  if (!r.CanHold(msg_len, 1)) return Truncated();
  std::string msg;
  msg.reserve(msg_len);
  for (uint32_t i = 0; i < msg_len; ++i) {
    msg.push_back(static_cast<char>(r.U8()));
  }
  const uint32_t text_len = r.U32();
  if (!r.CanHold(text_len, 1)) return Truncated();
  std::string text;
  text.reserve(text_len);
  for (uint32_t i = 0; i < text_len; ++i) {
    text.push_back(static_cast<char>(r.U8()));
  }
  if (!r.AtEnd()) return Truncated();
  const Status status = MakeStatus(code, msg);
  if (!status.ok()) return status;
  return text;
}

// ---------------------------------------------------------------------------
// Framed socket I/O.

namespace {

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE here instead
    // of delivering SIGPIPE to the whole process.
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wire: write failed: ") +
                              std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads exactly `len` bytes. `*clean_eof` (optional) is set when the peer
// closed before the first byte — the normal end of a connection.
Status ReadAll(int fd, void* data, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wire: read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::NotFound("wire: connection closed");
      }
      return Status::Corruption("wire: short read (peer closed mid-frame)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds kMaxFrameBytes");
  }
  std::string header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  SPATIAL_RETURN_IF_ERROR(WriteAll(fd, header.data(), header.size()));
  return WriteAll(fd, payload.data(), payload.size());
}

Status RecvFrame(int fd, std::string* payload) {
  uint8_t header[4];
  bool clean_eof = false;
  SPATIAL_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), &clean_eof));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytes) {
    return Status::Corruption("wire: frame length exceeds kMaxFrameBytes");
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  return ReadAll(fd, payload->data(), len, nullptr);
}

Status SendHandshake(int fd, const WireHandshake& hs) {
  std::string buf;
  PutU32(&buf, hs.magic);
  PutU32(&buf, hs.version);
  PutU32(&buf, hs.dim);
  return WriteAll(fd, buf.data(), buf.size());
}

Result<WireHandshake> RecvHandshake(int fd) {
  uint8_t buf[12];
  bool clean_eof = false;
  SPATIAL_RETURN_IF_ERROR(ReadAll(fd, buf, sizeof(buf), &clean_eof));
  Reader r(buf, sizeof(buf));
  WireHandshake hs;
  hs.magic = r.U32();
  hs.version = r.U32();
  hs.dim = r.U32();
  return hs;
}

template void EncodeRequest<2>(const QueryRequest<2>&, std::string*);
template void EncodeRequest<3>(const QueryRequest<3>&, std::string*);
template Result<QueryRequest<2>> DecodeRequest<2>(const uint8_t*, size_t);
template Result<QueryRequest<3>> DecodeRequest<3>(const uint8_t*, size_t);
template void EncodeResponse<2>(const QueryResponse<2>&, std::string*);
template void EncodeResponse<3>(const QueryResponse<3>&, std::string*);
template Result<QueryResponse<2>> DecodeResponse<2>(const uint8_t*, size_t);
template Result<QueryResponse<3>> DecodeResponse<3>(const uint8_t*, size_t);

}  // namespace spatial
