#ifndef SPATIAL_NET_SERVER_H_
#define SPATIAL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "shard/shard_router.h"

namespace spatial {

// The binary RPC front door: a thread-per-connection TCP server that
// decodes wire frames (net/wire.h), runs them through a ShardRouter, and
// streams the answers back. One server thread blocks in accept(); each
// connection gets its own handler thread, whose scatter-gather into the
// shard worker pools is where the real concurrency lives.
//
// Admission control: one atomic budget of in-flight requests across all
// connections (`max_pending`). A request arriving at the budget is shed
// immediately — the client receives a well-formed response whose status is
// kOverloaded and no shard ever sees the request — so overload degrades
// into fast, explicit rejections instead of unbounded queueing (E19
// measures the accepted-request p99 under 2x overload). A wire-v3 request
// carrying a deadline hint whose budget has already elapsed on arrival is
// shed the same way (spatial_rpc_deadline_shed_total): work the caller has
// stopped waiting for must not occupy a shard worker.
//
// Admin frames (net/wire.h AdminKind) are answered inline, bypass both
// admission checks, and do not count toward max_requests — an overloaded
// or nearly-done server must still be observable.
//
// Instruments land in the router's registry, so one scrape covers the
// connection gauge, shed counter, and request totals alongside the router
// and per-shard families.
template <int D>
class RpcServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = let the kernel pick (see port())
    uint32_t max_connections = 64;
    // In-flight request budget; at the budget, requests shed kOverloaded.
    uint32_t max_pending = 128;
    // Stop after completing this many requests, 0 = serve until Stop().
    // Gives scripted drivers (tools/cli_test.sh) a clean shutdown without
    // signal handling.
    uint64_t max_requests = 0;

    Status Validate() const {
      if (max_connections < 1) {
        return Status::InvalidArgument("RpcServer: max_connections >= 1");
      }
      if (max_pending < 1) {
        return Status::InvalidArgument("RpcServer: max_pending >= 1");
      }
      return Status::OK();
    }
  };

  // Binds, listens, and starts the accept thread. `router` must outlive
  // the server.
  static Result<std::unique_ptr<RpcServer>> Start(ShardRouter<D>* router,
                                                  const Options& options);

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;
  ~RpcServer();

  // The bound port (the kernel's choice when Options::port was 0).
  uint16_t port() const { return port_; }

  // Signals shutdown: stops accepting, shuts down live connections.
  // Idempotent, callable from any thread — including a connection handler
  // (max_requests does exactly that). Does not join.
  void Stop();

  // Joins the accept thread and every connection thread. Call from the
  // owning thread; returns once the server is fully quiesced.
  void WaitUntilStopped();

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const { return shed_->Value(); }

 private:
  RpcServer(ShardRouter<D>* router, const Options& options);

  void AcceptLoop();
  void HandleConnection(int fd);

  ShardRouter<D>* router_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::atomic<uint32_t> in_flight_{0};
  std::atomic<uint64_t> served_{0};
  std::thread accept_thread_;
  std::mutex mu_;                     // guards threads_ and conn_fds_
  std::vector<std::thread> threads_;  // connection handlers
  std::vector<int> conn_fds_;         // live connection sockets
  bool joined_ = false;
  // Instruments (owned by the router's registry).
  obs::Counter* requests_;
  obs::Counter* admin_requests_;
  obs::Counter* shed_;
  obs::Counter* deadline_shed_;
  obs::Counter* wire_errors_;
  obs::Gauge* connections_;
  obs::Counter* connections_total_;
};

extern template class RpcServer<2>;
extern template class RpcServer<3>;

}  // namespace spatial

#endif  // SPATIAL_NET_SERVER_H_
