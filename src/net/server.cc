#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace spatial {

namespace {

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

template <int D>
RpcServer<D>::RpcServer(ShardRouter<D>* router, const Options& options)
    : router_(router), options_(options) {
  obs::MetricsRegistry& registry = router_->metrics();
  requests_ = registry.AddCounter("spatial_rpc_requests_total",
                                  "Requests received over RPC");
  admin_requests_ = registry.AddCounter(
      "spatial_rpc_admin_requests_total",
      "Admin frames answered (metrics scrapes, slow-log dumps)");
  shed_ = registry.AddCounter(
      "spatial_rpc_shed_total",
      "Requests shed by admission control (kOverloaded)");
  deadline_shed_ = registry.AddCounter(
      "spatial_rpc_deadline_shed_total",
      "Requests shed because their deadline hint expired before execution");
  wire_errors_ = registry.AddCounter(
      "spatial_rpc_wire_errors_total",
      "Connections dropped on malformed frames or transport errors");
  connections_ = registry.AddGauge("spatial_rpc_connections",
                                   "Currently open RPC connections");
  connections_total_ = registry.AddCounter("spatial_rpc_connections_total",
                                           "Connections accepted");
}

template <int D>
Result<std::unique_ptr<RpcServer<D>>> RpcServer<D>::Start(
    ShardRouter<D>* router, const Options& options) {
  if (router == nullptr) {
    return Status::InvalidArgument("RpcServer: router is null");
  }
  SPATIAL_RETURN_IF_ERROR(options.Validate());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("RpcServer: socket: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("RpcServer: bad bind address " +
                                   options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::Internal(std::string("RpcServer: bind: ") +
                                       std::strerror(errno));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Status::Internal(std::string("RpcServer: listen: ") +
                                       std::strerror(errno));
    CloseFd(fd);
    return st;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status st = Status::Internal(
        std::string("RpcServer: getsockname: ") + std::strerror(errno));
    CloseFd(fd);
    return st;
  }

  std::unique_ptr<RpcServer> server(new RpcServer(router, options));
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

template <int D>
RpcServer<D>::~RpcServer() {
  Stop();
  WaitUntilStopped();
  CloseFd(listen_fd_);
}

template <int D>
void RpcServer<D>::Stop() {
  if (stopped_.exchange(true)) return;
  // Unblock accept() and every connection's read() — their next syscall
  // fails and the loops exit. Close of the fds themselves waits for the
  // owning thread (connection handlers close their own fd; the destructor
  // closes the listener).
  ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

template <int D>
void RpcServer<D>::WaitUntilStopped() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
    handlers = std::move(threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

template <int D>
void RpcServer<D>::AcceptLoop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener shut down (Stop) or fatal: exit either way.
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_.load(std::memory_order_relaxed) ||
        conn_fds_.size() >= options_.max_connections) {
      CloseFd(fd);
      continue;
    }
    conn_fds_.push_back(fd);
    connections_total_->Inc();
    connections_->Set(static_cast<double>(conn_fds_.size()));
    threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

template <int D>
void RpcServer<D>::HandleConnection(int fd) {
  // Handshake: expect the client's, answer with ours. Any mismatch drops
  // the connection before a single frame is parsed.
  bool handshaken = false;
  {
    Result<WireHandshake> hs = RecvHandshake(fd);
    if (hs.ok() && hs->magic == kWireMagic && hs->version == kWireVersion &&
        hs->dim == static_cast<uint32_t>(D)) {
      WireHandshake ours;
      ours.dim = static_cast<uint32_t>(D);
      handshaken = SendHandshake(fd, ours).ok();
    }
    if (!handshaken) wire_errors_->Inc();
  }

  std::string payload;
  std::string reply;
  while (handshaken && !stopped_.load(std::memory_order_relaxed)) {
    const Status recv = RecvFrame(fd, &payload);
    if (!recv.ok()) {
      // kNotFound = the client closed cleanly between frames.
      if (!recv.IsNotFound()) wire_errors_->Inc();
      break;
    }
    const auto received = std::chrono::steady_clock::now();

    // Admin frames answer inline and skip admission control, the served
    // budget, and the request counter — a saturated or nearly-max_requests
    // server must still answer a metrics scrape without disturbing the
    // query budget scripted drivers count on.
    if (IsAdminRequest(reinterpret_cast<const uint8_t*>(payload.data()),
                       payload.size())) {
      admin_requests_->Inc();
      Result<AdminKind> kind = DecodeAdminRequest(
          reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
      reply.clear();
      if (!kind.ok()) {
        EncodeAdminResponse(kind.status(), "", &reply);
      } else if (*kind == AdminKind::kScrapeMetrics) {
        EncodeAdminResponse(Status::OK(), router_->ScrapeMetrics(), &reply);
      } else {
        EncodeAdminResponse(Status::OK(), router_->trace_log().DumpJson(),
                            &reply);
      }
      if (!SendFrame(fd, reply).ok()) {
        wire_errors_->Inc();
        break;
      }
      continue;
    }
    requests_->Inc();

    QueryResponse<D> response;
    Result<QueryRequest<D>> request = DecodeRequest<D>(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
    if (!request.ok()) {
      response.status = request.status();
    } else if (request->deadline_budget_ns != 0 &&
               ElapsedNs(received) >= request->deadline_budget_ns) {
      // The caller's remaining patience elapsed before we could start
      // (or it sent 1 to say it already had): shed without touching a
      // shard. Deliberately not counted in shed_ — operators alert on
      // capacity sheds and deadline sheds separately.
      deadline_shed_->Inc();
      response.status =
          Status::Overloaded("deadline expired before execution");
    } else {
      // Admission control: reserve a slot or shed. The increment happens
      // before the router sees the request, so the budget bounds shard
      // queue depth too.
      const uint32_t pending =
          in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (pending > options_.max_pending) {
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
        shed_->Inc();
        response.status =
            Status::Overloaded("server at max_pending; retry later");
      } else {
        response = router_->Execute(*request);
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
      }
    }

    reply.clear();
    EncodeResponse<D>(response, &reply);
    if (!SendFrame(fd, reply).ok()) {
      wire_errors_->Inc();
      break;
    }

    const uint64_t done = served_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_requests != 0 && done >= options_.max_requests) {
      Stop();
      break;
    }
  }

  CloseFd(fd);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_.erase(conn_fds_.begin() + i);
      break;
    }
  }
  connections_->Set(static_cast<double>(conn_fds_.size()));
}

template class RpcServer<2>;
template class RpcServer<3>;

}  // namespace spatial
