#ifndef SPATIAL_NET_WIRE_H_
#define SPATIAL_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "service/request.h"

namespace spatial {

// The binary RPC wire protocol (docs/SHARDING.md "Wire protocol").
//
// Every message is a frame: a 4-byte little-endian payload length followed
// by the payload. A connection opens with a 12-byte fixed handshake in
// each direction — magic "SPRC", protocol version, dimensionality — and
// then alternates request / response frames until either side closes.
//
// All integers are little-endian; doubles are IEEE-754 bit patterns in
// little-endian byte order. Every field of every request kind is encoded
// in a fixed order (unused fields ride along as zeros), so one codec
// handles all kinds and a frame's layout depends only on its variable-
// length tails (batch points, neighbors, entries, status message).
//
// Decoders never trust the peer: lengths are checked against the frame,
// counts against kMaxFrameBytes-implied limits, and any truncated or
// oversized frame returns kCorruption without reading out of bounds.

inline constexpr uint32_t kWireMagic = 0x43525053;  // "SPRC" little-endian
// Version 3 adds the propagated trace context (trace id, parent span,
// sample flag, deadline hint) to request frames, the optional embedded
// QueryTraceRecord to response frames, and the admin frame family.
// Handshakes require an exact version match, so v2 peers are rejected
// before any frame is parsed.
inline constexpr uint32_t kWireVersion = 3;

// Upper bound on one frame's payload. Large enough for any realistic
// batch; small enough that a corrupt length prefix cannot drive an
// allocation bomb.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

struct WireHandshake {
  uint32_t magic = kWireMagic;
  uint32_t version = kWireVersion;
  uint32_t dim = 0;
};

// ---------------------------------------------------------------------------
// Admin frame family (wire v3). Admin requests share the request frame
// stream but carry a tag byte from a reserved high range, so a server can
// tell them from query kinds (which are small enum values) by looking at
// the first payload byte. They bypass admission control — an overloaded
// server must still be observable — and answer with an admin response
// frame: status code + message + one opaque text payload (Prometheus
// exposition for kScrapeMetrics, the router slow-log JSON for
// kDumpSlowLog).
enum class AdminKind : uint8_t {
  kScrapeMetrics = 0xF0,
  kDumpSlowLog = 0xF1,
};

// True when a request payload's first byte is in the admin range; such
// payloads must be decoded with DecodeAdminRequest, not DecodeRequest.
bool IsAdminRequest(const uint8_t* data, size_t len);

void EncodeAdminRequest(AdminKind kind, std::string* out);
Result<AdminKind> DecodeAdminRequest(const uint8_t* data, size_t len);

void EncodeAdminResponse(const Status& status, const std::string& text,
                         std::string* out);
// On wire success, returns the text payload; an application-level error
// status travels inside the frame and is surfaced as the Result's error.
Result<std::string> DecodeAdminResponse(const uint8_t* data, size_t len);

// ---------------------------------------------------------------------------
// Payload codecs. Encoders append to *out; decoders parse [data, data+len).

template <int D>
void EncodeRequest(const QueryRequest<D>& request, std::string* out);

template <int D>
Result<QueryRequest<D>> DecodeRequest(const uint8_t* data, size_t len);

template <int D>
void EncodeResponse(const QueryResponse<D>& response, std::string* out);

template <int D>
Result<QueryResponse<D>> DecodeResponse(const uint8_t* data, size_t len);

// ---------------------------------------------------------------------------
// Framed socket I/O (blocking, retrying on EINTR; used by both ends).

// Writes the 4-byte length prefix and the payload.
Status SendFrame(int fd, const std::string& payload);

// Reads one complete frame payload into *payload. A clean peer close
// before the first length byte returns kNotFound (end of stream); any
// other short read or an oversized length returns kCorruption.
Status RecvFrame(int fd, std::string* payload);

Status SendHandshake(int fd, const WireHandshake& hs);
Result<WireHandshake> RecvHandshake(int fd);

extern template void EncodeRequest<2>(const QueryRequest<2>&, std::string*);
extern template void EncodeRequest<3>(const QueryRequest<3>&, std::string*);
extern template Result<QueryRequest<2>> DecodeRequest<2>(const uint8_t*,
                                                         size_t);
extern template Result<QueryRequest<3>> DecodeRequest<3>(const uint8_t*,
                                                         size_t);
extern template void EncodeResponse<2>(const QueryResponse<2>&, std::string*);
extern template void EncodeResponse<3>(const QueryResponse<3>&, std::string*);
extern template Result<QueryResponse<2>> DecodeResponse<2>(const uint8_t*,
                                                           size_t);
extern template Result<QueryResponse<3>> DecodeResponse<3>(const uint8_t*,
                                                           size_t);

}  // namespace spatial

#endif  // SPATIAL_NET_WIRE_H_
