#ifndef SPATIAL_NET_CLIENT_H_
#define SPATIAL_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/wire.h"
#include "service/request.h"

namespace spatial {

// Client side of the binary RPC protocol (net/wire.h): one TCP connection,
// synchronous request/response. Transport and protocol failures surface as
// the Result's error; application-level failures (including kOverloaded
// sheds) arrive inside the returned QueryResponse's status, exactly as a
// local QueryService would report them.
//
// Not thread-safe — frames would interleave. Open one client per calling
// thread (tools/spatial_cli.cc's shard-bench does exactly that).
template <int D>
class RpcClient {
 public:
  // Connects and completes the handshake. `host` is a dotted-quad IPv4
  // address ("localhost" is accepted as 127.0.0.1).
  static Result<std::unique_ptr<RpcClient>> Connect(const std::string& host,
                                                    uint16_t port);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;
  ~RpcClient();

  // One round trip. After an error the connection is dead; reconnect.
  Result<QueryResponse<D>> Call(const QueryRequest<D>& request);

  // One admin round trip (net/wire.h AdminKind): returns the opaque text
  // payload — Prometheus exposition for kScrapeMetrics, the router
  // slow-log JSON for kDumpSlowLog. Admin frames share the connection
  // with Call() but bypass the server's admission control.
  Result<std::string> Admin(AdminKind kind);

 private:
  explicit RpcClient(int fd) : fd_(fd) {}

  int fd_;
  std::string request_buf_;
  std::string response_buf_;
};

extern template class RpcClient<2>;
extern template class RpcClient<3>;

}  // namespace spatial

#endif  // SPATIAL_NET_CLIENT_H_
