#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spatial {

template <int D>
Result<std::unique_ptr<RpcClient<D>>> RpcClient<D>::Connect(
    const std::string& host, uint16_t port) {
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("RpcClient: bad host " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("RpcClient: socket: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::Internal(std::string("RpcClient: connect: ") +
                                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  WireHandshake ours;
  ours.dim = static_cast<uint32_t>(D);
  Status sent = SendHandshake(fd, ours);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<WireHandshake> theirs = RecvHandshake(fd);
  if (!theirs.ok()) {
    ::close(fd);
    return theirs.status();
  }
  if (theirs->magic != kWireMagic || theirs->version != kWireVersion ||
      theirs->dim != static_cast<uint32_t>(D)) {
    ::close(fd);
    return Status::InvalidArgument(
        "RpcClient: handshake mismatch (wrong server, version, or "
        "dimensionality)");
  }
  return std::unique_ptr<RpcClient>(new RpcClient(fd));
}

template <int D>
RpcClient<D>::~RpcClient() {
  if (fd_ >= 0) ::close(fd_);
}

template <int D>
Result<QueryResponse<D>> RpcClient<D>::Call(const QueryRequest<D>& request) {
  request_buf_.clear();
  EncodeRequest<D>(request, &request_buf_);
  SPATIAL_RETURN_IF_ERROR(SendFrame(fd_, request_buf_));
  SPATIAL_RETURN_IF_ERROR(RecvFrame(fd_, &response_buf_));
  return DecodeResponse<D>(
      reinterpret_cast<const uint8_t*>(response_buf_.data()),
      response_buf_.size());
}

template <int D>
Result<std::string> RpcClient<D>::Admin(AdminKind kind) {
  request_buf_.clear();
  EncodeAdminRequest(kind, &request_buf_);
  SPATIAL_RETURN_IF_ERROR(SendFrame(fd_, request_buf_));
  SPATIAL_RETURN_IF_ERROR(RecvFrame(fd_, &response_buf_));
  return DecodeAdminResponse(
      reinterpret_cast<const uint8_t*>(response_buf_.data()),
      response_buf_.size());
}

template class RpcClient<2>;
template class RpcClient<3>;

}  // namespace spatial
