#ifndef SPATIAL_OBS_METRICS_H_
#define SPATIAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace spatial {
namespace obs {

// Lock-free instruments + a scrape-time registry with Prometheus-style
// text exposition (docs/OBSERVABILITY.md has the full metric catalog).
//
// Two ways a value reaches a scrape:
//
//   1. Owned instruments (Counter / Gauge / PowerHistogram) created via
//      MetricsRegistry::Add*(). Updates are relaxed atomics — lock-free,
//      wait-free, safe from any thread. Used by code that has no existing
//      stats struct (WAL commit path, checkpoint timing).
//   2. Collectors: callbacks run at scrape time that read existing
//      sharded per-worker state (IoStats/BufferStats/QueryStats shards,
//      per-worker latency histograms) and emit aggregated families. The
//      hot paths keep their single-writer counters; aggregation cost is
//      paid by the scraper, not the workers.
//
// Registration and scraping take a mutex (neither is a hot path; all
// registration happens at service startup). Instrument *updates* never
// lock. Instrument pointers returned by Add*() are stable for the life of
// the registry (deque storage, no reallocation of elements).

// Multi-writer monotone counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc() { Add(1); }
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Last-write-wins double-valued gauge (bit-cast through uint64).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // 0 bits == 0.0
};

enum class MetricType { kCounter, kGauge, kHistogram };

// Appends samples in Prometheus text exposition format to a string.
// Collectors receive one of these at scrape time; ScrapeText() drives it
// over the owned instruments first.
class ExpositionWriter {
 public:
  explicit ExpositionWriter(std::string* out) : out_(out) {}

  // "# HELP name help" + "# TYPE name counter|gauge|histogram".
  void Family(std::string_view name, std::string_view help, MetricType type);

  // One sample line; labels like `kind="knn",worker="3"` (empty = none).
  void Sample(std::string_view name, std::string_view labels, double value);
  void Sample(std::string_view name, std::string_view labels, uint64_t value);

  // Full histogram exposition: cumulative `name_bucket{le="..."}` series
  // (power-of-two upper bounds, trailing empty buckets elided, `+Inf`
  // always present), then `name_sum` and `name_count`.
  void Histogram(std::string_view name, std::string_view labels,
                 const HistogramSnapshot& s);

 private:
  std::string* out_;
};

class MetricsRegistry {
 public:
  using CollectFn = std::function<void(ExpositionWriter&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returned pointers remain valid (and lock-free to update) for the
  // registry's lifetime.
  Counter* AddCounter(std::string name, std::string help);
  Gauge* AddGauge(std::string name, std::string help);
  PowerHistogram* AddHistogram(std::string name, std::string help);

  // Runs at every scrape, after the owned instruments are written.
  void AddCollector(CollectFn fn);

  // Full exposition document. Safe from any thread, any time.
  std::string ScrapeText() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::string help;
    T instrument;
  };

  mutable std::mutex mu_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<PowerHistogram>> histograms_;
  std::vector<CollectFn> collectors_;
};

// Instrument bundles owned by subsystems that predate the registry; the
// subsystem records into them directly (optional pointer, null = off) and
// a service-level collector exposes them on scrape.
struct WalMetrics {
  PowerHistogram fsync_ns;        // DurableSync latency per group commit
  PowerHistogram commit_records;  // records per group commit (batch size)
  PowerHistogram commit_bytes;    // bytes per group commit
};

struct DiskMetrics {
  PowerHistogram read_ns;   // physical page-read latency
  PowerHistogram write_ns;  // physical page-write / flush latency
  PowerHistogram fsync_ns;  // data-file fsync latency (checkpoints)
};

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_METRICS_H_
