#ifndef SPATIAL_OBS_HISTOGRAM_H_
#define SPATIAL_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace spatial {
namespace obs {

// The shared fixed-bucket histogram used everywhere a distribution is
// tracked: per-worker query latency, queue wait, WAL fsync latency and
// group-commit batch size, physical-read latency. One implementation, one
// bucket layout, one exposition path (previously the service kept its own
// copy in src/service/latency_histogram.h — deleted in favour of this).
//
// Two pieces:
//
//   * PowerHistogram   — the live instrument. Record() is two relaxed
//     atomic increments; single-writer in practice (each worker owns its
//     histograms) but correct under concurrent writers too. Readers may
//     Snapshot() from any thread at any time.
//   * HistogramSnapshot — a plain-value copy used for aggregation across
//     shards (operator+=) and percentile extraction.
//
// Buckets are powers of two of the recorded unit (bucket b covers
// [2^(b-1), 2^b)), so percentiles carry at most a 2x quantization error —
// plenty for p50/p95/p99 reporting, and the fixed layout keeps Record()
// branch-free. For nanosecond latencies 64 buckets span past 292 years;
// for batch sizes they span any practical count.
inline constexpr int kHistogramBuckets = 64;

struct HistogramSnapshot {
  uint64_t counts[kHistogramBuckets] = {};
  uint64_t total_count = 0;
  uint64_t total = 0;   // sum of recorded values
  uint64_t max = 0;

  HistogramSnapshot& operator+=(const HistogramSnapshot& other) {
    for (int i = 0; i < kHistogramBuckets; ++i) counts[i] += other.counts[i];
    total_count += other.total_count;
    total += other.total;
    if (other.max > max) max = other.max;
    return *this;
  }

  // Upper bound of the bucket containing the p-th percentile observation
  // (p in [0, 1]); 0 when empty.
  uint64_t Percentile(double p) const {
    if (total_count == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Rank of the percentile observation, 1-based ceiling.
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total_count));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) {
        // Upper bound of bucket b (which covers [2^(b-1), 2^b)); the
        // overflow bucket reports the true maximum instead.
        return b >= kHistogramBuckets - 1 ? max : (uint64_t{1} << b) - 1;
      }
    }
    return max;
  }

  double Mean() const {
    return total_count == 0
               ? 0.0
               : static_cast<double>(total) / static_cast<double>(total_count);
  }

  // Upper bound (inclusive) of bucket b, for exposition: 2^b - 1.
  static uint64_t BucketUpperBound(int b) {
    return b >= kHistogramBuckets - 1 ? ~uint64_t{0}
                                      : (uint64_t{1} << b) - 1;
  }

  // Compatibility spellings from the retired service-local histogram.
  uint64_t PercentileNs(double p) const { return Percentile(p); }
  double MeanNs() const { return Mean(); }
};

class PowerHistogram {
 public:
  PowerHistogram() = default;
  PowerHistogram(const PowerHistogram&) = delete;
  PowerHistogram& operator=(const PowerHistogram&) = delete;

  // Lock-free; typically called by the owning worker only, but correct
  // from any thread.
  void Record(uint64_t value) {
    const int bucket = Bucket(value);
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(value, std::memory_order_relaxed);
    // Monotonic max; CAS keeps the class correct under multiple writers.
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Safe from any thread at any time (relaxed reads: the snapshot is a
  // consistent-enough view for monitoring, exact once writers are idle).
  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total_count += s.counts[i];
    }
    s.total = total_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    total_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // Index of the highest set bit + 1 (0 maps to bucket 0): bucket b holds
  // values in [2^(b-1), 2^b).
  static int Bucket(uint64_t value) {
    int b = 0;
    while (value != 0 && b < kHistogramBuckets - 1) {
      value >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::atomic<uint64_t> counts_[kHistogramBuckets] = {};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs

// The service layer predates src/obs/ and used these spellings; they are
// the same types (satellite: one histogram implementation repo-wide).
inline constexpr int kLatencyBuckets = obs::kHistogramBuckets;
using LatencySnapshot = obs::HistogramSnapshot;
using LatencyHistogram = obs::PowerHistogram;

}  // namespace spatial

#endif  // SPATIAL_OBS_HISTOGRAM_H_
