#ifndef SPATIAL_OBS_STAT_COUNTER_H_
#define SPATIAL_OBS_STAT_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace spatial {
namespace obs {

// A single-writer counter cell that is safe to *read* from any thread.
//
// The storage subsystem keeps its counters (IoStats, BufferStats) in plain
// structs owned by exactly one thread — a worker's private disk view and
// buffer pool, or the single writer thread's pool. That ownership model is
// what keeps the hot paths cheap, but it made every counter a data race the
// moment a metrics scraper wanted a live value. StatCounter keeps the
// single-writer discipline (increments are a relaxed load + relaxed store,
// which compiles to the same plain `add` instruction as `++x` on every
// mainstream ISA) while making concurrent readers well-defined.
//
// It deliberately mimics uint64_t: implicit conversion on read, ++/+=
// on write, copyable (copies are value snapshots — used by the Snapshot()
// aggregation structs, which are plain values owned by one thread).
class StatCounter {
 public:
  constexpr StatCounter() noexcept : v_(0) {}
  constexpr StatCounter(uint64_t v) noexcept : v_(v) {}  // NOLINT: implicit

  StatCounter(const StatCounter& other) noexcept : v_(other.value()) {}
  StatCounter& operator=(const StatCounter& other) noexcept {
    Store(other.value());
    return *this;
  }
  StatCounter& operator=(uint64_t v) noexcept {
    Store(v);
    return *this;
  }

  // Owner-thread write path: plain add in codegen, atomic for readers.
  StatCounter& operator+=(uint64_t n) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator++() noexcept { return *this += 1; }
  uint64_t operator++(int) noexcept {
    const uint64_t old = value();
    *this += 1;
    return old;
  }
  // Rare correction path (e.g. un-counting allocation zeroing I/O).
  StatCounter& operator-=(uint64_t n) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) - n,
             std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator--() noexcept { return *this -= 1; }

  // Any-thread write path (rare: shared counters like ServingDb epochs use
  // single-writer Store; FetchAdd exists for completeness).
  void FetchAdd(uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void Store(uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  // Any-thread read path.
  uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator uint64_t() const noexcept { return value(); }  // NOLINT: implicit

 private:
  std::atomic<uint64_t> v_;
};

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_STAT_COUNTER_H_
