#ifndef SPATIAL_OBS_QUERY_METRICS_H_
#define SPATIAL_OBS_QUERY_METRICS_H_

#include <cstdint>

#include "core/query_stats.h"
#include "obs/stat_counter.h"

namespace spatial {
namespace obs {

// Scrape-safe mirror of QueryStats. The traversal code keeps bumping a
// plain per-query QueryStats (cheap, thread-private, unchanged since the
// seed); the worker folds that into one of these once per completed query.
// Scrapers read the cells live without tearing or TSan findings.
struct AtomicQueryStats {
  StatCounter nodes_visited;
  StatCounter leaf_nodes_visited;
  StatCounter internal_nodes_visited;
  StatCounter abl_entries_generated;
  StatCounter pruned_s1;
  StatCounter estimate_updates_s2;
  StatCounter pruned_s3;
  StatCounter pruned_leaf;
  StatCounter objects_examined;
  StatCounter distance_computations;
  StatCounter heap_pushes;
  StatCounter heap_pops;

  // Owner thread only (single-writer cells).
  void Add(const QueryStats& s) {
    nodes_visited += s.nodes_visited;
    leaf_nodes_visited += s.leaf_nodes_visited;
    internal_nodes_visited += s.internal_nodes_visited;
    abl_entries_generated += s.abl_entries_generated;
    pruned_s1 += s.pruned_s1;
    estimate_updates_s2 += s.estimate_updates_s2;
    pruned_s3 += s.pruned_s3;
    pruned_leaf += s.pruned_leaf;
    objects_examined += s.objects_examined;
    distance_computations += s.distance_computations;
    heap_pushes += s.heap_pushes;
    heap_pops += s.heap_pops;
  }

  // Any thread.
  QueryStats Snapshot() const {
    QueryStats s;
    s.nodes_visited = nodes_visited;
    s.leaf_nodes_visited = leaf_nodes_visited;
    s.internal_nodes_visited = internal_nodes_visited;
    s.abl_entries_generated = abl_entries_generated;
    s.pruned_s1 = pruned_s1;
    s.estimate_updates_s2 = estimate_updates_s2;
    s.pruned_s3 = pruned_s3;
    s.pruned_leaf = pruned_leaf;
    s.objects_examined = objects_examined;
    s.distance_computations = distance_computations;
    s.heap_pushes = heap_pushes;
    s.heap_pops = heap_pops;
    return s;
  }

  void Reset() {
    nodes_visited = 0;
    leaf_nodes_visited = 0;
    internal_nodes_visited = 0;
    abl_entries_generated = 0;
    pruned_s1 = 0;
    estimate_updates_s2 = 0;
    pruned_s3 = 0;
    pruned_leaf = 0;
    objects_examined = 0;
    distance_computations = 0;
    heap_pushes = 0;
    heap_pops = 0;
  }
};

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_QUERY_METRICS_H_
