#ifndef SPATIAL_OBS_TRACE_H_
#define SPATIAL_OBS_TRACE_H_

#include <cstdint>

namespace spatial {
namespace obs {

// Per-query tracing, sized for the zero-allocation contract: a
// TraceContext is fixed-size POD, owned per worker, and reached through a
// nullable pointer in QueryScratch. The service arms the pointer only for
// sampled queries, so the traversal hot path pays exactly one pointer
// test per node visit when a query is not traced — and nothing ever
// allocates, traced or not.
//
// R-trees here are shallow (fanout ~50 at 1 KiB pages ⇒ depth 4 covers
// six million entries); 12 levels is beyond any realistic tree, and
// deeper levels clamp into the top slot rather than overflow.
inline constexpr int kTraceMaxLevels = 12;

// Span kinds recorded per traced query. These are phases of one request's
// life in the service, not nested spans — each holds a duration in ns.
enum class SpanKind : uint8_t {
  kQueueWait = 0,  // submit → worker dequeue
  kExecute = 1,    // dispatch → response ready (traversal inclusive)
};
inline constexpr int kTraceSpanKinds = 2;

inline const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kExecute:
      return "execute";
  }
  return "unknown";
}

struct TraceContext {
  // Page accesses by tree level: index 0 = leaves, index (root_level)
  // = root. Filled by the traversals via CountNode().
  uint32_t nodes_per_level[kTraceMaxLevels] = {};
  uint64_t span_ns[kTraceSpanKinds] = {};

  void Reset() {
    for (auto& c : nodes_per_level) c = 0;
    for (auto& s : span_ns) s = 0;
  }

  void CountNode(uint16_t level) {
    const int slot =
        level < kTraceMaxLevels ? level : kTraceMaxLevels - 1;
    ++nodes_per_level[slot];
  }

  void SetSpan(SpanKind kind, uint64_t ns) {
    span_ns[static_cast<int>(kind)] = ns;
  }
};

// xorshift64* — the per-worker sampling draw. Deterministic, one
// multiply + three shifts per query, no libc, no allocation.
inline uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

// True on roughly `per_million` out of every million draws.
inline bool SampleDraw(uint64_t* state, uint32_t per_million) {
  if (per_million == 0) return false;
  return NextRandom(state) % 1000000u < per_million;
}

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_TRACE_H_
