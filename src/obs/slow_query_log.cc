#include "obs/slow_query_log.h"

#include <cinttypes>
#include <cstdio>

namespace spatial {
namespace obs {

void AppendJsonU64(std::string* out, const char* key, uint64_t v,
                   bool trailing_comma) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                trailing_comma ? "," : "");
  out->append(buf);
}

void AppendQueryStatsJson(std::string* out, const QueryStats& s) {
  out->push_back('{');
  AppendJsonU64(out, "nodes_visited", s.nodes_visited);
  AppendJsonU64(out, "leaf_nodes_visited", s.leaf_nodes_visited);
  AppendJsonU64(out, "internal_nodes_visited", s.internal_nodes_visited);
  AppendJsonU64(out, "abl_entries_generated", s.abl_entries_generated);
  AppendJsonU64(out, "pruned_s1", s.pruned_s1);
  AppendJsonU64(out, "estimate_updates_s2", s.estimate_updates_s2);
  AppendJsonU64(out, "pruned_s3", s.pruned_s3);
  AppendJsonU64(out, "pruned_leaf", s.pruned_leaf);
  AppendJsonU64(out, "objects_examined", s.objects_examined);
  AppendJsonU64(out, "distance_computations", s.distance_computations);
  AppendJsonU64(out, "heap_pushes", s.heap_pushes);
  AppendJsonU64(out, "heap_pops", s.heap_pops, /*trailing_comma=*/false);
  out->push_back('}');
}

void AppendLevelsJson(std::string* out,
                      const uint32_t (&nodes_per_level)[kTraceMaxLevels]) {
  // Emit levels 0..top where top is the highest non-zero level (leaf
  // level always emitted so the array is never empty).
  int top = 0;
  for (int i = 0; i < kTraceMaxLevels; ++i) {
    if (nodes_per_level[i] != 0) top = i;
  }
  out->push_back('[');
  char buf[32];
  for (int i = 0; i <= top; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%u", i == 0 ? "" : ",",
                  nodes_per_level[i]);
    out->append(buf);
  }
  out->push_back(']');
}

namespace {

void AppendRecordJson(std::string* out, const QueryTraceRecord& r) {
  out->push_back('{');
  AppendJsonU64(out, "seq", r.seq);
  AppendJsonU64(out, "worker", r.worker);
  out->append("\"kind\":\"");
  out->append(r.kind_name);
  out->append("\",");
  AppendJsonU64(out, "k", r.k);
  AppendJsonU64(out, "latency_ns", r.latency_ns);
  AppendJsonU64(out, "queue_wait_ns", r.queue_wait_ns);
  out->append(r.traced ? "\"traced\":true," : "\"traced\":false,");
  out->append("\"stats\":");
  AppendQueryStatsJson(out, r.stats);
  out->append(",\"nodes_per_level\":");
  AppendLevelsJson(out, r.nodes_per_level);
  out->push_back('}');
}

}  // namespace

SlowQueryLog::SlowQueryLog(const Options& options) : options_(options) {
  slow_.reserve(options_.slow_capacity);
  sampled_.reserve(options_.sampled_capacity);
}

void SlowQueryLog::Record(const QueryTraceRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryTraceRecord r = record;
  r.seq = seq_++;
  if (r.latency_ns >= options_.slow_threshold_ns &&
      options_.slow_capacity > 0) {
    if (slow_.size() < options_.slow_capacity) {
      slow_.push_back(r);  // within reserved capacity: no allocation
    } else {
      slow_[slow_next_] = r;
      slow_next_ = (slow_next_ + 1) % options_.slow_capacity;
    }
    return;
  }
  if (options_.sampled_capacity == 0) return;
  ++sampled_seen_;
  if (sampled_.size() < options_.sampled_capacity) {
    sampled_.push_back(r);
    return;
  }
  // Reservoir (algorithm R): replace a uniformly random slot with
  // probability capacity / seen.
  const uint64_t slot = NextRandom(&rng_) % sampled_seen_;
  if (slot < options_.sampled_capacity) {
    sampled_[static_cast<size_t>(slot)] = r;
  }
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

size_t SlowQueryLog::slow_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_.size();
}

size_t SlowQueryLog::sampled_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_.size();
}

std::vector<QueryTraceRecord> SlowQueryLog::SlowEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::vector<QueryTraceRecord> SlowQueryLog::SampledEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

std::string SlowQueryLog::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(256 + 512 * (slow_.size() + sampled_.size()));
  out.push_back('{');
  AppendJsonU64(&out, "slow_threshold_ns", options_.slow_threshold_ns);
  AppendJsonU64(&out, "total_recorded", seq_);
  out.append("\"slow\":[");
  for (size_t i = 0; i < slow_.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendRecordJson(&out, slow_[i]);
  }
  out.append("],\"sampled\":[");
  for (size_t i = 0; i < sampled_.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendRecordJson(&out, sampled_[i]);
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace spatial
