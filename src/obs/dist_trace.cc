#include "obs/dist_trace.h"

namespace spatial {
namespace obs {

void AppendRouterTraceJson(std::string* out, const RouterTraceRecord& r) {
  out->push_back('{');
  AppendJsonU64(out, "seq", r.seq);
  AppendJsonU64(out, "trace_id", r.trace_id);
  AppendJsonU64(out, "root_span_id", r.root_span_id);
  out->append("\"kind\":\"");
  out->append(r.kind_name);
  out->append("\",");
  AppendJsonU64(out, "k", r.k);
  out->append(r.traced ? "\"traced\":true," : "\"traced\":false,");
  out->append("\"spans\":{");
  AppendJsonU64(out, "queue_ns", r.queue_ns);
  AppendJsonU64(out, "scatter_ns", r.scatter_ns);
  AppendJsonU64(out, "merge_ns", r.merge_ns);
  AppendJsonU64(out, "total_ns", r.total_ns, /*trailing_comma=*/false);
  out->append("},");
  AppendJsonU64(out, "num_shards", r.num_shards);
  AppendJsonU64(out, "straggler", r.straggler);
  out->append("\"merged_stats\":");
  AppendQueryStatsJson(out, r.merged_stats);
  out->append(",\"shards\":[");
  for (uint32_t i = 0; i < r.captured_shards(); ++i) {
    const ShardSpan& s = r.shards[i];
    if (i != 0) out->push_back(',');
    out->push_back('{');
    AppendJsonU64(out, "shard", s.shard);
    AppendJsonU64(out, "worker", s.worker);
    out->append(s.traced ? "\"traced\":true," : "\"traced\":false,");
    AppendJsonU64(out, "rpc_ns", s.rpc_ns);
    AppendJsonU64(out, "queue_wait_ns", s.queue_wait_ns);
    AppendJsonU64(out, "execute_ns", s.execute_ns);
    // The transport/observation share of the round trip: what is left
    // after the shard's own queue-wait and execute accounting.
    const uint64_t accounted = s.queue_wait_ns + s.execute_ns;
    AppendJsonU64(out, "overhead_ns",
                  s.rpc_ns > accounted ? s.rpc_ns - accounted : 0);
    out->append("\"stats\":");
    AppendQueryStatsJson(out, s.stats);
    out->append(",\"nodes_per_level\":");
    AppendLevelsJson(out, s.nodes_per_level);
    out->push_back('}');
  }
  out->push_back(']');
  if (r.num_shards > kMaxTraceShards) {
    out->append(",\"shards_truncated\":true");
  }
  out->push_back('}');
}

DistTraceLog::DistTraceLog(const Options& options) : options_(options) {
  slow_.reserve(options_.slow_capacity);
  sampled_.reserve(options_.sampled_capacity);
}

void DistTraceLog::Record(const RouterTraceRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  RouterTraceRecord r = record;
  r.seq = seq_++;
  if (r.total_ns >= options_.slow_threshold_ns && options_.slow_capacity > 0) {
    if (slow_.size() < options_.slow_capacity) {
      slow_.push_back(r);  // within reserved capacity: no allocation
    } else {
      slow_[slow_next_] = r;
      slow_next_ = (slow_next_ + 1) % options_.slow_capacity;
    }
    return;
  }
  if (options_.sampled_capacity == 0) return;
  ++sampled_seen_;
  if (sampled_.size() < options_.sampled_capacity) {
    sampled_.push_back(r);
    return;
  }
  // Reservoir (algorithm R): replace a uniformly random slot with
  // probability capacity / seen.
  const uint64_t slot = NextRandom(&rng_) % sampled_seen_;
  if (slot < options_.sampled_capacity) {
    sampled_[static_cast<size_t>(slot)] = r;
  }
}

uint64_t DistTraceLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

size_t DistTraceLog::slow_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_.size();
}

size_t DistTraceLog::sampled_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_.size();
}

std::vector<RouterTraceRecord> DistTraceLog::SlowEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::vector<RouterTraceRecord> DistTraceLog::SampledEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

std::string DistTraceLog::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(256 + 1024 * (slow_.size() + sampled_.size()));
  out.push_back('{');
  AppendJsonU64(&out, "slow_threshold_ns", options_.slow_threshold_ns);
  AppendJsonU64(&out, "total_recorded", seq_);
  out.append("\"slow\":[");
  for (size_t i = 0; i < slow_.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendRouterTraceJson(&out, slow_[i]);
  }
  out.append("],\"sampled\":[");
  for (size_t i = 0; i < sampled_.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendRouterTraceJson(&out, sampled_[i]);
  }
  out.append("]}");
  return out;
}

}  // namespace obs
}  // namespace spatial
