#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace spatial {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isnan(v)) {
    out->append("NaN");
    return;
  }
  // Integers (the common case: counters, bucket counts) print exactly;
  // everything else gets enough digits to round-trip.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

void AppendSamplePrefix(std::string* out, std::string_view name,
                        std::string_view labels) {
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  out->push_back(' ');
}

}  // namespace

void ExpositionWriter::Family(std::string_view name, std::string_view help,
                              MetricType type) {
  out_->append("# HELP ");
  out_->append(name);
  out_->push_back(' ');
  out_->append(help);
  out_->append("\n# TYPE ");
  out_->append(name);
  out_->push_back(' ');
  out_->append(TypeName(type));
  out_->push_back('\n');
}

void ExpositionWriter::Sample(std::string_view name, std::string_view labels,
                              double value) {
  AppendSamplePrefix(out_, name, labels);
  AppendDouble(out_, value);
  out_->push_back('\n');
}

void ExpositionWriter::Sample(std::string_view name, std::string_view labels,
                              uint64_t value) {
  AppendSamplePrefix(out_, name, labels);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_->append(buf);
  out_->push_back('\n');
}

void ExpositionWriter::Histogram(std::string_view name,
                                 std::string_view labels,
                                 const HistogramSnapshot& s) {
  // Find the last non-empty bucket so we don't emit 64 lines for a
  // histogram that only ever saw microsecond values.
  int last = -1;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (s.counts[b] != 0) last = b;
  }
  uint64_t cumulative = 0;
  char buf[96];
  for (int b = 0; b <= last && b < kHistogramBuckets - 1; ++b) {
    cumulative += s.counts[b];
    out_->append(name);
    out_->append("_bucket{");
    if (!labels.empty()) {
      out_->append(labels);
      out_->push_back(',');
    }
    std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                  HistogramSnapshot::BucketUpperBound(b), cumulative);
    out_->append(buf);
  }
  out_->append(name);
  out_->append("_bucket{");
  if (!labels.empty()) {
    out_->append(labels);
    out_->push_back(',');
  }
  std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %" PRIu64 "\n",
                s.total_count);
  out_->append(buf);

  AppendSamplePrefix(out_, std::string(name) + "_sum", labels);
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", s.total);
  out_->append(buf);
  AppendSamplePrefix(out_, std::string(name) + "_count", labels);
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", s.total_count);
  out_->append(buf);
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Named<Counter>& named = counters_.emplace_back();
  named.name = std::move(name);
  named.help = std::move(help);
  return &named.instrument;
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Named<Gauge>& named = gauges_.emplace_back();
  named.name = std::move(name);
  named.help = std::move(help);
  return &named.instrument;
}

PowerHistogram* MetricsRegistry::AddHistogram(std::string name,
                                              std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Named<PowerHistogram>& named = histograms_.emplace_back();
  named.name = std::move(name);
  named.help = std::move(help);
  return &named.instrument;
}

void MetricsRegistry::AddCollector(CollectFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

std::string MetricsRegistry::ScrapeText() const {
  std::string out;
  out.reserve(4096);
  ExpositionWriter writer(&out);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) {
    writer.Family(c.name, c.help, MetricType::kCounter);
    writer.Sample(c.name, {}, c.instrument.Value());
  }
  for (const auto& g : gauges_) {
    writer.Family(g.name, g.help, MetricType::kGauge);
    writer.Sample(g.name, {}, g.instrument.Value());
  }
  for (const auto& h : histograms_) {
    writer.Family(h.name, h.help, MetricType::kHistogram);
    writer.Histogram(h.name, {}, h.instrument.Snapshot());
  }
  for (const auto& collect : collectors_) {
    collect(writer);
  }
  return out;
}

}  // namespace obs
}  // namespace spatial
