#ifndef SPATIAL_OBS_DIST_TRACE_H_
#define SPATIAL_OBS_DIST_TRACE_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace spatial {
namespace obs {

// Distributed tracing across the scatter-gather hop (docs/OBSERVABILITY.md
// "Distributed traces"). The router is the root of a trace: it stamps the
// trace context (trace id, root span id, sample flag) into every scattered
// copy of a sampled request, each shard returns its own QueryTraceRecord
// in the response, and the router assembles the per-shard spans plus its
// own root spans (queue, scatter, merge) into one RouterTraceRecord.
//
// Everything here is fixed-size POD for the same reason QueryTraceRecord
// is: the capture path must never allocate. A router serving more shards
// than kMaxTraceShards records the first kMaxTraceShards and counts the
// rest in num_shards (the JSON dump flags the truncation).
inline constexpr uint32_t kMaxTraceShards = 16;

// One shard's slice of a distributed trace, as observed from the router.
// `rpc_ns` is the full router-side round trip (submit → answer observed);
// `queue_wait_ns` + `execute_ns` are the shard's own accounting, so
// rpc_ns - queue_wait_ns - execute_ns is the transport/overhead share —
// the network-vs-execute split the trace exists to expose.
struct ShardSpan {
  uint32_t shard = 0;
  uint16_t worker = 0;     // shard worker that executed the request
  bool traced = false;     // shard returned its sampled trace record
  uint64_t rpc_ns = 0;     // submit → answer observed at the router
  uint64_t queue_wait_ns = 0;  // shard-reported (valid when traced)
  uint64_t execute_ns = 0;     // shard-reported worker wall time
  QueryStats stats;            // shard-reported per-query counters
  uint32_t nodes_per_level[kTraceMaxLevels] = {};  // valid when traced
};

// One assembled cross-shard trace (or a router-slow capture without the
// per-shard detail when the request was not sampled).
struct RouterTraceRecord {
  uint64_t seq = 0;           // capture order, assigned by the log
  uint64_t trace_id = 0;      // propagated or router-generated, nonzero
  uint64_t root_span_id = 0;  // parent of every shard span
  char kind_name[16] = {};
  uint32_t k = 0;
  bool traced = false;  // sampled: per-shard spans and level counts valid
  // Root spans. `queue_ns` is the slowest shard's queue wait — the
  // scatter's queueing component; the router itself never queues.
  uint64_t queue_ns = 0;
  uint64_t scatter_ns = 0;  // fan-out → last shard answer gathered
  uint64_t merge_ns = 0;    // gather → merged answer ready
  uint64_t total_ns = 0;    // Execute entry → merged answer
  uint32_t num_shards = 0;  // shards scattered to (may exceed the array)
  uint32_t straggler = 0;   // shard index with the largest rpc_ns
  QueryStats merged_stats;
  ShardSpan shards[kMaxTraceShards];

  void SetKindName(const char* name) {
    std::strncpy(kind_name, name, sizeof(kind_name) - 1);
    kind_name[sizeof(kind_name) - 1] = '\0';
  }

  uint32_t captured_shards() const {
    return num_shards < kMaxTraceShards ? num_shards : kMaxTraceShards;
  }
};

// The router-level slow-query log: structurally the service's SlowQueryLog
// (newest-wins slow ring + algorithm-R reservoir, preallocated storage,
// mutexed Record that runs at most once per request and never allocates),
// but holding assembled cross-shard traces instead of single-service
// records. DumpJson() backs the kDumpSlowLog admin frame.
class DistTraceLog {
 public:
  struct Options {
    size_t slow_capacity = 64;
    size_t sampled_capacity = 64;
    uint64_t slow_threshold_ns = 10'000'000;  // 10 ms
  };

  explicit DistTraceLog(const Options& options);
  DistTraceLog(const DistTraceLog&) = delete;
  DistTraceLog& operator=(const DistTraceLog&) = delete;

  // Routes by total_ns: >= threshold goes to the slow ring, else to the
  // sampled reservoir. Never allocates.
  void Record(const RouterTraceRecord& record);

  uint64_t slow_threshold_ns() const { return options_.slow_threshold_ns; }
  uint64_t total_recorded() const;
  size_t slow_captured() const;
  size_t sampled_captured() const;

  std::vector<RouterTraceRecord> SlowEntries() const;
  std::vector<RouterTraceRecord> SampledEntries() const;

  // {"slow_threshold_ns":..., "slow":[...], "sampled":[...]}; see
  // docs/OBSERVABILITY.md "Distributed traces" for the record schema.
  std::string DumpJson() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::vector<RouterTraceRecord> slow_;  // ring, capacity slow_capacity
  size_t slow_next_ = 0;
  std::vector<RouterTraceRecord> sampled_;  // reservoir
  uint64_t sampled_seen_ = 0;
  uint64_t seq_ = 0;
  uint64_t rng_ = 0xA0761D6478BD642FULL;
};

// One trace rendered as a JSON object (the DumpJson element form) — used
// directly by tests and tools that hold a record.
void AppendRouterTraceJson(std::string* out, const RouterTraceRecord& r);

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_DIST_TRACE_H_
