#ifndef SPATIAL_OBS_SLOW_QUERY_LOG_H_
#define SPATIAL_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_stats.h"
#include "obs/trace.h"

namespace spatial {
namespace obs {

// JSON building blocks shared by every trace dump (this log's DumpJson
// and the router's DistTraceLog in obs/dist_trace.h), so the schema of a
// stats block or a per-level array is identical wherever it appears.
void AppendJsonU64(std::string* out, const char* key, uint64_t v,
                   bool trailing_comma = true);
void AppendQueryStatsJson(std::string* out, const QueryStats& s);
// `[n0,n1,...]` trimmed to the highest non-zero level (leaf level always
// present).
void AppendLevelsJson(std::string* out,
                      const uint32_t (&nodes_per_level)[kTraceMaxLevels]);

// One captured query: fixed-size POD so recording never allocates.
struct QueryTraceRecord {
  uint64_t seq = 0;       // capture order, assigned by the log
  uint16_t worker = 0;
  uint32_t k = 0;
  char kind_name[16] = {};  // e.g. "knn", "batch_knn" (service fills this)
  uint64_t latency_ns = 0;
  uint64_t queue_wait_ns = 0;
  bool traced = false;      // nodes_per_level valid (query was sampled)
  QueryStats stats;
  uint32_t nodes_per_level[kTraceMaxLevels] = {};

  void SetKindName(const char* name) {
    std::strncpy(kind_name, name, sizeof(kind_name) - 1);
    kind_name[sizeof(kind_name) - 1] = '\0';
  }
};

// Ring-buffer capture of interesting queries, two populations:
//
//   * slow:    every query at or above `slow_threshold_ns` — newest-wins
//     ring, so a burst of slow queries keeps the most recent ones.
//   * sampled: trace-sampled queries below the threshold — reservoir
//     sampled (algorithm R), so the retained set is a uniform sample of
//     everything ever offered, not just the most recent.
//
// Record() takes a mutex, which is fine: it runs at most once per query
// and only for sampled-or-slow queries (rare by construction). All
// storage is preallocated in the constructor; the steady state never
// allocates. DumpJson() is for operators (CLI `metrics` command,
// serve-bench --metrics-dump) and allocates freely.
class SlowQueryLog {
 public:
  struct Options {
    size_t slow_capacity = 64;
    size_t sampled_capacity = 64;
    uint64_t slow_threshold_ns = 10'000'000;  // 10 ms
  };

  explicit SlowQueryLog(const Options& options);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Routes by latency: >= threshold goes to the slow ring, else to the
  // sampled reservoir. Never allocates.
  void Record(const QueryTraceRecord& record);

  uint64_t slow_threshold_ns() const { return options_.slow_threshold_ns; }
  uint64_t total_recorded() const;   // offered to Record(), both kinds
  size_t slow_captured() const;      // currently retained slow entries
  size_t sampled_captured() const;   // currently retained sampled entries

  // Stable plain-value copies for inspection/testing.
  std::vector<QueryTraceRecord> SlowEntries() const;
  std::vector<QueryTraceRecord> SampledEntries() const;

  // {"slow_threshold_ns":..., "slow":[...], "sampled":[...]}; see
  // docs/OBSERVABILITY.md for the record schema.
  std::string DumpJson() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::vector<QueryTraceRecord> slow_;     // ring, capacity slow_capacity
  size_t slow_next_ = 0;
  std::vector<QueryTraceRecord> sampled_;  // reservoir
  uint64_t sampled_seen_ = 0;
  uint64_t seq_ = 0;
  uint64_t rng_ = 0x9E3779B97F4A7C15ULL;
};

}  // namespace obs
}  // namespace spatial

#endif  // SPATIAL_OBS_SLOW_QUERY_LOG_H_
