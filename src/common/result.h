#ifndef SPATIAL_COMMON_RESULT_H_
#define SPATIAL_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace spatial {

// Result<T> holds either a value of type T or a non-OK Status.
// A minimal StatusOr analogue; accessing value() on an error aborts.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    SPATIAL_DCHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    SPATIAL_CHECK(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    SPATIAL_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    SPATIAL_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Evaluate an expression producing Result<T>; on error, propagate the Status;
// otherwise bind the value to `lhs`.
#define SPATIAL_ASSIGN_OR_RETURN(lhs, expr)                \
  SPATIAL_ASSIGN_OR_RETURN_IMPL_(                          \
      SPATIAL_RESULT_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define SPATIAL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define SPATIAL_RESULT_CONCAT_(a, b) SPATIAL_RESULT_CONCAT_IMPL_(a, b)
#define SPATIAL_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace spatial

#endif  // SPATIAL_COMMON_RESULT_H_
