#ifndef SPATIAL_COMMON_RNG_H_
#define SPATIAL_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace spatial {

// Deterministic, seedable pseudo-random number generator
// (xoshiro256** seeded via splitmix64). All dataset generators and query
// workloads draw from this type so every experiment is reproducible from a
// single 64-bit seed printed by the experiment binary.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value (xoshiro256**).
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SPATIAL_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    SPATIAL_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const uint64_t r = Next64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SPATIAL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Standard normal variate (Marsaglia polar method).
  double NextGaussian() {
    if (have_cached_gaussian_) {
      have_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    have_cached_gaussian_ = true;
    return u * factor;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace spatial

#endif  // SPATIAL_COMMON_RNG_H_
