#ifndef SPATIAL_COMMON_STATS_H_
#define SPATIAL_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace spatial {

// Streaming aggregate over a sequence of samples (Welford's algorithm for
// a numerically stable variance). Used by the experiment harness to report
// mean / min / max / stddev of per-query counters.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  double variance() const;
  double stddev() const;
  double sum() const { return count_ == 0 ? 0.0 : mean_ * count_; }

  // Merge another aggregate into this one (parallel-friendly combine).
  void Merge(const RunningStat& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentile over a retained sample vector. Not streaming; intended
// for experiment-sized sample counts (<= a few million doubles).
class Percentiles {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }

  // q in [0, 1]; nearest-rank method. Returns 0 for an empty sample.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace spatial

#endif  // SPATIAL_COMMON_STATS_H_
