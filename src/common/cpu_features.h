#ifndef SPATIAL_COMMON_CPU_FEATURES_H_
#define SPATIAL_COMMON_CPU_FEATURES_H_

#include <optional>

namespace spatial {

// The instruction-set tiers the SoA distance kernels are specialized for
// (see src/geom/metrics_simd.h and docs/PERF.md). Ordered: a CPU that
// supports a tier supports every lower one, so "best" and "clamp" are
// simple integer comparisons.
enum class KernelIsa : int {
  kScalar = 0,  // portable C++, every platform
  kSse2 = 1,    // 2 doubles/vector; baseline on x86-64
  kAvx2 = 2,    // 4 doubles/vector; Haswell (2013) and later
};

// Lowercase name used by SPATIAL_FORCE_KERNEL and in reports:
// "scalar", "sse2", "avx2".
const char* KernelIsaName(KernelIsa isa);

// Parses a KernelIsaName back; returns nullopt for anything else.
std::optional<KernelIsa> ParseKernelIsa(const char* name);

// True iff the *CPU executing right now* can run the tier. Scalar is
// always supported; on non-x86 platforms nothing else is. Whether the
// build actually contains kernels for the tier is a separate question
// answered by the kernel registry (SoaKernelBuildSupports).
bool CpuSupportsKernelIsa(KernelIsa isa);

// Highest tier CpuSupportsKernelIsa admits. Probed once, then cached.
KernelIsa BestCpuKernelIsa();

// The SPATIAL_FORCE_KERNEL environment override, parsed: nullopt when the
// variable is unset or names no known tier. The dispatch table clamps the
// forced tier to what the CPU and the build support, so forcing "avx2" on
// an SSE2-only host degrades safely instead of faulting (tests force every
// tier unconditionally and must pass everywhere).
std::optional<KernelIsa> ForcedKernelIsa();

}  // namespace spatial

#endif  // SPATIAL_COMMON_CPU_FEATURES_H_
