#ifndef SPATIAL_COMMON_ALLOC_TRACKER_H_
#define SPATIAL_COMMON_ALLOC_TRACKER_H_

#include <cstdint>

namespace spatial {

// Heap-allocation counting for the zero-allocation assertions (docs/PERF.md
// and bench E15).
//
// Linking the `spatial_alloc_tracker` library replaces the global operator
// new/delete with counting forwarders that bump a thread-local counter and
// delegate to malloc/free. Binaries that do not link the library are
// completely unaffected — which is why the tracker is its own library
// rather than part of spatial_common: only the allocation test and the E15
// bench opt in.
//
// Usage (single thread):
//   const AllocCounts before = ThreadAllocCounts();
//   ... code under test ...
//   const AllocCounts delta = ThreadAllocCounts() - before;
//   EXPECT_EQ(delta.allocations, 0u);
struct AllocCounts {
  uint64_t allocations = 0;  // number of operator-new calls
  uint64_t bytes = 0;        // total bytes requested

  friend AllocCounts operator-(const AllocCounts& a, const AllocCounts& b) {
    return AllocCounts{a.allocations - b.allocations, a.bytes - b.bytes};
  }
};

// Counters of the calling thread. Deallocations are not tracked: steady
// state is defined by allocation count alone.
AllocCounts ThreadAllocCounts();

}  // namespace spatial

#endif  // SPATIAL_COMMON_ALLOC_TRACKER_H_
