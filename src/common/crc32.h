#ifndef SPATIAL_COMMON_CRC32_H_
#define SPATIAL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace spatial {

// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum that guards WAL
// records and the superblock. A plain byte-at-a-time table implementation:
// the WAL appends tens of bytes per record, so a slicing-by-8 variant would
// be indistinguishable in any profile while tripling the code.
//
// `Crc32(data, n)` computes the checksum of a buffer; `Crc32(data, n, seed)`
// continues a running checksum, so multi-part payloads can be summed without
// concatenation.
namespace crc32_internal {

inline const uint32_t* Table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const uint32_t* table = crc32_internal::Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace spatial

#endif  // SPATIAL_COMMON_CRC32_H_
