#include "common/alloc_tracker.h"

#include <cstddef>
#include <cstdlib>
#include <new>

// Counting replacements for the global allocation functions. Defined in the
// same translation unit as ThreadAllocCounts() so that any binary calling
// it pulls these replacements into its link; see alloc_tracker.h.

namespace spatial {
namespace {

thread_local AllocCounts tls_counts;

void* CountedAlloc(std::size_t size, std::size_t align) noexcept {
  ++tls_counts.allocations;
  tls_counts.bytes += size;
  if (size == 0) size = 1;
  if (align <= alignof(std::max_align_t)) return std::malloc(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

void* CountedAllocOrThrow(std::size_t size, std::size_t align) {
  void* p = CountedAlloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

AllocCounts ThreadAllocCounts() { return tls_counts; }

}  // namespace spatial

void* operator new(std::size_t size) {
  return spatial::CountedAllocOrThrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return spatial::CountedAllocOrThrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return spatial::CountedAllocOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return spatial::CountedAllocOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return spatial::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return spatial::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return spatial::CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return spatial::CountedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
