#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace spatial {

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kSse2:
      return "sse2";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<KernelIsa> ParseKernelIsa(const char* name) {
  if (name == nullptr) return std::nullopt;
  if (std::strcmp(name, "scalar") == 0) return KernelIsa::kScalar;
  if (std::strcmp(name, "sse2") == 0) return KernelIsa::kSse2;
  if (std::strcmp(name, "avx2") == 0) return KernelIsa::kAvx2;
  return std::nullopt;
}

namespace {

KernelIsa ProbeBestCpuIsa() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads CPUID (and XCR0 for AVX tiers, so an AVX2
  // CPU under a no-AVX OS correctly reports unsupported).
  if (__builtin_cpu_supports("avx2")) return KernelIsa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return KernelIsa::kSse2;
  return KernelIsa::kScalar;
#else
  return KernelIsa::kScalar;
#endif
}

}  // namespace

KernelIsa BestCpuKernelIsa() {
  static const KernelIsa best = ProbeBestCpuIsa();
  return best;
}

bool CpuSupportsKernelIsa(KernelIsa isa) {
  return static_cast<int>(isa) <= static_cast<int>(BestCpuKernelIsa());
}

std::optional<KernelIsa> ForcedKernelIsa() {
  return ParseKernelIsa(std::getenv("SPATIAL_FORCE_KERNEL"));
}

}  // namespace spatial
