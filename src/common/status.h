#ifndef SPATIAL_COMMON_STATUS_H_
#define SPATIAL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace spatial {

// Error model: the library does not throw exceptions. Fallible operations
// return Status (or Result<T>, see result.h). Inspired by the RocksDB /
// Abseil Status idiom.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kResourceExhausted,
    kOutOfRange,
    kAlreadyExists,
    kInternal,
    // Admission control shed the request: the server's pending-request
    // budget was full (net/server.h). Retry later; nothing was executed.
    kOverloaded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status Overloaded(std::string_view msg) {
    return Status(Code::kOverloaded, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  // Human-readable "CODE: message" string, e.g. "NotFound: page 17".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(CodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kCorruption:
        return "Corruption";
      case Code::kResourceExhausted:
        return "ResourceExhausted";
      case Code::kOutOfRange:
        return "OutOfRange";
      case Code::kAlreadyExists:
        return "AlreadyExists";
      case Code::kInternal:
        return "Internal";
      case Code::kOverloaded:
        return "Overloaded";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

// Propagate a non-OK Status to the caller.
#define SPATIAL_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::spatial::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                  \
  } while (0)

}  // namespace spatial

#endif  // SPATIAL_COMMON_STATUS_H_
