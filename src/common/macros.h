#ifndef SPATIAL_COMMON_MACROS_H_
#define SPATIAL_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Project-wide assertion macros.
//
// SPATIAL_CHECK(cond)   - always-on invariant check; aborts with location.
// SPATIAL_DCHECK(cond)  - debug-only check, compiled out in NDEBUG builds.
//
// Following the project error model (see DESIGN.md §5), CHECK/DCHECK are for
// programming errors only; anticipated runtime failures return Status.

#define SPATIAL_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__,   \
                   __LINE__);                                                \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define SPATIAL_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define SPATIAL_DCHECK(cond) SPATIAL_CHECK(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SPATIAL_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define SPATIAL_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define SPATIAL_PREDICT_TRUE(x) (x)
#define SPATIAL_PREDICT_FALSE(x) (x)
#endif

#endif  // SPATIAL_COMMON_MACROS_H_
