#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace spatial {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::Quantile(double q) const {
  SPATIAL_DCHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const size_t n = samples_.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  return samples_[rank];
}

}  // namespace spatial
