#ifndef SPATIAL_SNAPSHOT_EPOCH_H_
#define SPATIAL_SNAPSHOT_EPOCH_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "snapshot/snapshot.h"

namespace spatial {

// Publication point between the single writer and N reader threads, plus
// the pin registry that epoch-based reclamation consults.
//
// Every reader owns a slot (RegisterReader). Around each query it Pins the
// current snapshot — which both hands it a consistent tree version and
// blocks reclamation of any page that version can reach — and Unpins when
// done. The writer Publishes a new snapshot after each applied batch and,
// at checkpoint, asks MinPinnedEpoch() for the reclamation horizon: a page
// retired in epoch E may be freed once E < MinPinnedEpoch() (no active
// pin, and no future pin — Pin only ever returns the current snapshot,
// whose epoch is higher still).
//
// Everything is guarded by one mutex. A lock-free seqlock was considered
// and rejected: the pin/unpin pair costs one uncontended lock each way,
// which is noise next to the request-queue mutex every query already
// crosses, and the mutex keeps the pin registry trivially race-free (see
// docs/DURABILITY.md).
class SnapshotManager {
 public:
  explicit SnapshotManager(uint32_t max_readers = 64)
      : pins_(max_readers, kUnpinned), used_(max_readers, false) {}

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // Writer side ------------------------------------------------------------

  void Publish(const TreeSnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = snap;
  }

  TreeSnapshot Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Smallest epoch any reader currently has pinned; the current snapshot's
  // epoch when nothing is pinned (nothing older can ever be pinned again).
  uint64_t MinPinnedEpoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t min_epoch = current_.epoch;
    for (const uint64_t pin : pins_) {
      if (pin != kUnpinned && pin < min_epoch) min_epoch = pin;
    }
    return min_epoch;
  }

  // Reader side ------------------------------------------------------------

  Result<uint32_t> RegisterReader() {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t i = 0; i < pins_.size(); ++i) {
      if (!used_[i]) {
        used_[i] = true;
        pins_[i] = kUnpinned;
        return i;
      }
    }
    return Status::ResourceExhausted("snapshot: no free reader slots");
  }

  void ReleaseReader(uint32_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    pins_[slot] = kUnpinned;
    used_[slot] = false;
  }

  // Pins and returns the current snapshot for this reader slot. Nested
  // pins are a bug (the slot is per-thread, one query at a time).
  TreeSnapshot Pin(uint32_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    pins_[slot] = current_.epoch;
    return current_;
  }

  void Unpin(uint32_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    pins_[slot] = kUnpinned;
  }

 private:
  static constexpr uint64_t kUnpinned = ~uint64_t{0};

  mutable std::mutex mu_;
  TreeSnapshot current_;
  std::vector<uint64_t> pins_;
  std::vector<bool> used_;
};

}  // namespace spatial

#endif  // SPATIAL_SNAPSHOT_EPOCH_H_
