#ifndef SPATIAL_SNAPSHOT_VERSION_TABLE_H_
#define SPATIAL_SNAPSHOT_VERSION_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "storage/cow.h"

namespace spatial {

// The CowPolicy implementation behind serving mode: tracks which pages are
// "fresh" (allocated since the last published snapshot, hence invisible to
// every reader and mutable in place) and which are "retired" (dropped from
// the writer's tree version but possibly still reachable from published
// snapshots).
//
// Lifecycle per write batch:
//   1. writer mutates the tree; the R-tree calls NeedsShadow /
//      OnPageAllocated / OnPageRetired through the CowPolicy interface,
//   2. writer publishes the new snapshot under epoch E+1 and calls
//      BeginEpoch(E+1) — fresh pages become reachable, so the fresh set is
//      cleared; retired pages recorded during the batch were tagged E (the
//      last epoch whose snapshot could reference them),
//   3. at checkpoint, ReclaimUpTo(horizon) frees every retired page whose
//      tag is below the horizon (min pinned epoch — see
//      SnapshotManager::MinPinnedEpoch; checkpoint additionally guarantees
//      the durable superblock no longer references them).
//
// Retire order is epoch order (tags are appended monotonically), so the
// deque is scanned from the front and reclamation is O(freed).
//
// Owned and called by the single writer thread only — no locking.
class PageVersionTable final : public CowPolicy {
 public:
  bool NeedsShadow(PageId id) const override {
    return fresh_.find(id) == fresh_.end();
  }

  void OnPageAllocated(PageId id) override { fresh_.insert(id); }

  void OnPageRetired(PageId id) override {
    // A fresh page that retires within its own batch was never visible to
    // anyone; the tree frees it immediately instead of retiring it, so a
    // retired page is by definition non-fresh. Keep the erase anyway —
    // it makes the invariant local rather than contractual.
    fresh_.erase(id);
    retired_.push_back(Retired{id, current_epoch_});
  }

  // The writer published the snapshot for `epoch`; everything allocated
  // before this point is now reachable by readers.
  void BeginEpoch(uint64_t epoch) {
    current_epoch_ = epoch;
    fresh_.clear();
  }

  // Frees every retired page tagged with an epoch < `horizon` by calling
  // `free_page`. Returns the number of pages freed.
  uint64_t ReclaimUpTo(uint64_t horizon,
                       const std::function<void(PageId)>& free_page) {
    uint64_t freed = 0;
    while (!retired_.empty() && retired_.front().epoch < horizon) {
      free_page(retired_.front().id);
      retired_.pop_front();
      ++freed;
    }
    return freed;
  }

  uint64_t current_epoch() const { return current_epoch_; }
  size_t fresh_count() const { return fresh_.size(); }
  size_t retired_count() const { return retired_.size(); }

 private:
  struct Retired {
    PageId id;
    uint64_t epoch;  // last published epoch whose snapshot may reference id
  };

  uint64_t current_epoch_ = 0;
  std::unordered_set<PageId> fresh_;
  std::deque<Retired> retired_;
};

}  // namespace spatial

#endif  // SPATIAL_SNAPSHOT_VERSION_TABLE_H_
