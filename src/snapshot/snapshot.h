#ifndef SPATIAL_SNAPSHOT_SNAPSHOT_H_
#define SPATIAL_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>

#include "storage/disk.h"

namespace spatial {

// An immutable, consistent view of the serving tree, published by the
// writer after each applied batch. Because the writer never mutates a page
// reachable from a published root (copy-on-write path copying), the triple
// (root_page, root_level, size) alone pins an entire tree version: readers
// traverse from root_page and, by construction, only ever reach pages
// whose bytes are frozen.
//
// `reclaim_gen` increments whenever a checkpoint actually frees retired
// pages back to the allocator. A reader that still holds buffer-pool
// frames from an older generation must drop them before using this
// snapshot — a freed page id can be recycled for new contents, and a
// cached stale image would otherwise survive the swap (the disk itself is
// coherent; the reader's private cache is what must be invalidated).
struct TreeSnapshot {
  PageId root_page = kInvalidPageId;
  uint16_t root_level = 0;
  uint64_t size = 0;
  uint64_t epoch = 0;        // publishing epoch; pin key for reclamation
  uint64_t lsn = 0;          // last WAL lsn folded into this version
  uint64_t reclaim_gen = 0;  // bumps when page ids may have been recycled
};

}  // namespace spatial

#endif  // SPATIAL_SNAPSHOT_SNAPSHOT_H_
