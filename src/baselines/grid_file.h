#ifndef SPATIAL_BASELINES_GRID_FILE_H_
#define SPATIAL_BASELINES_GRID_FILE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

// Counters of one grid k-NN query.
struct GridQueryStats {
  uint64_t cells_examined = 0;
  uint64_t objects_examined = 0;
  uint64_t shells_expanded = 0;

  void Reset() { *this = GridQueryStats(); }
};

// A uniform in-memory grid index, the classic fixed-partition alternative
// to the R-tree. k-NN proceeds by expanding Chebyshev shells of cells
// around the query's cell until the remaining shells provably cannot
// improve the k-th candidate.
//
// Works for any dimension but is practical only for small D (the shell
// volume grows as r^(D-1)).
//
// Exactness caveat: objects are binned by their MBR *centers*, so the shell
// stopping bound is exact only for point-like (degenerate) MBRs. Extended
// objects may be returned with center-based approximation.
template <int D>
class GridFile {
 public:
  // Objects are indexed by their MBR centers. cells_per_dim >= 1.
  GridFile(std::vector<Entry<D>> objects, uint32_t cells_per_dim);

  Result<std::vector<Neighbor>> Knn(const Point<D>& query, uint32_t k,
                                    GridQueryStats* stats) const;

  uint64_t num_cells() const;
  const Rect<D>& bounds() const { return bounds_; }
  size_t size() const { return objects_.size(); }

 private:
  size_t CellIndex(const int32_t (&cell)[D]) const;
  void CellOf(const Point<D>& p, int32_t (&cell)[D]) const;
  Rect<D> CellRect(const int32_t (&cell)[D]) const;

  // Visits every cell at Chebyshev distance exactly `radius` from `center`,
  // scanning its objects into `buffer`.
  void ScanShell(const Point<D>& query, const int32_t (&center)[D],
                 int32_t radius, NeighborBuffer* buffer,
                 GridQueryStats* stats) const;

  std::vector<Entry<D>> objects_;
  uint32_t cells_per_dim_;
  Rect<D> bounds_;
  double cell_width_[D];
  // cell -> indices into objects_.
  std::vector<std::vector<uint32_t>> cells_;
};

extern template class GridFile<2>;
extern template class GridFile<3>;

}  // namespace spatial

#endif  // SPATIAL_BASELINES_GRID_FILE_H_
