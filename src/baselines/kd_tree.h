#ifndef SPATIAL_BASELINES_KD_TREE_H_
#define SPATIAL_BASELINES_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "geom/point.h"
#include "rtree/entry.h"

namespace spatial {

struct KdQueryStats {
  uint64_t nodes_visited = 0;
  uint64_t distance_computations = 0;

  void Reset() { *this = KdQueryStats(); }
};

// In-memory kd-tree with the Friedman–Bentley–Finkel nearest-neighbor
// search — the algorithm the SIGMOD'95 paper adapts to R-trees. Serves as
// the main-memory comparator in experiment E8: it shows what the
// branch-and-bound idea achieves without paging, and conversely what the
// R-tree adds (secondary-storage residency, extended objects, updates).
//
// Objects are indexed by their MBR centers, so the search is exact for
// point-like (degenerate) MBRs; this matches the NN experiments, which use
// point data.
template <int D>
class KdTree {
 public:
  // Builds a balanced tree (median splits on the widest-spread axis).
  explicit KdTree(std::vector<Entry<D>> objects);

  // The k objects nearest to `query`; fewer iff size() < k.
  Result<std::vector<Neighbor>> Knn(const Point<D>& query, uint32_t k,
                                    KdQueryStats* stats) const;

  size_t size() const { return nodes_.size(); }
  int height() const;

 private:
  struct Node {
    Point<D> point;
    uint64_t id = 0;
    int axis = 0;
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t Build(std::vector<Node>* scratch, int32_t lo, int32_t hi);
  void Search(int32_t node_idx, const Point<D>& query,
              NeighborBuffer* buffer, KdQueryStats* stats) const;
  int HeightOf(int32_t node_idx) const;

  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

extern template class KdTree<2>;
extern template class KdTree<3>;

}  // namespace spatial

#endif  // SPATIAL_BASELINES_KD_TREE_H_
