#ifndef SPATIAL_BASELINES_LINEAR_SCAN_H_
#define SPATIAL_BASELINES_LINEAR_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/entry.h"

namespace spatial {

// Exact k-NN by exhaustive scan. Serves as ground truth for every property
// test and as the trivial baseline of experiment E8. `stats` may be null.
template <int D>
std::vector<Neighbor> LinearScanKnn(const std::vector<Entry<D>>& objects,
                                    const Point<D>& query, uint32_t k,
                                    QueryStats* stats);

// Page cost a scan would incur if the objects were packed densely into
// pages of the given size (E8 reports this next to the R-tree page counts).
template <int D>
uint64_t LinearScanPageCost(uint64_t num_objects, uint32_t page_size);

extern template std::vector<Neighbor> LinearScanKnn<2>(
    const std::vector<Entry<2>>&, const Point<2>&, uint32_t, QueryStats*);
extern template std::vector<Neighbor> LinearScanKnn<3>(
    const std::vector<Entry<3>>&, const Point<3>&, uint32_t, QueryStats*);
extern template std::vector<Neighbor> LinearScanKnn<4>(
    const std::vector<Entry<4>>&, const Point<4>&, uint32_t, QueryStats*);
extern template uint64_t LinearScanPageCost<2>(uint64_t, uint32_t);
extern template uint64_t LinearScanPageCost<3>(uint64_t, uint32_t);
extern template uint64_t LinearScanPageCost<4>(uint64_t, uint32_t);

}  // namespace spatial

#endif  // SPATIAL_BASELINES_LINEAR_SCAN_H_
