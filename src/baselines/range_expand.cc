#include "baselines/range_expand.h"

#include <algorithm>
#include <cmath>

#include "geom/metrics.h"

namespace spatial {

template <int D>
Result<std::vector<Neighbor>> RangeExpandKnn(const RTree<D>& tree,
                                             const Point<D>& query,
                                             uint32_t k,
                                             double initial_radius,
                                             QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (tree.empty()) return std::vector<Neighbor>{};

  double radius = initial_radius;
  if (radius <= 0.0) {
    // Expected radius of a ball holding ~k objects under uniform density.
    SPATIAL_ASSIGN_OR_RETURN(Rect<D> bounds, tree.Bounds());
    const double volume = std::max(bounds.Area(), 1e-12);
    const double per_object = volume / static_cast<double>(tree.size());
    radius = std::pow(per_object * static_cast<double>(k),
                      1.0 / static_cast<double>(D));
    radius = std::max(radius, 1e-12);
  }

  const uint64_t fetches_before = tree.pool()->stats().logical_fetches;
  std::vector<Entry<D>> hits;
  for (;;) {
    Rect<D> window;
    for (int i = 0; i < D; ++i) {
      window.lo[i] = query[i] - radius;
      window.hi[i] = query[i] + radius;
    }
    hits.clear();
    SPATIAL_RETURN_IF_ERROR(tree.Search(window, &hits));

    // Candidates strictly within the radius *ball* are final: any object
    // outside the window is farther than `radius`.
    NeighborBuffer buffer(k);
    const double radius_sq = radius * radius;
    uint64_t within = 0;
    for (const Entry<D>& e : hits) {
      const double dist_sq = ObjectDistSq(query, e.mbr);
      if (stats != nullptr) ++stats->distance_computations;
      if (dist_sq <= radius_sq) ++within;
      buffer.Offer(e.id, dist_sq);
    }
    if (stats != nullptr) stats->objects_examined += hits.size();

    const bool have_all = within >= k || hits.size() >= tree.size();
    if (have_all && buffer.full() && buffer.WorstDistSq() <= radius_sq) {
      if (stats != nullptr) {
        stats->nodes_visited +=
            tree.pool()->stats().logical_fetches - fetches_before;
      }
      return buffer.TakeSorted();
    }
    if (hits.size() >= tree.size()) {
      // Fewer than k objects exist; the scan of everything is the answer.
      if (stats != nullptr) {
        stats->nodes_visited +=
            tree.pool()->stats().logical_fetches - fetches_before;
      }
      return buffer.TakeSorted();
    }
    radius *= 2.0;
  }
}

template Result<std::vector<Neighbor>> RangeExpandKnn<2>(const RTree<2>&,
                                                         const Point<2>&,
                                                         uint32_t, double,
                                                         QueryStats*);
template Result<std::vector<Neighbor>> RangeExpandKnn<3>(const RTree<3>&,
                                                         const Point<3>&,
                                                         uint32_t, double,
                                                         QueryStats*);
template Result<std::vector<Neighbor>> RangeExpandKnn<4>(const RTree<4>&,
                                                         const Point<4>&,
                                                         uint32_t, double,
                                                         QueryStats*);

}  // namespace spatial
