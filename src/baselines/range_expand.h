#ifndef SPATIAL_BASELINES_RANGE_EXPAND_H_
#define SPATIAL_BASELINES_RANGE_EXPAND_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// The "obvious" R-tree k-NN the paper argues against: run window queries
// with geometrically growing radius until the window provably contains the
// k nearest objects. Re-reads the top of the tree on every expansion, which
// is exactly the redundancy the branch-and-bound algorithm eliminates.
//
// `initial_radius` <= 0 selects an automatic guess from the data density.
// Page accesses are accumulated into stats->nodes_visited (measured via the
// buffer pool's logical-fetch counter).
template <int D>
Result<std::vector<Neighbor>> RangeExpandKnn(const RTree<D>& tree,
                                             const Point<D>& query,
                                             uint32_t k,
                                             double initial_radius,
                                             QueryStats* stats);

extern template Result<std::vector<Neighbor>> RangeExpandKnn<2>(
    const RTree<2>&, const Point<2>&, uint32_t, double, QueryStats*);
extern template Result<std::vector<Neighbor>> RangeExpandKnn<3>(
    const RTree<3>&, const Point<3>&, uint32_t, double, QueryStats*);
extern template Result<std::vector<Neighbor>> RangeExpandKnn<4>(
    const RTree<4>&, const Point<4>&, uint32_t, double, QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_BASELINES_RANGE_EXPAND_H_
