#include "baselines/grid_file.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "geom/metrics.h"

namespace spatial {

template <int D>
GridFile<D>::GridFile(std::vector<Entry<D>> objects, uint32_t cells_per_dim)
    : objects_(std::move(objects)), cells_per_dim_(cells_per_dim) {
  SPATIAL_CHECK(cells_per_dim_ >= 1);
  bounds_ = Rect<D>::Empty();
  for (const Entry<D>& e : objects_) bounds_.ExpandToInclude(e.mbr);
  if (objects_.empty()) {
    // Arbitrary unit bounds keep the arithmetic well-defined.
    for (int i = 0; i < D; ++i) {
      bounds_.lo[i] = 0.0;
      bounds_.hi[i] = 1.0;
    }
  }
  for (int i = 0; i < D; ++i) {
    double width = bounds_.hi[i] - bounds_.lo[i];
    if (width <= 0.0) width = 1.0;
    cell_width_[i] = width / static_cast<double>(cells_per_dim_);
  }
  cells_.resize(num_cells());
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    int32_t cell[D];
    CellOf(objects_[i].mbr.Center(), cell);
    cells_[CellIndex(cell)].push_back(i);
  }
}

template <int D>
uint64_t GridFile<D>::num_cells() const {
  uint64_t n = 1;
  for (int i = 0; i < D; ++i) n *= cells_per_dim_;
  return n;
}

template <int D>
size_t GridFile<D>::CellIndex(const int32_t (&cell)[D]) const {
  size_t index = 0;
  for (int i = 0; i < D; ++i) {
    SPATIAL_DCHECK(cell[i] >= 0 &&
                   cell[i] < static_cast<int32_t>(cells_per_dim_));
    index = index * cells_per_dim_ + static_cast<size_t>(cell[i]);
  }
  return index;
}

template <int D>
void GridFile<D>::CellOf(const Point<D>& p, int32_t (&cell)[D]) const {
  for (int i = 0; i < D; ++i) {
    const double offset = (p[i] - bounds_.lo[i]) / cell_width_[i];
    int32_t c = static_cast<int32_t>(std::floor(offset));
    c = std::clamp<int32_t>(c, 0, static_cast<int32_t>(cells_per_dim_) - 1);
    cell[i] = c;
  }
}

template <int D>
Rect<D> GridFile<D>::CellRect(const int32_t (&cell)[D]) const {
  Rect<D> r;
  for (int i = 0; i < D; ++i) {
    r.lo[i] = bounds_.lo[i] + cell[i] * cell_width_[i];
    r.hi[i] = r.lo[i] + cell_width_[i];
  }
  return r;
}

template <int D>
void GridFile<D>::ScanShell(const Point<D>& query, const int32_t (&center)[D],
                            int32_t radius, NeighborBuffer* buffer,
                            GridQueryStats* stats) const {
  // Enumerate the box [center - radius, center + radius]^D clipped to the
  // grid and keep only cells on the shell (Chebyshev distance == radius).
  int32_t cell[D];
  int32_t lo[D], hi[D];
  for (int i = 0; i < D; ++i) {
    lo[i] = std::max<int32_t>(0, center[i] - radius);
    hi[i] = std::min<int32_t>(static_cast<int32_t>(cells_per_dim_) - 1,
                              center[i] + radius);
    if (lo[i] > hi[i]) return;  // box fully outside the grid
    cell[i] = lo[i];
  }
  for (;;) {
    int32_t chebyshev = 0;
    for (int i = 0; i < D; ++i) {
      chebyshev = std::max(chebyshev, std::abs(cell[i] - center[i]));
    }
    if (chebyshev == radius) {
      if (stats != nullptr) ++stats->cells_examined;
      for (const uint32_t idx : cells_[CellIndex(cell)]) {
        if (stats != nullptr) ++stats->objects_examined;
        buffer->Offer(objects_[idx].id,
                      ObjectDistSq(query, objects_[idx].mbr));
      }
    }
    // Odometer increment.
    int i = D - 1;
    for (; i >= 0; --i) {
      if (cell[i] < hi[i]) {
        ++cell[i];
        break;
      }
      cell[i] = lo[i];
    }
    if (i < 0) break;
  }
}

template <int D>
Result<std::vector<Neighbor>> GridFile<D>::Knn(const Point<D>& query,
                                               uint32_t k,
                                               GridQueryStats* stats) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  NeighborBuffer buffer(k);
  if (objects_.empty()) return buffer.TakeSorted();

  int32_t center[D];
  CellOf(query, center);

  const int32_t max_radius = static_cast<int32_t>(cells_per_dim_);
  for (int32_t radius = 0; radius <= max_radius; ++radius) {
    ScanShell(query, center, radius, &buffer, stats);
    if (stats != nullptr) ++stats->shells_expanded;
    if (!buffer.full()) continue;
    // Every unvisited cell lies outside the box of shells <= radius; the
    // distance from the query to that box's boundary lower-bounds every
    // remaining object. (If the query sits outside the box in some
    // dimension the bound degrades to zero in that term, which is safe.)
    int32_t cell_lo[D], cell_hi[D];
    for (int i = 0; i < D; ++i) {
      cell_lo[i] = center[i] - radius;
      cell_hi[i] = center[i] + radius;
    }
    double bound = std::numeric_limits<double>::infinity();
    for (int i = 0; i < D; ++i) {
      const double box_lo = bounds_.lo[i] + cell_lo[i] * cell_width_[i];
      const double box_hi = bounds_.lo[i] + (cell_hi[i] + 1) * cell_width_[i];
      bound = std::min(bound, query[i] - box_lo);
      bound = std::min(bound, box_hi - query[i]);
    }
    bound = std::max(bound, 0.0);
    if (bound * bound >= buffer.WorstDistSq()) break;
  }
  return buffer.TakeSorted();
}

template class GridFile<2>;
template class GridFile<3>;

}  // namespace spatial
