#include "baselines/linear_scan.h"

#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {

template <int D>
std::vector<Neighbor> LinearScanKnn(const std::vector<Entry<D>>& objects,
                                    const Point<D>& query, uint32_t k,
                                    QueryStats* stats) {
  NeighborBuffer buffer(k);
  for (const Entry<D>& e : objects) {
    buffer.Offer(e.id, ObjectDistSq(query, e.mbr));
  }
  if (stats != nullptr) {
    stats->objects_examined += objects.size();
    stats->distance_computations += objects.size();
  }
  return buffer.TakeSorted();
}

template <int D>
uint64_t LinearScanPageCost(uint64_t num_objects, uint32_t page_size) {
  const uint64_t per_page = NodeView<D>::MaxEntries(page_size);
  return (num_objects + per_page - 1) / per_page;
}

template std::vector<Neighbor> LinearScanKnn<2>(const std::vector<Entry<2>>&,
                                                const Point<2>&, uint32_t,
                                                QueryStats*);
template std::vector<Neighbor> LinearScanKnn<3>(const std::vector<Entry<3>>&,
                                                const Point<3>&, uint32_t,
                                                QueryStats*);
template std::vector<Neighbor> LinearScanKnn<4>(const std::vector<Entry<4>>&,
                                                const Point<4>&, uint32_t,
                                                QueryStats*);
template uint64_t LinearScanPageCost<2>(uint64_t, uint32_t);
template uint64_t LinearScanPageCost<3>(uint64_t, uint32_t);
template uint64_t LinearScanPageCost<4>(uint64_t, uint32_t);

}  // namespace spatial
