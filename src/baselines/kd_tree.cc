#include "baselines/kd_tree.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace spatial {

template <int D>
KdTree<D>::KdTree(std::vector<Entry<D>> objects) {
  std::vector<Node> scratch;
  scratch.reserve(objects.size());
  for (const Entry<D>& e : objects) {
    Node node;
    node.point = e.mbr.Center();
    node.id = e.id;
    scratch.push_back(node);
  }
  nodes_.reserve(scratch.size());
  if (!scratch.empty()) {
    root_ = Build(&scratch, 0, static_cast<int32_t>(scratch.size()));
  }
}

template <int D>
int32_t KdTree<D>::Build(std::vector<Node>* scratch, int32_t lo,
                         int32_t hi) {
  if (lo >= hi) return -1;
  // Split on the axis with the widest spread in this subrange.
  int axis = 0;
  double best_spread = -1.0;
  for (int dim = 0; dim < D; ++dim) {
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (int32_t i = lo; i < hi; ++i) {
      mn = std::min(mn, (*scratch)[i].point[dim]);
      mx = std::max(mx, (*scratch)[i].point[dim]);
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      axis = dim;
    }
  }
  const int32_t mid = lo + (hi - lo) / 2;
  std::nth_element(scratch->begin() + lo, scratch->begin() + mid,
                   scratch->begin() + hi,
                   [axis](const Node& a, const Node& b) {
                     return a.point[axis] < b.point[axis];
                   });
  Node node = (*scratch)[mid];
  node.axis = axis;
  const int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  // Children are built after the parent slot is reserved; indices into
  // nodes_ remain stable because the vector only grows.
  const int32_t left = Build(scratch, lo, mid);
  const int32_t right = Build(scratch, mid + 1, hi);
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  return idx;
}

template <int D>
Result<std::vector<Neighbor>> KdTree<D>::Knn(const Point<D>& query,
                                             uint32_t k,
                                             KdQueryStats* stats) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  NeighborBuffer buffer(k);
  if (root_ >= 0) Search(root_, query, &buffer, stats);
  return buffer.TakeSorted();
}

template <int D>
void KdTree<D>::Search(int32_t node_idx, const Point<D>& query,
                       NeighborBuffer* buffer, KdQueryStats* stats) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  if (stats != nullptr) {
    ++stats->nodes_visited;
    ++stats->distance_computations;
  }
  buffer->Offer(node.id, SquaredDistance(query, node.point));

  const double delta = query[node.axis] - node.point[node.axis];
  const int32_t near_child = delta <= 0.0 ? node.left : node.right;
  const int32_t far_child = delta <= 0.0 ? node.right : node.left;
  if (near_child >= 0) Search(near_child, query, buffer, stats);
  // The far half-space can only help if the splitting hyperplane is closer
  // than the current k-th nearest (the FBF "bounds-overlap-ball" test).
  if (far_child >= 0 && delta * delta <= buffer->WorstDistSq()) {
    Search(far_child, query, buffer, stats);
  }
}

template <int D>
int KdTree<D>::height() const {
  return HeightOf(root_);
}

template <int D>
int KdTree<D>::HeightOf(int32_t node_idx) const {
  if (node_idx < 0) return 0;
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  return 1 + std::max(HeightOf(node.left), HeightOf(node.right));
}

template class KdTree<2>;
template class KdTree<3>;

}  // namespace spatial
