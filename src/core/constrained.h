#ifndef SPATIAL_CORE_CONSTRAINED_H_
#define SPATIAL_CORE_CONSTRAINED_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/knn.h"

namespace spatial {

// Constrained (region-restricted) k-NN: the k objects nearest to `query`
// among those whose MBRs intersect `region` — "the 5 closest restaurants
// inside the currently visible map window". Combines the paper's
// branch-and-bound pruning with window pruning: a subtree is skipped when
// it cannot beat the k-th candidate *or* cannot intersect the region.
//
// All KnnOptions knobs apply. Returns fewer than k neighbors when the
// region holds fewer than k objects.
template <int D>
Result<std::vector<Neighbor>> ConstrainedKnnSearch(const RTree<D>& tree,
                                                   const Point<D>& query,
                                                   const Rect<D>& region,
                                                   const KnnOptions& options,
                                                   QueryStats* stats);

extern template Result<std::vector<Neighbor>> ConstrainedKnnSearch<2>(
    const RTree<2>&, const Point<2>&, const Rect<2>&, const KnnOptions&,
    QueryStats*);
extern template Result<std::vector<Neighbor>> ConstrainedKnnSearch<3>(
    const RTree<3>&, const Point<3>&, const Rect<3>&, const KnnOptions&,
    QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_CONSTRAINED_H_
