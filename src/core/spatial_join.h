#ifndef SPATIAL_CORE_SPATIAL_JOIN_H_
#define SPATIAL_CORE_SPATIAL_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rtree/rtree.h"

namespace spatial {

struct JoinStats {
  uint64_t pages_outer = 0;   // nodes of the first tree fetched
  uint64_t pages_inner = 0;   // nodes of the second tree fetched
  uint64_t node_pairs = 0;    // node pairs whose MBRs overlapped
  uint64_t comparisons = 0;   // entry-pair intersection tests
  uint64_t results = 0;

  void Reset() { *this = JoinStats(); }
};

// A pair of object ids whose MBRs intersect, (outer id, inner id).
using JoinPair = std::pair<uint64_t, uint64_t>;

// R-tree intersection join (synchronized traversal, Brinkhoff et al. 1993):
// descends both trees simultaneously, expanding only node pairs whose MBRs
// overlap. The natural companion operation of the NN search — both replace
// exhaustive enumeration with MBR-directed pruning.
//
// The trees may have different heights and may live on different buffer
// pools. Results are appended to `out` in unspecified order.
template <int D>
Status SpatialJoin(const RTree<D>& outer, const RTree<D>& inner,
                   std::vector<JoinPair>* out, JoinStats* stats);

// Exhaustive reference implementation for tests and small inputs.
template <int D>
std::vector<JoinPair> NestedLoopJoin(const std::vector<Entry<D>>& outer,
                                     const std::vector<Entry<D>>& inner);

extern template Status SpatialJoin<2>(const RTree<2>&, const RTree<2>&,
                                      std::vector<JoinPair>*, JoinStats*);
extern template Status SpatialJoin<3>(const RTree<3>&, const RTree<3>&,
                                      std::vector<JoinPair>*, JoinStats*);
extern template std::vector<JoinPair> NestedLoopJoin<2>(
    const std::vector<Entry<2>>&, const std::vector<Entry<2>>&);
extern template std::vector<JoinPair> NestedLoopJoin<3>(
    const std::vector<Entry<3>>&, const std::vector<Entry<3>>&);

}  // namespace spatial

#endif  // SPATIAL_CORE_SPATIAL_JOIN_H_
