#ifndef SPATIAL_CORE_GROUP_KNN_H_
#define SPATIAL_CORE_GROUP_KNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// Aggregate function combining the distances from one object to every
// query point of the group.
enum class AggregateFn {
  kSum,  // minimize total travel ("meeting point" semantics)
  kMax,  // minimize the worst member's distance (minimax)
};

const char* AggregateFnName(AggregateFn fn);

// One answer of a group (aggregate) nearest-neighbor query. Unlike
// Neighbor, the distance here is the *aggregate of plain (non-squared)
// Euclidean distances* to all group members.
struct GroupNeighbor {
  uint64_t id = 0;
  double aggregate_dist = 0.0;
};

// Group k-nearest-neighbor search (Papadias et al.'s GNN problem): find the
// k objects minimizing agg(dist(o, q_1), ..., dist(o, q_m)) for a group of
// query points — e.g. the restaurant minimizing the friends' total travel.
//
// The branch-and-bound machinery of the SIGMOD'95 search generalizes
// directly: agg of the per-query MINDISTs lower-bounds the aggregate
// distance of every object in a subtree (both kSum and kMax are monotone),
// so the same best-first pruning applies.
template <int D>
Result<std::vector<GroupNeighbor>> GroupKnnSearch(
    const RTree<D>& tree, const std::vector<Point<D>>& group, uint32_t k,
    AggregateFn aggregate, QueryStats* stats);

extern template Result<std::vector<GroupNeighbor>> GroupKnnSearch<2>(
    const RTree<2>&, const std::vector<Point<2>>&, uint32_t, AggregateFn,
    QueryStats*);
extern template Result<std::vector<GroupNeighbor>> GroupKnnSearch<3>(
    const RTree<3>&, const std::vector<Point<3>>&, uint32_t, AggregateFn,
    QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_GROUP_KNN_H_
