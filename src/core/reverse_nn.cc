#include "core/reverse_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/macros.h"
#include "core/knn.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {
namespace {

constexpr int kNumSectors = 6;
// Candidates kept per sector: 1 suffices for points in general position;
// a few extra make the sector lemma robust to distance ties on sector
// boundaries. Hard cap so adversarial duplicate-heavy inputs stay bounded.
constexpr int kSectorBase = 3;
constexpr int kSectorCap = 16;

struct Candidate {
  uint64_t id;
  Point2 location;
  double dist_sq;  // to the query point
};

int SectorOf(const Point2& q, const Point2& p) {
  const double angle = std::atan2(p[1] - q[1], p[0] - q[0]);  // [-pi, pi]
  int sector = static_cast<int>((angle + M_PI) / (M_PI / 3.0));
  if (sector >= kNumSectors) sector = kNumSectors - 1;  // angle == +pi
  if (sector < 0) sector = 0;
  return sector;
}

// Incremental best-first browse from q that retains object geometry
// (IncrementalKnn only exposes ids, and verification needs locations).
class BrowseQueue {
 public:
  BrowseQueue(const RTree<2>& tree, const Point2& query, QueryStats* stats)
      : tree_(tree), query_(query), stats_(stats) {
    if (!tree.empty()) {
      queue_.push(Item{0.0, false, tree.root_page(), Rect2::Empty()});
    }
  }

  // Next object in nondecreasing distance order; nullopt when exhausted.
  Result<std::optional<Candidate>> Next() {
    while (!queue_.empty()) {
      const Item item = queue_.top();
      queue_.pop();
      if (item.is_object) {
        return std::optional<Candidate>(
            Candidate{item.id, item.mbr.Center(), item.dist_sq});
      }
      SPATIAL_ASSIGN_OR_RETURN(
          PageHandle handle,
          tree_.pool()->Fetch(static_cast<PageId>(item.id)));
      NodeView<2> view(handle.data(), tree_.pool()->page_size());
      if (!view.has_valid_magic()) {
        return Status::Corruption("reverse nn: node page has bad magic");
      }
      if (stats_ != nullptr) {
        ++stats_->nodes_visited;
        if (view.is_leaf()) {
          ++stats_->leaf_nodes_visited;
        } else {
          ++stats_->internal_nodes_visited;
        }
      }
      const bool is_leaf = view.is_leaf();
      const std::vector<Entry<2>> entries = view.GetEntries();
      handle.Release();
      for (const Entry<2>& e : entries) {
        queue_.push(Item{MinDistSq(query_, e.mbr), is_leaf, e.id, e.mbr});
        if (stats_ != nullptr) ++stats_->distance_computations;
      }
    }
    return std::optional<Candidate>(std::nullopt);
  }

 private:
  struct Item {
    double dist_sq;
    bool is_object;
    uint64_t id;
    Rect2 mbr;

    friend bool operator<(const Item& a, const Item& b) {
      if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
      return a.is_object < b.is_object;
    }
  };

  const RTree<2>& tree_;
  Point2 query_;
  QueryStats* stats_;
  std::priority_queue<Item> queue_;
};

}  // namespace

template <>
Result<std::vector<Neighbor>> ReverseNnSearch<2>(const RTree<2>& tree,
                                                 const Point2& query,
                                                 QueryStats* stats) {
  std::vector<Neighbor> results;
  if (tree.empty()) return results;

  // Phase 1: sector-guided candidate generation by distance browsing.
  std::vector<Candidate> candidates;
  int kept[kNumSectors] = {};
  double third_dist[kNumSectors];
  for (double& d : third_dist) d = std::numeric_limits<double>::infinity();

  BrowseQueue browse(tree, query, stats);
  for (;;) {
    SPATIAL_ASSIGN_OR_RETURN(std::optional<Candidate> next, browse.Next());
    if (!next.has_value()) break;
    if (stats != nullptr) ++stats->objects_examined;
    if (next->dist_sq == 0.0) {
      // Coincides with q: an unconditional reverse nearest neighbor and
      // irrelevant to the sector bookkeeping.
      candidates.push_back(*next);
      continue;
    }
    const int sector = SectorOf(query, next->location);
    const bool accept =
        kept[sector] < kSectorBase ||
        (kept[sector] < kSectorCap &&
         next->dist_sq <= third_dist[sector] * (1.0 + 1e-12));
    if (accept) {
      candidates.push_back(*next);
      ++kept[sector];
      if (kept[sector] == kSectorBase) third_dist[sector] = next->dist_sq;
      continue;
    }
    // The browse order is nondecreasing in distance; once every sector is
    // saturated beyond its tie band, nothing farther can be a candidate.
    bool all_closed = true;
    for (int s = 0; s < kNumSectors; ++s) {
      if (kept[s] < kSectorBase) {
        all_closed = false;  // sector not yet saturated
      } else if (kept[s] < kSectorCap &&
                 next->dist_sq <= third_dist[s] * (1.0 + 1e-12)) {
        all_closed = false;  // still inside the sector's tie band
      }
    }
    if (all_closed) break;
  }

  // Phase 2: exact verification. o is a reverse NN iff its nearest *other*
  // object is no closer than q.
  for (const Candidate& candidate : candidates) {
    if (candidate.dist_sq == 0.0) {
      results.push_back(Neighbor{candidate.id, 0.0});
      continue;
    }
    KnnOptions knn;
    knn.k = 3;  // the candidate itself plus up to two others
    SPATIAL_ASSIGN_OR_RETURN(
        std::vector<Neighbor> around,
        KnnSearch<2>(tree, candidate.location, knn, stats));
    double nearest_other_sq = std::numeric_limits<double>::infinity();
    for (const Neighbor& n : around) {
      if (n.id == candidate.id) continue;
      nearest_other_sq = n.dist_sq;
      break;
    }
    if (candidate.dist_sq <= nearest_other_sq) {
      results.push_back(Neighbor{candidate.id, candidate.dist_sq});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.dist_sq < b.dist_sq;
            });
  return results;
}

}  // namespace spatial
