#include "core/closest_pairs.h"

#include <queue>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {
namespace {

template <int D>
struct PairItem {
  double dist_sq;
  bool outer_is_object;
  bool inner_is_object;
  uint64_t outer_id;  // object id or PageId
  uint64_t inner_id;
  Rect<D> outer_mbr;
  Rect<D> inner_mbr;

  // Min-heap on distance; fully resolved (object/object) pairs win ties so
  // results are emitted as early as possible.
  friend bool operator<(const PairItem& a, const PairItem& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
    const int a_resolved = a.outer_is_object + a.inner_is_object;
    const int b_resolved = b.outer_is_object + b.inner_is_object;
    return a_resolved < b_resolved;
  }
};

template <int D>
class ClosestPairsSearch {
 public:
  ClosestPairsSearch(const RTree<D>& outer, const RTree<D>& inner,
                     QueryStats* stats)
      : outer_(outer), inner_(inner), stats_(stats) {}

  Result<std::vector<ClosestPair>> Run(uint32_t k) {
    std::vector<ClosestPair> results;
    results.reserve(k);
    if (outer_.empty() || inner_.empty()) return results;

    SPATIAL_ASSIGN_OR_RETURN(Rect<D> outer_mbr, outer_.Bounds());
    SPATIAL_ASSIGN_OR_RETURN(Rect<D> inner_mbr, inner_.Bounds());
    Push(PairItem<D>{MinDistSq(outer_mbr, inner_mbr), false, false,
                     outer_.root_page(), inner_.root_page(), outer_mbr,
                     inner_mbr});

    while (!queue_.empty() && results.size() < k) {
      const PairItem<D> item = queue_.top();
      queue_.pop();
      if (stats_ != nullptr) ++stats_->heap_pops;

      if (item.outer_is_object && item.inner_is_object) {
        results.push_back(
            ClosestPair{item.outer_id, item.inner_id, item.dist_sq});
        continue;
      }
      // Expand one unresolved side: prefer the node side with the larger
      // area (classic heuristic; either choice is correct).
      bool expand_outer;
      if (item.outer_is_object) {
        expand_outer = false;
      } else if (item.inner_is_object) {
        expand_outer = true;
      } else {
        expand_outer = item.outer_mbr.Area() >= item.inner_mbr.Area();
      }
      SPATIAL_RETURN_IF_ERROR(Expand(item, expand_outer));
    }
    return results;
  }

 private:
  void Push(PairItem<D> item) {
    queue_.push(std::move(item));
    if (stats_ != nullptr) ++stats_->heap_pushes;
  }

  Status Expand(const PairItem<D>& item, bool expand_outer) {
    const RTree<D>& tree = expand_outer ? outer_ : inner_;
    const PageId node_id = static_cast<PageId>(
        expand_outer ? item.outer_id : item.inner_id);
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("closest pairs: node page has bad magic");
    }
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (view.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }
    const bool child_is_object = view.is_leaf();
    const std::vector<Entry<D>> entries = view.GetEntries();
    handle.Release();
    for (const Entry<D>& e : entries) {
      PairItem<D> next = item;
      if (expand_outer) {
        next.outer_is_object = child_is_object;
        next.outer_id = e.id;
        next.outer_mbr = e.mbr;
      } else {
        next.inner_is_object = child_is_object;
        next.inner_id = e.id;
        next.inner_mbr = e.mbr;
      }
      next.dist_sq = MinDistSq(next.outer_mbr, next.inner_mbr);
      if (stats_ != nullptr) ++stats_->distance_computations;
      Push(std::move(next));
    }
    return Status::OK();
  }

  const RTree<D>& outer_;
  const RTree<D>& inner_;
  QueryStats* stats_;
  std::priority_queue<PairItem<D>> queue_;
};

}  // namespace

template <int D>
Result<std::vector<ClosestPair>> ClosestPairs(const RTree<D>& outer,
                                              const RTree<D>& inner,
                                              uint32_t k, QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  ClosestPairsSearch<D> search(outer, inner, stats);
  return search.Run(k);
}

template Result<std::vector<ClosestPair>> ClosestPairs<2>(const RTree<2>&,
                                                          const RTree<2>&,
                                                          uint32_t,
                                                          QueryStats*);
template Result<std::vector<ClosestPair>> ClosestPairs<3>(const RTree<3>&,
                                                          const RTree<3>&,
                                                          uint32_t,
                                                          QueryStats*);

}  // namespace spatial
