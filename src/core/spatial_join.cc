#include "core/spatial_join.h"

#include "common/macros.h"
#include "core/scratch.h"
#include "geom/metrics_simd.h"
#include "rtree/node.h"

namespace spatial {
namespace {

template <int D>
struct JoinContext {
  const RTree<D>* outer;
  const RTree<D>* inner;
  std::vector<JoinPair>* out;
  JoinStats* stats;

  // Reused staging for the leaf x leaf stage: the inner leaf as SoA planes
  // plus one distance row, shared across every leaf pair of the join.
  AlignedArray<double> soa;
  AlignedArray<double> dist;
  AlignedArray<uint32_t> idx;
};

template <int D>
struct LoadedNode {
  uint16_t level = 0;
  std::vector<Entry<D>> entries;
};

template <int D>
Result<LoadedNode<D>> LoadNode(const RTree<D>* tree, PageId id,
                               uint64_t* page_counter) {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree->pool()->Fetch(id));
  NodeView<D> view(handle.data(), tree->pool()->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("join: node page has bad magic");
  }
  if (page_counter != nullptr) ++*page_counter;
  LoadedNode<D> node;
  node.level = view.level();
  node.entries = view.GetEntries();
  return node;
}

// Synchronized traversal. When the subtrees stand at different heights the
// taller one is descended until the levels align.
template <int D>
Status JoinNodes(JoinContext<D>* ctx, PageId outer_id, PageId inner_id) {
  SPATIAL_ASSIGN_OR_RETURN(
      LoadedNode<D> outer,
      LoadNode(ctx->outer, outer_id,
               ctx->stats ? &ctx->stats->pages_outer : nullptr));
  SPATIAL_ASSIGN_OR_RETURN(
      LoadedNode<D> inner,
      LoadNode(ctx->inner, inner_id,
               ctx->stats ? &ctx->stats->pages_inner : nullptr));
  if (ctx->stats != nullptr) ++ctx->stats->node_pairs;

  if (outer.level == 0 && inner.level == 0) {
    // Stage the inner leaf once as SoA planes and run the rect-rect
    // MINDIST kernel per outer entry: a zero gap is exactly MBR
    // intersection (touching boundaries included), so the pair test
    // becomes one branch-free vector pass per outer entry instead of
    // per-pair short-circuit compares.
    const uint32_t n = static_cast<uint32_t>(inner.entries.size());
    const size_t stride = SoaStride(n);
    double* planes = ctx->soa.EnsureCapacity(SoaDoubles(D, n));
    TransposeToSoaDispatched<D>(inner.entries.data(), n, planes, stride);
    const SoaBlock<D> soa{planes, stride, n};
    double* dist = ctx->dist.EnsureCapacity(SoaStride(n));
    uint32_t* idx = ctx->idx.EnsureCapacity(SoaStride(n));
    for (const Entry<D>& a : outer.entries) {
      MinDistSqBatchSoa(a.mbr, soa, dist);
      if (ctx->stats != nullptr) ctx->stats->comparisons += n;
      // The gap metric is never negative, so !(dist > 0) is exactly
      // dist == 0: the vector filter yields the intersecting pairs in the
      // same ascending order as the old per-element scan.
      const uint32_t hits = FilterNotAboveSoa<D>(dist, n, 0.0, idx);
      for (uint32_t j = 0; j < hits; ++j) {
        ctx->out->push_back({a.id, inner.entries[idx[j]].id});
      }
      if (ctx->stats != nullptr) ctx->stats->results += hits;
    }
    return Status::OK();
  }

  if (outer.level >= inner.level && outer.level > 0) {
    // Descend the outer side. Restrict to children overlapping the inner
    // node's tight MBR.
    Rect<D> inner_mbr = Rect<D>::Empty();
    for (const Entry<D>& b : inner.entries) inner_mbr.ExpandToInclude(b.mbr);
    for (const Entry<D>& a : outer.entries) {
      if (ctx->stats != nullptr) ++ctx->stats->comparisons;
      if (!a.mbr.Intersects(inner_mbr)) continue;
      SPATIAL_RETURN_IF_ERROR(
          JoinNodes(ctx, static_cast<PageId>(a.id), inner_id));
    }
    return Status::OK();
  }

  // Descend the inner side.
  Rect<D> outer_mbr = Rect<D>::Empty();
  for (const Entry<D>& a : outer.entries) outer_mbr.ExpandToInclude(a.mbr);
  for (const Entry<D>& b : inner.entries) {
    if (ctx->stats != nullptr) ++ctx->stats->comparisons;
    if (!b.mbr.Intersects(outer_mbr)) continue;
    SPATIAL_RETURN_IF_ERROR(
        JoinNodes(ctx, outer_id, static_cast<PageId>(b.id)));
  }
  return Status::OK();
}

}  // namespace

template <int D>
Status SpatialJoin(const RTree<D>& outer, const RTree<D>& inner,
                   std::vector<JoinPair>* out, JoinStats* stats) {
  SPATIAL_CHECK(out != nullptr);
  if (outer.empty() || inner.empty()) return Status::OK();
  JoinContext<D> ctx{&outer, &inner, out, stats, {}, {}, {}};
  return JoinNodes(&ctx, outer.root_page(), inner.root_page());
}

template <int D>
std::vector<JoinPair> NestedLoopJoin(const std::vector<Entry<D>>& outer,
                                     const std::vector<Entry<D>>& inner) {
  std::vector<JoinPair> out;
  for (const Entry<D>& a : outer) {
    for (const Entry<D>& b : inner) {
      if (a.mbr.Intersects(b.mbr)) out.push_back({a.id, b.id});
    }
  }
  return out;
}

template Status SpatialJoin<2>(const RTree<2>&, const RTree<2>&,
                               std::vector<JoinPair>*, JoinStats*);
template Status SpatialJoin<3>(const RTree<3>&, const RTree<3>&,
                               std::vector<JoinPair>*, JoinStats*);
template std::vector<JoinPair> NestedLoopJoin<2>(const std::vector<Entry<2>>&,
                                                 const std::vector<Entry<2>>&);
template std::vector<JoinPair> NestedLoopJoin<3>(const std::vector<Entry<3>>&,
                                                 const std::vector<Entry<3>>&);

}  // namespace spatial
