#include "core/spatial_join.h"

#include "common/macros.h"
#include "rtree/node.h"

namespace spatial {
namespace {

template <int D>
struct JoinContext {
  const RTree<D>* outer;
  const RTree<D>* inner;
  std::vector<JoinPair>* out;
  JoinStats* stats;
};

template <int D>
struct LoadedNode {
  uint16_t level = 0;
  std::vector<Entry<D>> entries;
};

template <int D>
Result<LoadedNode<D>> LoadNode(const RTree<D>* tree, PageId id,
                               uint64_t* page_counter) {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree->pool()->Fetch(id));
  NodeView<D> view(handle.data(), tree->pool()->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("join: node page has bad magic");
  }
  if (page_counter != nullptr) ++*page_counter;
  LoadedNode<D> node;
  node.level = view.level();
  node.entries = view.GetEntries();
  return node;
}

// Synchronized traversal. When the subtrees stand at different heights the
// taller one is descended until the levels align.
template <int D>
Status JoinNodes(JoinContext<D>* ctx, PageId outer_id, PageId inner_id) {
  SPATIAL_ASSIGN_OR_RETURN(
      LoadedNode<D> outer,
      LoadNode(ctx->outer, outer_id,
               ctx->stats ? &ctx->stats->pages_outer : nullptr));
  SPATIAL_ASSIGN_OR_RETURN(
      LoadedNode<D> inner,
      LoadNode(ctx->inner, inner_id,
               ctx->stats ? &ctx->stats->pages_inner : nullptr));
  if (ctx->stats != nullptr) ++ctx->stats->node_pairs;

  if (outer.level == 0 && inner.level == 0) {
    for (const Entry<D>& a : outer.entries) {
      for (const Entry<D>& b : inner.entries) {
        if (ctx->stats != nullptr) ++ctx->stats->comparisons;
        if (a.mbr.Intersects(b.mbr)) {
          ctx->out->push_back({a.id, b.id});
          if (ctx->stats != nullptr) ++ctx->stats->results;
        }
      }
    }
    return Status::OK();
  }

  if (outer.level >= inner.level && outer.level > 0) {
    // Descend the outer side. Restrict to children overlapping the inner
    // node's tight MBR.
    Rect<D> inner_mbr = Rect<D>::Empty();
    for (const Entry<D>& b : inner.entries) inner_mbr.ExpandToInclude(b.mbr);
    for (const Entry<D>& a : outer.entries) {
      if (ctx->stats != nullptr) ++ctx->stats->comparisons;
      if (!a.mbr.Intersects(inner_mbr)) continue;
      SPATIAL_RETURN_IF_ERROR(
          JoinNodes(ctx, static_cast<PageId>(a.id), inner_id));
    }
    return Status::OK();
  }

  // Descend the inner side.
  Rect<D> outer_mbr = Rect<D>::Empty();
  for (const Entry<D>& a : outer.entries) outer_mbr.ExpandToInclude(a.mbr);
  for (const Entry<D>& b : inner.entries) {
    if (ctx->stats != nullptr) ++ctx->stats->comparisons;
    if (!b.mbr.Intersects(outer_mbr)) continue;
    SPATIAL_RETURN_IF_ERROR(
        JoinNodes(ctx, outer_id, static_cast<PageId>(b.id)));
  }
  return Status::OK();
}

}  // namespace

template <int D>
Status SpatialJoin(const RTree<D>& outer, const RTree<D>& inner,
                   std::vector<JoinPair>* out, JoinStats* stats) {
  SPATIAL_CHECK(out != nullptr);
  if (outer.empty() || inner.empty()) return Status::OK();
  JoinContext<D> ctx{&outer, &inner, out, stats};
  return JoinNodes(&ctx, outer.root_page(), inner.root_page());
}

template <int D>
std::vector<JoinPair> NestedLoopJoin(const std::vector<Entry<D>>& outer,
                                     const std::vector<Entry<D>>& inner) {
  std::vector<JoinPair> out;
  for (const Entry<D>& a : outer) {
    for (const Entry<D>& b : inner) {
      if (a.mbr.Intersects(b.mbr)) out.push_back({a.id, b.id});
    }
  }
  return out;
}

template Status SpatialJoin<2>(const RTree<2>&, const RTree<2>&,
                               std::vector<JoinPair>*, JoinStats*);
template Status SpatialJoin<3>(const RTree<3>&, const RTree<3>&,
                               std::vector<JoinPair>*, JoinStats*);
template std::vector<JoinPair> NestedLoopJoin<2>(const std::vector<Entry<2>>&,
                                                 const std::vector<Entry<2>>&);
template std::vector<JoinPair> NestedLoopJoin<3>(const std::vector<Entry<3>>&,
                                                 const std::vector<Entry<3>>&);

}  // namespace spatial
