#include "core/skyline.h"

#include <algorithm>

#include "common/macros.h"
#include "core/geo_browse.h"
#include "core/node_access.h"
#include "geom/metrics_simd.h"

namespace spatial {
namespace {

template <int D>
Status NnSkylineImpl(const NodeAccessor<D>& access, PageId root_page,
                     bool empty, const Point<D>* sources, size_t num_sources,
                     QueryScratch<D>* scratch, std::vector<Entry<D>>* out,
                     QueryStats* stats) {
  SPATIAL_CHECK(scratch != nullptr && out != nullptr);
  if (num_sources < 1 || sources == nullptr) {
    return Status::InvalidArgument(
        "nn-skyline needs at least one source point");
  }
  out->clear();
  if (empty) return Status::OK();

  // Skyline members: geometry + ordering key in geo_items, the parallel
  // per-source distance vectors packed m-at-a-time in geo_dists (member j
  // owns geo_dists[j*m .. (j+1)*m)).
  std::vector<GeoHeapItem<D>>& members = scratch->geo_items;
  std::vector<double>& dists = scratch->geo_dists;
  members.clear();
  dists.clear();
  const size_t m = num_sources;

  // Browse key: sum of per-source squared MINDISTs, one kernel pass per
  // source accumulated in source order (bit-identical to the scalar
  // SkylineDistSum the router and reference use). min_max_dist is free in
  // this traversal and serves as the per-source staging lane.
  auto key = [&](const SoaBlock<D>& soa, double* keys) {
    const uint32_t n = soa.n;
    double* per_source =
        scratch->min_max_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    for (uint32_t i = 0; i < n; ++i) keys[i] = 0.0;
    for (size_t s = 0; s < m; ++s) {
      MinDistSqBatchSoa(sources[s], soa, per_source);
      for (uint32_t i = 0; i < n; ++i) keys[i] += per_source[i];
    }
    if (stats != nullptr) {
      stats->distance_computations += static_cast<uint64_t>(n) * m;
    }
  };
  GeoBrowse<D, decltype(key)> browse(access, root_page, empty, key, scratch,
                                     stats,
                                     "nn skyline: node page has bad magic");

  GeoHeapItem<D> item;
  for (;;) {
    SPATIAL_ASSIGN_OR_RETURN(bool more, browse.Next(&item));
    if (!more) break;
    // The popped box's per-source vector is staged at the tail of the
    // member pool; kept if the object is accepted, rolled back otherwise.
    const size_t off = dists.size();
    dists.resize(off + m);
    SkylineDistVector<D>(sources, m, item.mbr, dists.data() + off);
    bool dominated = false;
    for (size_t j = 0; j < members.size(); ++j) {
      if (SkylineDominates(dists.data() + j * m, dists.data() + off, m)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      // A member dominating a node's MINDIST vector dominates every object
      // inside it (object distances only grow from the node's MINDIST, and
      // the strict inequality carries through), so the subtree is dead.
      dists.resize(off);
      if (stats != nullptr && !item.is_object) ++stats->pruned_s3;
      continue;
    }
    if (item.is_object) {
      // Pop order is nondecreasing in the distance sum and dominance
      // implies a strictly smaller sum, so every object that could
      // dominate this one has already been popped — and if it was itself
      // dominated, its dominator is a member (dominance is transitive).
      // Testing against the current member set is therefore exact.
      members.push_back(item);
    } else {
      dists.resize(off);
      SPATIAL_RETURN_IF_ERROR(browse.Expand(item));
    }
  }

  // Canonical (distance-sum, id) order: pop-order ties between
  // incomparable equal-sum objects are tree-shape dependent, the sorted
  // output is not — the cross-shard merge sorts identically.
  std::sort(members.begin(), members.end(),
            [](const GeoHeapItem<D>& a, const GeoHeapItem<D>& b) {
              if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
              return a.id < b.id;
            });
  for (const GeoHeapItem<D>& member : members) {
    out->push_back(Entry<D>{member.mbr, member.id});
  }
  return Status::OK();
}

}  // namespace

template <int D>
Status NnSkylineSearch(const RTree<D>& tree, const Point<D>* sources,
                       size_t num_sources, QueryScratch<D>* scratch,
                       std::vector<Entry<D>>* out, QueryStats* stats) {
  return NnSkylineImpl<D>(NodeAccessor<D>(tree), tree.root_page(),
                          tree.empty(), sources, num_sources, scratch, out,
                          stats);
}

template <int D>
Status NnSkylineSearch(const ResidentTree<D>& tree, const Point<D>* sources,
                       size_t num_sources, QueryScratch<D>* scratch,
                       std::vector<Entry<D>>* out, QueryStats* stats) {
  return NnSkylineImpl<D>(NodeAccessor<D>(tree), tree.root_page(),
                          tree.empty(), sources, num_sources, scratch, out,
                          stats);
}

template Status NnSkylineSearch<2>(const RTree<2>&, const Point<2>*, size_t,
                                   QueryScratch<2>*, std::vector<Entry<2>>*,
                                   QueryStats*);
template Status NnSkylineSearch<3>(const RTree<3>&, const Point<3>*, size_t,
                                   QueryScratch<3>*, std::vector<Entry<3>>*,
                                   QueryStats*);
template Status NnSkylineSearch<4>(const RTree<4>&, const Point<4>*, size_t,
                                   QueryScratch<4>*, std::vector<Entry<4>>*,
                                   QueryStats*);
template Status NnSkylineSearch<2>(const ResidentTree<2>&, const Point<2>*,
                                   size_t, QueryScratch<2>*,
                                   std::vector<Entry<2>>*, QueryStats*);
template Status NnSkylineSearch<3>(const ResidentTree<3>&, const Point<3>*,
                                   size_t, QueryScratch<3>*,
                                   std::vector<Entry<3>>*, QueryStats*);
template Status NnSkylineSearch<4>(const ResidentTree<4>&, const Point<4>*,
                                   size_t, QueryScratch<4>*,
                                   std::vector<Entry<4>>*, QueryStats*);

}  // namespace spatial
