#ifndef SPATIAL_CORE_FARTHEST_H_
#define SPATIAL_CORE_FARTHEST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// k-farthest-neighbor search: the mirror image of the paper's algorithm.
// MAXDIST(q, M) upper-bounds the distance to every object in M, so the
// Active Branch List is ordered by descending MAXDIST and a subtree is
// pruned when its MAXDIST cannot exceed the current k-th farthest distance.
// Results are ordered by descending distance.
//
// A natural by-product of the metric toolbox (the paper defines MAXDIST but
// only uses it in passing); useful for diameter estimation and outlier
// scans, and exercised by the E8-style comparisons in tests.
template <int D>
Result<std::vector<Neighbor>> FarthestSearch(const RTree<D>& tree,
                                             const Point<D>& query,
                                             uint32_t k, QueryStats* stats);

extern template Result<std::vector<Neighbor>> FarthestSearch<2>(
    const RTree<2>&, const Point<2>&, uint32_t, QueryStats*);
extern template Result<std::vector<Neighbor>> FarthestSearch<3>(
    const RTree<3>&, const Point<3>&, uint32_t, QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_FARTHEST_H_
