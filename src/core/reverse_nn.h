#ifndef SPATIAL_CORE_REVERSE_NN_H_
#define SPATIAL_CORE_REVERSE_NN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// Reverse nearest neighbor (monochromatic, 2-D points): the objects whose
// nearest *other* object is no closer than the query point q — i.e. the
// objects that would pick q as their nearest neighbor (ties included).
//
// Implementation (Stanoi–Agrawal–El Abbadi candidate generation):
//   1. Partition the plane around q into six 60° sectors. In each sector,
//      only the objects nearest to q can be reverse nearest neighbors —
//      for any two points in one sector, the farther one is strictly
//      closer to the nearer one than to q (law of cosines, angle < 60°).
//      Candidates are collected with the incremental distance-browsing
//      iterator (a handful per sector to be robust to ties).
//   2. Each candidate o is verified exactly with a 2-NN query at o's
//      location: o is a result iff its nearest other object is at least
//      as far from o as q is.
//
// Intended for point objects (degenerate MBRs); extended objects are
// treated by their MBR distance like everywhere else, but the sector
// lemma's guarantee is stated for points.
template <int D>
Result<std::vector<Neighbor>> ReverseNnSearch(const RTree<D>& tree,
                                              const Point<D>& query,
                                              QueryStats* stats);

// Only the 2-D specialization is provided (the sector construction is
// planar); other dimensions fail to link by design.
template <>
Result<std::vector<Neighbor>> ReverseNnSearch<2>(const RTree<2>&,
                                                 const Point<2>&,
                                                 QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_REVERSE_NN_H_
