#ifndef SPATIAL_CORE_NEIGHBOR_BUFFER_H_
#define SPATIAL_CORE_NEIGHBOR_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace spatial {

// One answer of a k-NN query.
struct Neighbor {
  uint64_t id = 0;
  double dist_sq = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist_sq == b.dist_sq;
  }
};

// The paper's "sorted buffer of at most k current nearest neighbors",
// realized as a bounded max-heap keyed by squared distance. WorstDistSq()
// is the pruning bound of strategy 3: infinite until the buffer holds k
// candidates, thereafter the k-th smallest distance seen so far.
class NeighborBuffer {
 public:
  explicit NeighborBuffer(uint32_t k) : k_(k) { SPATIAL_CHECK(k >= 1); }

  // Re-arms the buffer for a new query, retaining the heap's capacity so a
  // scratch-owned buffer serves any number of queries allocation-free.
  void Reset(uint32_t k) {
    SPATIAL_CHECK(k >= 1);
    k_ = k;
    heap_.clear();
  }

  uint32_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  double WorstDistSq() const {
    return full() ? heap_.front().dist_sq
                  : std::numeric_limits<double>::infinity();
  }

  // Inserts the candidate if it improves the buffer; returns whether it was
  // kept. Ties with the current worst are rejected once the buffer is full
  // (the result is still a correct k-NN set; tests compare distances).
  bool Offer(uint64_t id, double dist_sq) {
    if (!full()) {
      heap_.push_back(Neighbor{id, dist_sq});
      std::push_heap(heap_.begin(), heap_.end(), Less{});
      return true;
    }
    if (dist_sq >= heap_.front().dist_sq) return false;
    // Replace the worst and restore the heap with one sift-down —
    // pop_heap + push_heap would walk the tree twice for the same effect.
    const size_t n = heap_.size();
    size_t hole = 0;
    for (;;) {
      size_t child = 2 * hole + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          heap_[child].dist_sq < heap_[child + 1].dist_sq) {
        ++child;
      }
      if (heap_[child].dist_sq <= dist_sq) break;
      heap_[hole] = heap_[child];
      hole = child;
    }
    heap_[hole] = Neighbor{id, dist_sq};
    return true;
  }

  // Extracts the neighbors ordered by ascending distance, emptying the
  // buffer.
  std::vector<Neighbor> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end(), Less{});
    return std::move(heap_);
  }

  // Copies the neighbors ordered by ascending distance into `out`
  // (replacing its contents unless `append`), then empties the buffer.
  // Unlike TakeSorted this keeps the heap's capacity, so buffer and `out`
  // both reach a steady state with no allocations when reused.
  void ExtractSorted(std::vector<Neighbor>* out, bool append = false) {
    std::sort_heap(heap_.begin(), heap_.end(), Less{});
    if (!append) out->clear();
    out->insert(out->end(), heap_.begin(), heap_.end());
    heap_.clear();
  }

 private:
  // A named functor (not a function pointer) so the heap algorithms inline
  // the comparison; a pointer would cost an indirect call per sift step.
  struct Less {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a.dist_sq < b.dist_sq;
    }
  };

  uint32_t k_;
  std::vector<Neighbor> heap_;  // max-heap on dist_sq
};

}  // namespace spatial

#endif  // SPATIAL_CORE_NEIGHBOR_BUFFER_H_
