#ifndef SPATIAL_CORE_NODE_ACCESS_H_
#define SPATIAL_CORE_NODE_ACCESS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/status.h"
#include "core/scratch.h"
#include "geom/metrics_simd.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// One expanded node, in the exact form the traversals consume: the SoA
// planes the SIMD kernels read and an id column. Produced by
// NodeAccessor::Expand from either backend; the traversal code is identical
// for both, which is what keeps the resident tier's answers and visit order
// bit-identical to the paged path.
//
// Id access is strided because the paged leaf path reads ids in place from
// the pinned page image (id embedded in Entry<D>), while every other path
// has a dense uint64_t column. Internal nodes guarantee density, so descent
// loops use child_ids() directly.
template <int D>
struct ExpandedNode {
  SoaBlock<D> soa;
  const char* id_base = nullptr;
  size_t id_stride = 0;  // bytes between consecutive ids
  uint32_t count = 0;
  uint16_t level = 0;
  // Paged leaves only: the pin that keeps `id_base` (and soa.planes'
  // source) valid. Released with the ExpandedNode. Never held for internal
  // nodes — descent recursion must keep pin-depth at one frame.
  PageHandle pin;

  bool is_leaf() const { return level == 0; }

  uint64_t id(uint32_t i) const {
    uint64_t v;
    std::memcpy(&v, id_base + static_cast<size_t>(i) * id_stride, sizeof(v));
    return v;
  }

  // Dense id column; valid only when Expand guaranteed density (internal
  // nodes from either backend, resident leaves).
  const uint64_t* dense_ids() const {
    return reinterpret_cast<const uint64_t*>(id_base);
  }
};

// Uniform node expansion over the two tree backends. Paged: fetch the page
// through the buffer pool, stage its SoA planes into the scratch arena and
// (for internal nodes) copy the child-id column out so the pin can drop
// before descent. Resident: one table lookup — the planes and ids already
// sit in the compiled arena, so the scratch arena is not touched at all.
//
// The accessor borrows the tree it is built over and is copy-free to
// construct; traversals build one per query.
template <int D>
class NodeAccessor {
 public:
  explicit NodeAccessor(const RTree<D>& tree)
      : pool_(tree.pool()), resident_(nullptr) {}
  explicit NodeAccessor(const ResidentTree<D>& tree)
      : pool_(nullptr), resident_(&tree) {}

  bool resident() const { return resident_ != nullptr; }

  // Expands node `id` into `out`. `bad_magic_message` is the Corruption
  // text for a page that fails the magic check (per-caller so the paged
  // traversals keep their established error strings); the resident backend
  // reports an unknown id as Corruption too — a compiled tree contains
  // every page its root reaches, so a miss means the caller's root does not
  // belong to this compiled tree.
  Status Expand(PageId id, QueryScratch<D>* scratch, ExpandedNode<D>* out,
                const char* bad_magic_message) const {
    if (resident_ != nullptr) {
      const ResidentNodeRef<D>* node = resident_->Find(id);
      if (node == nullptr) {
        return Status::Corruption("resident tree: unknown node page");
      }
      out->soa = node->soa();
      out->id_base = reinterpret_cast<const char*>(node->ids);
      out->id_stride = sizeof(uint64_t);
      out->count = node->count;
      out->level = node->level;
      return Status::OK();
    }

    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(id));
    NodeView<D> view(handle.data(), pool_->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption(bad_magic_message);
    }
    const uint32_t n = view.count();
    out->count = n;
    out->level = view.level();
    if (n == 0) return Status::OK();
    const Entry<D>* page_entries = view.entries();
    out->soa = scratch->StageSoa(page_entries, n);
    if (view.is_leaf()) {
      // Leaves recurse no further: hold the pin and read ids in place.
      out->id_base = reinterpret_cast<const char*>(page_entries) +
                     offsetof(Entry<D>, id);
      out->id_stride = sizeof(Entry<D>);
      out->pin = std::move(handle);
    } else {
      // Internal nodes: copy the one column descent needs, then drop the
      // pin so pin-depth stays at one frame however deep the tree.
      uint64_t* child_ids = scratch->child_ids.EnsureCapacity(n);
      for (uint32_t i = 0; i < n; ++i) child_ids[i] = page_entries[i].id;
      out->id_base = reinterpret_cast<const char*>(child_ids);
      out->id_stride = sizeof(uint64_t);
    }
    return Status::OK();
  }

 private:
  BufferPool* pool_;
  const ResidentTree<D>* resident_;
};

}  // namespace spatial

#endif  // SPATIAL_CORE_NODE_ACCESS_H_
