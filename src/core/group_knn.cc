#include "core/group_knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kMax:
      return "max";
  }
  return "unknown";
}

namespace {

// Aggregate of the (non-squared) MINDISTs from every group member to the
// rectangle — a lower bound on the aggregate distance of any object in it,
// exact for point objects' own MBRs.
template <int D>
double AggregateLowerBound(const std::vector<Point<D>>& group,
                           const Rect<D>& mbr, AggregateFn aggregate) {
  double agg = 0.0;
  for (const Point<D>& q : group) {
    const double d = std::sqrt(MinDistSq(q, mbr));
    if (aggregate == AggregateFn::kSum) {
      agg += d;
    } else {
      agg = std::max(agg, d);
    }
  }
  return agg;
}

template <int D>
struct QueueItem {
  double key;
  bool is_object;
  uint64_t id;

  friend bool operator<(const QueueItem& a, const QueueItem& b) {
    if (a.key != b.key) return a.key > b.key;  // min-heap
    return a.is_object < b.is_object;          // objects first on ties
  }
};

}  // namespace

template <int D>
Result<std::vector<GroupNeighbor>> GroupKnnSearch(
    const RTree<D>& tree, const std::vector<Point<D>>& group, uint32_t k,
    AggregateFn aggregate, QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (group.empty()) {
    return Status::InvalidArgument("query group must not be empty");
  }
  std::vector<GroupNeighbor> results;
  results.reserve(k);
  if (tree.empty()) return results;

  // Best-first over the aggregate lower bounds; popping an object proves
  // its aggregate distance minimal among everything unexplored.
  std::priority_queue<QueueItem<D>> queue;
  queue.push(QueueItem<D>{0.0, false, tree.root_page()});
  if (stats != nullptr) ++stats->heap_pushes;

  while (!queue.empty() && results.size() < k) {
    const QueueItem<D> item = queue.top();
    queue.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (item.is_object) {
      results.push_back(GroupNeighbor{item.id, item.key});
      continue;
    }
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle,
                             tree.pool()->Fetch(static_cast<PageId>(item.id)));
    NodeView<D> view(handle.data(), tree.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("group knn: node page has bad magic");
    }
    if (stats != nullptr) {
      ++stats->nodes_visited;
      if (view.is_leaf()) {
        ++stats->leaf_nodes_visited;
      } else {
        ++stats->internal_nodes_visited;
      }
    }
    const bool is_leaf = view.is_leaf();
    const std::vector<Entry<D>> entries = view.GetEntries();
    handle.Release();
    for (const Entry<D>& e : entries) {
      const double key = AggregateLowerBound(group, e.mbr, aggregate);
      if (stats != nullptr) {
        stats->distance_computations += group.size();
        if (is_leaf) {
          ++stats->objects_examined;
        } else {
          ++stats->abl_entries_generated;
        }
      }
      queue.push(QueueItem<D>{key, is_leaf, e.id});
      if (stats != nullptr) ++stats->heap_pushes;
    }
  }
  return results;
}

template Result<std::vector<GroupNeighbor>> GroupKnnSearch<2>(
    const RTree<2>&, const std::vector<Point<2>>&, uint32_t, AggregateFn,
    QueryStats*);
template Result<std::vector<GroupNeighbor>> GroupKnnSearch<3>(
    const RTree<3>&, const std::vector<Point<3>>&, uint32_t, AggregateFn,
    QueryStats*);

}  // namespace spatial
