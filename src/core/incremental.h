#ifndef SPATIAL_CORE_INCREMENTAL_H_
#define SPATIAL_CORE_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// Incremental ("distance browsing") nearest-neighbor iterator over an
// R-tree: a global best-first traversal driven by a priority queue mixing
// subtrees (keyed by MINDIST) and objects (keyed by their distance).
// Each Next() call yields the next-closest object; k is not fixed up front.
//
// This is the natural engineering extension of the SIGMOD'95 algorithm
// (later formalized by Hjaltason & Samet); experiment E8 uses it as the
// page-access-optimal comparator for the paper's depth-first search.
//
// The iterator borrows `tree` (and its buffer pool); it must not outlive
// them, and the tree must not be mutated while iterating.
template <int D>
class IncrementalKnn {
 public:
  IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                 QueryStats* stats);

  // Returns the next-closest neighbor, or nullopt when exhausted.
  Result<std::optional<Neighbor>> Next();

 private:
  struct QueueItem {
    double dist_sq;
    bool is_object;
    uint64_t id;  // object id or child PageId

    // Min-heap on distance; objects win distance ties so results are
    // emitted as early as possible.
    friend bool operator<(const QueueItem& a, const QueueItem& b) {
      if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
      return a.is_object < b.is_object;
    }
  };

  Status ExpandNode(PageId node_id);

  const RTree<D>* tree_;
  Point<D> query_;
  QueryStats* stats_;
  std::priority_queue<QueueItem> queue_;
};

extern template class IncrementalKnn<2>;
extern template class IncrementalKnn<3>;
extern template class IncrementalKnn<4>;

}  // namespace spatial

#endif  // SPATIAL_CORE_INCREMENTAL_H_
