#ifndef SPATIAL_CORE_INCREMENTAL_H_
#define SPATIAL_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/node_access.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "geom/point.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// Incremental ("distance browsing") nearest-neighbor iterator over an
// R-tree: a global best-first traversal driven by a priority queue mixing
// subtrees (keyed by MINDIST) and objects (keyed by their distance).
// Each Next() call yields the next-closest object; k is not fixed up front.
//
// This is the natural engineering extension of the SIGMOD'95 algorithm
// (later formalized by Hjaltason & Samet); experiment E8 uses it as the
// page-access-optimal comparator for the paper's depth-first search.
//
// The queue and the node-staging buffers live in a QueryScratch: pass one
// in to reuse its storage across queries (the query-service workers do), or
// use the scratch-less constructors and the iterator owns a private arena.
//
// The iterator runs over either backend: a paged RTree (borrowing its
// buffer pool) or a compiled ResidentTree (storage/resident_tree.h), with
// bit-identical emission order — both expand nodes through the same
// NodeAccessor and push the same (distance, id) items.
//
// The iterator borrows the tree (and `scratch` if given); it must not
// outlive them, and the tree must not be mutated while iterating. A shared
// scratch must not be used by another query until this iterator is done.
template <int D>
class IncrementalKnn {
 public:
  IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                 QueryStats* stats);
  IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                 QueryScratch<D>* scratch, QueryStats* stats);
  IncrementalKnn(const ResidentTree<D>& tree, const Point<D>& query,
                 QueryStats* stats);
  IncrementalKnn(const ResidentTree<D>& tree, const Point<D>& query,
                 QueryScratch<D>* scratch, QueryStats* stats);

  // Returns the next-closest neighbor, or nullopt when exhausted.
  Result<std::optional<Neighbor>> Next();

 private:
  IncrementalKnn(const NodeAccessor<D>& access, PageId root_page, bool empty,
                 const Point<D>& query, QueryScratch<D>* scratch,
                 QueryStats* stats);

  Status ExpandNode(PageId node_id);

  NodeAccessor<D> access_;
  Point<D> query_;
  QueryStats* stats_;
  std::unique_ptr<QueryScratch<D>> owned_scratch_;  // when none was passed
  QueryScratch<D>* scratch_;
};

extern template class IncrementalKnn<2>;
extern template class IncrementalKnn<3>;
extern template class IncrementalKnn<4>;

}  // namespace spatial

#endif  // SPATIAL_CORE_INCREMENTAL_H_
