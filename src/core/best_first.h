#ifndef SPATIAL_CORE_BEST_FIRST_H_
#define SPATIAL_CORE_BEST_FIRST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "geom/point.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// Global best-first k-NN: repeatedly expands the queue entry with the
// smallest MINDIST until k objects have been emitted. Visits the provably
// minimal set of R-tree nodes for the query, at the cost of a global
// priority queue. Used as the page-access-optimal comparator in E8.
template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const RTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryStats* stats);

// As above, but the queue and staging buffers are borrowed from `scratch`
// (may be null for a private arena) so repeated queries reuse storage.
template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const RTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryScratch<D>* scratch,
                                           QueryStats* stats);

// Resident-tier variants: the identical best-first search over a compiled
// ResidentTree (storage/resident_tree.h), emission order bit-identical to
// the paged path.
template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const ResidentTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryStats* stats);

template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const ResidentTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryScratch<D>* scratch,
                                           QueryStats* stats);

extern template Result<std::vector<Neighbor>> BestFirstKnn<2>(
    const RTree<2>&, const Point<2>&, uint32_t, QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<3>(
    const RTree<3>&, const Point<3>&, uint32_t, QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<4>(
    const RTree<4>&, const Point<4>&, uint32_t, QueryStats*);

extern template Result<std::vector<Neighbor>> BestFirstKnn<2>(
    const RTree<2>&, const Point<2>&, uint32_t, QueryScratch<2>*,
    QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<3>(
    const RTree<3>&, const Point<3>&, uint32_t, QueryScratch<3>*,
    QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<4>(
    const RTree<4>&, const Point<4>&, uint32_t, QueryScratch<4>*,
    QueryStats*);

extern template Result<std::vector<Neighbor>> BestFirstKnn<2>(
    const ResidentTree<2>&, const Point<2>&, uint32_t, QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<3>(
    const ResidentTree<3>&, const Point<3>&, uint32_t, QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<4>(
    const ResidentTree<4>&, const Point<4>&, uint32_t, QueryStats*);

extern template Result<std::vector<Neighbor>> BestFirstKnn<2>(
    const ResidentTree<2>&, const Point<2>&, uint32_t, QueryScratch<2>*,
    QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<3>(
    const ResidentTree<3>&, const Point<3>&, uint32_t, QueryScratch<3>*,
    QueryStats*);
extern template Result<std::vector<Neighbor>> BestFirstKnn<4>(
    const ResidentTree<4>&, const Point<4>&, uint32_t, QueryScratch<4>*,
    QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_BEST_FIRST_H_
